# Convenience targets for the BB-Align reproduction.

PYTHON ?= python

.PHONY: install test bench bench-artifacts examples paper-scale clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

test-report:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-report:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/gps_failure_recovery.py
	$(PYTHON) examples/cooperative_detection.py
	$(PYTHON) examples/scenario_sweep.py
	$(PYTHON) examples/tracked_drive.py
	$(PYTHON) examples/visualize_matching.py
	$(PYTHON) examples/multi_vehicle.py

# Paper-scale sweeps (hours, not minutes).
paper-scale:
	$(PYTHON) -m repro all --pairs 200 --output results_paper_scale/

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks viz_out
	find . -name __pycache__ -type d -exec rm -rf {} +
