# Convenience targets for the BB-Align reproduction.

PYTHON ?= python

.PHONY: install test lint bench bench-artifacts bench-check \
	bench-baseline examples paper-scale clean

install:
	pip install -e . --no-build-isolation

test:
	$(PYTHON) -m pytest tests/

# Mirrors the CI lint job; degrades gracefully when the pinned tools
# (pip install -e ".[dev]") are not installed locally.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src/repro/obs src/repro/runtime tools/check_bench.py; \
	else echo "ruff not installed; skipping (pip install -e '.[dev]')"; fi
	@if command -v mypy >/dev/null 2>&1; then \
		mypy src/repro/obs src/repro/runtime; \
	else echo "mypy not installed; skipping (pip install -e '.[dev]')"; fi

test-report:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-report:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

# Regenerate the BENCH_*.json trajectories and gate them against the
# committed baselines (timing drift warns; metric drift fails).
bench-check:
	$(PYTHON) -m pytest benchmarks/test_stage1_kernels.py \
		benchmarks/test_sim_kernels.py benchmarks/test_comms_bench.py \
		benchmarks/test_service_soak.py -x -q -s
	$(PYTHON) tools/check_bench.py benchmarks/results/BENCH_stage1.json \
		benchmarks/results/BENCH_pipeline.json \
		benchmarks/results/BENCH_comms.json \
		benchmarks/results/BENCH_service.json

# Accept the current BENCH_*.json outputs as the new baselines.  Run
# the benchmarks first (make bench-check), eyeball the drift, then
# commit the files this copies.
bench-baseline:
	mkdir -p benchmarks/results/baselines
	cp benchmarks/results/BENCH_stage1.json \
		benchmarks/results/BENCH_pipeline.json \
		benchmarks/results/BENCH_comms.json \
		benchmarks/results/BENCH_service.json \
		benchmarks/results/baselines/

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/gps_failure_recovery.py
	$(PYTHON) examples/cooperative_detection.py
	$(PYTHON) examples/scenario_sweep.py
	$(PYTHON) examples/tracked_drive.py
	$(PYTHON) examples/visualize_matching.py
	$(PYTHON) examples/multi_vehicle.py

# Paper-scale sweeps (hours, not minutes).
paper-scale:
	$(PYTHON) -m repro all --pairs 200 --output results_paper_scale/

clean:
	rm -rf build dist *.egg-info .pytest_cache .benchmarks viz_out
	find . -name __pycache__ -type d -exec rm -rf {} +
