"""Benchmark fixtures.

The pose-recovery figure benches are all views over one sweep; it is
computed once per session at benchmark scale and shared.  Every bench
writes the paper-style text artifact it regenerates into
``benchmarks/results/`` so the reproduction outputs survive the run.

Set ``REPRO_SWEEP_WORKERS`` to shard the session sweep (and every
registry-run experiment) over that many processes; results are identical
to the serial run.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.common import default_dataset, run_pose_recovery_sweep
from repro.experiments.registry import get_spec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Benchmark-scale sweep size: large enough for stable shapes, small
# enough to keep the whole bench suite in minutes.
SWEEP_PAIRS = 40
SWEEP_SEED = 2024
SWEEP_WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "1"))


@pytest.fixture(scope="session")
def sweep_outcomes():
    dataset = default_dataset(SWEEP_PAIRS, SWEEP_SEED)
    return run_pose_recovery_sweep(dataset, include_vips=True,
                                   workers=SWEEP_WORKERS)


@pytest.fixture(scope="session")
def run_experiment():
    """Run a registered experiment by name at benchmark scale.

    Extra keyword arguments go straight to the runner (for studies with
    parameters beyond the uniform convention).
    """
    def _run(name: str, num_pairs: int, seed: int = SWEEP_SEED, **extra):
        spec = get_spec(name)
        if extra:
            return spec.runner(num_pairs=num_pairs, seed=seed,
                               workers=SWEEP_WORKERS, **extra)
        return spec.run(num_pairs, seed, workers=SWEEP_WORKERS)
    return _run


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_artifact(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
    return _save
