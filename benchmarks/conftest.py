"""Benchmark fixtures.

The pose-recovery figure benches are all views over one sweep; it is
computed once per session at benchmark scale and shared.  Every bench
writes the paper-style text artifact it regenerates into
``benchmarks/results/`` so the reproduction outputs survive the run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import default_dataset, run_pose_recovery_sweep

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Benchmark-scale sweep size: large enough for stable shapes, small
# enough to keep the whole bench suite in minutes.
SWEEP_PAIRS = 40
SWEEP_SEED = 2024


@pytest.fixture(scope="session")
def sweep_outcomes():
    dataset = default_dataset(SWEEP_PAIRS, SWEEP_SEED)
    return run_pose_recovery_sweep(dataset, include_vips=True)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_artifact(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
    return _save
