"""Bench: design-choice ablations (extension beyond the paper's Fig. 14).

Regenerates the ablation table and asserts the design arguments hold on
this substrate: the full system dominates each single-switch variant on
the headline metric (fraction of pairs recovered under 1 m).
"""

import numpy as np

from repro.experiments.registry import get_spec


def test_ablations(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(run_experiment, args=("ablations",),
                                kwargs=dict(num_pairs=16),
                                rounds=1, iterations=1)
    save_artifact("ablations", get_spec("ablations").format(result))

    by_name = {row.name: row for row in result.rows}
    full = by_name["full system"]
    benchmark.extra_info["full_under_1m"] = full.fraction_under_1m

    # The paper's height-map argument: density maps must not beat the
    # height map (they lose the tall-landmark signal).
    assert full.fraction_under_1m \
        >= by_name["density-map BV"].fraction_under_1m - 0.05
    # The pi ambiguity breaks oncoming pairs: disabling disambiguation
    # must not improve recovery.
    assert full.fraction_under_1m \
        >= by_name["no pi disambiguation"].fraction_under_1m - 0.05
    # Rotation invariance matters for rotated pairs.
    assert full.fraction_under_1m \
        >= by_name["no rotation invariance"].fraction_under_1m - 0.05
