"""Bench: the Sec. III bandwidth claim (BV image + boxes vs raw cloud)."""

from repro.experiments.registry import get_spec


def test_bandwidth(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(run_experiment,
                                args=("bandwidth",),
                                kwargs=dict(num_pairs=10),
                                rounds=1, iterations=1)
    save_artifact("bandwidth", get_spec("bandwidth").format(result))
    benchmark.extra_info["reduction_dense"] = result.reduction_factor_dense
    benchmark.extra_info["reduction_encoded"] = \
        result.reduction_factor_encoded
    assert result.reduction_factor_dense > 3.0
    # The real wire format exploits sparsity and beats the dense estimate.
    assert result.reduction_factor_encoded > result.reduction_factor_dense
