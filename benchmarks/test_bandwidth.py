"""Bench: the Sec. III bandwidth claim (BV image + boxes vs raw cloud)."""

from repro.experiments.bandwidth import format_bandwidth, run_bandwidth


def test_bandwidth(benchmark, save_artifact):
    result = benchmark.pedantic(run_bandwidth, kwargs=dict(num_pairs=10),
                                rounds=1, iterations=1)
    save_artifact("bandwidth", format_bandwidth(result))
    benchmark.extra_info["reduction_dense"] = result.reduction_factor_dense
    benchmark.extra_info["reduction_encoded"] = \
        result.reduction_factor_encoded
    assert result.reduction_factor_dense > 3.0
    # The real wire format exploits sparsity and beats the dense estimate.
    assert result.reduction_factor_encoded > result.reduction_factor_dense
