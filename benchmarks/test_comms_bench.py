"""Bench: the tier x impairment grid and its Pareto acceptance checks.

Writes ``benchmarks/results/BENCH_comms.json`` for the
``tools/check_bench.py`` regression gate.  Everything except ``grid_s``
is seeded and deterministic: per-cell success counts, bytes sent, tier
usage, and the three acceptance facts —

* encoded bytes per message strictly decrease down the tier ladder,
* the (full-scan, clean) cell is byte-identical to a clean direct
  sweep (``control_identical``),
* the adaptive policy dominates at least one fixed tier on the
  impairment grid (success rate >= at <= bytes, one strict).
"""

import json
import time

from repro.experiments.bandwidth import run_comms_grid
from repro.experiments.registry import get_spec

GRID_PAIRS = 10
GRID_SEED = 2024


def test_comms_grid(benchmark, results_dir, save_artifact):
    start = time.perf_counter()
    result = benchmark.pedantic(run_comms_grid,
                                kwargs=dict(num_pairs=GRID_PAIRS,
                                            seed=GRID_SEED),
                                rounds=1, iterations=1)
    grid_seconds = time.perf_counter() - start
    save_artifact("comms_grid", get_spec("comms-grid").format(result))

    sizes = list(result.tier_mean_bytes.values())
    strictly_decreasing = all(a > b for a, b in zip(sizes, sizes[1:]))
    report = {
        "schema_version": 1,
        "num_pairs": result.num_pairs,
        "seed": result.seed,
        "tier_mean_bytes": {tier: int(round(size))
                            for tier, size in
                            result.tier_mean_bytes.items()},
        "cells": {
            f"{cell.policy}@{cell.impairment}": {
                "successes": cell.successes,
                "delivered": cell.delivered,
                "decode_errors": cell.decode_errors,
                "total_sent_bytes": cell.total_sent_bytes,
                "tier_messages": cell.tier_messages,
            }
            for cell in result.cells
        },
        "checks": {
            "strictly_decreasing_bytes": strictly_decreasing,
            "control_identical": result.control_identical,
            "adaptive_dominates": sorted(result.dominated),
        },
        "grid_s": round(grid_seconds, 3),
    }
    (results_dir / "BENCH_comms.json").write_text(
        json.dumps(report, indent=2) + "\n")

    benchmark.extra_info["dominated"] = len(result.dominated)
    # The acceptance criteria are hard assertions, not just recorded.
    assert strictly_decreasing, result.tier_mean_bytes
    assert result.control_identical
    assert result.dominated, "adaptive dominates no fixed tier"
