"""Bench: regenerate Fig. 10 (accuracy vs inter-vehicle distance)."""

from repro.experiments.fig10_distance import compute_fig10, format_fig10


def test_fig10_distance(benchmark, sweep_outcomes, save_artifact):
    result = benchmark(compute_fig10, sweep_outcomes)
    save_artifact("fig10_distance", format_fig10(result))
    near = result.translation["[0,70) m"]
    if near.values.size:
        benchmark.extra_info["near_under_1m"] = near.fraction_below(1.0)
        # Paper headline: ~80 % of successful recoveries within 70 m are
        # under 1 m translation error.
        assert near.fraction_below(1.0) >= 0.6
