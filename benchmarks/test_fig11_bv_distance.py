"""Bench: regenerate Fig. 11 (stage-1-only accuracy vs distance)."""

import numpy as np

from repro.experiments.fig11_bv_distance import compute_fig11, format_fig11


def test_fig11_bv_distance(benchmark, sweep_outcomes, save_artifact):
    result = benchmark(compute_fig11, sweep_outcomes)
    save_artifact("fig11_bv_distance", format_fig11(result))
    # Paper shape: stage-1 accuracy decays with distance (compare the
    # nearest and farthest populated bins).
    populated = [(label, cdf) for label, cdf in result.translation.items()
                 if cdf.values.size >= 3]
    if len(populated) >= 2:
        first = populated[0][1].value_at(0.5)
        last = populated[-1][1].value_at(0.5)
        benchmark.extra_info["near_median"] = first
        benchmark.extra_info["far_median"] = last
        assert first <= last + 0.5
