"""Bench: regenerate Fig. 12 (box-alignment accuracy vs common cars)."""

from repro.experiments.fig12_box_common_cars import (
    compute_fig12,
    format_fig12,
)


def test_fig12_box_common_cars(benchmark, sweep_outcomes, save_artifact):
    result = benchmark(compute_fig12, sweep_outcomes)
    save_artifact("fig12_box_common_cars", format_fig12(result))
    # Paper shape: the densest populated bucket is at least as accurate
    # as the sparsest one.
    populated = [(label, cdf) for label, cdf in result.translation.items()
                 if cdf.values.size >= 3]
    if len(populated) >= 2:
        sparse = populated[0][1].fraction_below(1.0)
        dense = populated[-1][1].fraction_below(1.0)
        assert dense >= sparse - 0.2
