"""Bench: regenerate Fig. 13 (impact of the detection model)."""

from repro.experiments.registry import get_spec


def test_fig13_detector_model(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(run_experiment, args=("fig13",),
                                kwargs=dict(num_pairs=20),
                                rounds=1, iterations=1)
    save_artifact("fig13_detector_model", get_spec("fig13").format(result))
    # Paper shape: the model choice plays a minor role — both profiles
    # land in a similar accuracy band.
    frac = {name: cdf.fraction_below(1.0)
            for name, cdf in result.translation.items()
            if cdf.values.size}
    if len(frac) == 2:
        values = list(frac.values())
        benchmark.extra_info.update(frac)
        assert abs(values[0] - values[1]) < 0.4
