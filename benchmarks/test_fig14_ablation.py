"""Bench: regenerate Fig. 14 (ablation of the box-alignment stage)."""

from repro.experiments.fig14_ablation import compute_fig14, format_fig14


def test_fig14_ablation(benchmark, sweep_outcomes, save_artifact):
    result = benchmark(compute_fig14, sweep_outcomes)
    save_artifact("fig14_ablation", format_fig14(result))
    with_box = result.translation["with box align"][50]
    without = result.translation["w/o box align"][50]
    benchmark.extra_info["median_with"] = with_box
    benchmark.extra_info["median_without"] = without
    # Paper shape: box alignment reduces the translation error at the
    # median (and per the paper's own caption the 75th percentile is
    # comparatively stable).
    assert with_box <= without + 0.05
