"""Bench: regenerate Fig. 7 (BB-Align vs VIPS error CDFs)."""

from repro.experiments.fig7_comparison import compute_fig7, format_fig7


def test_fig7_comparison(benchmark, sweep_outcomes, save_artifact):
    result = benchmark(compute_fig7, sweep_outcomes)
    save_artifact("fig7_comparison", format_fig7(result))
    benchmark.extra_info["bb_under_1m"] = result.bb_fraction_under_1m
    benchmark.extra_info["vips_under_1m"] = result.vips_fraction_under_1m
    # Paper shape: BB-Align dominates VIPS on translation.
    assert result.bb_fraction_under_1m > result.vips_fraction_under_1m
