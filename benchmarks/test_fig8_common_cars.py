"""Bench: regenerate Fig. 8 (translation error vs common cars)."""

import numpy as np

from repro.experiments.fig8_common_cars import compute_fig8, format_fig8


def test_fig8_common_cars(benchmark, sweep_outcomes, save_artifact):
    result = benchmark(compute_fig8, sweep_outcomes)
    save_artifact("fig8_common_cars", format_fig8(result))
    # Paper shape: in sparse traffic VIPS degrades far more than
    # BB-Align (compare medians in the sparsest populated bucket).
    for label in result.vips_percentiles:
        vips_median = result.vips_percentiles[label][50]
        bb_median = result.bb_percentiles[label][50]
        if not (np.isnan(vips_median) or np.isnan(bb_median)):
            benchmark.extra_info[f"bb_median_{label}"] = bb_median
            benchmark.extra_info[f"vips_median_{label}"] = vips_median
