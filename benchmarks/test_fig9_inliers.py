"""Bench: regenerate Fig. 9 (accuracy vs RANSAC inlier counts)."""

from repro.experiments.fig9_inliers import compute_fig9, format_fig9


def test_fig9_inliers(benchmark, sweep_outcomes, save_artifact):
    result = benchmark(compute_fig9, sweep_outcomes)
    save_artifact("fig9_inliers", format_fig9(result))
    # Paper shape: the top bv-inlier bucket beats the bottom one.
    buckets = list(result.by_bv_inliers.items())
    low_label, (low_t, _) = buckets[0]
    high_label, (high_t, _) = buckets[-1]
    if low_t.values.size and high_t.values.size:
        assert high_t.fraction_below(1.0) >= low_t.fraction_below(1.0)
