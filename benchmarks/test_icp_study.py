"""Bench: the ICP comparison backing the paper's Sec. II claims."""

from repro.experiments.registry import get_spec


def test_icp_study(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(run_experiment, args=("icp",),
                                kwargs=dict(num_pairs=12),
                                rounds=1, iterations=1)
    save_artifact("icp_study", get_spec("icp").format(result))
    benchmark.extra_info["cold_icp"] = result.cold_icp_under_1m
    benchmark.extra_info["bb_align"] = result.bb_align_under_1m
    # Paper claim: without a prior pose, raw registration is unusable.
    assert result.bb_align_under_1m > result.cold_icp_under_1m
    # And it costs the full point cloud in bandwidth.
    assert result.icp_bytes_mean > 3 * result.bb_bytes_mean
