"""Bench: the multi-vehicle pose-graph study and the fleet-scale grid.

Writes ``benchmarks/results/BENCH_multi.json`` for the
``tools/check_bench.py`` regression gate.  Everything except ``grid_s``
is seeded and deterministic: per-cell hit counts, edge counts, and the
two acceptance facts —

* graph coverage >= direct pairwise coverage in *every* grid cell (the
  pose graph can only add coverage), and
* strictly greater in at least one impaired cell with fleet >= 5 —
  the regime where long ego edges fail but relay through intermediates
  survives.
"""

import json
import time

import numpy as np

from repro.experiments.multi_study import run_multi_grid
from repro.experiments.registry import get_spec

GRID_PAIRS = 3
GRID_SEED = 2024


def test_multi_study(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(
        run_experiment, args=("multi",),
        kwargs=dict(num_pairs=3, num_vehicles=3),
        rounds=1, iterations=1)
    save_artifact("multi_study", get_spec("multi").format(result))
    benchmark.extra_info["direct"] = result.direct_coverage
    benchmark.extra_info["graph"] = result.graph_coverage
    # The graph can only add coverage over direct pairwise edges.
    assert result.graph_coverage >= result.direct_coverage - 1e-9
    # Loop closure is not optional: at bench scale at least one scene
    # resolves >= 3 vehicles through a redundant graph, so measured
    # 3-cycles must exist — and close.  (The seed bench skipped this
    # check whenever the median came back NaN.)
    assert result.scenes_with_cycles >= 1, \
        "no scene produced a 3-cycle to close"
    assert not np.isnan(result.median_cycle_translation)
    assert result.median_cycle_translation < 2.0


def test_multi_grid(benchmark, results_dir, save_artifact):
    start = time.perf_counter()
    result = benchmark.pedantic(
        run_multi_grid,
        kwargs=dict(num_pairs=GRID_PAIRS, seed=GRID_SEED),
        rounds=1, iterations=1)
    grid_seconds = time.perf_counter() - start
    save_artifact("multi_grid", get_spec("multi-grid").format(result))

    strict_gain_cells = []
    for cell in result.cells:
        # Headline fact, per cell: the fused graph never resolves fewer
        # vehicles than the ego's own direct edges.
        assert cell.graph_hits >= cell.direct_hits, cell
        assert cell.scene_errors == 0, cell
        if (cell.vehicles_per_scene >= 5 and cell.degradation >= 1
                and cell.graph_hits > cell.direct_hits):
            strict_gain_cells.append(
                f"fleet{cell.vehicles_per_scene}"
                f"@x{cell.density:g}@deg{cell.degradation}")
    # ... and strictly more somewhere in the impaired fleet >= 5 regime.
    assert strict_gain_cells, \
        "graph never beat direct coverage on an impaired 5+ fleet"

    report = {
        "schema_version": 1,
        "scenes_per_cell": result.scenes_per_cell,
        "seed": GRID_SEED,
        "spacing": result.spacing,
        "cells": {
            f"fleet{cell.vehicles_per_scene}"
            f"@x{cell.density:g}@deg{cell.degradation}": {
                "targets": cell.targets,
                "direct_hits": cell.direct_hits,
                "graph_hits": cell.graph_hits,
                "candidate_pairs": cell.candidate_pairs,
                "kept_edges": cell.kept_edges,
                "rejected_edges": cell.rejected_edges,
                "scenes_with_cycles": cell.scenes_with_cycles,
            }
            for cell in result.cells
        },
        "checks": {
            "graph_ge_direct_all_cells": True,
            "strict_gain_cells": sorted(strict_gain_cells),
        },
        "grid_s": round(grid_seconds, 3),
    }
    (results_dir / "BENCH_multi.json").write_text(
        json.dumps(report, indent=2) + "\n")
    benchmark.extra_info["strict_gain_cells"] = len(strict_gain_cells)
