"""Bench: the multi-vehicle pose-graph extension study."""

import numpy as np

from repro.experiments.registry import get_spec


def test_multi_study(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(
        run_experiment, args=("multi",),
        kwargs=dict(num_pairs=3, num_vehicles=3),
        rounds=1, iterations=1)
    save_artifact("multi_study", get_spec("multi").format(result))
    benchmark.extra_info["direct"] = result.direct_coverage
    benchmark.extra_info["graph"] = result.graph_coverage
    # The graph can only add coverage over direct pairwise edges.
    assert result.graph_coverage >= result.direct_coverage - 1e-9
    if not np.isnan(result.median_cycle_translation):
        # Consistent recoveries close their loops tightly.
        assert result.median_cycle_translation < 2.0
