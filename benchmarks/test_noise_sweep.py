"""Bench: the pose-noise severity sweep (the 'any severity' claim)."""

import numpy as np

from repro.experiments.registry import get_spec


def test_noise_sweep(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(run_experiment, args=("noise-sweep",),
                                kwargs=dict(num_pairs=10),
                                rounds=1, iterations=1)
    save_artifact("noise_sweep", get_spec("noise-sweep").format(result))

    corrupted = list(result.corrupted_ap.values())
    recovered = list(result.recovered_ap.values())
    # Corrupted AP collapses from mild to total failure.
    assert corrupted[0] > corrupted[-1] + 5.0
    # Recovered AP stays in a narrow band across severities.
    assert max(recovered) - min(recovered) \
        < max(corrupted) - min(corrupted)
    # And beats the corrupted pose at high severity.
    assert recovered[-1] > corrupted[-1]
