"""Overhead-neutrality of the disabled observability layer.

The acceptance bar for the tracing/metrics layer is that a pipeline
which *doesn't* opt in pays (approximately) nothing: every instrumented
call site reduces to one context-var read.  These benches time the
disabled-mode primitives against their theoretical floor and a small
real sweep with and without instrumentation enabled.

Timing assertions are tolerant by default (shared CI runners); set
``REPRO_BENCH_STRICT=1`` to enforce the tight budgets.
"""

from __future__ import annotations

import contextlib
import os
import time

from repro.experiments.common import default_dataset, run_pose_recovery_sweep
from repro.obs import (
    MetricsRegistry,
    collect_spans,
    counter,
    span,
    use_registry,
)
from repro.runtime.timings import SweepTimings, stage

_STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"

# Disabled-mode budget: each no-op instrument call must stay within a
# small multiple of an empty function call.  Generous by default; the
# strict bound is what the design targets.
_NOOP_BUDGET = 8.0 if _STRICT else 40.0
# Enabled-vs-disabled budget for a real (tiny) sweep: the tracing cost
# must vanish inside the pipeline's compute.
_SWEEP_BUDGET = 1.02 if _STRICT else 1.25


def _best_of(repeats: int, fn, *args) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - start)
    return best


def _empty_loop(n: int) -> None:
    f = _noop
    for _ in range(n):
        f()


def _noop() -> None:
    return None


def _counter_loop(n: int) -> None:
    for _ in range(n):
        counter("bench/noop").inc()


def _span_loop(n: int) -> None:
    for _ in range(n):
        with span("bench/noop"):
            pass


def _stage_loop(n: int) -> None:
    for _ in range(n):
        with stage(None, "bench/noop"):
            pass


def test_disabled_counter_is_cheap():
    n = 50_000
    floor = _best_of(5, _empty_loop, n)
    cost = _best_of(5, _counter_loop, n)
    ratio = cost / max(floor, 1e-9)
    print(f"\n[obs-overhead] disabled counter: {cost / n * 1e9:.0f} ns/call"
          f" ({ratio:.1f}x an empty call, budget {_NOOP_BUDGET:g}x)")
    assert ratio < _NOOP_BUDGET


def test_disabled_span_is_cheap():
    n = 20_000
    floor = _best_of(5, _empty_loop, n)
    cost = _best_of(5, _span_loop, n)
    per_call = cost / n
    print(f"\n[obs-overhead] disabled span: {per_call * 1e9:.0f} ns/call")
    # A disabled span is a generator context manager that bails on the
    # first contextvar read; budget it in absolute terms.
    assert per_call < (5e-6 if _STRICT else 2e-5)
    assert cost / max(floor, 1e-9) < 400  # sanity: still near-free


def test_disabled_stage_matches_nullcontext():
    n = 20_000

    def null_loop(count):
        for _ in range(count):
            with contextlib.nullcontext():
                pass

    floor = _best_of(5, null_loop, n)
    cost = _best_of(5, _stage_loop, n)
    ratio = cost / max(floor, 1e-9)
    print(f"\n[obs-overhead] disabled stage(): {ratio:.1f}x nullcontext")
    assert ratio < (6.0 if _STRICT else 30.0)


def test_traced_sweep_overhead_within_budget():
    """An instrumented-and-enabled sweep must cost within a few percent
    of the plain sweep — and return identical outcomes."""
    dataset = default_dataset(6, seed=2024)

    def plain():
        return run_pose_recovery_sweep(dataset, include_vips=False,
                                       cache=False)

    def traced():
        timings = SweepTimings()
        with use_registry(MetricsRegistry()), collect_spans():
            return run_pose_recovery_sweep(dataset, include_vips=False,
                                           cache=False, timings=timings)

    plain(), traced()  # warm caches (imports, data-gen JIT paths)
    plain_s = _best_of(3, plain)
    traced_s = _best_of(3, traced)
    ratio = traced_s / max(plain_s, 1e-9)
    print(f"\n[obs-overhead] sweep traced/untraced: {ratio:.3f}x "
          f"(budget {_SWEEP_BUDGET:g}x)")
    assert plain() == traced()
    assert ratio < _SWEEP_BUDGET
