"""Micro-benchmarks of the BB-Align pipeline stages.

The paper's conclusion names BV-image-matching time efficiency as future
work; these benches quantify where the time goes in this implementation.
"""

import numpy as np
import pytest

from repro.bev.mim import compute_mim
from repro.core.config import BBAlignConfig
from repro.core.pipeline import BBAlign
from repro.core.bv_matching import BVMatcher
from repro.detection.simulated import SimulatedDetector
from repro.simulation.scenario import ScenarioConfig, make_frame_pair


@pytest.fixture(scope="module")
def pair():
    return make_frame_pair(ScenarioConfig(distance=25.0), rng=3)


@pytest.fixture(scope="module")
def matcher():
    return BVMatcher(BBAlignConfig())


def test_bv_projection_speed(benchmark, pair, matcher):
    result = benchmark(matcher.make_bv_image, pair.ego_cloud)
    assert result.size > 0


def test_mim_speed(benchmark, pair, matcher):
    bv = matcher.make_bv_image(pair.ego_cloud)
    result = benchmark(compute_mim, bv)
    assert result.mim.shape == bv.image.shape


def test_feature_extraction_speed(benchmark, pair, matcher):
    bv = matcher.make_bv_image(pair.ego_cloud)
    features = benchmark(matcher.extract, bv)
    assert len(features.descriptors) > 0


def test_full_recovery_speed(benchmark, pair):
    detector = SimulatedDetector()
    ego_dets = detector.detect(pair.ego_visible, 1)
    other_dets = detector.detect(pair.other_visible, 2)
    aligner = BBAlign()

    def recover():
        return aligner.recover(pair.ego_cloud, pair.other_cloud,
                               [d.box for d in ego_dets],
                               [d.box for d in other_dets], rng=0)

    result = benchmark(recover)
    assert result.stage1.success
