"""Bench: the always-on pose service — clean-path parity + chaos soak.

Writes ``benchmarks/results/BENCH_service.json`` for the
``tools/check_bench.py`` regression gate.  Four legs:

* **Clean-path parity** — the service answers the full benchmark sweep
  (same 40 pairs, same seeds) and every pose must be *byte-identical*
  to the direct ``run_pose_recovery_sweep`` outcome.  The service adds
  transport, batching and supervision around the engine's chunk runner
  — never arithmetic.
* **Scan data-plane parity** — the same 40 pairs as raw scan-pair
  messages, answered once over the pickle path (shm off, cache off)
  and once over the zero-copy path (shm on, warm cache on), same
  request ids in both legs.  Every response field must be identical:
  the data plane moves bytes, never arithmetic.
* **Scan data-plane throughput** — a closed-loop load run cycling a
  small working set of scan pairs, pickle leg vs shm leg, with task
  payload accounting on.  The per-request serialized bytes reduction
  (>= 5x) is asserted always; the RPS speedup (>= 1.5x) is asserted
  under ``REPRO_BENCH_STRICT=1`` and ratio-gated otherwise.
* **Chaos soak** — a closed-loop load run (80 requests, 6 virtual
  clients) while injected faults kill two workers, hang a third past
  the batch timeout, and make one pair evaluation raise.  The contract
  under fire: every admitted request gets a typed response, zero
  unhandled errors, and the restart counter equals the injected pool
  faults — supervision is exact, not best-effort.

Deterministic fields (response/success/status counts, restart
accounting, parity, leak checks) gate exactly; ``*_s``/``*_ms``
latencies, ``*_rps`` throughput, ``*speedup`` ratios, per-request
``*_mb`` payload sizes and the ``peak_rss_mb`` memory ceiling gate as
ratio budgets (strict in the nightly soak leg).
"""

from __future__ import annotations

import asyncio
import dataclasses
import glob
import json
import os
import resource
import time

from repro.comms.envelope import ServiceRequest
from repro.comms.tiers import Tier, build_message
from repro.detection.simulated import COBEVT_PROFILE, SimulatedDetector
from repro.experiments.common import detect_for_pair
from repro.runtime.faults import WorkerFault
from repro.runtime.retry import RetryPolicy
from repro.service import PoseService, ServiceConfig, run_load
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim

SWEEP_PAIRS = 40
SWEEP_SEED = 2024
WORKERS = 2

#: Scan data-plane throughput leg: a working set small enough that the
#: warm cache sees repeats (48 requests over 8 unique pairs) but large
#: enough that the byte accounting averages over batching jitter.
DP_UNIQUE_PAIRS = 8
DP_REQUESTS = 48
DP_CONCURRENCY = 6

#: Fault plan for the soak.  Faults fire on the *dataset pair index*
#: (so only during the first of the two request cycles), and the
#: indices are >= 10 apart: a micro-batch holds at most ``batch_size``
#: (4) requests drawn from the <= 6 outstanding closed-loop requests,
#: so no two faults can land in one batch (a kill retry would silently
#: swallow a co-batched raise) and no two pool faults overlap in
#: flight (a kill's restart would reap a concurrently hung worker
#: before its timeout counted it).  The hang comes last for the same
#: reason.  Each fires exactly once.
KILL_AT = (2, 13)
RAISE_AT = (24,)
HANG_AT = (35,)

#: One hang (2 s timeout) + three restarts + jittered retries all fit
#: inside a typical soak second; four attempts give even a
#: cancelled-then-killed batch headroom to finish clean.
SOAK_RETRY = RetryPolicy(attempts=4, base_delay=0.05, multiplier=2.0,
                         max_delay=0.5, jitter=0.5)

_REPORT: dict = {}


@dataclasses.dataclass(frozen=True)
class MixedFault:
    """Kills, hangs and raises at disjoint indices, each fire-once.

    Duck-typed like :class:`WorkerFault` (the engine only calls
    ``maybe_fire``); delegates each kind to a real ``WorkerFault`` so
    the claim-by-sentinel protocol is shared.
    """

    kills: tuple[int, ...]
    hangs: tuple[int, ...]
    raise_at: tuple[int, ...]
    once_dir: str
    hang_seconds: float = 4.0

    def maybe_fire(self, index: int) -> None:
        for kind, indices in (("kill", self.kills), ("hang", self.hangs),
                              ("raise", self.raise_at)):
            if index in indices:
                WorkerFault(kind=kind, indices=indices,
                            once_dir=self.once_dir,
                            hang_seconds=self.hang_seconds
                            ).maybe_fire(index)


def _service_config(**overrides) -> ServiceConfig:
    base = dict(
        dataset_config=DatasetConfig(num_pairs=SWEEP_PAIRS,
                                     seed=SWEEP_SEED),
        include_vips=True,  # match the session sweep's configuration
        workers=WORKERS, queue_limit=64, batch_size=4,
        heartbeat_interval=0.1)
    base.update(overrides)
    return ServiceConfig(**base)


def test_service_clean_path_parity(sweep_outcomes):
    """Every service answer is byte-identical to the sweep's outcome."""
    async def scenario():
        async with PoseService(_service_config()) as service:
            futures = [service.submit_nowait(
                ServiceRequest(request_id=index + 1, index=index))
                for index in range(SWEEP_PAIRS)]
            return await asyncio.gather(*futures)

    start = time.perf_counter()
    responses = asyncio.run(asyncio.wait_for(scenario(), timeout=600))
    parity_seconds = time.perf_counter() - start

    mismatches = 0
    for outcome, response in zip(sweep_outcomes, responses):
        identical = (response.status == "ok"
                     and response.tx == outcome.tx
                     and response.ty == outcome.ty
                     and response.theta == outcome.theta
                     and response.success == outcome.success
                     and response.degradation == outcome.degradation
                     and response.failure_reason == outcome.failure_reason
                     and response.inliers_bv == outcome.inliers_bv
                     and response.inliers_box == outcome.inliers_box)
        mismatches += not identical
    assert mismatches == 0

    _REPORT["parity"] = {
        "pairs": SWEEP_PAIRS,
        "identical": mismatches == 0,
        "parity_s": round(parity_seconds, 3),
    }


def _scan_messages(count: int) -> list[tuple]:
    """(ego, other) FULL_SCAN message tuples for the first ``count``
    benchmark pairs, detector boxes included — the realistic payload a
    vehicle would actually ship."""
    dataset = V2VDatasetSim(DatasetConfig(num_pairs=max(count, 1),
                                          seed=SWEEP_SEED))
    detector = SimulatedDetector(COBEVT_PROFILE)
    messages = []
    for index in range(count):
        pair = dataset[index].pair
        ego_dets, other_dets = detect_for_pair(pair, detector, 7, index)
        messages.append((
            build_message(Tier.FULL_SCAN, [d.box for d in ego_dets],
                          cloud=pair.ego_cloud),
            build_message(Tier.FULL_SCAN, [d.box for d in other_dets],
                          cloud=pair.other_cloud)))
    return messages


def _leaked_segments() -> list[str]:
    return glob.glob("/dev/shm/repro-svc-*")


def test_service_scan_data_plane_parity():
    """Pickle path and zero-copy path answer scan pairs identically.

    Same 40 pairs, same request ids (the per-request RNG streams hang
    off them), one leg with shm and the warm cache off, one with both
    on.  Every response field must match — the correctness contract of
    the data plane."""
    messages = _scan_messages(SWEEP_PAIRS)

    async def leg(use_shm: bool, cache_mb: float):
        config = _service_config(include_vips=False, use_shm=use_shm,
                                 worker_cache_mb=cache_mb)
        async with PoseService(config) as service:
            futures = [service.submit_nowait(
                ServiceRequest(request_id=index + 1, ego=ego, other=other))
                for index, (ego, other) in enumerate(messages)]
            return await asyncio.gather(*futures)

    start = time.perf_counter()
    pickle_leg = asyncio.run(asyncio.wait_for(
        leg(use_shm=False, cache_mb=0.0), timeout=600))
    shm_leg = asyncio.run(asyncio.wait_for(
        leg(use_shm=True, cache_mb=64.0), timeout=600))
    parity_seconds = time.perf_counter() - start

    mismatches = sum(a != b for a, b in zip(pickle_leg, shm_leg))
    assert mismatches == 0
    assert all(response.status == "ok" for response in pickle_leg)
    assert _leaked_segments() == []

    _REPORT["scan_parity"] = {
        "pairs": SWEEP_PAIRS,
        "identical": mismatches == 0,
        "scan_parity_s": round(parity_seconds, 3),
    }


def test_service_scan_data_plane_throughput():
    """Closed-loop scan-pair load: pickle leg vs zero-copy leg.

    The deterministic bar — per-request serialized task bytes shrink
    >= 5x when descriptors replace pickled clouds — always gates.  The
    wall-clock bar (>= 1.5x RPS) is asserted under
    ``REPRO_BENCH_STRICT=1`` and ratio-gated against the committed
    baseline otherwise."""
    messages = _scan_messages(DP_UNIQUE_PAIRS)

    def factory(n: int) -> ServiceRequest:
        ego, other = messages[n % DP_UNIQUE_PAIRS]
        return ServiceRequest(request_id=(n + 1) & 0xFFFFFFFF,
                              ego=ego, other=other)

    async def leg(use_shm: bool, cache_mb: float):
        config = _service_config(include_vips=False, use_shm=use_shm,
                                 worker_cache_mb=cache_mb,
                                 account_payload_bytes=True)
        async with PoseService(config) as service:
            summary = await run_load(service.submit,
                                     requests=DP_REQUESTS,
                                     concurrency=DP_CONCURRENCY,
                                     warmup=WORKERS,
                                     make_request=factory)
            histogram = service.registry.histograms.get("service/task_bytes")
            counters = service.registry.counter_values("service/")
            accounted = counters.get("service/payload_requests", 0)
            per_request = (histogram.total / accounted
                           if histogram is not None and accounted else 0.0)
            return summary, per_request, counters

    pickle_summary, pickle_bytes, _ = asyncio.run(
        asyncio.wait_for(leg(use_shm=False, cache_mb=0.0), timeout=600))
    shm_summary, shm_bytes, shm_counters = asyncio.run(
        asyncio.wait_for(leg(use_shm=True, cache_mb=64.0), timeout=600))

    for summary in (pickle_summary, shm_summary):
        assert summary.errors == 0
        assert summary.responded == DP_REQUESTS
        assert summary.rejected == 0
        assert summary.statuses == {"ok": DP_REQUESTS}
    # Same request ids + deterministic per-request RNG: the legs must
    # agree on every pose outcome, so the success tallies match.
    assert pickle_summary.successes == shm_summary.successes

    bytes_speedup = pickle_bytes / shm_bytes if shm_bytes else 0.0
    assert bytes_speedup >= 5.0, (
        f"serialized task bytes only shrank {bytes_speedup:.1f}x "
        f"({pickle_bytes:.0f} -> {shm_bytes:.0f} bytes/request)")

    # 48 requests over two workers means some pair repeats in whichever
    # worker saw more than DP_UNIQUE_PAIRS requests — the warm cache
    # must have hits (the exact split across workers is scheduling).
    cache_hits = shm_counters.get("service/worker_cache/hits", 0)
    assert cache_hits > 0

    rps_speedup = (shm_summary.sustained_rps / pickle_summary.sustained_rps
                   if pickle_summary.sustained_rps else 0.0)
    strict = os.environ.get("REPRO_BENCH_STRICT") == "1"
    if strict:
        assert rps_speedup >= 1.5, (
            f"zero-copy leg only {rps_speedup:.2f}x the pickle leg")
    assert _leaked_segments() == []

    _REPORT["data_plane"] = {
        "requests": DP_REQUESTS,
        "unique_pairs": DP_UNIQUE_PAIRS,
        "concurrency": DP_CONCURRENCY,
        "warmup": WORKERS,
        "successes": shm_summary.successes,
        "pickle_rps": round(pickle_summary.sustained_rps, 3),
        "shm_rps": round(shm_summary.sustained_rps, 3),
        "rps_speedup": round(rps_speedup, 3),
        "pickle_task_mb": round(pickle_bytes / 2**20, 4),
        "shm_task_mb": round(shm_bytes / 2**20, 4),
        "bytes_speedup": round(bytes_speedup, 1),
        "warm_cache_hit": cache_hits > 0,
    }
    print(f"\nservice data plane: {pickle_bytes:.0f} -> {shm_bytes:.0f} "
          f"bytes/request ({bytes_speedup:.0f}x), "
          f"{pickle_summary.sustained_rps:.1f} -> "
          f"{shm_summary.sustained_rps:.1f} rps ({rps_speedup:.2f}x), "
          f"{cache_hits} warm-cache hits")


def test_service_chaos_soak(tmp_path, results_dir):
    """Sustained load under injected kills, a hang, and a raise."""
    fault = MixedFault(kills=KILL_AT, hangs=HANG_AT, raise_at=RAISE_AT,
                       once_dir=str(tmp_path))
    config = _service_config(include_vips=False, batch_timeout=2.0,
                             retry=SOAK_RETRY, fault=fault)

    async def scenario():
        async with PoseService(config) as service:
            summary = await run_load(service.submit, requests=80,
                                     concurrency=6,
                                     num_pairs=SWEEP_PAIRS)
            snapshot = service.registry.snapshot().get("counters", {})
            stats = {key.removeprefix("service/"): value
                     for key, value in snapshot.items()
                     if key.startswith("service/")}
            return summary, stats

    summary, stats = asyncio.run(
        asyncio.wait_for(scenario(), timeout=600))

    # The robustness contract, exactly.
    assert summary.errors == 0
    assert summary.attempted == 80
    assert summary.responded == 80
    assert summary.rejected == 0
    assert summary.statuses == {"ok": 80}
    injected_pool_faults = len(KILL_AT) + len(HANG_AT)
    assert stats["worker_restarts"] == injected_pool_faults
    assert stats["hangs"] == len(HANG_AT)
    assert stats.get("exhausted", 0) == 0
    assert stats.get("internal_errors", 0) == 0
    # The raise reaches the caller as a typed failed response (status
    # still "ok" transport-wise, success False), never an exception —
    # the exact success/degradation tallies are seeded and gate
    # against the committed baseline.

    leaked = _leaked_segments()
    assert leaked == [], f"leaked shm segments: {leaked}"

    rss_kib = max(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                  resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    report = {
        "schema_version": 2,
        "config": {
            "num_pairs": SWEEP_PAIRS,
            "seed": SWEEP_SEED,
            "workers": WORKERS,
            "batch_size": config.batch_size,
            "requests": 80,
            "concurrency": 6,
            "injected_kills": len(KILL_AT),
            "injected_hangs": len(HANG_AT),
            "injected_raises": len(RAISE_AT),
            "strict": os.environ.get("REPRO_BENCH_STRICT") == "1",
        },
        "parity": _REPORT.get("parity",
                              {"pairs": 0, "identical": False,
                               "parity_s": 0.0}),
        "scan_parity": _REPORT.get("scan_parity",
                                   {"pairs": 0, "identical": False,
                                    "scan_parity_s": 0.0}),
        "data_plane": _REPORT.get("data_plane", {}),
        "soak": summary.to_dict(),
        "supervision": {
            "worker_restarts": stats["worker_restarts"],
            "hangs": stats["hangs"],
            "exhausted": stats.get("exhausted", 0),
            "internal_errors": stats.get("internal_errors", 0),
        },
        "checks": {
            "all_answered": summary.responded == summary.attempted,
            "zero_unhandled": summary.errors == 0,
            "restarts_equal_injected_faults":
                stats["worker_restarts"] == injected_pool_faults,
            "scan_parity_identical":
                _REPORT.get("scan_parity", {}).get("identical", False),
            "bytes_reduction_at_least_5x":
                _REPORT.get("data_plane", {}).get("bytes_speedup", 0) >= 5.0,
            "zero_leaked_segments": leaked == [],
        },
        "peak_rss_mb": round(rss_kib / 1024.0, 1),
    }
    (results_dir / "BENCH_service.json").write_text(
        json.dumps(report, indent=2) + "\n")
    print("\nservice soak: " + summary.format())
