"""Bench: the always-on pose service — clean-path parity + chaos soak.

Writes ``benchmarks/results/BENCH_service.json`` for the
``tools/check_bench.py`` regression gate.  Two legs:

* **Clean-path parity** — the service answers the full benchmark sweep
  (same 40 pairs, same seeds) and every pose must be *byte-identical*
  to the direct ``run_pose_recovery_sweep`` outcome.  The service adds
  transport, batching and supervision around the engine's chunk runner
  — never arithmetic.
* **Chaos soak** — a closed-loop load run (80 requests, 6 virtual
  clients) while injected faults kill two workers, hang a third past
  the batch timeout, and make one pair evaluation raise.  The contract
  under fire: every admitted request gets a typed response, zero
  unhandled errors, and the restart counter equals the injected pool
  faults — supervision is exact, not best-effort.

Deterministic fields (response/success/status counts, restart
accounting, parity) gate exactly; ``*_s``/``*_ms`` latencies,
``sustained_rps`` throughput and the ``peak_rss_mb`` memory ceiling
gate as ratio budgets (strict in the nightly soak leg).
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import resource
import time

from repro.comms.envelope import ServiceRequest
from repro.runtime.faults import WorkerFault
from repro.runtime.retry import RetryPolicy
from repro.service import PoseService, ServiceConfig, run_load
from repro.simulation.dataset import DatasetConfig

SWEEP_PAIRS = 40
SWEEP_SEED = 2024
WORKERS = 2

#: Fault plan for the soak.  Faults fire on the *dataset pair index*
#: (so only during the first of the two request cycles), and the
#: indices are >= 10 apart: a micro-batch holds at most ``batch_size``
#: (4) requests drawn from the <= 6 outstanding closed-loop requests,
#: so no two faults can land in one batch (a kill retry would silently
#: swallow a co-batched raise) and no two pool faults overlap in
#: flight (a kill's restart would reap a concurrently hung worker
#: before its timeout counted it).  The hang comes last for the same
#: reason.  Each fires exactly once.
KILL_AT = (2, 13)
RAISE_AT = (24,)
HANG_AT = (35,)

#: One hang (2 s timeout) + three restarts + jittered retries all fit
#: inside a typical soak second; four attempts give even a
#: cancelled-then-killed batch headroom to finish clean.
SOAK_RETRY = RetryPolicy(attempts=4, base_delay=0.05, multiplier=2.0,
                         max_delay=0.5, jitter=0.5)

_REPORT: dict = {}


@dataclasses.dataclass(frozen=True)
class MixedFault:
    """Kills, hangs and raises at disjoint indices, each fire-once.

    Duck-typed like :class:`WorkerFault` (the engine only calls
    ``maybe_fire``); delegates each kind to a real ``WorkerFault`` so
    the claim-by-sentinel protocol is shared.
    """

    kills: tuple[int, ...]
    hangs: tuple[int, ...]
    raise_at: tuple[int, ...]
    once_dir: str
    hang_seconds: float = 4.0

    def maybe_fire(self, index: int) -> None:
        for kind, indices in (("kill", self.kills), ("hang", self.hangs),
                              ("raise", self.raise_at)):
            if index in indices:
                WorkerFault(kind=kind, indices=indices,
                            once_dir=self.once_dir,
                            hang_seconds=self.hang_seconds
                            ).maybe_fire(index)


def _service_config(**overrides) -> ServiceConfig:
    base = dict(
        dataset_config=DatasetConfig(num_pairs=SWEEP_PAIRS,
                                     seed=SWEEP_SEED),
        include_vips=True,  # match the session sweep's configuration
        workers=WORKERS, queue_limit=64, batch_size=4,
        heartbeat_interval=0.1)
    base.update(overrides)
    return ServiceConfig(**base)


def test_service_clean_path_parity(sweep_outcomes):
    """Every service answer is byte-identical to the sweep's outcome."""
    async def scenario():
        async with PoseService(_service_config()) as service:
            futures = [service.submit_nowait(
                ServiceRequest(request_id=index + 1, index=index))
                for index in range(SWEEP_PAIRS)]
            return await asyncio.gather(*futures)

    start = time.perf_counter()
    responses = asyncio.run(asyncio.wait_for(scenario(), timeout=600))
    parity_seconds = time.perf_counter() - start

    mismatches = 0
    for outcome, response in zip(sweep_outcomes, responses):
        identical = (response.status == "ok"
                     and response.tx == outcome.tx
                     and response.ty == outcome.ty
                     and response.theta == outcome.theta
                     and response.success == outcome.success
                     and response.degradation == outcome.degradation
                     and response.failure_reason == outcome.failure_reason
                     and response.inliers_bv == outcome.inliers_bv
                     and response.inliers_box == outcome.inliers_box)
        mismatches += not identical
    assert mismatches == 0

    _REPORT["parity"] = {
        "pairs": SWEEP_PAIRS,
        "identical": mismatches == 0,
        "parity_s": round(parity_seconds, 3),
    }


def test_service_chaos_soak(tmp_path, results_dir):
    """Sustained load under injected kills, a hang, and a raise."""
    fault = MixedFault(kills=KILL_AT, hangs=HANG_AT, raise_at=RAISE_AT,
                       once_dir=str(tmp_path))
    config = _service_config(include_vips=False, batch_timeout=2.0,
                             retry=SOAK_RETRY, fault=fault)

    async def scenario():
        async with PoseService(config) as service:
            summary = await run_load(service.submit, requests=80,
                                     concurrency=6,
                                     num_pairs=SWEEP_PAIRS)
            snapshot = service.registry.snapshot().get("counters", {})
            stats = {key.removeprefix("service/"): value
                     for key, value in snapshot.items()
                     if key.startswith("service/")}
            return summary, stats

    summary, stats = asyncio.run(
        asyncio.wait_for(scenario(), timeout=600))

    # The robustness contract, exactly.
    assert summary.errors == 0
    assert summary.attempted == 80
    assert summary.responded == 80
    assert summary.rejected == 0
    assert summary.statuses == {"ok": 80}
    injected_pool_faults = len(KILL_AT) + len(HANG_AT)
    assert stats["worker_restarts"] == injected_pool_faults
    assert stats["hangs"] == len(HANG_AT)
    assert stats.get("exhausted", 0) == 0
    assert stats.get("internal_errors", 0) == 0
    # The raise reaches the caller as a typed failed response (status
    # still "ok" transport-wise, success False), never an exception —
    # the exact success/degradation tallies are seeded and gate
    # against the committed baseline.

    rss_kib = max(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                  resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    report = {
        "schema_version": 1,
        "config": {
            "num_pairs": SWEEP_PAIRS,
            "seed": SWEEP_SEED,
            "workers": WORKERS,
            "batch_size": config.batch_size,
            "requests": 80,
            "concurrency": 6,
            "injected_kills": len(KILL_AT),
            "injected_hangs": len(HANG_AT),
            "injected_raises": len(RAISE_AT),
            "strict": os.environ.get("REPRO_BENCH_STRICT") == "1",
        },
        "parity": _REPORT.get("parity",
                              {"pairs": 0, "identical": False,
                               "parity_s": 0.0}),
        "soak": summary.to_dict(),
        "supervision": {
            "worker_restarts": stats["worker_restarts"],
            "hangs": stats["hangs"],
            "exhausted": stats.get("exhausted", 0),
            "internal_errors": stats.get("internal_errors", 0),
        },
        "checks": {
            "all_answered": summary.responded == summary.attempted,
            "zero_unhandled": summary.errors == 0,
            "restarts_equal_injected_faults":
                stats["worker_restarts"] == injected_pool_faults,
        },
        "peak_rss_mb": round(rss_kib / 1024.0, 1),
    }
    (results_dir / "BENCH_service.json").write_text(
        json.dumps(report, indent=2) + "\n")
    print("\nservice soak: " + summary.format())
