"""Simulation kernel benchmarks and the end-to-end pipeline trajectory.

Measures the vectorized simulation hot path — cached world geometry,
sector-culled ray casting in :func:`simulate_scan`, the batched
rotated-rectangle clip behind :func:`iou_matrix` — against the kept
pre-rework implementations, then times a full serial
``run_success_rate``-shaped sweep (40 pairs, ``include_vips=False``)
three-sided: the pre-rework pipeline ("before"), the current default
configuration ("after", byte-identical outcomes to "before"), and the
headline configuration with overlap-ROI culling enabled ("roi").
Results go to ``benchmarks/results/BENCH_pipeline.json`` (schema
documented in ``docs/api.md``) so future PRs accumulate a perf
trajectory alongside ``BENCH_stage1.json``.

The "before" side is the real pre-rework code: the per-ray / per-rank
occlusion loops of :func:`_reference_simulate_scan`, per-object
``pose_at`` world placement (:func:`_reference_generate_world`),
per-point pose evaluation for motion de-skew, the all-pairs visibility
loop (:func:`_reference_visible_objects`), the scalar ``bev_iou``
candidate loop (:func:`_reference_iou_matrix`), the pre-rework dataset
loop (which never screened doomed attempts early) — and the
pre-stage-1-wave-2 extraction kernels: the scratch-allocating Log-Gabor
bank pass, the wave-1 FAST packing, the unfused BV projection, and
serial (unbatched) per-car extraction.  All sides run the identical
sweep orchestration with the feature cache disabled.

Timing assertions are tolerant by default (shared CI runners make
wall-clock flaky); set ``REPRO_BENCH_STRICT=1`` to enforce the
acceptance bars (>= 2.5x ``simulate_scan``, >= 1.8x end-to-end, >= 2.0x
``bv_extract`` before -> roi).  Output-equivalence assertions always
run: every benchmark rep's sweep outcomes are compared field-by-field
across before/after, and the ROI side's success agreement with the
default configuration is pinned as deterministic fields.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bev._fft import fft2 as _fft2, ifft2 as _ifft2
from repro.bev.log_gabor import LogGaborBank
from repro.bev.projection import _reference_height_map
from repro.bev.roi import RoiCullConfig
from repro.boxes import matching as matching_module
from repro.boxes.box import Box2D
from repro.boxes.iou import _reference_iou_matrix, iou_matrix
from repro.core import bv_matching as bv_matching_module
from repro.core.config import BBAlignConfig
from repro.experiments import common as common_module
from repro.experiments.common import default_dataset, run_pose_recovery_sweep
from repro.geometry.polygon import (
    convex_polygon_area,
    convex_polygon_clip,
    convex_polygon_clip_batch,
)
from repro.geometry.se2 import SE2
from repro.pointcloud.distortion import MotionState
from repro.runtime.timings import SweepTimings
from repro.simulation import lidar as lidar_module
from repro.simulation import scenario as scenario_module
from repro.simulation import world as world_module
from repro.simulation.dataset import V2VDatasetSim
from repro.simulation.lidar import (
    LidarConfig,
    _reference_simulate_scan,
    simulate_scan,
)
from repro.simulation.world import ScenarioKind, WorldConfig, generate_world

SWEEP_PAIRS = 40
SWEEP_SEED = 2024
_STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"
_SCAN_TARGET = 2.5
_PIPELINE_TARGET = 1.8
_BV_EXTRACT_TARGET = 2.0
_ROUNDS = int(os.environ.get("REPRO_BENCH_PIPELINE_ROUNDS", "3"))

#: The headline sweep configuration: everything at its default except
#: overlap-ROI culling, which is the opt-in half of the stage-1 wave-2
#: rework (the other half is byte-identical and on by default).
_ROI_CONFIG = BBAlignConfig(roi=RoiCullConfig(enabled=True))


def _once(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1e3


def _ab_best(before_fn, after_fn, rounds: int = 5) -> tuple[float, float]:
    """Interleaved A/B timing in milliseconds: alternate the two sides
    round-robin and keep each side's best, so slow drift of the host
    (shared VMs swing +-40% over tens of seconds) biases neither side."""
    before = after = float("inf")
    for _ in range(rounds):
        before = min(before, _once(before_fn))
        after = min(after, _once(after_fn))
    return before, after


def _cloud_bytes(cloud) -> tuple:
    return (cloud.points.tobytes(),
            None if cloud.timestamps is None else cloud.timestamps.tobytes(),
            None if cloud.labels is None else cloud.labels.tobytes())


def _outcome_sig(outcome) -> tuple:
    errors = outcome.errors
    return (outcome.index, outcome.scenario_kind, outcome.success,
            outcome.num_matches, outcome.num_common, outcome.inliers_bv,
            outcome.inliers_box, outcome.message_bytes,
            repr(errors.__dict__ if hasattr(errors, "__dict__")
                 else errors))


def _random_boxes(rng: np.random.Generator, n: int) -> list[Box2D]:
    return [Box2D(float(rng.uniform(-30, 30)), float(rng.uniform(-30, 30)),
                  float(rng.uniform(3.5, 5.5)), float(rng.uniform(1.6, 2.2)),
                  float(rng.uniform(-np.pi, np.pi))) for _ in range(n)]


@pytest.fixture(scope="module")
def report() -> dict:
    return {
        "schema_version": 2,
        "config": {
            "num_pairs": SWEEP_PAIRS,
            "seed": SWEEP_SEED,
            "include_vips": False,
            "workers": 1,
            "rounds": _ROUNDS,
            "strict": _STRICT,
        },
        "kernels": {},
    }


def test_simulate_scan_kernel(report):
    """Sector-culled, cached-geometry scan vs the pre-rework ray loop."""
    rng = np.random.default_rng(11)
    world = generate_world(WorldConfig(kind=ScenarioKind.SUBURBAN), rng)
    pose = SE2(0.35, 4.0, -1.5)
    config = LidarConfig()
    motion = MotionState(velocity_x=9.0, velocity_y=0.0, yaw_rate=0.05)

    # Byte identity first (fresh generator per call, same stream).
    for seed in (5, 6):
        new = simulate_scan(world, pose, config,
                            rng=np.random.default_rng(seed), motion=motion)
        ref = _reference_simulate_scan(world, pose, config,
                                       rng=np.random.default_rng(seed),
                                       motion=motion)
        assert _cloud_bytes(new) == _cloud_bytes(ref)

    # The identity runs above also primed the world's cached obstacle
    # arrays, so the timing measures the steady state the sweep sees
    # (each world is scanned twice and re-scanned across attempts).
    timing_rng = np.random.default_rng(7)
    before, after = _ab_best(
        lambda: _reference_simulate_scan(world, pose, config,
                                         rng=timing_rng, motion=motion),
        lambda: simulate_scan(world, pose, config,
                              rng=timing_rng, motion=motion),
        rounds=7)
    speedup = before / after
    report["kernels"]["simulate_scan"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(speedup, 2), "target_speedup": _SCAN_TARGET}
    if _STRICT:
        assert speedup >= _SCAN_TARGET, (
            f"simulate_scan speedup {speedup:.2f}x is below the "
            f"{_SCAN_TARGET}x acceptance bar")


def test_generate_world_kernel(report):
    """Batched road-frame placement vs per-object ``pose_at``."""
    config = WorldConfig(kind=ScenarioKind.URBAN)
    # Equality at the consumer: identical worlds produce identical scans.
    for seed in (3, 4):
        new_world = generate_world(config, np.random.default_rng(seed))
        ref_world = world_module._reference_generate_world(
            config, np.random.default_rng(seed))
        pose = SE2(0.0, 0.0, 0.0)
        new = simulate_scan(new_world, pose, rng=np.random.default_rng(1))
        ref = simulate_scan(ref_world, pose, rng=np.random.default_rng(1))
        assert _cloud_bytes(new) == _cloud_bytes(ref)

    before, after = _ab_best(
        lambda: world_module._reference_generate_world(
            config, np.random.default_rng(12)),
        lambda: generate_world(config, np.random.default_rng(12)),
        rounds=7)
    report["kernels"]["generate_world"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2)}


def test_iou_matrix_kernel(report):
    """Batched-clip IoU matrix vs the scalar ``bev_iou`` candidate loop."""
    rng = np.random.default_rng(21)
    boxes_a = _random_boxes(rng, 24)
    boxes_b = _random_boxes(rng, 24)
    new = iou_matrix(boxes_a, boxes_b)
    ref = _reference_iou_matrix(boxes_a, boxes_b)
    assert np.array_equal(new, ref)

    before, after = _ab_best(
        lambda: _reference_iou_matrix(boxes_a, boxes_b),
        lambda: iou_matrix(boxes_a, boxes_b), rounds=7)
    report["kernels"]["iou_matrix"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2),
        "num_boxes": [len(boxes_a), len(boxes_b)]}


def test_polygon_clip_batch_kernel(report):
    """Batched Sutherland-Hodgman vs the per-pair scalar clip."""
    rng = np.random.default_rng(31)
    pairs = 200
    subjects = np.stack([b.corners() for b in _random_boxes(rng, pairs)])
    shift = rng.uniform(-2.0, 2.0, size=(pairs, 1, 2))
    clips = subjects[::-1].copy() * rng.uniform(0.8, 1.2) + shift

    verts, counts = convex_polygon_clip_batch(subjects, clips)
    scalar_areas = np.array([
        convex_polygon_area(convex_polygon_clip(subjects[p], clips[p]))
        for p in range(pairs)])
    batch_areas = np.array([
        convex_polygon_area(verts[p, :counts[p]]) if counts[p] >= 3 else 0.0
        for p in range(pairs)])
    np.testing.assert_allclose(batch_areas, scalar_areas,
                               rtol=1e-12, atol=1e-12)

    before, after = _ab_best(
        lambda: [convex_polygon_clip(subjects[p], clips[p])
                 for p in range(pairs)],
        lambda: convex_polygon_clip_batch(subjects, clips), rounds=7)
    report["kernels"]["polygon_clip_batch"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2), "num_pairs": pairs}


def _wave1_orientation_amplitude_sum(self, image, precision="float64"):
    """The bank pass as it stood after stage-1 wave 1: packed real
    windows over the shared FFT backend, but fresh scratch allocations
    on every call (wave 2 moved these into the bank's reusable
    workspace).  Bitwise-identical outputs."""
    cfg = self.config
    image_fft = _fft2(self._check_image(image)).astype(np.complex64)
    fview = image_fft.view(np.float32)
    scaled = np.empty((cfg.num_scales, self.size, 2 * self.size),
                      dtype=np.float32)
    for s in range(cfg.num_scales):
        np.multiply(fview, self._radial_packed[s], out=scaled[s])
    sums = np.empty((cfg.num_orientations, self.size, self.size),
                    dtype=np.float32)
    product = np.empty((self.size, self.size), dtype=np.complex64)
    pview = product.view(np.float32)
    magnitude = np.empty((self.size, self.size), dtype=np.float32)
    for o in range(cfg.num_orientations):
        acc = sums[o]
        np.multiply(scaled[0], self._angular_packed[o], out=pview)
        np.abs(_ifft2(product, overwrite=True), out=acc)
        for s in range(1, cfg.num_scales):
            np.multiply(scaled[s], self._angular_packed[o], out=pview)
            np.abs(_ifft2(product, overwrite=True), out=magnitude)
            acc += magnitude
    return sums


def _serial_features_for_pair(aligner, pair, index, cache, dataset_fp,
                              extraction_fp, timings):
    """The pre-wave-2 pair handling: each car extracted independently
    (no shared bank pass, no priors)."""
    ego = common_module._features_for(
        aligner, pair.ego_cloud, "ego", index, cache, dataset_fp,
        extraction_fp, timings)
    other = common_module._features_for(
        aligner, pair.other_cloud, "other", index, cache, dataset_fp,
        extraction_fp, timings)
    return ego, other


def _stage1_baseline_patches(patch) -> None:
    """Swap the pre-wave-2 stage-1 extraction kernels into the sweep:
    the scratch-allocating bank pass, wave-1 FAST packing, the unfused
    BV projection, and serial per-car extraction.  All four are
    byte-identical to the current defaults, so the before side's sweep
    outcomes still compare field-identical."""
    from test_stage1_kernels import _wave1_detect_fast

    patch.setattr(LogGaborBank, "orientation_amplitude_sum",
                  _wave1_orientation_amplitude_sum)
    patch.setattr(bv_matching_module, "detect_fast", _wave1_detect_fast)
    patch.setattr(bv_matching_module, "height_map", _reference_height_map)
    patch.setattr(common_module, "_features_for_pair",
                  _serial_features_for_pair)


def _baseline_patches(patch) -> None:
    """Swap the pre-rework simulation pipeline into the production sweep.

    Everything the sweep's data-generation stage calls goes back to its
    kept ``_reference_*`` twin, and the dataset loop loses this PR's
    early-rejection screen — the "before" side is the pipeline as it
    existed before this rework, running the identical orchestration.
    """
    patch.setattr(scenario_module, "simulate_scan",
                  _reference_simulate_scan)
    patch.setattr(scenario_module, "generate_world",
                  world_module._reference_generate_world)
    patch.setattr(scenario_module, "_visible_objects",
                  scenario_module._reference_visible_objects)

    def _reference_compensate(cloud, motion, scan_duration, azimuth_steps):
        return scenario_module.compensate_self_motion_distortion(
            cloud, motion, scan_duration)

    patch.setattr(scenario_module, "_compensate_on_grid",
                  _reference_compensate)
    patch.setattr(matching_module, "iou_matrix", _reference_iou_matrix)
    original_attempt = V2VDatasetSim._attempt
    patch.setattr(
        V2VDatasetSim, "_attempt",
        lambda self, index, attempt, min_common=0:
        original_attempt(self, index, attempt, 0))


def _timed_sweep(config=None) -> tuple[list, SweepTimings, float]:
    timings = SweepTimings()
    start = time.perf_counter()
    outcomes = run_pose_recovery_sweep(
        default_dataset(SWEEP_PAIRS, SWEEP_SEED), config=config,
        include_vips=False, workers=1, cache=False, timings=timings)
    return outcomes, timings, time.perf_counter() - start


def test_pipeline_end_to_end(report, results_dir, monkeypatch):
    """Serial 40-pair sweep: pre-rework vs current default vs ROI.

    Interleaves the three sides round-robin and keeps each side's best
    round (wall clock and its per-stage breakdown).  Every round's
    outcomes are checked deterministic per side; before/after outcomes
    are checked field-identical, so that speedup is over a
    byte-equivalent computation.  The ROI side changes which keypoints
    exist by design, so its relation to the default is pinned as
    deterministic agreement counts instead, and the headline
    ``bv_extract`` speedup is measured before -> roi.
    """
    sides = (("after", None, False),
             ("roi", _ROI_CONFIG, False),
             ("before", None, True))
    best: dict = {name: (float("inf"), {}) for name, _, _ in sides}
    sigs: dict = {}
    for _ in range(_ROUNDS):
        for name, config, patched in sides:
            if patched:
                with monkeypatch.context() as patch:
                    _baseline_patches(patch)
                    _stage1_baseline_patches(patch)
                    outcomes, timings, elapsed = _timed_sweep(config)
            else:
                outcomes, timings, elapsed = _timed_sweep(config)
            side_sigs = [_outcome_sig(o) for o in outcomes]
            sigs.setdefault(name, side_sigs)
            assert side_sigs == sigs[name], (
                f"{name} sweep is not deterministic across rounds")
            if elapsed < best[name][0]:
                best[name] = (elapsed, dict(timings.seconds))

    # The default configuration must be byte-equivalent to the
    # pre-rework pipeline, outcome by outcome.
    assert sigs["after"] == sigs["before"]
    # ROI culling flips discrete outputs on occasional pairs; pin its
    # agreement with the default as deterministic fields (and insist it
    # never costs more than one success on the seeded sweep).
    success_at = 2  # position of `success` in _outcome_sig
    successes_default = sum(s[success_at] for s in sigs["after"])
    successes_roi = sum(s[success_at] for s in sigs["roi"])
    success_parity = sum(a[success_at] == b[success_at]
                         for a, b in zip(sigs["after"], sigs["roi"]))
    assert successes_roi >= successes_default - 1
    assert success_parity >= int(0.95 * SWEEP_PAIRS)

    before_s, before_stages = best["before"]
    after_s, after_stages = best["roi"]
    after_default_s, _ = best["after"]
    speedup = before_s / after_s
    stage_speedups = {
        name: round(before_stages[name] / after_stages[name], 2)
        for name in sorted(before_stages)
        if name in after_stages and after_stages[name] > 0}
    report["end_to_end"] = {
        "before_s": round(before_s, 3),
        "after_s": round(after_s, 3),
        "after_default_s": round(after_default_s, 3),
        "speedup": round(speedup, 2),
        "target_speedup": _PIPELINE_TARGET,
        "bv_extract_target": _BV_EXTRACT_TARGET,
        "strict": _STRICT,
        "num_outcomes": len(sigs["after"]),
        "successes_default": int(successes_default),
        "successes_roi": int(successes_roi),
        "success_parity": int(success_parity),
        "stages_before_s": {k: round(v, 3)
                            for k, v in sorted(before_stages.items())},
        "stages_after_s": {k: round(v, 3)
                           for k, v in sorted(after_stages.items())},
        "stage_speedups": stage_speedups,
    }

    out_path = results_dir / "BENCH_pipeline.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    lines = [f"BENCH_pipeline ({SWEEP_PAIRS} pairs, serial, "
             f"after = ROI culling):"]
    for name, row in report["kernels"].items():
        lines.append(f"  {name:>22}  {row['before_ms']:9.1f} ms -> "
                     f"{row['after_ms']:8.1f} ms  ({row['speedup']:.2f}x)")
    e2e = report["end_to_end"]
    lines.append(f"  {'end_to_end':>22}  {e2e['before_s']:9.2f} s  -> "
                 f"{e2e['after_s']:8.2f} s   ({e2e['speedup']:.2f}x)")
    lines.append(f"  {'(default config)':>22}  "
                 f"{e2e['before_s']:9.2f} s  -> "
                 f"{e2e['after_default_s']:8.2f} s   "
                 f"({before_s / after_default_s:.2f}x)")
    for name, ratio in stage_speedups.items():
        lines.append(f"  {'stage ' + name:>22}  "
                     f"{before_stages[name]:9.2f} s  -> "
                     f"{after_stages[name]:8.2f} s   ({ratio:.2f}x)")
    lines.append(f"  successes default={successes_default} "
                 f"roi={successes_roi}, "
                 f"parity {success_parity}/{SWEEP_PAIRS}")
    print("\n" + "\n".join(lines))

    if _STRICT:
        assert speedup >= _PIPELINE_TARGET, (
            f"end-to-end sweep speedup {speedup:.2f}x is below the "
            f"{_PIPELINE_TARGET}x acceptance bar")
        bv_speedup = stage_speedups.get("bv_extract", 0.0)
        assert bv_speedup >= _BV_EXTRACT_TARGET, (
            f"bv_extract speedup {bv_speedup:.2f}x is below the "
            f"{_BV_EXTRACT_TARGET}x acceptance bar")
