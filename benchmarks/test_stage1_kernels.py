"""Stage-1 kernel micro-benchmarks (the BENCH trajectory baseline).

Measures the vectorized stage-1 kernels — Log-Gabor/MIM, BVFT
descriptors, chunked RANSAC, FAST keypoints, the BV projection, the
pair-batched bank pass, overlap-ROI culling, and the opt-in float32
path — against their kept predecessors, plus the end-to-end stage-1
path (BV image -> ``T_bv``), and writes
``benchmarks/results/BENCH_stage1.json`` so future PRs accumulate a
perf trajectory.

The "before" side is the real pre-rework code: the per-frame
``radial * angular`` filter product over ``numpy.fft`` (the bank kernel
as it existed before filters were precomputed and transforms moved to
``scipy.fft``), the per-keypoint descriptor loop
(:meth:`BvftDescriptorExtractor._reference_compute`) and the sequential
RANSAC loop (:func:`_reference_ransac_rigid_2d`).  The end-to-end
comparison swaps those implementations into the production
:class:`BVMatcher` via monkeypatching, so both sides run the identical
orchestration code.

Timing assertions are tolerant by default (shared CI runners make
wall-clock flaky); set ``REPRO_BENCH_STRICT=1`` to enforce the >= 3x
end-to-end speedup acceptance bar.  Output-equivalence assertions always
run.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.bev.log_gabor import LogGaborBank
from repro.bev import mim as mim_module
from repro.bev.mim import compute_mim
from repro.bev.projection import _reference_height_map, height_map
from repro.bev.roi import RoiCullConfig
from repro.core.bv_matching import BVMatcher
from repro.core.config import BBAlignConfig, BVImageConfig
from repro.experiments.common import default_dataset
from repro.features.descriptors import BvftDescriptorExtractor
from repro.features.fast import _reference_detect_fast, detect_fast
from repro.features.matching import match_descriptors
from repro.geometry import ransac as ransac_module
from repro.geometry.ransac import (
    _reference_ransac_rigid_2d,
    ransac_rigid_2d,
)

# The paper-scale configuration the acceptance bar is measured on:
# 2 * 76.8 m / 0.48 m per cell = 320 x 320 pixels.
_CELL_SIZE = 0.48
_RNG_SEED = 7
_STRICT = os.environ.get("REPRO_BENCH_STRICT", "") == "1"
_TARGET_SPEEDUP = 3.0


def _once(fn) -> float:
    start = time.perf_counter()
    fn()
    return (time.perf_counter() - start) * 1e3


def _best_of(fn, repeats: int = 5) -> float:
    """Best wall-clock of ``repeats`` runs, in milliseconds."""
    return min(_once(fn) for _ in range(repeats))


def _ab_best(before_fn, after_fn, rounds: int = 5) -> tuple[float, float]:
    """Interleaved A/B timing: alternate the two sides round-robin and
    keep each side's best, so slow drift of the host (shared VMs swing
    +-40% over tens of seconds) biases neither side."""
    before = after = float("inf")
    for _ in range(rounds):
        before = min(before, _once(before_fn))
        after = min(after, _once(after_fn))
    return before, after


def _seed_nn_statistics(a, b):
    """Seed NN statistics: one unblocked float64 distance matrix."""
    sq = (np.sum(a ** 2, axis=1)[:, None]
          + np.sum(b ** 2, axis=1)[None, :]
          - 2.0 * (a @ b.T))
    np.maximum(sq, 0.0, out=sq)
    dist = np.sqrt(sq)
    nearest = np.argmin(dist, axis=1)
    best = dist[np.arange(len(a)), nearest]
    second = (np.partition(dist, 1, axis=1)[:, 1] if len(b) >= 2
              else np.full(len(a), np.inf))
    reverse = np.argmin(dist, axis=0)
    return nearest, best, second, reverse


def _seed_orientation_amplitude_sum(self, image):
    """The bank kernel as it existed before this rework: per-frame
    ``radial * angular`` products over ``numpy.fft`` transforms."""
    image = np.asarray(image, dtype=float)
    cfg = self.config
    image_fft = np.fft.fft2(image)
    sums = np.empty((cfg.num_orientations, self.size, self.size))
    for o in range(cfg.num_orientations):
        acc = np.zeros((self.size, self.size))
        for s in range(cfg.num_scales):
            filt = self._radial[s] * self._angular[o]
            acc += np.abs(np.fft.ifft2(image_fft * filt))
        sums[o] = acc
    return sums


def _seed_flipped(self):
    """Seed ``BVFeatures.flipped``: eager copies of the reversed maps
    (the rework returns reversed views)."""
    from repro.bev.projection import BVImage
    from repro.core.bv_matching import BVFeatures
    from repro.features.descriptors import DescriptorSet
    from repro.features.fast import Keypoints

    image = self.bv_image
    size = image.size
    flipped_image = BVImage(image.image[::-1, ::-1].copy(),
                            image.cell_size, image.lidar_range)
    flipped_mim = mim_module.MIMResult(
        mim=self.mim.mim[::-1, ::-1].copy(),
        max_amplitude=self.mim.max_amplitude[::-1, ::-1].copy(),
        total_amplitude=self.mim.total_amplitude[::-1, ::-1].copy(),
        num_orientations=self.mim.num_orientations)
    flipped_kp = Keypoints((size - 1) - self.keypoints.xy,
                           self.keypoints.scores)
    empty = DescriptorSet.empty(
        self.descriptors.descriptors.shape[1]
        if len(self.descriptors) else 0)
    return BVFeatures(flipped_image, flipped_mim, flipped_kp, empty)


def _seed_compute_mim(bv, config=None, precision="float64"):
    """Seed ``compute_mim``: float64 amplitudes with axis-0 argmax/gather
    (the rework replaced these with a float32 maximum sweep).  The seed
    predates the precision knob; the argument is accepted and ignored."""
    image = bv.image if isinstance(bv, mim_module.BVImage) \
        else np.asarray(bv, dtype=float)
    config = config or mim_module.LogGaborConfig()
    bank = mim_module._get_bank(image.shape[0], config)
    amplitude = _seed_orientation_amplitude_sum(bank, image)
    mim = np.argmax(amplitude, axis=0).astype(np.int32)
    max_amplitude = np.take_along_axis(
        amplitude, mim[None].astype(np.int64), axis=0)[0]
    total = amplitude.sum(axis=0)
    return mim_module.MIMResult(mim=mim, max_amplitude=max_amplitude,
                                total_amplitude=total,
                                num_orientations=config.num_orientations)


def _wave1_detect_fast(image, config=None):
    """``detect_fast`` as it stood after the first vectorization wave:
    the segment-test bits were packed through ``astype`` temporaries
    (one fresh uint16 array per circle offset), which regressed the
    keypoint kernel below the reference loop at bench scale.  Kept as
    the "before" side of the keypoint-kernel floor assertion."""
    from scipy import ndimage

    from repro.features.fast import (
        CIRCLE_OFFSETS,
        FastConfig,
        Keypoints,
        _arc_lut,
    )
    config = config or FastConfig()
    image = np.asarray(image, dtype=float)
    h, w = image.shape
    if min(h, w) < 8:
        return Keypoints.empty()
    padded = np.pad(image, 3, mode="constant", constant_values=0.0)
    packed_b = np.zeros((h, w), dtype=np.uint16)
    packed_d = np.zeros((h, w), dtype=np.uint16)
    diff = np.empty((h, w))
    for k, (dr, dc) in enumerate(CIRCLE_OFFSETS):
        np.subtract(padded[3 + dr:3 + dr + h, 3 + dc:3 + dc + w], image,
                    out=diff)
        packed_b |= np.left_shift(
            (diff > config.threshold).astype(np.uint16), k)
        packed_d |= np.left_shift(
            (diff < -config.threshold).astype(np.uint16), k)
    lut = _arc_lut(config.arc_length)
    corners = lut.take(packed_b) | lut.take(packed_d)
    corners[:3, :] = corners[-3:, :] = False
    corners[:, :3] = corners[:, -3:] = False
    if not corners.any():
        return Keypoints.empty()
    rows, cols = np.nonzero(corners)
    circle = np.empty((16, len(rows)))
    for k, (dr, dc) in enumerate(CIRCLE_OFFSETS):
        circle[k] = padded[rows + (3 + dr), cols + (3 + dc)]
    excess = np.abs(circle - image[rows, cols])
    excess -= config.threshold
    np.maximum(excess, 0.0, out=excess)
    scores = excess.sum(axis=0)
    if config.nms_radius > 0:
        score = np.zeros((h, w))
        score[rows, cols] = scores
        size = 2 * config.nms_radius + 1
        local_max = ndimage.maximum_filter(score, size=size, mode="constant")
        keep = (scores >= local_max[rows, cols]) & (scores > 0)
        rows, cols, scores = rows[keep], cols[keep], scores[keep]
        if not len(rows):
            return Keypoints.empty()
    order = np.argsort(-scores, kind="stable")
    if config.max_keypoints:
        order = order[:config.max_keypoints]
    xy = np.stack([cols[order], rows[order]], axis=1).astype(float)
    return Keypoints(xy=xy, scores=scores[order])


@pytest.fixture(scope="module")
def bench_inputs():
    """One realistic frame pair rendered at the 320 x 320 bench scale."""
    config = BBAlignConfig(bv_image=BVImageConfig(cell_size=_CELL_SIZE))
    matcher = BVMatcher(config)
    record = next(iter(default_dataset(1, seed=2024)))
    ego_bv = matcher.make_bv_image(record.pair.ego_cloud)
    other_bv = matcher.make_bv_image(record.pair.other_cloud)
    assert ego_bv.size == 320
    return {"config": config, "matcher": matcher, "record": record,
            "ego_bv": ego_bv, "other_bv": other_bv}


def _run_stage1(matcher: BVMatcher, other_bv, ego_bv):
    other = matcher.extract(other_bv)
    ego = matcher.extract(ego_bv)
    return matcher.match(other, ego, rng=np.random.default_rng(_RNG_SEED))


def test_stage1_kernels_write_bench_trajectory(bench_inputs, results_dir,
                                               monkeypatch):
    config = bench_inputs["config"]
    matcher = bench_inputs["matcher"]
    ego_bv, other_bv = bench_inputs["ego_bv"], bench_inputs["other_bv"]
    report: dict = {
        "schema_version": 1,
        "config": {
            "image_size": ego_bv.size,
            "cell_size": _CELL_SIZE,
            "num_scales": config.log_gabor.num_scales,
            "num_orientations": config.log_gabor.num_orientations,
            "descriptor_dim": config.descriptor.descriptor_length(
                config.log_gabor.num_orientations),
            "ransac_max_iterations": config.bv_ransac.max_iterations,
            "rng_seed": _RNG_SEED,
        },
        "kernels": {},
    }

    # ------------------------------------------------------------------
    # Kernel 1: Log-Gabor bank application (the MIM hot path).
    # ------------------------------------------------------------------
    bank = LogGaborBank(ego_bv.size, config.log_gabor)
    image = ego_bv.image
    before, after = _ab_best(
        lambda: _seed_orientation_amplitude_sum(bank, image),
        lambda: bank.orientation_amplitude_sum(image))
    seed_sums = _seed_orientation_amplitude_sum(bank, image)
    new_sums = bank.orientation_amplitude_sum(image)
    # The new bank runs its per-filter transforms in single precision, so
    # amplitudes agree to float32 rounding; what stage 1 consumes — the
    # per-pixel orientation argmax on valid (non-zero-energy) pixels —
    # must be identical.
    np.testing.assert_allclose(new_sums, seed_sums,
                               atol=1e-4 * float(seed_sums.max()))
    valid = compute_mim(ego_bv, config.log_gabor).valid_mask()
    assert np.array_equal(np.argmax(new_sums, axis=0)[valid],
                          np.argmax(seed_sums, axis=0)[valid])
    report["kernels"]["log_gabor_bank"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2)}

    # ------------------------------------------------------------------
    # Kernel 2: BVFT descriptors.
    # ------------------------------------------------------------------
    mim = compute_mim(ego_bv, config.log_gabor)
    keypoints = detect_fast(image, config.fast)
    extractor = BvftDescriptorExtractor(config.descriptor)
    before, after = _ab_best(
        lambda: extractor._reference_compute(mim, keypoints),
        lambda: extractor.compute(mim, keypoints))
    ref_desc = extractor._reference_compute(mim, keypoints)
    new_desc = extractor.compute(mim, keypoints)
    assert np.array_equal(new_desc.keypoint_indices, ref_desc.keypoint_indices)
    np.testing.assert_allclose(new_desc.descriptors, ref_desc.descriptors,
                               atol=1e-9)
    report["kernels"]["bvft_descriptors"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2),
        "num_keypoints": int(len(keypoints))}

    # ------------------------------------------------------------------
    # Kernel 3: RANSAC over the real stage-1 match set.
    # ------------------------------------------------------------------
    other_mim = compute_mim(other_bv, config.log_gabor)
    other_kp = detect_fast(other_bv.image, config.fast)
    other_desc = extractor.compute(other_mim, other_kp)
    matches = match_descriptors(other_desc, new_desc,
                                ratio=config.bv_ransac.ratio_test,
                                mutual=config.bv_ransac.mutual_check)
    assert len(matches) >= 2
    kwargs = dict(threshold=config.bv_ransac.threshold_pixels,
                  max_iterations=config.bv_ransac.max_iterations)
    before, after = _ab_best(
        lambda: _reference_ransac_rigid_2d(
            matches.src_xy, matches.dst_xy,
            rng=np.random.default_rng(_RNG_SEED), **kwargs),
        lambda: ransac_rigid_2d(
            matches.src_xy, matches.dst_xy,
            rng=np.random.default_rng(_RNG_SEED), **kwargs))
    ref_r = _reference_ransac_rigid_2d(matches.src_xy, matches.dst_xy,
                                       rng=np.random.default_rng(_RNG_SEED),
                                       **kwargs)
    new_r = ransac_rigid_2d(matches.src_xy, matches.dst_xy,
                            rng=np.random.default_rng(_RNG_SEED), **kwargs)
    assert new_r.num_inliers == ref_r.num_inliers
    assert new_r.iterations == ref_r.iterations
    assert np.array_equal(new_r.inlier_mask, ref_r.inlier_mask)
    assert new_r.transform.theta == ref_r.transform.theta
    assert new_r.transform.tx == ref_r.transform.tx
    assert new_r.transform.ty == ref_r.transform.ty
    report["kernels"]["ransac_rigid_2d"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2),
        "num_matches": int(len(matches))}

    # ------------------------------------------------------------------
    # Kernel 4: FAST keypoints.  The "before" is the first-wave
    # vectorization (astype bit packing), which regressed below the
    # reference loop; the floor assertion keeps the kernel from ever
    # sliding back under it.
    # ------------------------------------------------------------------
    wave1_kp = _wave1_detect_fast(image, config.fast)
    new_kp = detect_fast(image, config.fast)
    assert np.array_equal(new_kp.xy, wave1_kp.xy)
    assert np.array_equal(new_kp.scores, wave1_kp.scores)
    before, after = _ab_best(
        lambda: _wave1_detect_fast(image, config.fast),
        lambda: detect_fast(image, config.fast), rounds=7)
    kp_speedup = before / after
    report["kernels"]["fast_keypoints"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(kp_speedup, 2),
        "num_keypoints": int(len(new_kp))}
    if _STRICT:
        assert kp_speedup >= 1.0, (
            f"fast_keypoints speedup {kp_speedup:.2f}x: the keypoint "
            f"kernel is slower than its wave-1 predecessor again")

    # ------------------------------------------------------------------
    # Kernel 5: BV projection (cloud -> height map).
    # ------------------------------------------------------------------
    cloud = bench_inputs["record"].pair.ego_cloud
    cell = config.bv_image.cell_size
    lidar_range = config.bv_image.lidar_range
    ref_bv = _reference_height_map(cloud, cell, lidar_range)
    new_bv = height_map(cloud, cell, lidar_range)
    assert np.array_equal(new_bv.image, ref_bv.image)
    assert new_bv.num_nonfinite == ref_bv.num_nonfinite
    before, after = _ab_best(
        lambda: _reference_height_map(cloud, cell, lidar_range),
        lambda: height_map(cloud, cell, lidar_range), rounds=7)
    report["kernels"]["projection_height_map"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2),
        "num_points": int(len(cloud.points))}

    # ------------------------------------------------------------------
    # Kernel 6: pair-batched extraction vs two single extractions.
    # Bitwise-identical outputs; the gain is the shared bank pass.
    # ------------------------------------------------------------------
    pa, pb = matcher.extract_pair(ego_bv, other_bv)
    sa = matcher.extract(ego_bv)
    sb = matcher.extract(other_bv)
    for pair_f, single_f in ((pa, sa), (pb, sb)):
        assert np.array_equal(pair_f.keypoints.xy, single_f.keypoints.xy)
        assert np.array_equal(pair_f.descriptors.descriptors,
                              single_f.descriptors.descriptors)
    before, after = _ab_best(
        lambda: (matcher.extract(ego_bv), matcher.extract(other_bv)),
        lambda: matcher.extract_pair(ego_bv, other_bv), rounds=5)
    report["kernels"]["pair_batched_extraction"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2)}

    # ------------------------------------------------------------------
    # Kernel 7: overlap-ROI culling.  Not an equivalence pair — cropping
    # deliberately changes which keypoints exist (see DESIGN.md) — so
    # this records the cost ratio of a culled extraction against the
    # same extraction without a prior.
    # ------------------------------------------------------------------
    roi_matcher = BVMatcher(BBAlignConfig(
        bv_image=BVImageConfig(cell_size=_CELL_SIZE),
        roi=RoiCullConfig(enabled=True)))
    gt = bench_inputs["record"].pair.gt_relative
    prior = gt.translation
    roi_features = roi_matcher.extract(ego_bv, prior=prior)
    assert roi_features.roi is not None
    before, after = _ab_best(
        lambda: roi_matcher.extract(ego_bv),
        lambda: roi_matcher.extract(ego_bv, prior=prior), rounds=5)
    report["kernels"]["roi_extraction"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2),
        "window_size": int(roi_features.roi.size),
        "image_size": int(ego_bv.size)}

    # ------------------------------------------------------------------
    # Kernel 8: the opt-in float32 stage-1 path, BV image -> T_bv.
    # Agreement (not identity) with float64: same success verdict here;
    # the sweep-level contract lives in tests/test_stage1_precision.py.
    # ------------------------------------------------------------------
    matcher32 = BVMatcher(BBAlignConfig(
        bv_image=BVImageConfig(cell_size=_CELL_SIZE),
        stage1_precision="float32"))
    result64 = _run_stage1(matcher, other_bv, ego_bv)
    result32 = _run_stage1(matcher32, other_bv, ego_bv)
    assert result32.success == result64.success
    before, after = _ab_best(
        lambda: _run_stage1(matcher, other_bv, ego_bv),
        lambda: _run_stage1(matcher32, other_bv, ego_bv), rounds=3)
    report["kernels"]["float32_stage1"] = {
        "before_ms": round(before, 3), "after_ms": round(after, 3),
        "speedup": round(before / after, 2),
        "success": bool(result32.success)}

    # ------------------------------------------------------------------
    # End to end: BV image -> T_bv through the production BVMatcher, with
    # the pre-rework kernels swapped in for the "before" side.
    # ------------------------------------------------------------------
    def _seed_patches(patch):
        patch.setattr(LogGaborBank, "orientation_amplitude_sum",
                      _seed_orientation_amplitude_sum)
        # The seed compute_mim ran float64 argmax/gather post-processing.
        patch.setattr("repro.core.bv_matching.compute_mim",
                      _seed_compute_mim)
        patch.setattr(BvftDescriptorExtractor, "compute",
                      BvftDescriptorExtractor._reference_compute)
        patch.setattr("repro.core.bv_matching.detect_fast",
                      _reference_detect_fast)
        # The seed code built the flip hypothesis from eagerly copied
        # maps and recomputed its descriptors from the flipped MIM
        # instead of deriving them by cell permutation.
        patch.setattr("repro.core.bv_matching.BVFeatures.flipped",
                      _seed_flipped)
        patch.setattr(
            BVMatcher, "_flipped_descriptors",
            lambda self, other, flipped: self._extractor.compute(
                flipped.mim, flipped.keypoints))
        patch.setattr(ransac_module, "ransac_rigid_2d",
                      _reference_ransac_rigid_2d)
        patch.setattr("repro.core.bv_matching.ransac_rigid_2d",
                      _reference_ransac_rigid_2d)
        # The seed matcher ran one unblocked float64 distance matrix.
        patch.setattr("repro.features.matching._nn_statistics",
                      _seed_nn_statistics)
        # compute_mim caches banks, not amplitude maps, so patching the
        # bank method is enough to put the cached banks on the seed path.

    after_result = _run_stage1(matcher, other_bv, ego_bv)
    with monkeypatch.context() as patch:
        _seed_patches(patch)
        before_result = _run_stage1(matcher, other_bv, ego_bv)

    before_ms = after_ms = float("inf")
    for _ in range(7):  # interleaved rounds, same rationale as _ab_best
        after_ms = min(after_ms,
                       _once(lambda: _run_stage1(matcher, other_bv, ego_bv)))
        with monkeypatch.context() as patch:
            _seed_patches(patch)
            before_ms = min(
                before_ms,
                _once(lambda: _run_stage1(matcher, other_bv, ego_bv)))

    # The two paths must agree on the stage-1 outcome.  (numpy.fft and
    # scipy.fft differ by final-ulp rounding, so amplitude maps are not
    # bitwise identical — but the discrete outputs must match.)
    assert after_result.success == before_result.success
    assert after_result.inliers_bv == before_result.inliers_bv
    assert after_result.num_matches == before_result.num_matches
    assert after_result.transform.is_close(before_result.transform,
                                           atol_translation=1e-6,
                                           atol_rotation=1e-8)

    speedup = before_ms / after_ms
    report["end_to_end"] = {
        "before_ms": round(before_ms, 3), "after_ms": round(after_ms, 3),
        "speedup": round(speedup, 2),
        "inliers_bv": int(after_result.inliers_bv),
        "num_matches": int(after_result.num_matches),
        "target_speedup": _TARGET_SPEEDUP,
        "strict": _STRICT,
    }

    out_path = results_dir / "BENCH_stage1.json"
    out_path.write_text(json.dumps(report, indent=2) + "\n")
    lines = [f"BENCH_stage1 ({ego_bv.size}x{ego_bv.size}):"]
    for name, row in report["kernels"].items():
        lines.append(f"  {name:>18}  {row['before_ms']:9.1f} ms -> "
                     f"{row['after_ms']:8.1f} ms  ({row['speedup']:.2f}x)")
    e2e = report["end_to_end"]
    lines.append(f"  {'end_to_end':>18}  {e2e['before_ms']:9.1f} ms -> "
                 f"{e2e['after_ms']:8.1f} ms  ({e2e['speedup']:.2f}x)")
    print("\n" + "\n".join(lines))

    if _STRICT:
        assert speedup >= _TARGET_SPEEDUP, (
            f"end-to-end stage-1 speedup {speedup:.2f}x is below the "
            f"{_TARGET_SPEEDUP}x acceptance bar")
