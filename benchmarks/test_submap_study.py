"""Bench: the submap extension study (long-range matching)."""

from repro.experiments.registry import get_spec


def test_submap_study(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(run_experiment, args=("submap",),
                                kwargs=dict(num_pairs=5),
                                rounds=1, iterations=1)
    save_artifact("submap_study", get_spec("submap").format(result))
    benchmark.extra_info["single_success"] = result.single_success
    benchmark.extra_info["submap_success"] = result.submap_success
    # Accumulation must not hurt long-range matching.
    assert result.submap_success >= result.single_success - 1e-9
    assert result.submap_median_inliers \
        >= result.single_median_inliers - 1.0
