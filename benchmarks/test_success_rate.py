"""Bench: regenerate the Sec. V-A success-rate analysis."""

from repro.experiments.success_rate import (
    compute_success_rate,
    format_success_rate,
)


def test_success_rate(benchmark, sweep_outcomes, save_artifact):
    result = benchmark(compute_success_rate, sweep_outcomes)
    save_artifact("success_rate", format_success_rate(result))
    benchmark.extra_info["success_rate"] = result.overall
    # Paper: 80 % overall; our band: a clear majority succeeds.
    assert result.overall >= 0.5
