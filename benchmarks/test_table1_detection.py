"""Bench: regenerate Table I (cooperative detection AP, noisy vs
recovered pose)."""

import numpy as np

from repro.experiments.registry import get_spec


def test_table1_detection(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(run_experiment, args=("table1",),
                                kwargs=dict(num_pairs=24),
                                rounds=1, iterations=1)
    save_artifact("table1_detection", get_spec("table1").format(result))
    benchmark.extra_info["recovery_success"] = result.recovery_success_rate

    # Paper shape 1: recovery improves AP@0.5 for the methods overall.
    gains = []
    for name in {"Early Fusion", "Late Fusion", "F-Cooper", "coBEVT"}:
        noisy = result.results[(name, "noisy")].overall[0.5].ap
        recovered = result.results[(name, "recovered")].overall[0.5].ap
        if not (np.isnan(noisy) or np.isnan(recovered)):
            gains.append(recovered - noisy)
    assert sum(gains) > 0
    assert sum(g > 0 for g in gains) >= 3

    # Paper shape 2: the 0-30 m bin shows the strongest recovered AP.
    for name in {"Early Fusion", "Late Fusion"}:
        rec = result.results[(name, "recovered")]
        near = rec.by_distance[(0.0, 30.0)][0.5].ap
        far = rec.by_distance[(50.0, 100.0)][0.5].ap
        if not (np.isnan(near) or np.isnan(far)):
            assert near >= far
