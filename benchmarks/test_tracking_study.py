"""Bench: the temporal tracking extension study."""

from repro.experiments.tracking_study import (
    format_tracking_study,
    run_tracking_study,
)


def test_tracking_study(benchmark, save_artifact):
    result = benchmark.pedantic(
        run_tracking_study,
        kwargs=dict(num_pairs=3, frames_per_sequence=6),
        rounds=1, iterations=1)
    save_artifact("tracking_study", format_tracking_study(result))
    benchmark.extra_info["raw_coverage"] = result.raw_coverage
    benchmark.extra_info["tracked_coverage"] = result.tracked_coverage
    # Coasting on odometry must not lose usable coverage.
    assert result.tracked_coverage >= result.raw_coverage - 0.05
