"""Bench: the temporal tracking extension study."""

from repro.experiments.registry import get_spec


def test_tracking_study(benchmark, run_experiment, save_artifact):
    result = benchmark.pedantic(
        run_experiment, args=("tracking",),
        kwargs=dict(num_pairs=3, frames_per_sequence=6),
        rounds=1, iterations=1)
    save_artifact("tracking_study", get_spec("tracking").format(result))
    benchmark.extra_info["raw_coverage"] = result.raw_coverage
    benchmark.extra_info["tracked_coverage"] = result.tracked_coverage
    # Coasting on odometry must not lose usable coverage.
    assert result.tracked_coverage >= result.raw_coverage - 0.05
