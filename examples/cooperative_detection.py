#!/usr/bin/env python
"""Scenario: cooperative object detection under pose error (Table I).

Runs the four fusion pipelines (early / late / F-Cooper-style /
coBEVT-style) on a handful of simulated frame pairs three ways — with the
true pose, with the paper's Gaussian-corrupted pose, and with BB-Align's
recovered pose — and prints the resulting AP table.

Run:
    python examples/cooperative_detection.py
"""

import numpy as np

from repro import BBAlign
from repro.detection.evaluation import evaluate_cooperative_detection
from repro.detection.fusion import (
    CoBEVTFusionDetector,
    EarlyFusionDetector,
    FCooperFusionDetector,
    LateFusionDetector,
)
from repro.detection.simulated import SimulatedDetector
from repro.noise.pose_noise import add_pose_noise
from repro.simulation import ScenarioConfig, make_frame_pair


def main() -> None:
    pairs = [make_frame_pair(ScenarioConfig(distance=float(d)), rng=seed)
             for d in (15, 25, 40) for seed in (1, 2)]
    print(f"{len(pairs)} frame pairs, distances "
          f"{[f'{p.distance:.0f}' for p in pairs]} m")

    aligner = BBAlign()
    detector = SimulatedDetector()
    pose_sets: dict[str, list] = {"true": [], "noisy": [], "recovered": []}
    for i, pair in enumerate(pairs):
        noisy = add_pose_noise(pair.gt_relative, 2.0, 2.0, rng=i)
        ego_dets = detector.detect(pair.ego_visible, rng=2 * i)
        other_dets = detector.detect(pair.other_visible, rng=2 * i + 1)
        recovery = aligner.recover(pair.ego_cloud, pair.other_cloud,
                                   [d.box for d in ego_dets],
                                   [d.box for d in other_dets])
        recovered = recovery.transform if recovery.success else noisy
        pose_sets["true"].append((pair, pair.gt_relative))
        pose_sets["noisy"].append((pair, noisy))
        pose_sets["recovered"].append((pair, recovered))

    methods = [EarlyFusionDetector(), LateFusionDetector(),
               FCooperFusionDetector(), CoBEVTFusionDetector()]
    print(f"\n{'method':>14} | {'pose':>9} | AP@0.5 | AP@0.7")
    print("-" * 50)
    for method in methods:
        for label in ("true", "noisy", "recovered"):
            result = evaluate_cooperative_detection(pose_sets[label],
                                                    method, rng=0)
            ap50 = result.overall[0.5].ap_percent
            ap70 = result.overall[0.7].ap_percent
            print(f"{method.name:>14} | {label:>9} | {ap50:6.1f} | {ap70:6.1f}")
        print("-" * 50)


if __name__ == "__main__":
    main()
