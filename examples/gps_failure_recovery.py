#!/usr/bin/env python
"""Scenario: total GPS failure during cooperative driving.

The paper's motivation (Fig. 1): corrupted pose information misplaces
every shared observation.  This example corrupts the transmitted pose
with increasingly severe noise — up to a complete GPS outage — and shows
that BB-Align's recovery is untouched, because it never consumes the
corrupted pose at all.

Run:
    python examples/gps_failure_recovery.py
"""

import numpy as np

from repro import BBAlign
from repro.detection.simulated import SimulatedDetector
from repro.metrics.pose_error import pose_errors
from repro.noise.pose_noise import PoseNoiseModel
from repro.simulation import ScenarioConfig, make_frame_pair


def main() -> None:
    pair = make_frame_pair(ScenarioConfig(distance=25.0), rng=11)
    detector = SimulatedDetector()
    ego_dets = detector.detect(pair.ego_visible, rng=1)
    other_dets = detector.detect(pair.other_visible, rng=2)

    result = BBAlign().recover(pair.ego_cloud, pair.other_cloud,
                               [d.box for d in ego_dets],
                               [d.box for d in other_dets])
    recovered_errors = pose_errors(result.transform, pair.gt_relative)

    print("corruption severity        | GPS pose error | BB-Align error")
    print("-" * 62)
    severities = [
        ("mild (0.5 m, 0.5 deg)", PoseNoiseModel(0.5, 0.5)),
        ("paper Table I (2 m, 2 deg)", PoseNoiseModel(2.0, 2.0)),
        ("severe (10 m, 20 deg)", PoseNoiseModel(10.0, 20.0)),
        ("total failure", PoseNoiseModel(0, 0, failure_prob=1.0,
                                         failure_radius=80.0)),
    ]
    for label, model in severities:
        corrupted = model.corrupt(pair.gt_relative, rng=3)
        gps_errors = pose_errors(corrupted, pair.gt_relative)
        print(f"{label:26s} | {gps_errors.translation:9.2f} m    | "
              f"{recovered_errors.translation:.2f} m / "
              f"{recovered_errors.rotation_deg:.2f} deg")

    print("\nBB-Align is independent of the corrupted pose: the recovery "
          "uses only\nthe received BV image and bounding boxes "
          f"({result.message_bytes / 1024:.0f} KiB).")


if __name__ == "__main__":
    main()
