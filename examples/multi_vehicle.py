#!/usr/bin/env python
"""Scenario: three cooperating vehicles and the pose graph.

Three CAVs drive in a convoy; every pair runs BB-Align, and the pose
graph synchronizes the results into the ego frame — relaying through
intermediates where a direct recovery fails, and reporting loop-closure
residuals as a ground-truth-free consistency check.

Run:
    python examples/multi_vehicle.py
"""

import numpy as np

from repro.core.multi import MultiVehicleAligner
from repro.detection.simulated import SimulatedDetector
from repro.simulation.multi import MultiScenarioConfig, make_multi_frame
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.world import ScenarioKind, WorldConfig


def main() -> None:
    frame = make_multi_frame(MultiScenarioConfig(
        scenario=ScenarioConfig(world=WorldConfig(kind=ScenarioKind.URBAN),
                                same_direction_prob=1.0),
        num_vehicles=3, spacing=24.0), rng=7)
    print(f"{frame.num_vehicles} vehicles; pairwise distances:",
          [f"{np.hypot(frame.poses[i].tx - frame.poses[j].tx, frame.poses[i].ty - frame.poses[j].ty):.0f} m"
           for i in range(3) for j in range(i + 1, 3)])

    detector = SimulatedDetector()
    boxes = [[d.box for d in detector.detect(visible, rng=i)]
             for i, visible in enumerate(frame.visible)]
    aligner = MultiVehicleAligner()
    result = aligner.align(list(frame.clouds), boxes, rng=0)

    print("\npairwise recoveries:")
    for (i, j), recovery in result.recoveries.items():
        truth = frame.gt_relative(i, j)
        err = recovery.transform.translation_distance(truth)
        flag = "ok  " if recovery.success else "FAIL"
        print(f"  {i} <- {j}: {flag} inliers={recovery.inliers_bv:3d}/"
              f"{recovery.inliers_box:2d}  err={err:5.2f} m")

    print("\nsynchronized poses (ego frame):")
    for index, pose in enumerate(result.poses):
        if pose is None:
            print(f"  vehicle {index}: unresolved")
            continue
        truth = frame.gt_relative(0, index)
        print(f"  vehicle {index}: {pose}  "
              f"(err {pose.translation_distance(truth):.2f} m)")

    if result.cycle_residuals:
        t_res, r_res = result.cycle_residuals[0]
        print(f"\n3-cycle loop closure: {t_res:.2f} m / {r_res:.2f} deg "
              "(no ground truth needed — small loop error means "
              "consistent recoveries)")


if __name__ == "__main__":
    main()
