#!/usr/bin/env python
"""Quickstart: recover a V2V relative pose with BB-Align.

Generates one simulated two-vehicle frame pair (the V2V4Real-substitute
world), runs the two-stage pose recovery, and compares the estimate with
the ground truth.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro import BBAlign
from repro.detection.simulated import SimulatedDetector
from repro.simulation import ScenarioConfig, make_frame_pair


def main() -> None:
    # 1. A frame pair: two cars 30 m apart on a simulated street, each
    #    with its own lidar scan and object detections.
    pair = make_frame_pair(ScenarioConfig(distance=30.0), rng=42)
    print(f"scenario: {pair.scenario_kind.value}, "
          f"distance {pair.distance:.1f} m, "
          f"{pair.num_common_vehicles} commonly observed cars")

    # 2. Each car runs its own object detector (simulated here).
    detector = SimulatedDetector()
    ego_detections = detector.detect(pair.ego_visible, rng=1)
    other_detections = detector.detect(pair.other_visible, rng=2)

    # 3. BB-Align: the ego car receives the other car's BV image and
    #    boxes, and recovers the relative pose — no GPS, no prior pose.
    aligner = BBAlign()
    result = aligner.recover(
        pair.ego_cloud, pair.other_cloud,
        [d.box for d in ego_detections],
        [d.box for d in other_detections],
    )

    print(f"\nrecovered pose : {result.transform}")
    print(f"ground truth   : {pair.gt_relative}")
    print(f"translation err: {result.translation_error(pair.gt_relative):.2f} m")
    print(f"rotation err   : {result.rotation_error_deg(pair.gt_relative):.2f} deg")
    print(f"success ({result.inliers_bv} BV inliers, "
          f"{result.inliers_box} box inliers): {result.success}")
    print(f"\nbandwidth: {result.message_bytes / 1024:.0f} KiB transmitted "
          f"vs {BBAlign.raw_cloud_bytes(pair.other_cloud) / 1024:.0f} KiB "
          "for the raw scan")

    # 4. The 3-D lift (paper Eq. 1) transforms received points into the
    #    ego frame (paper Eq. 3).
    moved = result.transform_3d.apply(pair.other_cloud.points[:5])
    print(f"\nfirst received points, ego frame:\n{np.round(moved, 2)}")


if __name__ == "__main__":
    main()
