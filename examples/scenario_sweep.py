#!/usr/bin/env python
"""Scenario: how recovery quality varies with environment and distance.

Sweeps the scenario generator over all four world flavors and a range of
inter-vehicle distances, prints per-cell success rate and accuracy —
a miniature of the paper's Figs. 10 and the Sec. V-A failure analysis.

Run:
    python examples/scenario_sweep.py
"""

import numpy as np

from repro import BBAlign
from repro.detection.simulated import SimulatedDetector
from repro.simulation import ScenarioConfig, WorldConfig, make_frame_pair
from repro.simulation.world import ScenarioKind


def main() -> None:
    aligner = BBAlign()
    detector = SimulatedDetector()
    distances = (15.0, 35.0, 55.0)
    seeds = (1, 2, 3)

    print(f"{'scenario':>9} | {'distance':>8} | {'success':>7} | "
          f"{'median terr':>11} | {'median rerr':>11}")
    print("-" * 62)
    for kind in ScenarioKind:
        for distance in distances:
            errors_t, errors_r, successes = [], [], 0
            for seed in seeds:
                pair = make_frame_pair(ScenarioConfig(
                    world=WorldConfig(kind=kind), distance=distance),
                    rng=seed)
                ego_dets = detector.detect(pair.ego_visible, rng=seed)
                other_dets = detector.detect(pair.other_visible,
                                             rng=seed + 100)
                result = aligner.recover(pair.ego_cloud, pair.other_cloud,
                                         [d.box for d in ego_dets],
                                         [d.box for d in other_dets])
                if result.success:
                    successes += 1
                    errors_t.append(
                        result.translation_error(pair.gt_relative))
                    errors_r.append(
                        result.rotation_error_deg(pair.gt_relative))
            terr = f"{np.median(errors_t):9.2f} m" if errors_t else "     --  "
            rerr = f"{np.median(errors_r):8.2f} deg" if errors_r else "     --  "
            print(f"{kind.value:>9} | {distance:6.0f} m | "
                  f"{successes}/{len(seeds):>5} | {terr:>11} | {rerr:>11}")

    print("\nExpected shape (paper): success and accuracy degrade with "
          "distance and\nwith landmark scarcity (open > highway > "
          "suburban/urban failure rates).")


if __name__ == "__main__":
    main()
