#!/usr/bin/env python
"""Scenario: tracking the relative pose over a drive sequence.

Runs BB-Align per frame over an evolving two-vehicle scene and compares
raw per-frame recovery with the odometry-fused :class:`PoseTracker` —
the natural deployment of the paper's plug-and-play module in a stream.

Run:
    python examples/tracked_drive.py
"""

import numpy as np

from repro import BBAlign
from repro.core.temporal import PoseTracker
from repro.detection.simulated import SimulatedDetector
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.sequence import DriveSequence, SequenceConfig


def main() -> None:
    config = SequenceConfig(
        scenario=ScenarioConfig(distance=25.0, same_direction_prob=1.0),
        num_frames=8, frame_dt=0.2)
    sequence = DriveSequence(config, rng=5)
    aligner = BBAlign()
    detector = SimulatedDetector()
    tracker = PoseTracker()

    print(f"{'frame':>5} | {'recovery':>9} | {'raw err':>8} | "
          f"{'tracked err':>11} | state")
    print("-" * 56)
    previous = None
    for t, frame in enumerate(sequence):
        ego_dets = detector.detect(frame.ego_visible, rng=2 * t)
        other_dets = detector.detect(frame.other_visible, rng=2 * t + 1)
        recovery = aligner.recover(frame.ego_cloud, frame.other_cloud,
                                   [d.box for d in ego_dets],
                                   [d.box for d in other_dets], rng=t)
        # Odometry increments between frames, from each vehicle's own
        # pose change (what onboard odometry reports).
        if previous is not None and tracker.initialized:
            ego_step = previous.ego_pose.inverse() @ frame.ego_pose
            other_step = previous.other_pose.inverse() @ frame.other_pose
            tracker.predict(ego_step, other_step)
        tracked = tracker.update(recovery)
        previous = frame

        raw_err = recovery.transform.translation_distance(frame.gt_relative)
        trk_err = tracked.transform.translation_distance(frame.gt_relative)
        state = ("measured" if tracked.used_measurement
                 else f"coasting({tracked.frames_since_update})")
        flag = "ok" if recovery.success else "FAIL"
        print(f"{t:5d} | {flag:>9} | {raw_err:6.2f} m | "
              f"{trk_err:9.2f} m | {state}")

    print("\nThe tracker coasts through failed recoveries on odometry and "
          "smooths\nsuccessful ones by confidence-weighted blending.")


if __name__ == "__main__":
    main()
