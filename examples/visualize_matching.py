#!/usr/bin/env python
"""Regenerate the paper's Fig. 4 panels from simulated data.

Produces (into ./viz_out/):
  * fig4_b_bv_ego.pgm / fig4_e_bv_other.pgm — the two BV images,
  * fig4_c_mim_ego.pgm / fig4_f_mim_other.pgm — their MIM feature maps,
  * fig4_g_matches.pgm — side-by-side match visualization,
  * fig5_fused_scene.pgm — the fused scene with detected boxes (Fig. 5),
and prints an ASCII preview of the ego BV image.

Run:
    python examples/visualize_matching.py
"""

import pathlib

from repro.core import BBAlignConfig, BVMatcher
from repro.simulation import ScenarioConfig, make_frame_pair
from repro.viz import (
    render_bv_ascii,
    render_bv_image,
    render_match_image,
    render_mim_image,
    render_scene_image,
    save_pgm,
)


def main() -> None:
    out = pathlib.Path("viz_out")
    out.mkdir(exist_ok=True)

    # The paper's Fig. 4 uses two cars 45 m apart.
    pair = make_frame_pair(ScenarioConfig(distance=45.0), rng=2)
    matcher = BVMatcher(BBAlignConfig())
    ego = matcher.extract_from_cloud(pair.ego_cloud)
    other = matcher.extract_from_cloud(pair.other_cloud)
    match = matcher.match(other, ego)

    save_pgm(render_bv_image(ego.bv_image), out / "fig4_b_bv_ego.pgm")
    save_pgm(render_bv_image(other.bv_image), out / "fig4_e_bv_other.pgm")
    save_pgm(render_mim_image(ego.mim), out / "fig4_c_mim_ego.pgm")
    save_pgm(render_mim_image(other.mim), out / "fig4_f_mim_other.pgm")
    save_pgm(render_match_image(other.bv_image, ego.bv_image,
                                match.matches,
                                inlier_mask=match.ransac.inlier_mask),
             out / "fig4_g_matches.pgm")
    save_pgm(render_scene_image(
        [pair.ego_cloud, pair.other_cloud.transform(match.transform)],
        boxes=[[v.box.to_bev() for v in pair.ego_visible]]),
        out / "fig5_fused_scene.pgm")

    print(f"match: {match.num_matches} correspondences, "
          f"{match.inliers_bv} inliers, translation error "
          f"{match.transform.translation_distance(pair.gt_relative):.2f} m")
    print(f"wrote 6 PGM panels to {out}/\n")
    print("ego BV image (ASCII preview, +y up):")
    print(render_bv_ascii(ego.bv_image, width=78))


if __name__ == "__main__":
    main()
