"""BB-Align reproduction: lightweight pose recovery for V2V cooperative
perception (Song et al., ICDCS 2024).

Quickstart::

    from repro import BBAlign
    aligner = BBAlign()
    result = aligner.recover(ego_cloud, other_cloud, ego_boxes, other_boxes)
    print(result.transform)   # pose of the other car in the ego frame

See :mod:`repro.simulation` for the V2V4Real-substitute dataset generator
and :mod:`repro.experiments` for the paper's figures and tables.
"""

from repro.core import BBAlign, BBAlignConfig, PoseRecoveryResult
from repro.geometry import SE2, SE3

__version__ = "1.0.0"

__all__ = [
    "BBAlign",
    "BBAlignConfig",
    "PoseRecoveryResult",
    "SE2",
    "SE3",
    "__version__",
]
