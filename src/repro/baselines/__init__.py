"""Baseline pose-recovery methods the paper compares against."""

from repro.baselines.icp import IcpResult, icp_2d
from repro.baselines.vips import VipsConfig, VipsResult, vips_graph_matching

__all__ = ["IcpResult", "VipsConfig", "VipsResult", "icp_2d",
           "vips_graph_matching"]
