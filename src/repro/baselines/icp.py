"""2-D point-to-point ICP.

The paper's related work discusses ICP [17] as the classical registration
approach and explains why it is a poor fit for V2V (needs a good initial
pose, merges different-viewpoint observations of the same object point-
to-point, and requires shipping whole point clouds).  This implementation
exists to demonstrate those claims empirically in the extension
benchmarks: seeded with identity it diverges on V2V frame pairs; seeded
with BB-Align's stage-1 output it adds little over stage 2 while costing
far more bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

from repro.geometry.rigid import kabsch_2d
from repro.geometry.se2 import SE2

__all__ = ["IcpResult", "icp_2d"]


@dataclass(frozen=True)
class IcpResult:
    """ICP outcome.

    Attributes:
        transform: estimated source->target transform.
        iterations: iterations actually run.
        converged: change fell below tolerance before the budget ran out.
        rmse: final inlier RMS distance.
        num_correspondences: pairs used in the final iteration.
    """

    transform: SE2
    iterations: int
    converged: bool
    rmse: float
    num_correspondences: int


def icp_2d(source: np.ndarray, target: np.ndarray,
           initial: SE2 | None = None,
           max_iterations: int = 50,
           max_correspondence_distance: float = 2.0,
           tolerance: float = 1e-4,
           max_points: int = 4000,
           rng: np.random.Generator | int | None = None) -> IcpResult:
    """Point-to-point ICP on 2-D points.

    Args:
        source: (N, 2) points to move.
        target: (M, 2) reference points.
        initial: starting transform (identity if None).
        max_iterations: iteration budget.
        max_correspondence_distance: NN pairs farther than this are
            ignored (trimmed ICP).
        tolerance: stop when the pose update's translation falls below
            this (meters).
        max_points: random subsample bound for tractability.
        rng: subsampling randomness.

    Returns:
        An :class:`IcpResult`.
    """
    source = np.atleast_2d(np.asarray(source, dtype=float))
    target = np.atleast_2d(np.asarray(target, dtype=float))
    if len(source) < 3 or len(target) < 3:
        return IcpResult(initial or SE2.identity(), 0, False, float("nan"), 0)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    if len(source) > max_points:
        source = source[rng.choice(len(source), max_points, replace=False)]
    if len(target) > max_points:
        target = target[rng.choice(len(target), max_points, replace=False)]

    transform = initial or SE2.identity()
    tree = cKDTree(target)
    moved = transform.apply(source)
    converged = False
    iterations = 0
    rmse = float("nan")
    num_pairs = 0
    for iterations in range(1, max_iterations + 1):
        distances, indices = tree.query(moved, k=1)
        keep = distances <= max_correspondence_distance
        num_pairs = int(keep.sum())
        if num_pairs < 3:
            return IcpResult(transform, iterations, False, float("nan"),
                             num_pairs)
        step = kabsch_2d(moved[keep], target[indices[keep]])
        transform = step @ transform
        moved = transform.apply(source)
        rmse = float(np.sqrt(np.mean(
            (np.linalg.norm(moved[keep] - target[indices[keep]], axis=1)) ** 2)))
        if np.hypot(step.tx, step.ty) < tolerance \
                and abs(step.theta) < tolerance:
            converged = True
            break
    return IcpResult(transform, iterations, converged, rmse, num_pairs)
