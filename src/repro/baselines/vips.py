"""VIPS-style spectral graph matching (the paper's main baseline).

VIPS [28] estimates the relative pose by matching the *object graphs* of
the two vehicles: nodes are detected objects, edges carry pairwise
distances (rigid-invariant).  Candidate correspondences ``(i, a)`` form
an association graph whose affinity matrix scores how well each pair of
candidate correspondences preserves pairwise distance; the principal
eigenvector of that matrix (computed by power iteration, as in the
spectral matching literature) scores each candidate, a greedy one-to-one
discretization extracts the match set, and Kabsch on matched object
centers yields the pose.

The paper's observed failure modes fall out of the construction:

* sparse traffic (< 3 common objects) leaves too few edges to
  disambiguate — matching collapses;
* repetitive traffic patterns create near-degenerate eigenvectors, the
  "numerical instability associated with eigendecomposition" the paper
  blames for residual error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.rigid import kabsch_2d
from repro.geometry.se2 import SE2

__all__ = ["VipsConfig", "VipsResult", "vips_graph_matching"]


@dataclass(frozen=True)
class VipsConfig:
    """Spectral matching parameters.

    Attributes:
        distance_sigma: affinity kernel bandwidth (meters) on pairwise-
            distance disagreement.
        distance_tolerance: candidate correspondence pairs whose pairwise
            distances disagree by more than this get zero affinity.
        max_candidates: cap on the association-graph size (strongest
            unary candidates kept) to bound the eigen problem.
        power_iterations: power-method iterations for the principal
            eigenvector.
        min_matches: matched objects needed to output a pose.
    """

    distance_sigma: float = 1.0
    distance_tolerance: float = 3.0
    max_candidates: int = 400
    power_iterations: int = 60
    min_matches: int = 3


@dataclass(frozen=True)
class VipsResult:
    """Graph-matching outcome.

    Attributes:
        transform: estimated other->ego transform (identity on failure).
        success: enough consistent matches were found.
        matches: list of (other_index, ego_index) matched object pairs.
        eigenvector_score: mean eigenvector mass of accepted matches — a
            confidence proxy.
    """

    transform: SE2
    success: bool
    matches: list[tuple[int, int]]
    eigenvector_score: float

    @staticmethod
    def failed() -> "VipsResult":
        return VipsResult(SE2.identity(), False, [], 0.0)


def vips_graph_matching(other_centers: np.ndarray, ego_centers: np.ndarray,
                        config: VipsConfig | None = None) -> VipsResult:
    """Estimate the relative pose from two object-center sets.

    Args:
        other_centers: (N, 2) detected object centers in the other car's
            frame.
        ego_centers: (M, 2) detected object centers in the ego frame.
        config: spectral matching parameters.

    Returns:
        A :class:`VipsResult`; ``transform`` maps other-frame points into
        the ego frame.
    """
    config = config or VipsConfig()
    other_centers = np.atleast_2d(np.asarray(other_centers, dtype=float))
    ego_centers = np.atleast_2d(np.asarray(ego_centers, dtype=float))
    n, m = len(other_centers), len(ego_centers)
    if n < config.min_matches or m < config.min_matches:
        return VipsResult.failed()

    # Candidate correspondences: all (i, a) pairs (no appearance cue in
    # the V2V setting — geometry must disambiguate), capped for the
    # eigen problem.
    candidates = [(i, a) for i in range(n) for a in range(m)]
    if len(candidates) > config.max_candidates:
        # Keep candidates whose *distance profiles* match best: compare
        # each object's sorted distances to its 3 nearest neighbors.
        def profile(centers):
            d = np.linalg.norm(centers[:, None] - centers[None], axis=2)
            d.sort(axis=1)
            return d[:, 1:4]

        po, pe = profile(other_centers), profile(ego_centers)
        costs = np.array([np.linalg.norm(po[i] - pe[a])
                          for i, a in candidates])
        keep = np.argsort(costs)[:config.max_candidates]
        candidates = [candidates[k] for k in keep]

    k = len(candidates)
    dist_other = np.linalg.norm(
        other_centers[:, None] - other_centers[None], axis=2)
    dist_ego = np.linalg.norm(
        ego_centers[:, None] - ego_centers[None], axis=2)

    cand = np.asarray(candidates)
    di = dist_other[cand[:, 0][:, None], cand[:, 0][None, :]]
    da = dist_ego[cand[:, 1][:, None], cand[:, 1][None, :]]
    disagreement = np.abs(di - da)
    affinity = np.exp(-(disagreement ** 2)
                      / (2.0 * config.distance_sigma ** 2))
    affinity[disagreement > config.distance_tolerance] = 0.0
    # Conflicting candidates (shared object on either side) and self
    # pairs carry no affinity.
    same_i = cand[:, 0][:, None] == cand[:, 0][None, :]
    same_a = cand[:, 1][:, None] == cand[:, 1][None, :]
    affinity[same_i | same_a] = 0.0

    # Principal eigenvector by power iteration.
    vector = np.full(k, 1.0 / np.sqrt(k))
    for _ in range(config.power_iterations):
        nxt = affinity @ vector
        norm = np.linalg.norm(nxt)
        if norm < 1e-12:
            return VipsResult.failed()
        vector = nxt / norm

    # Greedy one-to-one discretization by descending eigenvector mass,
    # with the Leordeanu-Hebert consistency rule: a candidate joins the
    # solution only if it is pairwise-consistent (non-zero affinity) with
    # the matches accepted so far — this stops spurious one-off pairings
    # from riding in on leftover eigenvector mass.
    order = np.argsort(-vector)
    peak = float(vector[order[0]])
    used_other: set[int] = set()
    used_ego: set[int] = set()
    accepted: list[int] = []
    matches: list[tuple[int, int]] = []
    scores: list[float] = []
    for idx in order:
        if vector[idx] <= 0.05 * peak:
            break
        i, a = candidates[idx]
        if i in used_other or a in used_ego:
            continue
        if accepted:
            consistency = float(np.mean(affinity[idx, accepted]))
            if consistency < 0.3:
                continue
        used_other.add(i)
        used_ego.add(a)
        accepted.append(int(idx))
        matches.append((i, a))
        scores.append(float(vector[idx]))

    if len(matches) < config.min_matches:
        return VipsResult.failed()

    src = other_centers[[i for i, _ in matches]]
    dst = ego_centers[[a for _, a in matches]]
    transform = kabsch_2d(src, dst)
    # Final trim: drop matches the estimated transform itself rejects,
    # refit on the survivors (one round is enough at these scales).
    residuals = np.linalg.norm(transform.apply(src) - dst, axis=1)
    keep = residuals <= config.distance_tolerance
    if keep.sum() >= config.min_matches and not keep.all():
        matches = [m for m, k in zip(matches, keep) if k]
        scores = [s for s, k in zip(scores, keep) if k]
        transform = kabsch_2d(src[keep], dst[keep])
    return VipsResult(transform=transform, success=True, matches=matches,
                      eigenvector_score=float(np.mean(scores)))
