"""Bird's-eye-view imaging: projection, Log-Gabor filtering, MIM.

Implements Section IV-A of the paper up to (but not including) keypoint
detection: the height-map BV projection (Eq. 4), the Log-Gabor filter bank
(Eq. 6-8) and the Maximum Index Map (Eq. 9-10).
"""

from repro.bev.log_gabor import LogGaborBank, LogGaborConfig
from repro.bev.mim import MIMResult, compute_mim, compute_mim_batch
from repro.bev.phase_congruency import (
    PhaseCongruencyResult,
    compute_phase_congruency,
)
from repro.bev.projection import (
    BVImage,
    density_map,
    height_map,
)
from repro.bev.roi import RoiCullConfig, RoiWindow, roi_window

__all__ = [
    "BVImage",
    "LogGaborBank",
    "LogGaborConfig",
    "MIMResult",
    "PhaseCongruencyResult",
    "RoiCullConfig",
    "RoiWindow",
    "compute_mim",
    "compute_mim_batch",
    "compute_phase_congruency",
    "density_map",
    "height_map",
    "roi_window",
]
