"""Shared FFT backend for the bev package.

Every frequency-domain consumer in :mod:`repro.bev` (the Log-Gabor bank,
phase congruency) routes its transforms through this module so all of
them get the same backend selection: SciPy's pocketfft when available
(SIMD-vectorized, ~2x faster than ``numpy.fft`` on this workload, and it
preserves single precision — a float32 input yields a complex64
spectrum), falling back to ``numpy.fft`` otherwise.

Both helpers transform over the last two axes, so a ``(B, H, W)`` stack
is one batched call; pocketfft iterates the leading axis internally and
produces outputs bitwise-identical to per-slice transforms (asserted by
``tests/test_bev_fft.py``), which is what lets the bank batch both cars
of a pair through one pass without perturbing the byte-identical
float64 contract.

The module also owns the process-wide ``workers`` setting forwarded to
SciPy (pocketfft's plan-level multithreading).  The default of ``None``
keeps transforms single-threaded — sweep parallelism already saturates
cores at the process level — but a streaming service with one hot worker
can call :func:`set_fft_workers` to spread a single pair's transforms.
"""

from __future__ import annotations

import numpy as np

try:  # SciPy's pocketfft is SIMD-vectorized; numpy's is scalar C.
    from scipy import fft as _sp_fft
except ImportError:  # pragma: no cover - scipy is a standard dependency
    _sp_fft = None

__all__ = ["fft2", "ifft2", "set_fft_workers", "get_fft_workers"]

# Thread count forwarded to scipy.fft (None = backend default, single
# threaded).  Module-level rather than per-call: every bev consumer
# should agree, and the setting is a deployment decision, not an
# algorithmic one.
_workers: int | None = None


def set_fft_workers(workers: int | None) -> int | None:
    """Set the scipy.fft ``workers`` count; returns the previous value.

    A no-op (beyond bookkeeping) under the numpy fallback.
    """
    global _workers
    previous = _workers
    _workers = workers
    return previous


def get_fft_workers() -> int | None:
    """The current scipy.fft ``workers`` setting."""
    return _workers


def fft2(image: np.ndarray) -> np.ndarray:
    """Forward FFT over the last two axes via the fastest backend.

    Accepts a single ``(H, W)`` image or a ``(B, H, W)`` batch.  Under
    SciPy a float32 input produces a complex64 spectrum; the numpy
    fallback always returns complex128 (callers downcast as needed).
    """
    if _sp_fft is not None:
        return _sp_fft.fft2(image, workers=_workers)
    return np.fft.fft2(image)


def ifft2(spectrum: np.ndarray, overwrite: bool = False) -> np.ndarray:
    """Inverse FFT over the last two axes; ``overwrite`` lets the backend
    destroy the input (safe for freshly-computed product spectra)."""
    if _sp_fft is not None:
        return _sp_fft.ifft2(spectrum, overwrite_x=overwrite,
                             workers=_workers)
    return np.fft.ifft2(spectrum)
