"""2-D Log-Gabor filter bank (paper Eq. 6-8).

The paper (following RIFT [25] / BVMatch [27] / Kovesi [32]) filters the BV
image with a bank of ``N_s x N_o`` Log-Gabor filters.  A 2-D Log-Gabor
filter is defined in the *frequency domain* in polar coordinates
``(rho, theta)`` as the product of a log-normal radial window centered on
the scale's center frequency and a Gaussian angular window centered on the
preferred orientation — this is the (rho, theta, rho_0, theta_0)
parameterization of the paper's Eq. (6); the polar change of variables of
Eq. (5) is exactly the frequency-plane polar grid built here.  Filtering is
a frequency-domain product followed by an inverse FFT; the complex
magnitude of the result is the amplitude of Eq. (8).

Scale center frequencies follow Kovesi's convention referenced by the
paper's footnote 2: wavelength ``lambda_s = min_wavelength * mult**(s-1)``,
center frequency ``rho_s = 1 / lambda_s``.

Performance notes (the stage-1 hot path runs this on every frame):

* The frequency-domain windows are **real**, so filtering never performs
  complex multiplies: windows are prebuilt at bank construction as
  duplicated-interleaved float32 rows (:func:`_pack_window`) that scale a
  complex64 spectrum viewed as float32 with one contiguous SIMD pass.
  The ``radial[s] * angular[o]`` product stays *factored* — the hot loop
  hoists ``spectrum * radial[s]`` once per scale — so applying the bank
  streams ``N_s + N_o`` windows instead of ``N_s * N_o`` full filter
  products (the multiply is memory-bound; this is ~5x less filter
  traffic).
* Transforms go through the shared :mod:`repro.bev._fft` backend (SciPy's
  pocketfft when available — SIMD-vectorized and ~2x faster than
  ``numpy.fft`` on this workload — falling back to ``numpy.fft``).
* The bank owns its **scratch workspace**: the per-scale scaled spectra,
  the product buffer and the magnitude temporary are allocated once per
  batch size and reused across every image of a sweep
  (:meth:`LogGaborBank._workspace`), so the hot loop performs no
  per-call allocations beyond the returned sums and the backend's
  inverse-transform outputs.
* :meth:`LogGaborBank.orientation_amplitude_sums` accepts a ``(B, H, W)``
  **batch** — both cars of a pair go through the bank in one pass, so
  windows and scratch are streamed once per pair instead of once per
  image.  Batched transforms over the leading axis are bitwise-identical
  to per-image transforms (asserted in ``tests/test_bev_fft.py``), so the
  single-image method is literally a batch of one.
* The inverse transforms are applied filter-by-filter rather than as one
  giant batched transform: the angular window is one-sided, so the complex
  response *is* the analytic signal and a single complex ``ifft2`` already
  delivers the two real transforms (even/odd part) needed for the Eq. (8)
  amplitude — which also means a real-input ``rfft`` cannot halve the
  work (the product spectrum is not conjugate-symmetric) — and the
  per-filter working set stays cache-resident, which measures faster than
  a ``(N_s*N_o, H, W)`` batched transform on cache-constrained hosts (see
  ``benchmarks/test_stage1_kernels.py``).
* The per-filter product and inverse transform run in **single
  precision** (the forward FFT of the image stays double and is then
  downcast, so the input spectrum carries full accuracy).  Amplitudes are
  only consumed through wide-margin discrete decisions — the MIM
  orientation argmax, FAST thresholding, descriptor votes — and the
  relative ``~1e-7`` single-precision rounding does not move any of
  them; the seeded integration suite produces bit-identical transforms
  and inlier counts under either precision, while complex64 transforms
  run ~2x faster on SIMD hosts.

The pre-rework implementations are preserved as ``_reference_*`` methods.
They compute in double precision exactly as the original code did, so the
equivalence tests assert identical MIM argmax decisions and amplitude
agreement at single-precision tolerance (``rtol ~1e-5``) rather than
bitwise equality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bev._fft import fft2 as _fft2
from repro.bev._fft import ifft2 as _ifft2

__all__ = ["LogGaborConfig", "LogGaborBank"]


def _pack_window(window: np.ndarray) -> np.ndarray:
    """A real frequency window duplicated along the last axis (float32).

    Viewing a complex64 spectrum as float32 interleaves re/im pairs; the
    duplicated window lines each value up with both components, so
    ``spectrum * window`` becomes one contiguous real SIMD multiply that
    is bit-identical to the complex product with a real-valued filter.
    """
    return np.repeat(np.asarray(window, dtype=np.float32), 2, axis=1)


@dataclass(frozen=True)
class LogGaborConfig:
    """Hyperparameters of the filter bank.

    Defaults match the paper's evaluation setup (``N_s = 4`` scales,
    ``N_o = 12`` orientations) with Kovesi's standard bandwidth settings.

    Attributes:
        num_scales: ``N_s``.
        num_orientations: ``N_o``; orientation ``o`` is at angle
            ``(o - 1) * pi / N_o``.
        min_wavelength: wavelength of the finest scale, in pixels.
        mult: scaling factor between successive filter wavelengths.
        sigma_on_f: ratio ``sigma_rho / rho_0`` of the log-normal radial
            window (0.55 ~ two-octave bandwidth).
        d_theta_on_sigma: ratio of the angular spacing between filter
            orientations to the angular Gaussian sigma.
    """

    num_scales: int = 4
    num_orientations: int = 12
    min_wavelength: float = 3.0
    mult: float = 1.6
    sigma_on_f: float = 0.55
    d_theta_on_sigma: float = 1.2

    def __post_init__(self) -> None:
        if self.num_scales < 1:
            raise ValueError("num_scales must be >= 1")
        if self.num_orientations < 2:
            raise ValueError("num_orientations must be >= 2")
        if self.min_wavelength < 2:
            raise ValueError("min_wavelength must be >= 2 pixels (Nyquist)")
        if self.mult <= 1:
            raise ValueError("mult must be > 1")
        if not (0 < self.sigma_on_f < 1):
            raise ValueError("sigma_on_f must be in (0, 1)")

    @property
    def orientations(self) -> np.ndarray:
        """Filter orientations ``O[o] = (o - 1) * pi / N_o`` (radians)."""
        return np.arange(self.num_orientations) * np.pi / self.num_orientations

    @property
    def wavelengths(self) -> np.ndarray:
        """Per-scale wavelengths in pixels."""
        return self.min_wavelength * self.mult ** np.arange(self.num_scales)

    @property
    def center_frequencies(self) -> np.ndarray:
        """Per-scale center frequencies ``rho_s`` (cycles/pixel)."""
        return 1.0 / self.wavelengths


class LogGaborBank:
    """A Log-Gabor filter bank precomputed for one image size.

    Building the frequency-domain filters is the expensive part; this class
    caches them so repeated MIM computations on same-sized BV images (every
    frame of a drive) reuse the bank.
    """

    def __init__(self, size: int, config: LogGaborConfig | None = None) -> None:
        if size < 4:
            raise ValueError("image size must be >= 4 pixels")
        self.size = int(size)
        self.config = config or LogGaborConfig()
        self._radial, self._angular, self._lowpass = self._build()
        # The frequency-domain windows are *real*, so the per-filter
        # product never needs complex arithmetic: each window is stored
        # duplicated along the last axis (shape (H, 2W), float32) so one
        # contiguous SIMD multiply scales the interleaved re/im pairs of a
        # complex64 spectrum viewed as float32.  The separable structure
        # (filter = radial[s] * angular[o]) is kept factored: the hot loop
        # hoists ``spectrum * radial[s]`` per scale, cutting the streamed
        # filter bytes from N_s*N_o full products to N_s + N_o windows.
        self._radial_packed = np.stack(
            [_pack_window(r) for r in self._radial])
        self._angular_packed = np.stack(
            [_pack_window(a) for a in self._angular])
        # Reusable scratch buffers keyed by batch size (see _workspace).
        self._scratch: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] \
            = {}

    # ------------------------------------------------------------------
    def _frequency_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Normalized frequency-plane polar grid (rho in cycles/pixel)."""
        n = self.size
        freqs = np.fft.fftfreq(n)
        fx, fy = np.meshgrid(freqs, freqs)
        rho = np.sqrt(fx ** 2 + fy ** 2)
        rho[0, 0] = 1.0  # avoid log(0) at DC; the DC gain is zeroed below
        # BV images use row = +y (world axes, no flip), so the frequency
        # angle uses the same handedness; a +alpha world rotation then
        # shifts MIM orientation indices by +alpha, which the descriptor's
        # rotation normalization relies on.
        theta = np.arctan2(fy, fx)
        return rho, theta

    def _build(self):
        cfg = self.config
        rho, theta = self._frequency_grid()

        # Low-pass window keeps the radial filters from wrapping at the
        # FFT boundary (Kovesi's standard trick).
        lowpass = 1.0 / (1.0 + (rho / 0.45) ** 30)

        radial = []
        for f0 in cfg.center_frequencies:
            log_rho = np.log(rho / f0)
            r = np.exp(-(log_rho ** 2) / (2.0 * np.log(cfg.sigma_on_f) ** 2))
            r *= lowpass
            r[0, 0] = 0.0  # zero DC gain
            radial.append(r)

        d_theta_sigma = (np.pi / cfg.num_orientations) / cfg.d_theta_on_sigma
        angular = []
        sin_t, cos_t = np.sin(theta), np.cos(theta)
        for theta0 in cfg.orientations:
            # Angular distance folded onto [0, pi) — Log-Gabor orientation
            # windows are symmetric under 180-degree rotation.
            ds = sin_t * np.cos(theta0) - cos_t * np.sin(theta0)
            dc = cos_t * np.cos(theta0) + sin_t * np.sin(theta0)
            d_theta = np.abs(np.arctan2(ds, dc))
            a = np.exp(-(d_theta ** 2) / (2.0 * d_theta_sigma ** 2))
            angular.append(a)
        return radial, angular, lowpass

    # ------------------------------------------------------------------
    def _check_image(self, image: np.ndarray) -> np.ndarray:
        image = np.asarray(image, dtype=float)
        if image.shape != (self.size, self.size):
            raise ValueError(
                f"image shape {image.shape} does not match bank size {self.size}")
        return image

    def amplitude(self, image: np.ndarray, scale: int,
                  orientation: int) -> np.ndarray:
        """Amplitude response (Eq. 8) for one (scale, orientation) filter."""
        responses = self.amplitudes_by_orientation(
            image, scales=[scale], orientations=[orientation])
        return responses[0][0]

    def amplitudes_by_orientation(self, image: np.ndarray,
                                  scales=None, orientations=None) -> list[list[np.ndarray]]:
        """All amplitude responses, indexed ``[orientation][scale]``."""
        cfg = self.config
        scales = range(cfg.num_scales) if scales is None else scales
        orientations = (range(cfg.num_orientations) if orientations is None
                        else orientations)
        image_fft = _fft2(self._check_image(image)).astype(np.complex64)
        fview = image_fft.view(np.float32)
        product = np.empty((self.size, 2 * self.size), dtype=np.float32)
        out: list[list[np.ndarray]] = []
        for o in orientations:
            per_scale = []
            for s in scales:
                # Same two-step product as orientation_amplitude_sum, so
                # the two methods agree bit-for-bit.
                np.multiply(fview, self._radial_packed[s], out=product)
                product *= self._angular_packed[o]
                response = _ifft2(product.view(np.complex64),
                                  overwrite=True)
                per_scale.append(np.abs(response))
            out.append(per_scale)
        return out

    def _workspace(self, batch: int
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Scratch buffers for a ``batch``-image pass, reused across calls.

        Returns ``(scaled, product, magnitude)``: the per-scale scaled
        spectra ``(N_s, B, H, 2W)``, the complex product buffer
        ``(B, H, W)`` and the magnitude temporary ``(B, H, W)``.  A sweep
        touches one or two batch sizes (single images and pairs), so the
        dict stays tiny; it is cleared wholesale if it ever grows past a
        handful of entries to bound memory.
        """
        workspace = self._scratch.get(batch)
        if workspace is None:
            cfg = self.config
            scaled = np.empty(
                (cfg.num_scales, batch, self.size, 2 * self.size),
                dtype=np.float32)
            product = np.empty((batch, self.size, self.size),
                               dtype=np.complex64)
            magnitude = np.empty((batch, self.size, self.size),
                                 dtype=np.float32)
            if len(self._scratch) >= 4:
                self._scratch.clear()
            workspace = self._scratch[batch] = (scaled, product, magnitude)
        return workspace

    def orientation_amplitude_sum(self, image: np.ndarray,
                                  precision: str = "float64") -> np.ndarray:
        """Eq. (9): per-orientation amplitude summed over scales.

        Returns an array of shape ``(N_o, H, H)``, float32 — the
        transforms run in single precision (see the module docstring);
        consumers needing double precision cast at their boundary.
        ``precision`` selects the *forward* transform's precision (see
        :meth:`orientation_amplitude_sums`).
        """
        return self.orientation_amplitude_sums(
            self._check_image(image)[None], precision=precision)[0]

    def orientation_amplitude_sums(self, images: np.ndarray,
                                   precision: str = "float64") -> np.ndarray:
        """Batched Eq. (9) over a ``(B, H, H)`` image stack.

        One pass streams every window and scratch buffer once for the
        whole batch (the two cars of a pair share the bank's traffic).
        Batched transforms are bitwise-identical to per-image transforms,
        so ``orientation_amplitude_sums(stack)[i]`` equals
        ``orientation_amplitude_sum(stack[i])`` bit-for-bit.

        Args:
            images: ``(B, H, H)`` float stack, ``H`` matching the bank.
            precision: ``"float64"`` (default) computes the forward FFT
                in double precision and downcasts the spectrum — the
                byte-identical reference path; ``"float32"`` runs the
                forward transform in single precision end-to-end (the
                opt-in stage-1 fast path, validated by tolerance + pose
                agreement rather than byte identity).

        Returns:
            ``(B, N_o, H, H)`` float32 amplitude sums.
        """
        if precision not in ("float64", "float32"):
            raise ValueError(
                "precision must be 'float64' or 'float32', "
                f"got {precision!r}")
        images = np.asarray(
            images,
            dtype=np.float64 if precision == "float64" else np.float32)
        if images.ndim != 3 or images.shape[1:] != (self.size, self.size):
            raise ValueError(
                f"expected a (B, {self.size}, {self.size}) stack, "
                f"got {images.shape}")
        cfg = self.config
        batch = images.shape[0]
        # float64: double-precision forward FFT, then downcast — the
        # input spectrum keeps full accuracy while the 48 products and
        # inverse transforms run at complex64 speed.  float32: the
        # forward transform itself runs single precision (scipy returns
        # complex64 natively; the numpy fallback downcasts).
        spectra = _fft2(images)
        if spectra.dtype != np.complex64:
            spectra = spectra.astype(np.complex64)
        fview = spectra.view(np.float32)  # (B, H, 2W) interleaved re/im
        scaled, product, magnitude = self._workspace(batch)
        # Hoist the radial product: scaled[s] = spectrum * radial[s], then
        # each filter is one angular multiply away.  All operands are
        # interleaved-f32 views (see _pack_window), so every product is a
        # contiguous real SIMD multiply broadcast over the batch.
        for s in range(cfg.num_scales):
            np.multiply(fview, self._radial_packed[s], out=scaled[s])
        sums = np.empty((batch, cfg.num_orientations, self.size, self.size),
                        dtype=np.float32)
        pview = product.view(np.float32)
        for o in range(cfg.num_orientations):
            acc = sums[:, o]  # accumulate in place, no final copy
            # The first scale writes its magnitude straight into the
            # accumulator (0.0 + x == x, so skipping the zero-fill and
            # first add is bit-identical and two passes cheaper).
            np.multiply(scaled[0], self._angular_packed[o], out=pview)
            np.abs(_ifft2(product, overwrite=True), out=acc)
            for s in range(1, cfg.num_scales):
                np.multiply(scaled[s], self._angular_packed[o], out=pview)
                np.abs(_ifft2(product, overwrite=True), out=magnitude)
                acc += magnitude
        return sums

    # ------------------------------------------------------------------
    # Reference (pre-vectorization) implementations, kept for the
    # equivalence tests and the stage-1 micro-benchmark.  They rebuild
    # the frequency-domain product per frame, exactly as the original
    # code did; same FFT backend, so results match bit-for-bit.
    # ------------------------------------------------------------------
    def _reference_amplitudes_by_orientation(self, image: np.ndarray,
                                             scales=None, orientations=None
                                             ) -> list[list[np.ndarray]]:
        image = self._check_image(image)
        cfg = self.config
        scales = range(cfg.num_scales) if scales is None else scales
        orientations = (range(cfg.num_orientations) if orientations is None
                        else orientations)
        image_fft = _fft2(image)
        out: list[list[np.ndarray]] = []
        for o in orientations:
            per_scale = []
            for s in scales:
                filt = self._radial[s] * self._angular[o]
                response = _ifft2(image_fft * filt)
                per_scale.append(np.abs(response))
            out.append(per_scale)
        return out

    def _reference_orientation_amplitude_sum(self,
                                             image: np.ndarray) -> np.ndarray:
        image = self._check_image(image)
        cfg = self.config
        image_fft = _fft2(image)
        sums = np.empty((cfg.num_orientations, self.size, self.size))
        for o in range(cfg.num_orientations):
            acc = np.zeros((self.size, self.size))
            for s in range(cfg.num_scales):
                filt = self._radial[s] * self._angular[o]
                acc += np.abs(_ifft2(image_fft * filt))
            sums[o] = acc
        return sums
