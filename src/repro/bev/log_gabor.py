"""2-D Log-Gabor filter bank (paper Eq. 6-8).

The paper (following RIFT [25] / BVMatch [27] / Kovesi [32]) filters the BV
image with a bank of ``N_s x N_o`` Log-Gabor filters.  A 2-D Log-Gabor
filter is defined in the *frequency domain* in polar coordinates
``(rho, theta)`` as the product of a log-normal radial window centered on
the scale's center frequency and a Gaussian angular window centered on the
preferred orientation — this is the (rho, theta, rho_0, theta_0)
parameterization of the paper's Eq. (6); the polar change of variables of
Eq. (5) is exactly the frequency-plane polar grid built here.  Filtering is
a frequency-domain product followed by an inverse FFT; the complex
magnitude of the result is the amplitude of Eq. (8).

Scale center frequencies follow Kovesi's convention referenced by the
paper's footnote 2: wavelength ``lambda_s = min_wavelength * mult**(s-1)``,
center frequency ``rho_s = 1 / lambda_s``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["LogGaborConfig", "LogGaborBank"]


@dataclass(frozen=True)
class LogGaborConfig:
    """Hyperparameters of the filter bank.

    Defaults match the paper's evaluation setup (``N_s = 4`` scales,
    ``N_o = 12`` orientations) with Kovesi's standard bandwidth settings.

    Attributes:
        num_scales: ``N_s``.
        num_orientations: ``N_o``; orientation ``o`` is at angle
            ``(o - 1) * pi / N_o``.
        min_wavelength: wavelength of the finest scale, in pixels.
        mult: scaling factor between successive filter wavelengths.
        sigma_on_f: ratio ``sigma_rho / rho_0`` of the log-normal radial
            window (0.55 ~ two-octave bandwidth).
        d_theta_on_sigma: ratio of the angular spacing between filter
            orientations to the angular Gaussian sigma.
    """

    num_scales: int = 4
    num_orientations: int = 12
    min_wavelength: float = 3.0
    mult: float = 1.6
    sigma_on_f: float = 0.55
    d_theta_on_sigma: float = 1.2

    def __post_init__(self) -> None:
        if self.num_scales < 1:
            raise ValueError("num_scales must be >= 1")
        if self.num_orientations < 2:
            raise ValueError("num_orientations must be >= 2")
        if self.min_wavelength < 2:
            raise ValueError("min_wavelength must be >= 2 pixels (Nyquist)")
        if self.mult <= 1:
            raise ValueError("mult must be > 1")
        if not (0 < self.sigma_on_f < 1):
            raise ValueError("sigma_on_f must be in (0, 1)")

    @property
    def orientations(self) -> np.ndarray:
        """Filter orientations ``O[o] = (o - 1) * pi / N_o`` (radians)."""
        return np.arange(self.num_orientations) * np.pi / self.num_orientations

    @property
    def wavelengths(self) -> np.ndarray:
        """Per-scale wavelengths in pixels."""
        return self.min_wavelength * self.mult ** np.arange(self.num_scales)

    @property
    def center_frequencies(self) -> np.ndarray:
        """Per-scale center frequencies ``rho_s`` (cycles/pixel)."""
        return 1.0 / self.wavelengths


class LogGaborBank:
    """A Log-Gabor filter bank precomputed for one image size.

    Building the frequency-domain filters is the expensive part; this class
    caches them so repeated MIM computations on same-sized BV images (every
    frame of a drive) reuse the bank.
    """

    def __init__(self, size: int, config: LogGaborConfig | None = None) -> None:
        if size < 4:
            raise ValueError("image size must be >= 4 pixels")
        self.size = int(size)
        self.config = config or LogGaborConfig()
        self._radial, self._angular, self._lowpass = self._build()

    # ------------------------------------------------------------------
    def _frequency_grid(self) -> tuple[np.ndarray, np.ndarray]:
        """Normalized frequency-plane polar grid (rho in cycles/pixel)."""
        n = self.size
        freqs = np.fft.fftfreq(n)
        fx, fy = np.meshgrid(freqs, freqs)
        rho = np.sqrt(fx ** 2 + fy ** 2)
        rho[0, 0] = 1.0  # avoid log(0) at DC; the DC gain is zeroed below
        # BV images use row = +y (world axes, no flip), so the frequency
        # angle uses the same handedness; a +alpha world rotation then
        # shifts MIM orientation indices by +alpha, which the descriptor's
        # rotation normalization relies on.
        theta = np.arctan2(fy, fx)
        return rho, theta

    def _build(self):
        cfg = self.config
        rho, theta = self._frequency_grid()

        # Low-pass window keeps the radial filters from wrapping at the
        # FFT boundary (Kovesi's standard trick).
        lowpass = 1.0 / (1.0 + (rho / 0.45) ** 30)

        radial = []
        for f0 in cfg.center_frequencies:
            log_rho = np.log(rho / f0)
            r = np.exp(-(log_rho ** 2) / (2.0 * np.log(cfg.sigma_on_f) ** 2))
            r *= lowpass
            r[0, 0] = 0.0  # zero DC gain
            radial.append(r)

        d_theta_sigma = (np.pi / cfg.num_orientations) / cfg.d_theta_on_sigma
        angular = []
        sin_t, cos_t = np.sin(theta), np.cos(theta)
        for theta0 in cfg.orientations:
            # Angular distance folded onto [0, pi) — Log-Gabor orientation
            # windows are symmetric under 180-degree rotation.
            ds = sin_t * np.cos(theta0) - cos_t * np.sin(theta0)
            dc = cos_t * np.cos(theta0) + sin_t * np.sin(theta0)
            d_theta = np.abs(np.arctan2(ds, dc))
            a = np.exp(-(d_theta ** 2) / (2.0 * d_theta_sigma ** 2))
            angular.append(a)
        return radial, angular, lowpass

    # ------------------------------------------------------------------
    def amplitude(self, image: np.ndarray, scale: int,
                  orientation: int) -> np.ndarray:
        """Amplitude response (Eq. 8) for one (scale, orientation) filter."""
        responses = self.amplitudes_by_orientation(
            image, scales=[scale], orientations=[orientation])
        return responses[0][0]

    def amplitudes_by_orientation(self, image: np.ndarray,
                                  scales=None, orientations=None) -> list[list[np.ndarray]]:
        """All amplitude responses, indexed ``[orientation][scale]``."""
        image = np.asarray(image, dtype=float)
        if image.shape != (self.size, self.size):
            raise ValueError(
                f"image shape {image.shape} does not match bank size {self.size}")
        cfg = self.config
        scales = range(cfg.num_scales) if scales is None else scales
        orientations = (range(cfg.num_orientations) if orientations is None
                        else orientations)
        image_fft = np.fft.fft2(image)
        out: list[list[np.ndarray]] = []
        for o in orientations:
            per_scale = []
            for s in scales:
                filt = self._radial[s] * self._angular[o]
                response = np.fft.ifft2(image_fft * filt)
                per_scale.append(np.abs(response))
            out.append(per_scale)
        return out

    def orientation_amplitude_sum(self, image: np.ndarray) -> np.ndarray:
        """Eq. (9): per-orientation amplitude summed over scales.

        Returns an array of shape ``(N_o, H, H)``.
        """
        image = np.asarray(image, dtype=float)
        if image.shape != (self.size, self.size):
            raise ValueError(
                f"image shape {image.shape} does not match bank size {self.size}")
        cfg = self.config
        image_fft = np.fft.fft2(image)
        sums = np.empty((cfg.num_orientations, self.size, self.size))
        for o in range(cfg.num_orientations):
            acc = np.zeros((self.size, self.size))
            for s in range(cfg.num_scales):
                filt = self._radial[s] * self._angular[o]
                acc += np.abs(np.fft.ifft2(image_fft * filt))
            sums[o] = acc
        return sums
