"""Maximum Index Map (paper Eq. 9-10).

For every pixel, the MIM stores the index of the orientation whose
scale-summed Log-Gabor amplitude is largest — i.e. the direction of the
dominant local structure.  On sparse BV images this turns disconnected
wall returns into coherent oriented "edge" regions, which is what makes
keypoint description possible at all (Fig. 4 of the paper).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.bev.log_gabor import LogGaborBank, LogGaborConfig
from repro.bev.projection import BVImage

__all__ = ["MIMResult", "compute_mim", "compute_mim_batch"]

# Reusable banks keyed by (size, config); building a bank is ~10x the cost
# of applying it, and every frame of a drive shares one image size.  True
# LRU: multi-size studies (submap/bandwidth sweeps) cycle through more
# than one key per frame pair, and evicting *everything* on overflow (as
# an earlier revision did) made them rebuild banks every frame.
_BANK_CACHE: OrderedDict[tuple, LogGaborBank] = OrderedDict()
_BANK_CACHE_CAPACITY = 8


def _get_bank(size: int, config: LogGaborConfig) -> LogGaborBank:
    key = (size, config)
    bank = _BANK_CACHE.get(key)
    if bank is not None:
        _BANK_CACHE.move_to_end(key)
        return bank
    bank = LogGaborBank(size, config)
    _BANK_CACHE[key] = bank
    while len(_BANK_CACHE) > _BANK_CACHE_CAPACITY:  # bound memory
        _BANK_CACHE.popitem(last=False)
    return bank


@dataclass(frozen=True)
class MIMResult:
    """MIM plus the auxiliary maps the descriptor stage needs.

    Attributes:
        mim: (H, H) int array of winning orientation indices in
            ``[0, N_o)``.
        max_amplitude: (H, H) amplitude of the winning orientation; used to
            weight histograms and to mask meaningless (near-zero energy)
            pixels.
        total_amplitude: (H, H) amplitude summed over all orientations.
        num_orientations: ``N_o`` of the generating bank.
    """

    mim: np.ndarray
    max_amplitude: np.ndarray
    total_amplitude: np.ndarray
    num_orientations: int

    def valid_mask(self, relative_threshold: float = 0.05) -> np.ndarray:
        """Pixels whose winning amplitude exceeds ``relative_threshold``
        times the image's peak amplitude — i.e. where the MIM value is
        meaningful rather than argmax-of-noise."""
        peak = float(self.max_amplitude.max())
        if peak <= 0:
            return np.zeros_like(self.mim, dtype=bool)
        return self.max_amplitude >= relative_threshold * peak


def _winner_sweep(amplitude: np.ndarray, num_orientations: int,
                  precision: str) -> MIMResult:
    """Winner selection over a ``(N_o, H, H)`` amplitude stack.

    Runs on the bank's float32 amplitudes as a manual maximum sweep:
    np.argmax reduces across axis 0 with a cache-hostile stride (~5 ms at
    320 px vs ~1 ms for the sweep), and the sweep yields the
    winning-amplitude map for free.  The strict ``>`` keeps np.argmax's
    first-occurrence tie-breaking, so the winners are identical.  In the
    default float64 precision the stored maps are float64 for downstream
    consumers and the f64-accumulated total keeps max <= total exact; the
    opt-in float32 precision keeps the maps single to carry the smaller
    footprint through the descriptor stage.
    """
    best = amplitude[0].copy()
    mim = np.zeros(best.shape, dtype=np.int32)
    mask = np.empty(best.shape, dtype=bool)
    for o in range(1, amplitude.shape[0]):
        np.greater(amplitude[o], best, out=mask)
        np.copyto(mim, np.int32(o), where=mask)
        np.maximum(best, amplitude[o], out=best)
    if precision == "float32":
        max_amplitude = best
        total = amplitude.sum(axis=0, dtype=np.float32)
    else:
        max_amplitude = best.astype(np.float64)
        total = amplitude.sum(axis=0, dtype=np.float64)
    return MIMResult(mim=mim, max_amplitude=max_amplitude,
                     total_amplitude=total,
                     num_orientations=num_orientations)


def _check_square(image: np.ndarray) -> np.ndarray:
    if image.ndim != 2 or image.shape[0] != image.shape[1]:
        raise ValueError(f"expected a square image, got {image.shape}")
    return image


def compute_mim(bv: BVImage | np.ndarray,
                config: LogGaborConfig | None = None,
                precision: str = "float64") -> MIMResult:
    """Compute the Maximum Index Map of a BV image (Eq. 9-10).

    Args:
        bv: a :class:`BVImage` or a raw square float image.
        config: Log-Gabor bank configuration; defaults to the paper's
            ``N_s = 4, N_o = 12``.
        precision: ``"float64"`` (default, byte-identical reference
            behavior) or ``"float32"`` (the opt-in single-precision
            stage-1 path: single-precision forward transforms and
            float32 amplitude maps).

    Returns:
        A :class:`MIMResult`.
    """
    image = _check_square(
        bv.image if isinstance(bv, BVImage) else np.asarray(bv, dtype=float))
    config = config or LogGaborConfig()
    bank = _get_bank(image.shape[0], config)
    amplitude = bank.orientation_amplitude_sum(image, precision=precision)
    return _winner_sweep(amplitude, config.num_orientations, precision)


def compute_mim_batch(bvs, config: LogGaborConfig | None = None,
                      precision: str = "float64") -> list[MIMResult]:
    """Compute MIMs for a batch of same-sized BV images in one bank pass.

    The batched bank streams every frequency window and scratch buffer
    once for the whole batch (see
    :meth:`~repro.bev.log_gabor.LogGaborBank.orientation_amplitude_sums`),
    which is how the pipeline extracts both cars of a pair for barely
    more than the cost of one.  Results are bitwise-identical to calling
    :func:`compute_mim` per image.

    Args:
        bvs: a sequence of :class:`BVImage` / square float arrays (all
            the same size), or a ``(B, H, H)`` stack.
        config: Log-Gabor bank configuration.
        precision: as for :func:`compute_mim`.

    Returns:
        One :class:`MIMResult` per input image, in order.
    """
    images = [
        _check_square(bv.image if isinstance(bv, BVImage)
                      else np.asarray(bv, dtype=float))
        for bv in bvs]
    if not images:
        return []
    size = images[0].shape[0]
    for image in images[1:]:
        if image.shape[0] != size:
            raise ValueError(
                "compute_mim_batch requires same-sized images, got "
                f"{[im.shape for im in images]}")
    config = config or LogGaborConfig()
    bank = _get_bank(size, config)
    amplitudes = bank.orientation_amplitude_sums(np.stack(images),
                                                 precision=precision)
    return [_winner_sweep(amplitudes[b], config.num_orientations, precision)
            for b in range(len(images))]
