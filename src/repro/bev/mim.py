"""Maximum Index Map (paper Eq. 9-10).

For every pixel, the MIM stores the index of the orientation whose
scale-summed Log-Gabor amplitude is largest — i.e. the direction of the
dominant local structure.  On sparse BV images this turns disconnected
wall returns into coherent oriented "edge" regions, which is what makes
keypoint description possible at all (Fig. 4 of the paper).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.bev.log_gabor import LogGaborBank, LogGaborConfig
from repro.bev.projection import BVImage

__all__ = ["MIMResult", "compute_mim"]

# Reusable banks keyed by (size, config); building a bank is ~10x the cost
# of applying it, and every frame of a drive shares one image size.  True
# LRU: multi-size studies (submap/bandwidth sweeps) cycle through more
# than one key per frame pair, and evicting *everything* on overflow (as
# an earlier revision did) made them rebuild banks every frame.
_BANK_CACHE: OrderedDict[tuple, LogGaborBank] = OrderedDict()
_BANK_CACHE_CAPACITY = 8


def _get_bank(size: int, config: LogGaborConfig) -> LogGaborBank:
    key = (size, config)
    bank = _BANK_CACHE.get(key)
    if bank is not None:
        _BANK_CACHE.move_to_end(key)
        return bank
    bank = LogGaborBank(size, config)
    _BANK_CACHE[key] = bank
    while len(_BANK_CACHE) > _BANK_CACHE_CAPACITY:  # bound memory
        _BANK_CACHE.popitem(last=False)
    return bank


@dataclass(frozen=True)
class MIMResult:
    """MIM plus the auxiliary maps the descriptor stage needs.

    Attributes:
        mim: (H, H) int array of winning orientation indices in
            ``[0, N_o)``.
        max_amplitude: (H, H) amplitude of the winning orientation; used to
            weight histograms and to mask meaningless (near-zero energy)
            pixels.
        total_amplitude: (H, H) amplitude summed over all orientations.
        num_orientations: ``N_o`` of the generating bank.
    """

    mim: np.ndarray
    max_amplitude: np.ndarray
    total_amplitude: np.ndarray
    num_orientations: int

    def valid_mask(self, relative_threshold: float = 0.05) -> np.ndarray:
        """Pixels whose winning amplitude exceeds ``relative_threshold``
        times the image's peak amplitude — i.e. where the MIM value is
        meaningful rather than argmax-of-noise."""
        peak = float(self.max_amplitude.max())
        if peak <= 0:
            return np.zeros_like(self.mim, dtype=bool)
        return self.max_amplitude >= relative_threshold * peak


def compute_mim(bv: BVImage | np.ndarray,
                config: LogGaborConfig | None = None) -> MIMResult:
    """Compute the Maximum Index Map of a BV image (Eq. 9-10).

    Args:
        bv: a :class:`BVImage` or a raw square float image.
        config: Log-Gabor bank configuration; defaults to the paper's
            ``N_s = 4, N_o = 12``.

    Returns:
        A :class:`MIMResult`.
    """
    image = bv.image if isinstance(bv, BVImage) else np.asarray(bv, dtype=float)
    if image.ndim != 2 or image.shape[0] != image.shape[1]:
        raise ValueError(f"expected a square image, got {image.shape}")
    config = config or LogGaborConfig()
    bank = _get_bank(image.shape[0], config)
    amplitude = bank.orientation_amplitude_sum(image)  # (N_o, H, H) f32
    # Winner selection runs on the bank's float32 amplitudes as a manual
    # maximum sweep: np.argmax reduces across axis 0 with a cache-hostile
    # stride (~5 ms at 320 px vs ~1 ms for the sweep), and the sweep
    # yields the winning-amplitude map for free.  The strict ``>`` keeps
    # np.argmax's first-occurrence tie-breaking, so the winners are
    # identical.  Stored maps are float64 for downstream consumers, and
    # the f64-accumulated total keeps max <= total exact.
    best = amplitude[0].copy()
    mim = np.zeros(best.shape, dtype=np.int32)
    mask = np.empty(best.shape, dtype=bool)
    for o in range(1, amplitude.shape[0]):
        np.greater(amplitude[o], best, out=mask)
        np.copyto(mim, np.int32(o), where=mask)
        np.maximum(best, amplitude[o], out=best)
    max_amplitude = best.astype(np.float64)
    total = amplitude.sum(axis=0, dtype=np.float64)
    return MIMResult(mim=mim, max_amplitude=max_amplitude,
                     total_amplitude=total,
                     num_orientations=config.num_orientations)
