"""2-D phase congruency from the Log-Gabor bank (Kovesi).

The MIM construction of RIFT [25] — which the paper builds on — is
derived from Kovesi's phase-congruency framework: features are points
where the Log-Gabor filter responses across scales are maximally in
phase.  This module computes the phase-congruency map and its moment
analysis, giving an alternative, illumination-invariant keypoint detector
(``minimum moment`` corners) that can be swapped in for FAST via
``BBAlignConfig.keypoint_detector``.

Per orientation ``o`` with complex scale responses ``e_{s,o}``:

    E_o   = | sum_s e_{s,o} |                (coherent energy)
    A_o   = sum_s | e_{s,o} |                (total amplitude)
    PC_o  = max(E_o - T_o, 0) / (A_o + eps)  (noise-thresholded congruency)

The orientation-wise PC values are then combined by classical moment
analysis; the *minimum* moment is large only where congruent structure
exists in more than one orientation — i.e. at corners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bev._fft import fft2 as _fft2
from repro.bev._fft import ifft2 as _ifft2
from repro.bev.log_gabor import LogGaborConfig
from repro.bev.mim import _get_bank
from repro.bev.projection import BVImage

__all__ = ["PhaseCongruencyResult", "compute_phase_congruency"]


@dataclass(frozen=True)
class PhaseCongruencyResult:
    """Phase-congruency maps.

    Attributes:
        pc: (N_o, H, H) per-orientation phase congruency in [0, 1].
        max_moment: (H, H) maximum moment — edge strength.
        min_moment: (H, H) minimum moment — corner strength.
        orientation: (H, H) principal axis angle (radians, [0, pi)).
    """

    pc: np.ndarray
    max_moment: np.ndarray
    min_moment: np.ndarray
    orientation: np.ndarray


def compute_phase_congruency(bv: BVImage | np.ndarray,
                             config: LogGaborConfig | None = None,
                             noise_factor: float = 2.0,
                             epsilon: float = 1e-4) -> PhaseCongruencyResult:
    """Compute phase congruency and its moments for a BV image.

    Args:
        bv: a :class:`BVImage` or raw square float image.
        config: Log-Gabor bank configuration.
        noise_factor: noise threshold ``T_o`` as a multiple of the
            estimated noise amplitude (median-based estimate per
            orientation).
        epsilon: stabilizer in the PC denominator.

    Returns:
        A :class:`PhaseCongruencyResult`.
    """
    image = bv.image if isinstance(bv, BVImage) else np.asarray(bv,
                                                                dtype=float)
    if image.ndim != 2 or image.shape[0] != image.shape[1]:
        raise ValueError(f"expected a square image, got {image.shape}")
    config = config or LogGaborConfig()
    # Reuses the MIM layer's bank cache: a sweep that runs both the MIM
    # and the phase-congruency detector on the same image size builds
    # the frequency windows once.
    bank = _get_bank(image.shape[0], config)

    # Transforms go through the shared SciPy-backed helpers (pocketfft),
    # like every other frequency-domain consumer in repro.bev.
    image_fft = _fft2(image)
    n_orient = config.num_orientations
    size = image.shape[0]
    pc = np.zeros((n_orient, size, size))

    for o in range(n_orient):
        sum_complex = np.zeros((size, size), dtype=complex)
        sum_amplitude = np.zeros((size, size))
        smallest_scale_amplitude = None
        for s in range(config.num_scales):
            response = _ifft2(
                image_fft * (bank._radial[s] * bank._angular[o]))
            sum_complex += response
            amplitude = np.abs(response)
            sum_amplitude += amplitude
            if s == 0:
                smallest_scale_amplitude = amplitude
        energy = np.abs(sum_complex)
        # Noise threshold from the finest scale's median amplitude
        # (Rayleigh-noise heuristic, as in Kovesi's implementation).
        noise_estimate = float(np.median(smallest_scale_amplitude)) \
            / np.sqrt(np.log(2.0))
        threshold = noise_factor * noise_estimate * config.num_scales
        pc[o] = np.maximum(energy - threshold, 0.0) \
            / (sum_amplitude + epsilon)

    # Moment analysis over orientations (Kovesi):
    angles = config.orientations
    cos2 = np.cos(angles) ** 2
    sincos = np.cos(angles) * np.sin(angles)
    sin2 = np.sin(angles) ** 2
    a = np.tensordot(cos2, pc, axes=(0, 0))
    b = 2.0 * np.tensordot(sincos, pc, axes=(0, 0))
    c = np.tensordot(sin2, pc, axes=(0, 0))
    root = np.sqrt(b ** 2 + (a - c) ** 2)
    max_moment = 0.5 * (c + a + root)
    min_moment = 0.5 * (c + a - root)
    orientation = np.mod(0.5 * np.arctan2(b, a - c), np.pi)
    return PhaseCongruencyResult(pc=pc, max_moment=max_moment,
                                 min_moment=np.maximum(min_moment, 0.0),
                                 orientation=orientation)
