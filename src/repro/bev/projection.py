"""BV image generation from point clouds (paper Eq. 4).

The paper partitions points into 2-D ground-plane cells of size ``c``
inside the square ``[-R, R]^2`` and uses the **maximum height** per cell as
the pixel intensity (the *height map*), preferring tall static structure
(buildings, trees) as landmarks and implicitly suppressing ground returns.
The *density map* alternative (point count per cell) is provided as the
baseline the paper argues against.

Pixel convention: ``row = floor((y + R) / c)``, ``col = floor((x + R) /
c)``.  This mapping is a pure scale + translation of the world frame (no
axis flip), so a rigid transform estimated between two BV images in pixel
coordinates converts to a world-frame transform by scaling the translation
by ``c`` and keeping the rotation angle — see :meth:`BVImage.pixel_transform_to_world`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud

__all__ = ["BVImage", "height_map", "density_map"]


@dataclass(frozen=True)
class BVImage:
    """A BV image plus the metadata needed to map pixels back to meters.

    Attributes:
        image: (H, H) float array; intensity per Eq. (4) (or point count
            for density maps).  Empty cells are 0.
        cell_size: ground-plane cell edge length ``c`` in meters.
        lidar_range: half-extent ``R`` in meters; image spans [-R, R]^2.
        num_nonfinite: input points rejected at the projection boundary
            for carrying NaN/inf coordinates — a single NaN admitted
            into a cell would otherwise propagate through the whole
            Log-Gabor bank and poison every downstream descriptor.
    """

    image: np.ndarray
    cell_size: float
    lidar_range: float
    num_nonfinite: int = 0

    def __post_init__(self) -> None:
        image = np.asarray(self.image, dtype=float)
        if image.ndim != 2 or image.shape[0] != image.shape[1]:
            raise ValueError(f"expected a square image, got {image.shape}")
        object.__setattr__(self, "image", image)

    @property
    def size(self) -> int:
        """Image side length ``H = 2R / c`` in pixels."""
        return self.image.shape[0]

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    def world_to_pixel(self, xy: np.ndarray) -> np.ndarray:
        """Map world (x, y) meters to continuous (col, row) pixel coords.

        The returned coordinates place a point at the *center* of its cell
        when it lies at the cell center in the world.
        """
        xy = np.atleast_2d(np.asarray(xy, dtype=float))
        return (xy + self.lidar_range) / self.cell_size - 0.5

    def pixel_to_world(self, colrow: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`world_to_pixel` (pixel centers to meters)."""
        colrow = np.atleast_2d(np.asarray(colrow, dtype=float))
        return (colrow + 0.5) * self.cell_size - self.lidar_range

    def pixel_transform_to_world(self, pixel_transform: SE2) -> SE2:
        """Convert a rigid transform between two same-config BV images
        (in (col, row) pixel coordinates) into a world-frame transform.

        With ``p_pix = (p_world + R) / c - 0.5`` the conjugation works out
        to: same rotation, translation scaled by ``c`` plus a term from the
        rotated offset of the image origin.
        """
        theta = pixel_transform.theta
        # With p_pix = p_world / c + o (o = R/c - 0.5 on both axes):
        #   p'_world = Rot p_world + c (Rot o - o + t_pix)
        offset = self.lidar_range / self.cell_size - 0.5
        o = np.array([offset, offset])
        rot = pixel_transform.rotation
        t_pix = pixel_transform.translation
        t_world = self.cell_size * (rot @ o - o + t_pix)
        return SE2(theta, float(t_world[0]), float(t_world[1]))

    def world_transform_to_pixel(self, world_transform: SE2) -> SE2:
        """Inverse of :meth:`pixel_transform_to_world`."""
        theta = world_transform.theta
        offset = self.lidar_range / self.cell_size - 0.5
        o = np.array([offset, offset])
        rot = world_transform.rotation
        t_pix = o - rot @ o + world_transform.translation / self.cell_size
        return SE2(theta, float(t_pix[0]), float(t_pix[1]))

    # ------------------------------------------------------------------
    def occupancy(self, threshold: float = 0.0) -> np.ndarray:
        """Boolean map of cells whose intensity exceeds ``threshold``."""
        return self.image > threshold

    def sparsity(self) -> float:
        """Fraction of empty pixels — the paper's central difficulty."""
        return float(np.mean(self.image == 0))

    def message_size_bytes(self, bits_per_pixel: int = 8) -> int:
        """Approximate transmission cost of this image (paper's bandwidth
        argument); assumes simple fixed-point quantization, no entropy
        coding."""
        return int(np.ceil(self.image.size * bits_per_pixel / 8))


_ONES3 = np.ones(3)


def _cell_indices(cloud: PointCloud, cell_size: float, lidar_range: float,
                  ) -> tuple[np.ndarray, np.ndarray, int, np.ndarray, int]:
    """Common binning: returns (rows, cols, H, in_range_mask, nonfinite).

    Points with any non-finite coordinate are rejected here — the
    projection is the validation boundary between raw sensor data and
    the numeric pipeline, and a NaN height written into one cell would
    spread through the Log-Gabor bank products to the entire MIM.  The
    rejected count is surfaced on the returned image so callers can
    report it in recovery diagnostics.

    The finite screen rides one BLAS row-sum: a row sum is finite iff
    every coordinate is (a NaN propagates, a lone inf survives, and an
    inf pair cancels to NaN).  The only false *negatives* are finite
    rows whose sum overflows to inf, so exactly those flagged rows get
    the elementwise re-check — the mask is bit-identical to
    ``np.isfinite(points).all(axis=1)`` at a third of the cost.
    """
    if cell_size <= 0 or lidar_range <= 0:
        raise ValueError("cell_size and lidar_range must be positive")
    size = int(round(2.0 * lidar_range / cell_size))
    if size < 1:
        raise ValueError("lidar_range/cell_size too small for a 1x1 image")
    points = cloud.points
    with np.errstate(over="ignore", invalid="ignore"):
        finite = np.isfinite(points @ _ONES3)
    if not finite.all():
        flagged = np.flatnonzero(~finite)
        finite[flagged] = np.isfinite(points[flagged]).all(axis=1)
    num_nonfinite = int(len(finite) - np.count_nonzero(finite))
    x = points[:, 0]
    y = points[:, 1]
    # NaN coordinates fail every comparison and infs fail one bound, so
    # chaining in-place &= over the column views reproduces the original
    # mask without materializing four intermediate bool arrays (or the
    # (N, 2) fancy-indexed copy of xy the old code sliced from).
    in_range = finite
    in_range &= x >= -lidar_range
    in_range &= x < lidar_range
    in_range &= y >= -lidar_range
    in_range &= y < lidar_range
    cols = np.floor((x[in_range] + lidar_range) / cell_size).astype(np.int64)
    rows = np.floor((y[in_range] + lidar_range) / cell_size).astype(np.int64)
    np.clip(cols, 0, size - 1, out=cols)
    np.clip(rows, 0, size - 1, out=rows)
    return rows, cols, size, in_range, num_nonfinite


def height_map(cloud: PointCloud, cell_size: float = 0.4,
               lidar_range: float = 50.0,
               min_height: float = 0.0,
               max_height: float | None = 5.0) -> BVImage:
    """Height-map BV image: per-cell maximum z (paper Eq. 4).

    Args:
        cloud: input scan in the sensor frame.
        cell_size: cell edge ``c`` in meters.
        lidar_range: half-extent ``R``; image covers [-R, R]^2.
        min_height: heights are clamped below at this value so that
            below-sensor returns cannot produce negative intensities; empty
            cells stay exactly 0.
        max_height: heights are clamped above at this value.  Two sensors
            at different distances from a tall wall see the wall up to
            different heights, so the raw per-cell maximum is viewpoint-
            dependent; clamping makes wall intensities agree between
            viewpoints wherever the structure exceeds the clamp, which
            measurably improves cross-view descriptor repeatability.
            None disables.

    Returns:
        A :class:`BVImage` of side ``H = 2R / c``.
    """
    if max_height is not None and max_height <= min_height:
        raise ValueError("max_height must exceed min_height")
    rows, cols, size, in_range, nonfinite = _cell_indices(
        cloud, cell_size, lidar_range)
    image = np.zeros((size, size))
    if len(rows):
        z = np.maximum(cloud.z[in_range], min_height)
        if max_height is not None:
            z = np.minimum(z, max_height)
        # Scatter-max via np.maximum.at on flattened indices.
        flat = rows * size + cols
        flat_img = image.reshape(-1)
        np.maximum.at(flat_img, flat, z)
    return BVImage(image, cell_size, lidar_range, num_nonfinite=nonfinite)


# ----------------------------------------------------------------------
# Reference (pre-optimization) projection: the original binning with the
# elementwise finite reduction and (N, 2) xy copy, kept verbatim for the
# equivalence tests and the benchmark before-side.
# ----------------------------------------------------------------------
def _reference_cell_indices(cloud: PointCloud, cell_size: float,
                            lidar_range: float,
                            ) -> tuple[np.ndarray, np.ndarray, int,
                                       np.ndarray, int]:
    if cell_size <= 0 or lidar_range <= 0:
        raise ValueError("cell_size and lidar_range must be positive")
    size = int(round(2.0 * lidar_range / cell_size))
    if size < 1:
        raise ValueError("lidar_range/cell_size too small for a 1x1 image")
    finite = np.isfinite(cloud.points).all(axis=1)
    num_nonfinite = int(len(finite) - np.count_nonzero(finite))
    xy = cloud.xy
    in_range = (finite
                & (xy[:, 0] >= -lidar_range) & (xy[:, 0] < lidar_range)
                & (xy[:, 1] >= -lidar_range) & (xy[:, 1] < lidar_range))
    xy = xy[in_range]
    cols = np.floor((xy[:, 0] + lidar_range) / cell_size).astype(np.int64)
    rows = np.floor((xy[:, 1] + lidar_range) / cell_size).astype(np.int64)
    np.clip(cols, 0, size - 1, out=cols)
    np.clip(rows, 0, size - 1, out=rows)
    return rows, cols, size, in_range, num_nonfinite


def _reference_height_map(cloud: PointCloud, cell_size: float = 0.4,
                          lidar_range: float = 50.0,
                          min_height: float = 0.0,
                          max_height: float | None = 5.0) -> BVImage:
    """Pre-optimization :func:`height_map`; must stay byte-identical."""
    if max_height is not None and max_height <= min_height:
        raise ValueError("max_height must exceed min_height")
    rows, cols, size, in_range, nonfinite = _reference_cell_indices(
        cloud, cell_size, lidar_range)
    image = np.zeros((size, size))
    if len(rows):
        z = np.maximum(cloud.z[in_range], min_height)
        if max_height is not None:
            z = np.minimum(z, max_height)
        flat = rows * size + cols
        flat_img = image.reshape(-1)
        np.maximum.at(flat_img, flat, z)
    return BVImage(image, cell_size, lidar_range, num_nonfinite=nonfinite)


def density_map(cloud: PointCloud, cell_size: float = 0.4,
                lidar_range: float = 50.0,
                log_scale: bool = True) -> BVImage:
    """Density-map BV image: per-cell point count (the [31] alternative).

    ``log_scale`` applies ``log1p`` to compress the dynamic range, the
    usual practice for density BV images.
    """
    rows, cols, size, _, nonfinite = _cell_indices(cloud, cell_size,
                                                   lidar_range)
    image = np.zeros((size, size))
    if len(rows):
        np.add.at(image.reshape(-1), rows * size + cols, 1.0)
    if log_scale:
        image = np.log1p(image)
    return BVImage(image, cell_size, lidar_range, num_nonfinite=nonfinite)
