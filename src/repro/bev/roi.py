"""Overlap-ROI culling for stage-1 feature extraction.

Keypoints can only match across vehicles where both lidars actually see
the same structure: a landmark useful to matching lies within the useful
sensing range ``u`` of *both* cars.  With the other car at translation
``t`` (in the ego frame), that region is the lens-shaped intersection of
two radius-``u`` discs centered at the origin and at ``t`` — which fits
inside a square of half-extent ``sqrt(u^2 - (d/2)^2)`` centered at
``t / 2`` (``d = |t|``).  Cropping the BV image to that window before the
Log-Gabor bank cuts the dominant stage-1 cost roughly by the area ratio,
and the paper's own accuracy band (reliable recovery below ~70 m
separation) plus the submap study justify discarding the periphery.

The window is computed from a *coarse prior* of the relative translation
(in deployment: GPS, a track, or the last recovered pose; in the
simulated sweeps: the pair's ground truth standing in for it).  Two
properties matter for correctness downstream:

* **Symmetric sizing** — the window *size* depends only on the quantized
  scalar distance ``d_q``, which is identical from either car's
  viewpoint, so both cars of a pair share one window size.  That keeps
  the two crops batchable through the bank in one ``(2, S, S)`` pass and
  makes pair-batched extraction bitwise-identical to two single
  extractions (the FeatureCache can mix entries from either path).
* **Quantized distance** — ``d`` is snapped to ``quantize``-meter steps
  before sizing, and ``margin`` covers the worst-case quantization error
  plus prior noise, so a slightly-off prior moves the window but never
  excludes genuinely co-visible structure near its edge.

Culling is opt-in (``RoiCullConfig.enabled``, default off) and falls
back to the uncropped image whenever no prior is available or the
window would not actually shrink the image.  When the prior predicts
*no* overlap at all the window collapses to ``min_size`` at the
closest-approach point instead (``cap_empty_overlap``) — hopeless pairs
should be the cheapest in a sweep, not the most expensive.  Cropping
changes which keypoints exist, so enabling it is a behavior change
relative to the uncropped reference — see DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["RoiCullConfig", "RoiWindow", "roi_window"]


@dataclass(frozen=True)
class RoiCullConfig:
    """Overlap-ROI culling parameters.

    Attributes:
        enabled: master switch; off by default (the uncropped path is
            the byte-identical reference behavior).
        useful_range: assumed useful sensing radius ``u`` in meters —
            structure beyond this distance from either car is treated as
            unusable for matching.  The default sits inside the paper's
            <70 m reliable-recovery band.
        margin: extra window half-extent in meters, absorbing distance
            quantization (up to ``quantize / 2``) and coarse-prior noise.
        quantize: snap the prior distance to multiples of this (meters)
            before sizing the window, so near-identical priors produce
            identical window sizes.
        min_size: smallest window edge in pixels (descriptor patches
            need context; tiny windows are not worth the bookkeeping).
        align: round window sizes up to multiples of this, keeping the
            set of distinct FFT sizes (and bank scratch shapes) small.
        cap_empty_overlap: when the prior predicts *no* overlap at all
            (``d_q >= 2 u``), extract on a ``min_size`` window at the
            closest-approach point ``t / 2`` instead of falling back to
            the full image.  Those pairs cannot recover a pose from
            co-visible structure either way, and the full-image fallback
            would make exactly the hopeless pairs the most expensive
            ones in a sweep.  Disable to restore full-frame behavior
            beyond the overlap horizon.
    """

    enabled: bool = False
    useful_range: float = 40.0
    margin: float = 6.0
    quantize: float = 5.0
    min_size: int = 64
    align: int = 16
    cap_empty_overlap: bool = True

    def __post_init__(self) -> None:
        if self.useful_range <= 0:
            raise ValueError("useful_range must be positive")
        if self.margin < 0:
            raise ValueError("margin must be >= 0")
        if self.quantize <= 0:
            raise ValueError("quantize must be positive")
        if self.min_size < 16:
            raise ValueError("min_size must be >= 16")
        if self.align < 1:
            raise ValueError("align must be >= 1")


@dataclass(frozen=True)
class RoiWindow:
    """A square crop window in BV pixel coordinates.

    ``image[row0:row0 + size, col0:col0 + size]`` is the cropped view;
    local keypoint coordinates map back to the full frame by adding
    ``(col0, row0)`` to their (col, row) positions.
    """

    row0: int
    col0: int
    size: int

    @property
    def offset_xy(self) -> np.ndarray:
        """(col, row) offset that maps window-local xy to full-frame xy."""
        return np.array([self.col0, self.row0], dtype=float)


def roi_window(prior_xy, *, cell_size: float, lidar_range: float,
               image_size: int,
               config: RoiCullConfig | None = None) -> RoiWindow | None:
    """The overlap window predicted by a coarse translation prior.

    Args:
        prior_xy: approximate (x, y) translation of the *other* sensor in
            this image's frame, meters.  ``None`` disables culling.
        cell_size: BV cell edge ``c`` in meters.
        lidar_range: BV half-extent ``R`` in meters.
        image_size: BV image edge ``H`` in pixels.
        config: culling parameters (an *enabled* default when omitted —
            callers gate on their own config's ``enabled`` flag).

    Returns:
        A :class:`RoiWindow`, or ``None`` when culling should fall back
        to the full image: no/invalid prior, the window would not
        shrink the image, or an empty predicted overlap
        (``d_q >= 2 u``) with ``cap_empty_overlap`` disabled.

    The window *size* is a function of the quantized scalar distance
    only, so the two cars of a pair (whose priors are exact inverses)
    always receive equal sizes — see the module docstring for why that
    matters.
    """
    config = config or RoiCullConfig(enabled=True)
    if not config.enabled or prior_xy is None:
        return None
    prior = np.asarray(prior_xy, dtype=float).reshape(-1)
    if prior.shape[0] < 2 or not np.all(np.isfinite(prior[:2])):
        return None
    u = config.useful_range
    distance = math.hypot(prior[0], prior[1])
    d_q = round(distance / config.quantize) * config.quantize
    if d_q >= 2.0 * u:
        if not config.cap_empty_overlap:
            return None  # no predicted overlap; match on the full image
        # Degenerate lens: a minimum window at the closest-approach
        # point t/2 (the size formula below bottoms out at min_size).
        half_m = config.margin
    else:
        half_m = (math.sqrt(max(u * u - 0.25 * d_q * d_q, 0.0))
                  + config.margin)
    size = int(math.ceil(2.0 * half_m / cell_size / config.align)) \
        * config.align
    size = max(size, config.min_size)
    if size >= image_size:
        return None  # cropping would not shrink the transform
    # Window center: the overlap-lens center t/2, in pixel coordinates
    # (the world_to_pixel mapping of repro.bev.projection).
    center_col = (prior[0] / 2.0 + lidar_range) / cell_size - 0.5
    center_row = (prior[1] / 2.0 + lidar_range) / cell_size - 0.5
    col0 = int(round(center_col - (size - 1) / 2.0))
    row0 = int(round(center_row - (size - 1) / 2.0))
    col0 = min(max(col0, 0), image_size - size)
    row0 = min(max(row0, 0), image_size - size)
    return RoiWindow(row0=row0, col0=col0, size=size)
