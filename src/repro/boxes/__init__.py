"""Oriented bounding boxes and the geometry of stage-2 alignment.

3-D detection boxes, their BEV (2-D rotated rectangle) projections,
rotated IoU via convex clipping, greedy overlap matching, the
consistently-ordered corner pairing of Section IV-B, and NMS for the
late-fusion detector of Table I.
"""

from repro.boxes.box import Box2D, Box3D
from repro.boxes.iou import bev_iou, iou_matrix
from repro.boxes.matching import (
    BoxMatch,
    corner_correspondences,
    match_boxes_by_overlap,
    pair_corners,
)
from repro.boxes.nms import non_max_suppression

__all__ = [
    "Box2D",
    "Box3D",
    "BoxMatch",
    "bev_iou",
    "corner_correspondences",
    "iou_matrix",
    "match_boxes_by_overlap",
    "non_max_suppression",
    "pair_corners",
]
