"""Oriented bounding boxes.

:class:`Box3D` is what an object detector outputs (center, dimensions,
yaw); :class:`Box2D` is its bird's-eye-view projection — the rotated
rectangle stage 2 of BB-Align aligns.  Corner ordering follows the paper's
requirement of a *consistent* sequence: corners are emitted in
counter-clockwise local order starting from (+length/2, +width/2), so two
views of the same box produce the same sequence up to a cyclic shift,
which :func:`repro.boxes.matching.pair_corners` resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.geometry.angles import wrap_to_pi
from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3

__all__ = ["Box2D", "Box3D"]

# Local-frame unit corners, CCW starting at front-left: the order every
# corner sequence in this codebase follows.
_UNIT_CORNERS = np.array([
    [0.5, 0.5],
    [-0.5, 0.5],
    [-0.5, -0.5],
    [0.5, -0.5],
])


@dataclass(frozen=True)
class Box2D:
    """A rotated rectangle on the ground plane.

    Attributes:
        center_x, center_y: BEV center in meters.
        length: extent along the heading axis.
        width: extent across the heading axis.
        yaw: heading angle in radians.
    """

    center_x: float
    center_y: float
    length: float
    width: float
    yaw: float

    def __post_init__(self) -> None:
        if self.length <= 0 or self.width <= 0:
            raise ValueError("box dimensions must be positive")
        object.__setattr__(self, "yaw", float(wrap_to_pi(self.yaw)))

    @property
    def center(self) -> np.ndarray:
        return np.array([self.center_x, self.center_y])

    @property
    def area(self) -> float:
        return self.length * self.width

    @property
    def diagonal(self) -> float:
        """Corner-to-corner distance; a cheap IoU prefilter radius."""
        return float(np.hypot(self.length, self.width))

    def corners(self) -> np.ndarray:
        """(4, 2) corner coordinates in the consistent CCW order."""
        local = _UNIT_CORNERS * np.array([self.length, self.width])
        c, s = np.cos(self.yaw), np.sin(self.yaw)
        rot = np.array([[c, -s], [s, c]])
        return local @ rot.T + self.center

    def transform(self, transform: SE2) -> "Box2D":
        """Express the box in a new frame."""
        new_center = transform.apply(self.center)
        return Box2D(float(new_center[0]), float(new_center[1]),
                     self.length, self.width,
                     float(transform.apply_angle(self.yaw)))

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of (N, 2) points inside the rectangle."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        rel = points - self.center
        c, s = np.cos(-self.yaw), np.sin(-self.yaw)
        local_x = c * rel[:, 0] - s * rel[:, 1]
        local_y = s * rel[:, 0] + c * rel[:, 1]
        return ((np.abs(local_x) <= self.length / 2.0)
                & (np.abs(local_y) <= self.width / 2.0))


@dataclass(frozen=True)
class Box3D:
    """A 3-D oriented box (ground-vehicle convention: yaw only).

    Attributes:
        center_x, center_y, center_z: box center in meters.
        length, width, height: extents along heading / across / vertical.
        yaw: heading angle in radians.
    """

    center_x: float
    center_y: float
    center_z: float
    length: float
    width: float
    height: float
    yaw: float

    def __post_init__(self) -> None:
        if min(self.length, self.width, self.height) <= 0:
            raise ValueError("box dimensions must be positive")
        object.__setattr__(self, "yaw", float(wrap_to_pi(self.yaw)))

    @property
    def center(self) -> np.ndarray:
        return np.array([self.center_x, self.center_y, self.center_z])

    @property
    def volume(self) -> float:
        return self.length * self.width * self.height

    def to_bev(self) -> Box2D:
        """Project to the BEV rotated rectangle (paper Algorithm 1, l.2)."""
        return Box2D(self.center_x, self.center_y, self.length, self.width,
                     self.yaw)

    def corners(self) -> np.ndarray:
        """(8, 3) corners: bottom face CCW then top face CCW, each
        following the consistent 2-D order."""
        bev = self.to_bev().corners()
        z_lo = self.center_z - self.height / 2.0
        z_hi = self.center_z + self.height / 2.0
        bottom = np.column_stack([bev, np.full(4, z_lo)])
        top = np.column_stack([bev, np.full(4, z_hi)])
        return np.vstack([bottom, top])

    def transform(self, transform: SE3 | SE2) -> "Box3D":
        """Express the box in a new frame (planar transforms keep z)."""
        if isinstance(transform, SE2):
            transform = SE3.from_se2(transform)
        new_center = transform.apply(self.center)
        new_yaw = wrap_to_pi(self.yaw + transform.yaw)
        return Box3D(float(new_center[0]), float(new_center[1]),
                     float(new_center[2]), self.length, self.width,
                     self.height, float(new_yaw))

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of (N, 3) points inside the box."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        in_bev = self.to_bev().contains(points[:, :2])
        in_z = np.abs(points[:, 2] - self.center_z) <= self.height / 2.0
        return in_bev & in_z

    def with_center(self, x: float, y: float, z: float | None = None) -> "Box3D":
        """Copy with a new center (z unchanged when omitted)."""
        return replace(self, center_x=float(x), center_y=float(y),
                       center_z=self.center_z if z is None else float(z))
