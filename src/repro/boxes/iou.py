"""Rotated-rectangle IoU.

Used twice: stage-2 overlap matching identifies "the same physical car
seen by both vehicles" through BEV IoU, and the Table I evaluation scores
detections against ground truth at IoU 0.5 / 0.7.
"""

from __future__ import annotations

import numpy as np

from repro.boxes.box import Box2D
from repro.geometry.polygon import convex_polygon_area, convex_polygon_clip

__all__ = ["bev_iou", "iou_matrix"]


def bev_iou(box_a: Box2D, box_b: Box2D) -> float:
    """Intersection-over-union of two rotated rectangles."""
    # Cheap reject: centers farther apart than the sum of half-diagonals
    # cannot intersect.
    center_dist = float(np.linalg.norm(box_a.center - box_b.center))
    if center_dist > (box_a.diagonal + box_b.diagonal) / 2.0:
        return 0.0
    inter_poly = convex_polygon_clip(box_a.corners(), box_b.corners())
    if len(inter_poly) < 3:
        return 0.0
    intersection = convex_polygon_area(inter_poly)
    union = box_a.area + box_b.area - intersection
    if union <= 0:
        return 0.0
    return float(np.clip(intersection / union, 0.0, 1.0))


def iou_matrix(boxes_a: list[Box2D], boxes_b: list[Box2D]) -> np.ndarray:
    """(len(a), len(b)) matrix of pairwise BEV IoUs.

    Applies the center-distance prefilter in one vectorized pass before
    computing exact polygon intersections for candidate pairs only.
    """
    if not boxes_a or not boxes_b:
        return np.zeros((len(boxes_a), len(boxes_b)))
    centers_a = np.array([b.center for b in boxes_a])
    centers_b = np.array([b.center for b in boxes_b])
    radius_a = np.array([b.diagonal / 2.0 for b in boxes_a])
    radius_b = np.array([b.diagonal / 2.0 for b in boxes_b])
    dists = np.linalg.norm(centers_a[:, None] - centers_b[None, :], axis=2)
    candidates = dists <= radius_a[:, None] + radius_b[None, :]

    result = np.zeros((len(boxes_a), len(boxes_b)))
    for i, j in zip(*np.nonzero(candidates)):
        result[i, j] = bev_iou(boxes_a[i], boxes_b[j])
    return result
