"""Rotated-rectangle IoU.

Used twice: stage-2 overlap matching identifies "the same physical car
seen by both vehicles" through BEV IoU, and the Table I evaluation scores
detections against ground truth at IoU 0.5 / 0.7.

:func:`iou_matrix` batches the exact geometry: candidate pairs survive a
vectorized center-distance prefilter, their rectangle intersections are
clipped together by
:func:`repro.geometry.polygon.convex_polygon_clip_batch`, and only the
per-polygon shoelace area stays scalar (its ``np.dot`` bits cannot be
reproduced by a batched reduction).  The matrix is bit-identical to
:func:`_reference_iou_matrix`'s ``bev_iou``-per-candidate loop —
``tests/test_sim_equivalence.py`` enforces this.
"""

from __future__ import annotations

import numpy as np

from repro.boxes.box import Box2D
from repro.geometry.polygon import (
    convex_polygon_area,
    convex_polygon_clip,
    convex_polygon_clip_batch,
)

__all__ = ["bev_iou", "iou_matrix"]


def bev_iou(box_a: Box2D, box_b: Box2D) -> float:
    """Intersection-over-union of two rotated rectangles."""
    # Cheap reject: centers farther apart than the sum of half-diagonals
    # cannot intersect.
    center_dist = float(np.linalg.norm(box_a.center - box_b.center))
    if center_dist > (box_a.diagonal + box_b.diagonal) / 2.0:
        return 0.0
    inter_poly = convex_polygon_clip(box_a.corners(), box_b.corners())
    if len(inter_poly) < 3:
        return 0.0
    intersection = convex_polygon_area(inter_poly)
    union = box_a.area + box_b.area - intersection
    if union <= 0:
        return 0.0
    return float(np.clip(intersection / union, 0.0, 1.0))


def iou_matrix(boxes_a: list[Box2D], boxes_b: list[Box2D]) -> np.ndarray:
    """(len(a), len(b)) matrix of pairwise BEV IoUs.

    Applies the center-distance prefilter in one vectorized pass, clips
    every candidate pair's rectangles in one batched Sutherland-Hodgman
    call, and evaluates :func:`bev_iou`'s remaining arithmetic on the
    gathered pair arrays — producing the same bytes as calling
    :func:`bev_iou` per candidate.

    The one intentional difference from the scalar formulas: candidate
    center distances come from the prefilter's batched norm rather than
    per-pair ``np.linalg.norm`` calls.  The two can disagree by an ulp,
    which only matters when a pair sits exactly on ``bev_iou``'s reject
    threshold — where the rectangles touch in at most a point and the
    IoU is 0.0 on both sides of the branch.
    """
    if not boxes_a or not boxes_b:
        return np.zeros((len(boxes_a), len(boxes_b)))
    centers_a = np.array([b.center for b in boxes_a])
    centers_b = np.array([b.center for b in boxes_b])
    radius_a = np.array([b.diagonal / 2.0 for b in boxes_a])
    radius_b = np.array([b.diagonal / 2.0 for b in boxes_b])
    dists = np.linalg.norm(centers_a[:, None] - centers_b[None, :], axis=2)
    candidates = dists <= radius_a[:, None] + radius_b[None, :]

    result = np.zeros((len(boxes_a), len(boxes_b)))
    cand_i, cand_j = np.nonzero(candidates)
    if len(cand_i) == 0:
        return result

    # bev_iou's own reject, on the gathered pair values.
    diag_a = np.array([b.diagonal for b in boxes_a])
    diag_b = np.array([b.diagonal for b in boxes_b])
    keep = ~(dists[cand_i, cand_j]
             > (diag_a[cand_i] + diag_b[cand_j]) / 2.0)
    cand_i, cand_j = cand_i[keep], cand_j[keep]
    if len(cand_i) == 0:
        return result

    corners_a = np.stack([b.corners() for b in boxes_a])
    corners_b = np.stack([b.corners() for b in boxes_b])
    verts, counts = convex_polygon_clip_batch(corners_a[cand_i],
                                              corners_b[cand_j])

    area_a = np.array([b.area for b in boxes_a])
    area_b = np.array([b.area for b in boxes_b])
    for p in range(len(cand_i)):
        if counts[p] < 3:
            continue
        intersection = convex_polygon_area(verts[p, :counts[p]])
        union = area_a[cand_i[p]] + area_b[cand_j[p]] - intersection
        if union <= 0:
            continue
        result[cand_i[p], cand_j[p]] = float(
            np.clip(intersection / union, 0.0, 1.0))
    return result


def _reference_iou_matrix(boxes_a: list[Box2D],
                          boxes_b: list[Box2D]) -> np.ndarray:
    """Pre-rework :func:`iou_matrix`: scalar ``bev_iou`` per candidate.

    Kept as the behavioral specification for the batched fast path
    (bit-identical contract).
    """
    if not boxes_a or not boxes_b:
        return np.zeros((len(boxes_a), len(boxes_b)))
    centers_a = np.array([b.center for b in boxes_a])
    centers_b = np.array([b.center for b in boxes_b])
    radius_a = np.array([b.diagonal / 2.0 for b in boxes_a])
    radius_b = np.array([b.diagonal / 2.0 for b in boxes_b])
    dists = np.linalg.norm(centers_a[:, None] - centers_b[None, :], axis=2)
    candidates = dists <= radius_a[:, None] + radius_b[None, :]

    result = np.zeros((len(boxes_a), len(boxes_b)))
    for i, j in zip(*np.nonzero(candidates)):
        result[i, j] = bev_iou(boxes_a[i], boxes_b[j])
    return result
