"""Box overlap matching and corner pairing (paper Section IV-B).

After stage 1, the other car's boxes land within a couple of meters of the
ego car's boxes for the same physical vehicles, so matching reduces to
greedy best-IoU assignment.  Corner pairing then turns each matched box
pair into four point correspondences.  Two detectors can disagree about a
car's *facing* (yaw off by pi) or, in pathological cases, swap
length/width; rather than trusting absolute corner order, the pairing
selects the cyclic shift of the CCW corner sequence that minimizes total
squared distance — exact when the order is consistent, robust when it is
not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.boxes.box import Box2D
from repro.boxes.iou import iou_matrix

__all__ = ["BoxMatch", "match_boxes_by_overlap", "pair_corners",
           "corner_correspondences"]


@dataclass(frozen=True)
class BoxMatch:
    """One matched box pair.

    Attributes:
        src_index: index into the source (other car, transformed) box list.
        dst_index: index into the destination (ego) box list.
        iou: BEV IoU at matching time.
    """

    src_index: int
    dst_index: int
    iou: float


def match_boxes_by_overlap(src_boxes: list[Box2D], dst_boxes: list[Box2D],
                           min_iou: float = 0.05) -> list[BoxMatch]:
    """Greedy one-to-one matching by descending BEV IoU.

    Args:
        src_boxes: other car's BEV boxes after the stage-1 transform.
        dst_boxes: ego car's BEV boxes.
        min_iou: overlap below this is not considered the same object.

    Returns:
        Matches sorted by decreasing IoU; each box appears at most once.
    """
    if not (0 < min_iou <= 1):
        raise ValueError("min_iou must be in (0, 1]")
    ious = iou_matrix(src_boxes, dst_boxes)
    matches: list[BoxMatch] = []
    if ious.size == 0:
        return matches
    used_src: set[int] = set()
    used_dst: set[int] = set()
    order = np.argsort(-ious, axis=None)
    for flat in order:
        i, j = np.unravel_index(flat, ious.shape)
        value = float(ious[i, j])
        if value < min_iou:
            break
        if i in used_src or j in used_dst:
            continue
        used_src.add(int(i))
        used_dst.add(int(j))
        matches.append(BoxMatch(int(i), int(j), value))
    return matches


def pair_corners(src_box: Box2D, dst_box: Box2D) -> tuple[np.ndarray, np.ndarray]:
    """Pair the four corners of two boxes describing the same object.

    Chooses the cyclic shift of the source corner sequence minimizing the
    total squared corner distance (both sequences are CCW, so cyclic
    shifts are the only rigid-consistent assignments).

    Returns:
        ``(src_corners, dst_corners)`` — two (4, 2) arrays where row ``k``
        of each is a corresponding pair.
    """
    src = src_box.corners()
    dst = dst_box.corners()
    best_shift = 0
    best_cost = np.inf
    for shift in range(4):
        cost = float(np.sum((np.roll(src, -shift, axis=0) - dst) ** 2))
        if cost < best_cost:
            best_cost = cost
            best_shift = shift
    return np.roll(src, -best_shift, axis=0), dst


def corner_correspondences(src_boxes: list[Box2D], dst_boxes: list[Box2D],
                           matches: list[BoxMatch]) -> tuple[np.ndarray, np.ndarray]:
    """Stack corner pairs from all matched boxes.

    Returns:
        ``(src_points, dst_points)`` of shape (4 * len(matches), 2), ready
        for RANSAC.
    """
    if not matches:
        return np.empty((0, 2)), np.empty((0, 2))
    src_all, dst_all = [], []
    for match in matches:
        s, d = pair_corners(src_boxes[match.src_index],
                            dst_boxes[match.dst_index])
        src_all.append(s)
        dst_all.append(d)
    return np.vstack(src_all), np.vstack(dst_all)
