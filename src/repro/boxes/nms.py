"""Non-maximum suppression on rotated BEV boxes.

Used by the late-fusion pipeline of Table I to merge the two cars'
detection lists, and by the clustering detection head to deduplicate
proposals.
"""

from __future__ import annotations

import numpy as np

from repro.boxes.box import Box2D
from repro.boxes.iou import bev_iou

__all__ = ["non_max_suppression"]


def non_max_suppression(boxes: list[Box2D], scores: np.ndarray,
                        iou_threshold: float = 0.3) -> list[int]:
    """Greedy NMS: keep the highest-scoring box, drop overlapping rivals.

    Args:
        boxes: candidate BEV boxes.
        scores: per-box confidence, same length as ``boxes``.
        iou_threshold: boxes overlapping a kept box above this are dropped.

    Returns:
        Indices of kept boxes, in decreasing-score order.
    """
    scores = np.asarray(scores, dtype=float)
    if len(boxes) != len(scores):
        raise ValueError("boxes and scores must have the same length")
    if not (0 < iou_threshold <= 1):
        raise ValueError("iou_threshold must be in (0, 1]")
    order = list(np.argsort(-scores, kind="stable"))
    kept: list[int] = []
    while order:
        current = order.pop(0)
        kept.append(int(current))
        survivors = []
        for other in order:
            if bev_iou(boxes[current], boxes[other]) <= iou_threshold:
                survivors.append(other)
        order = survivors
    return kept
