"""Command-line interface for the reproduction experiments.

Usage::

    python -m repro list
    python -m repro fig7 --pairs 100 --seed 2024
    python -m repro table1 --pairs 40
    python -m repro all --pairs 40 --output results/

Each experiment prints (and optionally saves) the same paper-style text
the benchmarks produce, at whatever scale ``--pairs`` selects.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable

from repro.experiments.ablations import format_ablations, run_ablations
from repro.experiments.bandwidth import format_bandwidth, run_bandwidth
from repro.experiments.fig7_comparison import format_fig7, run_fig7
from repro.experiments.fig8_common_cars import format_fig8, run_fig8
from repro.experiments.fig9_inliers import format_fig9, run_fig9
from repro.experiments.fig10_distance import format_fig10, run_fig10
from repro.experiments.fig11_bv_distance import format_fig11, run_fig11
from repro.experiments.fig12_box_common_cars import (
    format_fig12,
    run_fig12,
)
from repro.experiments.fig13_detector_model import format_fig13, run_fig13
from repro.experiments.fig14_ablation import format_fig14, run_fig14
from repro.experiments.icp_study import format_icp_study, run_icp_study
from repro.experiments.multi_study import format_multi_study, run_multi_study
from repro.experiments.noise_sweep import format_noise_sweep, run_noise_sweep
from repro.experiments.submap_study import format_submap_study, run_submap_study
from repro.experiments.success_rate import (
    format_success_rate,
    run_success_rate,
)
from repro.experiments.table1_detection import format_table1, run_table1
from repro.simulation.statistics import format_dataset_stats, run_dataset_stats
from repro.experiments.tracking_study import (
    format_tracking_study,
    run_tracking_study,
)

__all__ = ["main", "EXPERIMENTS"]

# name -> (runner(num_pairs, seed) -> result, formatter, description)
EXPERIMENTS: dict[str, tuple[Callable, Callable, str]] = {
    "fig7": (run_fig7, format_fig7, "BB-Align vs VIPS error CDFs"),
    "fig8": (run_fig8, format_fig8, "translation error vs common cars"),
    "fig9": (run_fig9, format_fig9, "accuracy vs RANSAC inlier counts"),
    "success-rate": (run_success_rate, format_success_rate,
                     "Sec. V-A success-rate analysis"),
    "fig10": (run_fig10, format_fig10, "accuracy vs distance"),
    "fig11": (run_fig11, format_fig11, "stage-1-only accuracy vs distance"),
    "fig12": (run_fig12, format_fig12,
              "box-alignment accuracy vs common cars"),
    "fig13": (run_fig13, format_fig13, "detector-model impact"),
    "table1": (run_table1, format_table1,
               "cooperative detection AP, noisy vs recovered pose"),
    "fig14": (run_fig14, format_fig14, "box-alignment ablation"),
    "bandwidth": (run_bandwidth, format_bandwidth,
                  "message size vs raw point cloud"),
    "ablations": (run_ablations, format_ablations,
                  "design-choice ablations (extension)"),
    "icp": (run_icp_study, format_icp_study,
            "ICP comparison (Sec. II claims)"),
    "tracking": (run_tracking_study, format_tracking_study,
                 "temporal tracking over drive sequences (extension)"),
    "multi": (run_multi_study, format_multi_study,
              "multi-vehicle pose-graph alignment (extension)"),
    "dataset-stats": (run_dataset_stats, format_dataset_stats,
                      "simulated-dataset characterization"),
    "submap": (run_submap_study, format_submap_study,
               "submap accumulation at long range (extension)"),
    "noise-sweep": (run_noise_sweep, format_noise_sweep,
                    "AP vs pose-noise severity (extension)"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BB-Align (ICDCS 2024) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--pairs", type=int, default=40,
                        help="dataset pairs to evaluate (default 40)")
    common.add_argument("--seed", type=int, default=2024,
                        help="dataset seed (default 2024)")
    common.add_argument("--output", type=pathlib.Path, default=None,
                        help="directory to also write <name>.txt into")

    for name, (_, _, description) in EXPERIMENTS.items():
        sub.add_parser(name, parents=[common], help=description)
    sub.add_parser("all", parents=[common],
                   help="run every experiment in sequence")
    return parser


def _run_one(name: str, pairs: int, seed: int,
             output: pathlib.Path | None) -> str:
    runner, formatter, _ = EXPERIMENTS[name]
    text = formatter(runner(num_pairs=pairs, seed=seed))
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{name}.txt").write_text(text + "\n")
    return text


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        width = max(len(n) for n in EXPERIMENTS)
        for name, (_, _, description) in EXPERIMENTS.items():
            print(f"{name:<{width}}  {description}")
        return 0
    names = list(EXPERIMENTS) if args.command == "all" else [args.command]
    for name in names:
        print(_run_one(name, args.pairs, args.seed, args.output))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
