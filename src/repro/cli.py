"""Command-line interface for the reproduction experiments.

Usage::

    python -m repro list
    python -m repro fig7 --pairs 100 --seed 2024
    python -m repro fig7 --pairs 100 --workers 4 --timings
    python -m repro table1 --pairs 40
    python -m repro success-rate --pairs 40 --profile
    python -m repro all --pairs 40 --output results/

Experiments are resolved through :mod:`repro.experiments.registry` —
the CLI imports no experiment module directly; each registers itself as
an :class:`~repro.experiments.registry.ExperimentSpec` on import.
``--workers`` shards sweep-backed experiments over a process pool,
``--timings`` prints the per-stage :class:`~repro.runtime.SweepTimings`
report after each experiment, ``--trace out.jsonl`` exports the run's
spans and metrics as JSON lines (see ``docs/api.md`` for the schema;
with ``all``, one file per experiment via a ``-<name>`` suffix), and
``--profile [N]`` runs the experiment under :mod:`cProfile` and appends
the top N functions by cumulative time (default 25).
"""

from __future__ import annotations

import argparse
import contextlib
import cProfile
import io
import pathlib
import pstats
import sys

from repro.experiments.registry import all_specs, get_spec
from repro.obs.export import trace_session
from repro.obs.metrics import active_registry
from repro.runtime.timings import collect_timings

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BB-Align (ICDCS 2024) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--pairs", type=int, default=40,
                        help="dataset pairs to evaluate (default 40)")
    common.add_argument("--seed", type=int, default=2024,
                        help="dataset seed (default 2024)")
    common.add_argument("--workers", type=int, default=1,
                        help="processes to shard sweeps over; 1 = serial "
                             "(default), 0 = host CPU count")
    common.add_argument("--timings", action="store_true",
                        help="print the per-stage wall-time report")
    common.add_argument("--profile", nargs="?", type=int, const=25,
                        default=None, metavar="N",
                        help="run under cProfile and print the top N "
                             "functions by cumulative time (default 25)")
    common.add_argument("--output", type=pathlib.Path, default=None,
                        help="directory to also write <name>.txt into")
    common.add_argument("--trace", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="export trace spans and metrics to a "
                             "JSON-lines file (schema in docs/api.md)")

    for spec in all_specs():
        spec_parser = sub.add_parser(spec.name, parents=[common],
                                     help=spec.description)
        if spec.cli_options is not None:
            spec.cli_options(spec_parser)
    sub.add_parser("all", parents=[common],
                   help="run every experiment in sequence")
    return parser


def _profile_report(profiler: cProfile.Profile, top: int) -> str:
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return buffer.getvalue().rstrip()


def _run_one(name: str, pairs: int, seed: int, workers: int,
             timings: bool, output: pathlib.Path | None,
             profile: int | None = None,
             trace: pathlib.Path | None = None,
             extra: dict | None = None) -> str:
    spec = get_spec(name)
    extra = extra or {}
    profiler = cProfile.Profile() if profile is not None else None

    def _invoke():
        if profiler is not None:
            profiler.enable()
        try:
            return spec.run(pairs, seed, workers=workers, **extra)
        finally:
            if profiler is not None:
                profiler.disable()

    trace_cm = (trace_session(trace, command=name, pairs=pairs, seed=seed,
                              workers=workers)
                if trace is not None else contextlib.nullcontext())
    with trace_cm:
        if timings or trace is not None:
            # Tracing always collects timings: the sweep records its
            # stage seconds and pipeline counters into the report's
            # registry, which folds into the trace session's on exit.
            with collect_timings() as report:
                result = _invoke()
            if trace is not None:
                registry = active_registry()
                if registry is not None:
                    registry.merge(report.registry)
            text = spec.format(result)
            if timings:
                text += "\n\n" + report.format()
        else:
            text = spec.format(_invoke())
    if profiler is not None:
        text += "\n\n" + _profile_report(profiler, profile)
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{name}.txt").write_text(text + "\n")
    return text


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        specs = all_specs()
        width = max(len(spec.name) for spec in specs)
        for spec in specs:
            print(f"{spec.name:<{width}}  {spec.description}")
        return 0
    names = ([spec.name for spec in all_specs()]
             if args.command == "all" else [args.command])
    for name in names:
        trace = args.trace
        if trace is not None and len(names) > 1:
            # One trace session per experiment: suffix the stem so "all"
            # does not overwrite earlier experiments' traces.
            trace = trace.with_name(f"{trace.stem}-{name}{trace.suffix}")
        # Experiment-specific flags only exist on that experiment's own
        # subcommand namespace ("all" runs everything with defaults).
        extra = {dest: getattr(args, dest)
                 for dest in get_spec(name).cli_option_dests
                 if getattr(args, dest, None) is not None}
        print(_run_one(name, args.pairs, args.seed, args.workers,
                       args.timings, args.output, args.profile, trace,
                       extra))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
