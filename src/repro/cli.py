"""Command-line interface for the reproduction experiments.

Usage::

    python -m repro list
    python -m repro fig7 --pairs 100 --seed 2024
    python -m repro fig7 --pairs 100 --workers 4 --timings
    python -m repro table1 --pairs 40
    python -m repro success-rate --pairs 40 --profile
    python -m repro all --pairs 40 --output results/

Experiments are resolved through :mod:`repro.experiments.registry` —
the CLI imports no experiment module directly; each registers itself as
an :class:`~repro.experiments.registry.ExperimentSpec` on import.
``--workers`` shards sweep-backed experiments over a process pool,
``--timings`` prints the per-stage :class:`~repro.runtime.SweepTimings`
report after each experiment, ``--trace out.jsonl`` exports the run's
spans and metrics as JSON lines (see ``docs/api.md`` for the schema;
with ``all``, one file per experiment via a ``-<name>`` suffix), and
``--profile [N]`` runs the experiment under :mod:`cProfile` and appends
the top N functions by cumulative time (default 25).

Two non-experiment subcommands expose the always-on pose service
(:mod:`repro.service`)::

    python -m repro serve --port 9000 --workers 2
    python -m repro service-load --port 9000 --requests 200
    python -m repro service-load --standalone --requests 50 --json out.json

``serve`` runs :class:`~repro.service.core.PoseService` behind the TCP
transport until SIGTERM/SIGINT, then drains gracefully (every admitted
request gets its real response before the pool closes).  ``--chaos
KIND:IDX[,IDX...]`` injects a fire-once worker fault — the lever the CI
smoke uses to prove a killed worker is restarted mid-serve.  The data
plane is tunable: ``--shm/--no-shm`` toggles the shared-memory scan
transport, ``--cache-mb`` sizes the per-worker feature cache,
``--adaptive-batch`` lets queue depth drive the micro-batch shape, and
``--trace PATH`` exports per-request span trees.
``service-load`` is the closed-loop load client; ``--standalone`` runs
service and load in one process (no TCP), ``--warmup`` absorbs cold
pool costs before the timed window, and ``--json`` writes the
:class:`~repro.service.load.LoadSummary` for the benchmark gate.
"""

from __future__ import annotations

import argparse
import contextlib
import cProfile
import io
import pathlib
import pstats
import sys

from repro.experiments.registry import all_specs, get_spec
from repro.obs.export import trace_session
from repro.obs.metrics import active_registry
from repro.runtime.timings import collect_timings

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BB-Align (ICDCS 2024) reproduction experiments")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--pairs", type=int, default=40,
                        help="dataset pairs to evaluate (default 40)")
    common.add_argument("--seed", type=int, default=2024,
                        help="dataset seed (default 2024)")
    common.add_argument("--workers", type=int, default=1,
                        help="processes to shard sweeps over; 1 = serial "
                             "(default), 0 = host CPU count")
    common.add_argument("--timings", action="store_true",
                        help="print the per-stage wall-time report")
    common.add_argument("--profile", nargs="?", type=int, const=25,
                        default=None, metavar="N",
                        help="run under cProfile and print the top N "
                             "functions by cumulative time (default 25)")
    common.add_argument("--output", type=pathlib.Path, default=None,
                        help="directory to also write <name>.txt into")
    common.add_argument("--trace", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="export trace spans and metrics to a "
                             "JSON-lines file (schema in docs/api.md)")

    for spec in all_specs():
        spec_parser = sub.add_parser(spec.name, parents=[common],
                                     help=spec.description)
        if spec.cli_options is not None:
            spec.cli_options(spec_parser)
    sub.add_parser("all", parents=[common],
                   help="run every experiment in sequence")

    serve = sub.add_parser(
        "serve", help="run the always-on pose service over TCP")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="listen port; 0 binds an ephemeral port "
                            "(the bound port is printed)")
    serve.add_argument("--pairs", type=int, default=40,
                       help="dataset pairs indexed requests resolve "
                            "against (default 40)")
    serve.add_argument("--seed", type=int, default=2024,
                       help="dataset seed (default 2024)")
    serve.add_argument("--workers", type=int, default=2,
                       help="pool processes (default 2)")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="bounded admission queue depth (default 32)")
    serve.add_argument("--batch-size", type=int, default=4,
                       help="max requests per worker dispatch (default 4)")
    serve.add_argument("--batch-timeout", type=float, default=30.0,
                       help="seconds before a batch counts as hung "
                            "(default 30)")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-request deadline in seconds "
                            "(default: none)")
    serve.add_argument("--chaos", default=None, metavar="KIND:IDX[,IDX...]",
                       help="inject a fire-once worker fault "
                            "(kill/hang/raise) at the given pair indices")
    serve.add_argument("--hang-seconds", type=float, default=6.0,
                       help="stall duration of an injected hang fault")
    serve.add_argument("--shm", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="carry scan-pair batches through shared "
                            "memory (default on; --no-shm pickles them)")
    serve.add_argument("--cache-mb", type=float, default=64.0,
                       help="per-worker feature cache budget in MiB "
                            "(default 64; 0 disables)")
    serve.add_argument("--adaptive-batch", action="store_true",
                       help="drive batch size/window from queue depth "
                            "instead of the fixed --batch-size")
    serve.add_argument("--trace", type=pathlib.Path, default=None,
                       metavar="PATH",
                       help="export per-request trace spans to a "
                            "JSON-lines file (schema in docs/api.md)")

    load = sub.add_parser(
        "service-load",
        help="closed-loop load client for the pose service")
    load.add_argument("--host", default="127.0.0.1")
    load.add_argument("--port", type=int, default=None,
                      help="port of a running `repro serve`")
    load.add_argument("--standalone", action="store_true",
                      help="run an in-process service instead of "
                           "connecting over TCP")
    load.add_argument("--requests", type=int, default=40,
                      help="total requests to attempt (default 40)")
    load.add_argument("--concurrency", type=int, default=4,
                      help="simultaneous virtual clients (default 4)")
    load.add_argument("--pairs", type=int, default=40,
                      help="indexed requests cycle 0..pairs-1 "
                           "(default 40)")
    load.add_argument("--seed", type=int, default=2024,
                      help="dataset seed for --standalone (default 2024)")
    load.add_argument("--workers", type=int, default=2,
                      help="pool processes for --standalone (default 2)")
    load.add_argument("--deadline-ms", type=int, default=0,
                      help="per-request deadline in ms (0 = none)")
    load.add_argument("--warmup", type=int, default=-1, metavar="N",
                      help="uncounted warmup requests before the timed "
                           "window (default: one per worker for "
                           "--standalone, 0 over TCP)")
    load.add_argument("--json", type=pathlib.Path, default=None,
                      metavar="PATH",
                      help="also write the summary as JSON")
    return parser


def _profile_report(profiler: cProfile.Profile, top: int) -> str:
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(top)
    return buffer.getvalue().rstrip()


def _run_one(name: str, pairs: int, seed: int, workers: int,
             timings: bool, output: pathlib.Path | None,
             profile: int | None = None,
             trace: pathlib.Path | None = None,
             extra: dict | None = None) -> str:
    spec = get_spec(name)
    extra = extra or {}
    profiler = cProfile.Profile() if profile is not None else None

    def _invoke():
        if profiler is not None:
            profiler.enable()
        try:
            return spec.run(pairs, seed, workers=workers, **extra)
        finally:
            if profiler is not None:
                profiler.disable()

    trace_cm = (trace_session(trace, command=name, pairs=pairs, seed=seed,
                              workers=workers)
                if trace is not None else contextlib.nullcontext())
    with trace_cm:
        if timings or trace is not None:
            # Tracing always collects timings: the sweep records its
            # stage seconds and pipeline counters into the report's
            # registry, which folds into the trace session's on exit.
            with collect_timings() as report:
                result = _invoke()
            if trace is not None:
                registry = active_registry()
                if registry is not None:
                    registry.merge(report.registry)
            text = spec.format(result)
            if timings:
                text += "\n\n" + report.format()
        else:
            text = spec.format(_invoke())
    if profiler is not None:
        text += "\n\n" + _profile_report(profiler, profile)
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        (output / f"{name}.txt").write_text(text + "\n")
    return text


def _parse_fault(spec: str, hang_seconds: float):
    """``KIND:IDX[,IDX...]`` → a fire-once :class:`WorkerFault`."""
    import tempfile

    from repro.runtime.faults import WorkerFault
    kind, _, raw = spec.partition(":")
    try:
        indices = tuple(int(part) for part in raw.split(","))
    except ValueError:
        raise SystemExit(
            f"--chaos expects KIND:IDX[,IDX...], got {spec!r}") from None
    return WorkerFault(kind=kind, indices=indices,
                       once_dir=tempfile.mkdtemp(prefix="repro-chaos-"),
                       hang_seconds=hang_seconds)


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.service import PoseService, ServiceConfig, ServiceServer
    from repro.simulation.dataset import DatasetConfig

    fault = (_parse_fault(args.chaos, args.hang_seconds)
             if args.chaos is not None else None)
    config = ServiceConfig(
        dataset_config=DatasetConfig(num_pairs=args.pairs, seed=args.seed),
        workers=args.workers, queue_limit=args.queue_limit,
        batch_size=args.batch_size, batch_timeout=args.batch_timeout,
        default_deadline=args.deadline, fault=fault,
        use_shm=args.shm, worker_cache_mb=args.cache_mb,
        adaptive_batch=args.adaptive_batch)

    async def run() -> None:
        service = PoseService(config)
        await service.start()
        server = ServiceServer(service, args.host, args.port)
        await server.start()
        print(f"pose service listening on {server.host}:{server.port} "
              f"({config.workers} workers, queue {config.queue_limit})",
              flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        await stop.wait()
        # Graceful drain: close the listener first, then let queued and
        # in-flight requests run to their real responses.
        print("draining ...", flush=True)
        await server.stop()
        await service.stop()
        registry = active_registry()
        if registry is not None:
            # Fold the service's instruments into the trace session so
            # the export carries the run's counters alongside its spans.
            registry.merge(service.registry)
        print("drained; " + " ".join(
            f"{key.removeprefix('service/')}={value}" for key, value
            in service.registry.counter_values("service/").items()),
            flush=True)

    trace_cm = (trace_session(args.trace, command="serve",
                              pairs=args.pairs, seed=args.seed,
                              workers=args.workers)
                if args.trace is not None else contextlib.nullcontext())
    with trace_cm:
        # The service captures the ambient trace collector in start();
        # per-request spans stitch under this session's root.
        asyncio.run(run())
    return 0


def _cmd_service_load(args) -> int:
    import asyncio
    import json

    from repro.service import (
        PoseService,
        ServiceClient,
        ServiceConfig,
        run_load,
    )
    from repro.simulation.dataset import DatasetConfig

    async def run():
        if args.standalone:
            # Warm the pool once before the timed window (workers build
            # their pipeline on first use; unwarmed, that cost lands on
            # the first few latency samples and skews every percentile).
            warmup = (args.warmup if args.warmup >= 0
                      else (args.workers or 2))
            config = ServiceConfig(
                dataset_config=DatasetConfig(num_pairs=args.pairs,
                                             seed=args.seed),
                workers=args.workers)
            async with PoseService(config) as service:
                return await run_load(
                    service.submit, requests=args.requests,
                    concurrency=args.concurrency, num_pairs=args.pairs,
                    deadline_ms=args.deadline_ms, warmup=warmup)
        if args.port is None:
            raise SystemExit("service-load needs --port (or --standalone)")
        client = await ServiceClient.connect(args.host, args.port)
        try:
            return await run_load(
                client.request, requests=args.requests,
                concurrency=args.concurrency, num_pairs=args.pairs,
                deadline_ms=args.deadline_ms,
                warmup=max(args.warmup, 0))
        finally:
            await client.close()

    summary = asyncio.run(run())
    print(summary.format())
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(summary.to_dict(), indent=2)
                             + "\n")
    # Unhandled errors are the one thing the load client must never
    # see — the exit code is the soak contract in miniature.
    return 0 if summary.errors == 0 else 1


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "service-load":
        return _cmd_service_load(args)
    if args.command == "list":
        specs = all_specs()
        width = max(len(spec.name) for spec in specs)
        for spec in specs:
            print(f"{spec.name:<{width}}  {spec.description}")
        return 0
    names = ([spec.name for spec in all_specs()]
             if args.command == "all" else [args.command])
    for name in names:
        trace = args.trace
        if trace is not None and len(names) > 1:
            # One trace session per experiment: suffix the stem so "all"
            # does not overwrite earlier experiments' traces.
            trace = trace.with_name(f"{trace.stem}-{name}{trace.suffix}")
        # Experiment-specific flags only exist on that experiment's own
        # subcommand namespace ("all" runs everything with defaults).
        extra = {dest: getattr(args, dest)
                 for dest in get_spec(name).cli_option_dests
                 if getattr(args, dest, None) is not None}
        print(_run_one(name, args.pairs, args.seed, args.workers,
                       args.timings, args.output, args.profile, trace,
                       extra))
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
