"""V2V message serialization, tiered compression, and the fault model.

The paper's bandwidth argument (Sec. III) rests on the BV image being
"highly compressed" relative to raw lidar.  This package makes the claim
concrete — and measurable — along three axes:

* **Wire formats** — :mod:`repro.comms.codec` defines the quantized,
  zero-run-length-encoded BV image plus fixed-point boxes, each framed
  with a CRC32 integrity field; :mod:`repro.comms.tiers` generalizes it
  to four fidelity rungs (full scan > BV image > keypoints > boxes-only)
  behind one :class:`Tier` enum and codec registry.
* **Accounting** — :mod:`repro.comms.accounting` counts encoded vs dense
  payload bytes per tier, into the ambient metrics registry (so
  ``--timings`` reports KB per pair) and into standalone
  :class:`CommLedger` objects for the bandwidth grid.
* **Faults and adaptation** — :mod:`repro.comms.channel` is the seeded
  :class:`LossyChannel` that drops, truncates, corrupts and delays
  messages; :mod:`repro.comms.policy` is the hysteresis controller that
  steps the tier ladder in response.
"""

from repro.comms.accounting import CommLedger, record_received, record_sent
from repro.comms.channel import Delivery, LossyChannel
from repro.comms.codec import (
    CodecError,
    decode_bv_image,
    decode_boxes,
    encode_bv_image,
    encode_boxes,
)
from repro.comms.envelope import (
    ServiceRequest,
    ServiceResponse,
    decode_request,
    decode_response,
    sniff_envelope,
)
from repro.comms.message import V2VMessage
from repro.comms.policy import TIER_LADDER, AdaptiveTierPolicy
from repro.comms.tiers import (
    KeypointPayload,
    Tier,
    TierCodecConfig,
    TieredMessage,
    build_message,
    decode_message,
    encode_message,
    sniff_tier,
)

__all__ = [
    "AdaptiveTierPolicy",
    "CodecError",
    "CommLedger",
    "Delivery",
    "KeypointPayload",
    "LossyChannel",
    "ServiceRequest",
    "ServiceResponse",
    "TIER_LADDER",
    "Tier",
    "TierCodecConfig",
    "TieredMessage",
    "V2VMessage",
    "build_message",
    "decode_boxes",
    "decode_bv_image",
    "decode_message",
    "decode_request",
    "decode_response",
    "encode_boxes",
    "encode_bv_image",
    "encode_message",
    "record_received",
    "record_sent",
    "sniff_envelope",
    "sniff_tier",
]
