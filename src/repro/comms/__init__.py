"""V2V message serialization.

The paper's bandwidth argument (Sec. III) rests on the BV image being
"highly compressed" relative to raw lidar.  This package makes the claim
concrete: it defines the actual wire format a BB-Align deployment would
transmit — a quantized, zero-run-length-encoded BV image plus fixed-point
boxes — and measures real encoded sizes.
"""

from repro.comms.codec import (
    decode_bv_image,
    decode_boxes,
    encode_bv_image,
    encode_boxes,
)
from repro.comms.message import V2VMessage

__all__ = [
    "V2VMessage",
    "decode_boxes",
    "decode_bv_image",
    "encode_boxes",
    "encode_bv_image",
]
