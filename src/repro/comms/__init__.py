"""V2V message serialization and the lossy-channel fault model.

The paper's bandwidth argument (Sec. III) rests on the BV image being
"highly compressed" relative to raw lidar.  This package makes the claim
concrete: it defines the actual wire format a BB-Align deployment would
transmit — a quantized, zero-run-length-encoded BV image plus fixed-point
boxes, each framed with a CRC32 integrity field — and measures real
encoded sizes.  :mod:`repro.comms.channel` adds the matching fault model:
a seeded :class:`LossyChannel` that drops, truncates, corrupts and delays
encoded messages, feeding the robustness sweep and the degradation ladder
in :mod:`repro.core.pipeline`.
"""

from repro.comms.channel import Delivery, LossyChannel
from repro.comms.codec import (
    CodecError,
    decode_bv_image,
    decode_boxes,
    encode_bv_image,
    encode_boxes,
)
from repro.comms.message import V2VMessage

__all__ = [
    "CodecError",
    "Delivery",
    "LossyChannel",
    "V2VMessage",
    "decode_boxes",
    "decode_bv_image",
    "encode_boxes",
    "encode_bv_image",
]
