"""Per-message byte accounting for the comms layer.

Two consumers, one vocabulary:

* **Ambient counters** — :func:`record_sent` / :func:`record_received`
  push per-tier byte and message counters into whatever
  :class:`~repro.obs.metrics.MetricsRegistry` is installed (no-ops
  otherwise).  Because sweeps install their timing registry around the
  hot loop, ``--timings`` and ``--trace`` report KB per pair for free.
* **Explicit ledgers** — :class:`CommLedger` aggregates the same facts
  into a standalone object for code that needs totals without a
  registry (the bandwidth grid experiment tallies one ledger per cell).

"Encoded bytes" are what crossed the wire (post quantization + zlib);
"payload bytes" are the dense single-precision cost of the same content
(see :func:`repro.comms.tiers.dense_payload_bytes`), so
``payload / encoded`` is the per-tier compression ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import counter

__all__ = ["record_sent", "record_received", "CommLedger", "TierTally"]


def record_sent(tier: str, encoded_bytes: int, payload_bytes: int) -> None:
    """Count one encoded message against the ambient registry."""
    counter("comms/messages_sent").inc()
    counter("comms/bytes/encoded").inc(encoded_bytes)
    counter("comms/bytes/payload").inc(payload_bytes)
    counter(f"comms/tier/{tier}/messages").inc()
    counter(f"comms/tier/{tier}/bytes").inc(encoded_bytes)


def record_received(tier: str | None, num_bytes: int, ok: bool) -> None:
    """Count one receive attempt (``tier`` is None when undecodable)."""
    counter("comms/messages_received").inc()
    counter("comms/bytes/received").inc(num_bytes)
    counter("comms/decode/ok" if ok else "comms/decode/error").inc()
    if tier is not None:
        counter(f"comms/tier/{tier}/received").inc()


@dataclass
class TierTally:
    """Accumulated sends for one tier."""

    messages: int = 0
    encoded_bytes: int = 0
    payload_bytes: int = 0

    @property
    def mean_encoded_bytes(self) -> float:
        return self.encoded_bytes / self.messages if self.messages else 0.0

    @property
    def compression_ratio(self) -> float:
        return (self.payload_bytes / self.encoded_bytes
                if self.encoded_bytes else 0.0)


@dataclass
class CommLedger:
    """Standalone accountant mirroring the ambient counters.

    Feed it from the sender loop (:meth:`sent`) and receiver loop
    (:meth:`received`); read totals directly or via :meth:`snapshot`.
    """

    messages_sent: int = 0
    messages_received: int = 0
    encoded_bytes: int = 0
    payload_bytes: int = 0
    received_bytes: int = 0
    decode_errors: int = 0
    tiers: dict[str, TierTally] = field(default_factory=dict)

    def sent(self, tier: str, encoded_bytes: int,
             payload_bytes: int) -> None:
        self.messages_sent += 1
        self.encoded_bytes += encoded_bytes
        self.payload_bytes += payload_bytes
        tally = self.tiers.setdefault(tier, TierTally())
        tally.messages += 1
        tally.encoded_bytes += encoded_bytes
        tally.payload_bytes += payload_bytes

    def received(self, num_bytes: int, ok: bool = True) -> None:
        self.messages_received += 1
        self.received_bytes += num_bytes
        if not ok:
            self.decode_errors += 1

    @property
    def mean_encoded_bytes(self) -> float:
        return (self.encoded_bytes / self.messages_sent
                if self.messages_sent else 0.0)

    @property
    def compression_ratio(self) -> float:
        return (self.payload_bytes / self.encoded_bytes
                if self.encoded_bytes else 0.0)

    def snapshot(self) -> dict:
        """JSON-ready totals (used by the bandwidth grid artifact)."""
        return {
            "messages_sent": self.messages_sent,
            "messages_received": self.messages_received,
            "encoded_bytes": self.encoded_bytes,
            "payload_bytes": self.payload_bytes,
            "received_bytes": self.received_bytes,
            "decode_errors": self.decode_errors,
            "mean_encoded_bytes": round(self.mean_encoded_bytes, 1),
            "compression_ratio": round(self.compression_ratio, 2),
            "tiers": {
                name: {
                    "messages": tally.messages,
                    "encoded_bytes": tally.encoded_bytes,
                    "mean_encoded_bytes":
                        round(tally.mean_encoded_bytes, 1),
                    "compression_ratio":
                        round(tally.compression_ratio, 2),
                }
                for name, tally in sorted(self.tiers.items())
            },
        }
