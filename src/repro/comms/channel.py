"""A seeded lossy V2V channel for fault injection.

Real DSRC/C-V2X links drop, damage and delay frames; BB-Align's
robustness story rests on the receiver surviving every one of those
impairments.  :class:`LossyChannel` models the four failure modes the
robustness sweep exercises, each independently configurable and fully
deterministic under a seeded generator:

* **packet drop** — the message never arrives (``payload is None``);
* **truncation** — the tail of the buffer is cut at a random point
  (a partially received frame);
* **bit-flip corruption** — each byte is independently XOR-damaged with
  probability ``corruption_rate`` (channel noise; the CRC32 in the wire
  format catches every such flip);
* **staleness** — the frame is delivered late by 1..``max_delay_frames``
  frames (queueing/retransmission delay); the payload itself is intact
  and consumers decide whether a stale pose is still usable.

The impairment draw order is fixed (drop, staleness, truncation,
corruption) so a given ``(config, rng stream)`` always produces the same
:class:`Delivery` — the property the seeded robustness sweep relies on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Delivery", "LossyChannel"]


@dataclass(frozen=True)
class Delivery:
    """What came out of the channel for one transmitted message.

    Attributes:
        payload: the (possibly damaged) received bytes, or ``None`` when
            the message was dropped.
        dropped: the message never arrived.
        truncated: the tail of the buffer was cut.
        corrupted_bytes: number of bytes damaged by bit flips.
        delay_frames: frames of staleness (0 = fresh).
    """

    payload: bytes | None
    dropped: bool = False
    truncated: bool = False
    corrupted_bytes: int = 0
    delay_frames: int = 0

    @property
    def delivered(self) -> bool:
        """The receiver got *some* buffer (possibly damaged or stale)."""
        return self.payload is not None

    @property
    def impaired(self) -> bool:
        """Anything at all happened to the message in flight."""
        return (self.dropped or self.truncated
                or self.corrupted_bytes > 0 or self.delay_frames > 0)


@dataclass(frozen=True)
class LossyChannel:
    """A configurable impairment model over encoded V2V messages.

    Attributes:
        drop_rate: probability the message is lost entirely.
        truncation_rate: probability the buffer is cut at a uniform
            random byte position.
        corruption_rate: per-byte probability of an XOR bit flip.
        stale_rate: probability the frame arrives 1..``max_delay_frames``
            frames late.
        max_delay_frames: staleness ceiling.
        seed: default randomness when :meth:`transmit` is not handed an
            explicit generator.
    """

    drop_rate: float = 0.0
    truncation_rate: float = 0.0
    corruption_rate: float = 0.0
    stale_rate: float = 0.0
    max_delay_frames: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "truncation_rate", "corruption_rate",
                     "stale_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.max_delay_frames < 1:
            raise ValueError("max_delay_frames must be >= 1")

    @property
    def lossless(self) -> bool:
        """True when every impairment is disabled — ``transmit`` then
        returns the input bytes unchanged (and draws no randomness)."""
        return (self.drop_rate == 0.0 and self.truncation_rate == 0.0
                and self.corruption_rate == 0.0 and self.stale_rate == 0.0)

    def transmit(self, data: bytes,
                 rng: np.random.Generator | int | None = None) -> Delivery:
        """Push one encoded message through the channel.

        Args:
            data: the sender's encoded bytes.
            rng: randomness for this transmission.  Sweeps pass a
                per-pair spawn-key generator so outcomes do not depend
                on evaluation order; ``None`` derives one from the
                channel's own ``seed``.

        Returns:
            A :class:`Delivery`; ``payload`` is ``None`` on drop.
        """
        if self.lossless:
            return Delivery(payload=data)
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(self.seed if rng is None else rng)

        # Fixed draw order keeps a given stream's outcome well-defined.
        if rng.random() < self.drop_rate:
            return Delivery(payload=None, dropped=True)

        delay = 0
        if self.stale_rate > 0.0 and rng.random() < self.stale_rate:
            delay = int(rng.integers(1, self.max_delay_frames + 1))

        buffer = bytearray(data)
        truncated = False
        if (self.truncation_rate > 0.0 and len(buffer)
                and rng.random() < self.truncation_rate):
            cut = int(rng.integers(0, len(buffer)))
            del buffer[cut:]
            truncated = True

        corrupted = 0
        if self.corruption_rate > 0.0 and len(buffer):
            hits = np.flatnonzero(rng.random(len(buffer))
                                  < self.corruption_rate)
            if len(hits):
                flips = rng.integers(1, 256, size=len(hits))
                for position, flip in zip(hits, flips):
                    buffer[position] ^= int(flip)
                corrupted = len(hits)

        return Delivery(payload=bytes(buffer), truncated=truncated,
                        corrupted_bytes=corrupted, delay_frames=delay)
