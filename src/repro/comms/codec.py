"""Wire codecs for BV images and bounding boxes.

BV images are ~95 % zeros (empty cells), so the codec quantizes
intensities to 8 bits and run-length-encodes zero runs:

* token ``0x00`` + uint16 run length: a run of empty cells,
* any other byte: one occupied cell's quantized intensity (1..255).

Boxes are packed as five little-endian float32 values each
(x, y, length, width, yaw) — the 2-D BEV rectangle stage 2 consumes.
All headers are explicit so messages are self-describing.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.bev.projection import BVImage
from repro.boxes.box import Box2D

__all__ = ["encode_bv_image", "decode_bv_image", "encode_boxes",
           "decode_boxes"]

_BV_MAGIC = b"BV01"
_BV_MAGIC_Z = b"BVZ1"
_BOX_MAGIC = b"BX01"
_BV_HEADER = struct.Struct("<4sHddd")   # magic, size, cell, range, scale
_BOX_HEADER = struct.Struct("<4sH")     # magic, count
_BOX_RECORD = struct.Struct("<5f")


def encode_bv_image(bv: BVImage, max_intensity: float | None = None,
                    compress: bool = False) -> bytes:
    """Serialize a BV image (8-bit quantization + zero-RLE).

    Args:
        bv: the image to encode.
        max_intensity: quantization full-scale; defaults to the image
            maximum (stored in the header so decoding is self-contained).
        compress: additionally deflate the RLE payload with zlib —
            typically another ~2x on street scenes (repeated wall
            intensities compress well).

    Returns:
        The encoded byte string.
    """
    image = bv.image
    scale = float(max_intensity if max_intensity is not None
                  else max(image.max(), 1e-9))
    # Quantize occupied cells to 1..255 (0 is reserved for empty).
    quantized = np.zeros(image.shape, dtype=np.uint8)
    occupied = image > 0
    levels = np.clip(np.round(image[occupied] / scale * 255.0), 1, 255)
    quantized[occupied] = levels.astype(np.uint8)

    flat = quantized.ravel()
    magic = _BV_MAGIC_Z if compress else _BV_MAGIC
    chunks: list[bytes] = [_BV_HEADER.pack(magic, bv.size,
                                           bv.cell_size, bv.lidar_range,
                                           scale)]
    # Zero-run-length encoding via run boundaries.
    is_zero = flat == 0
    boundaries = np.flatnonzero(np.diff(is_zero.astype(np.int8))) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(flat)]])
    for start, end in zip(starts, ends):
        if is_zero[start]:
            run = int(end - start)
            while run > 0:
                step = min(run, 0xFFFF)
                chunks.append(b"\x00" + struct.pack("<H", step))
                run -= step
        else:
            chunks.append(flat[start:end].tobytes())
    if compress:
        header, payload = chunks[0], b"".join(chunks[1:])
        return header + zlib.compress(payload, level=6)
    return b"".join(chunks)


def decode_bv_image(data: bytes) -> BVImage:
    """Inverse of :func:`encode_bv_image` (lossy only by quantization)."""
    try:
        magic, size, cell_size, lidar_range, scale = _BV_HEADER.unpack_from(
            data, 0)
    except struct.error as exc:
        raise ValueError(f"malformed BV image message: {exc}") from exc
    if magic not in (_BV_MAGIC, _BV_MAGIC_Z):
        raise ValueError("not a BV image message")
    offset = _BV_HEADER.size
    if magic == _BV_MAGIC_Z:
        try:
            payload = zlib.decompress(data[offset:])
        except zlib.error as exc:
            raise ValueError(f"corrupt compressed payload: {exc}") from exc
        data = data[:offset] + payload
    flat = np.zeros(size * size, dtype=np.float64)
    cursor = 0
    view = memoryview(data)
    while offset < len(data):
        byte = view[offset]
        if byte == 0:
            try:
                run = struct.unpack_from("<H", data, offset + 1)[0]
            except struct.error as exc:
                raise ValueError("truncated BV payload") from exc
            cursor += run
            offset += 3
        else:
            flat[cursor] = byte / 255.0 * scale
            cursor += 1
            offset += 1
    if cursor != size * size:
        raise ValueError(
            f"truncated BV payload: {cursor} of {size * size} cells")
    return BVImage(flat.reshape(size, size), cell_size, lidar_range)


def encode_boxes(boxes: list[Box2D]) -> bytes:
    """Serialize BEV boxes (five float32 values each)."""
    chunks = [_BOX_HEADER.pack(_BOX_MAGIC, len(boxes))]
    for box in boxes:
        chunks.append(_BOX_RECORD.pack(box.center_x, box.center_y,
                                       box.length, box.width, box.yaw))
    return b"".join(chunks)


def decode_boxes(data: bytes) -> list[Box2D]:
    """Inverse of :func:`encode_boxes`."""
    try:
        magic, count = _BOX_HEADER.unpack_from(data, 0)
    except struct.error as exc:
        raise ValueError(f"malformed box message: {exc}") from exc
    if magic != _BOX_MAGIC:
        raise ValueError("not a box message")
    boxes: list[Box2D] = []
    offset = _BOX_HEADER.size
    for _ in range(count):
        try:
            x, y, length, width, yaw = _BOX_RECORD.unpack_from(data, offset)
        except struct.error as exc:
            raise ValueError("truncated box message") from exc
        boxes.append(Box2D(x, y, length, width, yaw))
        offset += _BOX_RECORD.size
    return boxes
