"""Wire codecs for BV images and bounding boxes.

BV images are ~95 % zeros (empty cells), so the codec quantizes
intensities to 8 bits and run-length-encodes zero runs:

* token ``0x00`` + uint16 run length: a run of empty cells,
* any other byte: one occupied cell's quantized intensity (1..255).

Boxes are packed as five little-endian float32 values each
(x, y, length, width, yaw) — the 2-D BEV rectangle stage 2 consumes.
All headers are explicit so messages are self-describing, and every
message carries a CRC32 over everything but the checksum field itself,
so a receiver can tell a damaged buffer from a valid one before acting
on it.

Decoders are *total* over ``bytes``: any input that is not a well-formed
message — wrong magic, short header, truncated payload, length mismatch,
RLE overrun, checksum failure — raises :class:`CodecError` (a
``ValueError`` subclass).  They never crash with an internal exception
and never return a silently-wrong image, which is what lets the
degradation ladder in :mod:`repro.core.pipeline` treat "undecodable
message" as one well-defined failure mode.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.bev.projection import BVImage
from repro.boxes.box import Box2D

__all__ = ["CodecError", "encode_bv_image", "decode_bv_image",
           "encode_boxes", "decode_boxes"]

_BV_MAGIC = b"BV02"
_BV_MAGIC_Z = b"BVZ2"
_BOX_MAGIC = b"BX02"
_LEGACY_MAGICS = (b"BV01", b"BVZ1", b"BX01")
# Header layout: base fields, then a uint32 CRC32 computed over the
# packed base header plus the (possibly compressed) payload.
_BV_HEAD = struct.Struct("<4sHddd")     # magic, size, cell, range, scale
_BOX_HEAD = struct.Struct("<4sH")       # magic, count
_CRC = struct.Struct("<I")
_BOX_RECORD = struct.Struct("<5f")


class CodecError(ValueError):
    """A buffer is not a valid wire message (malformed, truncated or
    failing its integrity check)."""


def _check_magic(magic: bytes, expected: tuple[bytes, ...],
                 kind: str) -> None:
    if magic in expected:
        return
    if magic in _LEGACY_MAGICS:
        raise CodecError(
            f"legacy v1 {kind} message (no integrity field); re-encode "
            "with the current codec")
    raise CodecError(f"not a {kind} message (magic {magic!r})")


def _verify_crc(data: bytes, head: struct.Struct, kind: str) -> bytes:
    """Split ``header | crc | payload``, verify, return the payload."""
    crc_offset = head.size
    payload_offset = crc_offset + _CRC.size
    if len(data) < payload_offset:
        raise CodecError(f"truncated {kind} header: {len(data)} bytes")
    (stored,) = _CRC.unpack_from(data, crc_offset)
    payload = data[payload_offset:]
    actual = zlib.crc32(payload, zlib.crc32(data[:crc_offset]))
    if stored != actual:
        raise CodecError(
            f"{kind} checksum mismatch: stored {stored:#010x}, "
            f"computed {actual:#010x}")
    return payload


def _frame(header: bytes, payload: bytes) -> bytes:
    """Assemble ``header | crc32(header + payload) | payload``."""
    crc = zlib.crc32(payload, zlib.crc32(header))
    return header + _CRC.pack(crc) + payload


def encode_bv_image(bv: BVImage, max_intensity: float | None = None,
                    compress: bool = False) -> bytes:
    """Serialize a BV image (8-bit quantization + zero-RLE + CRC32).

    Args:
        bv: the image to encode.
        max_intensity: quantization full-scale; defaults to the image
            maximum (stored in the header so decoding is self-contained).
        compress: additionally deflate the RLE payload with zlib —
            typically another ~2x on street scenes (repeated wall
            intensities compress well).

    Returns:
        The encoded byte string.
    """
    image = bv.image
    scale = float(max_intensity if max_intensity is not None
                  else max(image.max(), 1e-9))
    # Quantize occupied cells to 1..255 (0 is reserved for empty).
    quantized = np.zeros(image.shape, dtype=np.uint8)
    occupied = image > 0
    levels = np.clip(np.round(image[occupied] / scale * 255.0), 1, 255)
    quantized[occupied] = levels.astype(np.uint8)

    flat = quantized.ravel()
    magic = _BV_MAGIC_Z if compress else _BV_MAGIC
    chunks: list[bytes] = []
    # Zero-run-length encoding via run boundaries.
    is_zero = flat == 0
    boundaries = np.flatnonzero(np.diff(is_zero.astype(np.int8))) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(flat)]])
    for start, end in zip(starts, ends):
        if is_zero[start]:
            run = int(end - start)
            while run > 0:
                step = min(run, 0xFFFF)
                chunks.append(b"\x00" + struct.pack("<H", step))
                run -= step
        else:
            chunks.append(flat[start:end].tobytes())
    payload = b"".join(chunks)
    if compress:
        payload = zlib.compress(payload, level=6)
    header = _BV_HEAD.pack(magic, bv.size, bv.cell_size, bv.lidar_range,
                           scale)
    return _frame(header, payload)


def decode_bv_image(data: bytes) -> BVImage:
    """Inverse of :func:`encode_bv_image` (lossy only by quantization).

    Raises:
        CodecError: ``data`` is not a well-formed BV image message.
    """
    try:
        magic, size, cell_size, lidar_range, scale = _BV_HEAD.unpack_from(
            data, 0)
    except struct.error as exc:
        raise CodecError(f"malformed BV image header: {exc}") from exc
    _check_magic(magic, (_BV_MAGIC, _BV_MAGIC_Z), "BV image")
    payload = _verify_crc(data, _BV_HEAD, "BV image")
    if magic == _BV_MAGIC_Z:
        try:
            payload = zlib.decompress(payload)
        except zlib.error as exc:
            raise CodecError(f"corrupt compressed payload: {exc}") from exc
    if not (np.isfinite(cell_size) and np.isfinite(lidar_range)
            and np.isfinite(scale)) or cell_size <= 0 or lidar_range <= 0:
        raise CodecError("BV image header carries non-physical geometry")
    total = size * size
    flat = np.zeros(total, dtype=np.float64)
    cursor = 0
    offset = 0
    view = memoryview(payload)
    length = len(payload)
    while offset < length:
        byte = view[offset]
        if byte == 0:
            try:
                run = struct.unpack_from("<H", payload, offset + 1)[0]
            except struct.error as exc:
                raise CodecError("truncated BV payload") from exc
            cursor += run
            offset += 3
        else:
            if cursor >= total:
                raise CodecError(
                    f"BV payload overruns the image: cell {cursor} of "
                    f"{total}")
            flat[cursor] = byte / 255.0 * scale
            cursor += 1
            offset += 1
    if cursor != total:
        raise CodecError(
            f"BV payload covers {cursor} of {total} cells")
    return BVImage(flat.reshape(size, size), cell_size, lidar_range)


def encode_boxes(boxes: list[Box2D]) -> bytes:
    """Serialize BEV boxes (five float32 values each + CRC32)."""
    payload = b"".join(
        _BOX_RECORD.pack(box.center_x, box.center_y, box.length,
                         box.width, box.yaw)
        for box in boxes)
    header = _BOX_HEAD.pack(_BOX_MAGIC, len(boxes))
    return _frame(header, payload)


def decode_boxes(data: bytes) -> list[Box2D]:
    """Inverse of :func:`encode_boxes`.

    Raises:
        CodecError: ``data`` is not a well-formed box message.
    """
    try:
        magic, count = _BOX_HEAD.unpack_from(data, 0)
    except struct.error as exc:
        raise CodecError(f"malformed box header: {exc}") from exc
    _check_magic(magic, (_BOX_MAGIC,), "box")
    payload = _verify_crc(data, _BOX_HEAD, "box")
    expected = count * _BOX_RECORD.size
    if len(payload) != expected:
        raise CodecError(
            f"box payload length mismatch: {len(payload)} bytes for "
            f"{count} boxes (expected {expected})")
    boxes: list[Box2D] = []
    for offset in range(0, expected, _BOX_RECORD.size):
        x, y, length, width, yaw = _BOX_RECORD.unpack_from(payload, offset)
        if not all(np.isfinite(v) for v in (x, y, length, width, yaw)):
            raise CodecError("box record carries non-finite values")
        try:
            boxes.append(Box2D(x, y, length, width, yaw))
        except ValueError as exc:
            raise CodecError(f"invalid box record: {exc}") from exc
    return boxes
