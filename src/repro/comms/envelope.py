"""Service request/response envelopes over the tier codecs.

The always-on pose service (:mod:`repro.service`) speaks the same
hardened wire discipline as the V2V tiers: every frame is
``header | crc32(header + payload) | payload``, decoding is *total*
(any malformed buffer raises :class:`~repro.comms.codec.CodecError`,
never crashes a worker, never yields silent garbage), and unknown
magics are rejected.  Two magics:

* ``SQ01`` — :class:`ServiceRequest`: one scan-pair pose-recovery
  request.  Two kinds share the envelope:

  - **indexed** (``kind=0``): names a pair of the service's configured
    deterministic dataset by index — the sweep-parity and soak
    workload; nothing heavy crosses the wire.
  - **scan-pair** (``kind=1``): carries the sensing itself as two
    embedded :mod:`repro.comms.tiers` messages (ego + other), so a
    client can submit any tier combination the pipeline accepts.
  - **shm-pair** (``kind=2``): a same-host zero-copy variant — the
    envelope carries only a :class:`ShmPairRef` descriptor (shared
    segment name + the two encoded-message lengths) and the payloads
    stay in a POSIX shared-memory segment the *client* owns.  The
    server resolves the descriptor into an ordinary scan-pair request
    before admission (see ``repro.service.server``); the client unlinks
    its segment once the response arrives.

* ``SP01`` — :class:`ServiceResponse`: the recovered planar pose plus
  the degradation verdict (``status``, ``failure_reason``,
  ``degradation``, inlier counts).  Responses are *small by design*:
  the service's bandwidth story collapses if every answer ships
  diagnostics blobs.

The module deliberately knows nothing about asyncio or the worker
pool — it is pure serialization, which is what lets the fuzz suite
(``tests/test_comms_fuzz.py``) drive it byte-by-byte like every other
codec.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from repro.comms.codec import CodecError, _frame, _verify_crc
from repro.comms.tiers import TieredMessage, decode_message, encode_message

__all__ = [
    "REQUEST_MAGIC",
    "RESPONSE_MAGIC",
    "ServiceRequest",
    "ServiceResponse",
    "ShmPairRef",
    "decode_request",
    "decode_response",
    "sniff_envelope",
]

REQUEST_MAGIC = b"SQ01"
RESPONSE_MAGIC = b"SP01"

# Request: magic, request_id, kind, flags (reserved), deadline_ms.
_REQ_HEAD = struct.Struct("<4sIBBI")
# Indexed-pair request block: dataset index.
_REQ_INDEX = struct.Struct("<I")
# Scan-pair request block header: ego/other embedded message lengths.
_REQ_SCANS = struct.Struct("<II")
# Shm-pair request block header: ego/other encoded lengths inside the
# shared segment, then the segment-name length (the name follows).
_REQ_SHM = struct.Struct("<IIB")
# Response: magic, request_id, status, degradation-code, reason length,
# success flag, inliers_bv, inliers_box, tx, ty, theta.
_RSP_HEAD = struct.Struct("<4sIBBBBii3d")

_KIND_INDEXED = 0
_KIND_SCAN_PAIR = 1
_KIND_SHM_PAIR = 2

#: Response status codes (the service's admission/executive verdicts).
STATUS_OK = 0            # the pipeline ran; see failure_reason for rung
STATUS_DEADLINE = 1      # deadline expired before/while executing
STATUS_EXHAUSTED = 2     # worker faults outlasted the retry budget
STATUS_SHED = 3          # shed during shutdown drain
_STATUS_NAMES = {STATUS_OK: "ok", STATUS_DEADLINE: "deadline",
                 STATUS_EXHAUSTED: "exhausted", STATUS_SHED: "shed"}
_STATUS_CODES = {name: code for code, name in _STATUS_NAMES.items()}

# Degradation rungs on the wire (repro.core.degradation order), plus
# 0xFF for "no pipeline result" (deadline/exhausted/shed responses).
_DEGRADATIONS = ("full", "stage1-only", "boxes-only", "temporal",
                 "identity")
_NO_RESULT = 0xFF


@dataclass(frozen=True)
class ShmPairRef:
    """Descriptor of a scan pair parked in a shared-memory segment.

    The segment holds the two *encoded* tier messages back to back
    (``ego`` bytes, then ``other`` bytes); the ref carries the segment
    name and the split.  Ownership is the client's: it creates the
    segment, sends the ref, and unlinks after the response — the server
    only attaches, copies out, and closes.
    """

    name: str
    ego_len: int
    other_len: int

    def __post_init__(self) -> None:
        if not 1 <= len(self.name.encode("ascii", "strict")) <= 0xFF:
            raise ValueError("segment name must be 1..255 ASCII bytes")
        if self.ego_len < 0 or self.other_len < 0:
            raise ValueError("message lengths must be >= 0")


@dataclass(frozen=True)
class ServiceRequest:
    """One decoded (or to-be-encoded) pose-recovery request.

    Exactly one of ``index`` / ``(ego, other)`` / ``shm`` is populated.

    Attributes:
        request_id: caller-chosen correlation id (echoed in the
            response).
        index: dataset pair index (indexed requests).
        ego / other: embedded tiered messages (scan-pair requests).
        shm: shared-memory descriptor of an encoded scan pair
            (same-host zero-copy requests); the transport resolves it
            into ``ego``/``other`` before admission.
        deadline_ms: client-declared deadline budget in milliseconds
            (0 = none); the service clamps it against its own config.
    """

    request_id: int
    index: int | None = None
    ego: TieredMessage | None = None
    other: TieredMessage | None = None
    shm: ShmPairRef | None = None
    deadline_ms: int = 0

    def __post_init__(self) -> None:
        indexed = self.index is not None
        scans = self.ego is not None or self.other is not None
        forms = indexed + scans + (self.shm is not None)
        if forms != 1:
            raise ValueError("a request carries exactly one of: a "
                             "dataset index, an ego+other scan pair, or "
                             "a shared-memory pair descriptor")
        if scans and (self.ego is None or self.other is None):
            raise ValueError("a scan-pair request needs both ego and "
                             "other messages")
        if not 0 <= self.request_id <= 0xFFFFFFFF:
            raise ValueError("request_id must fit in uint32")
        if not 0 <= self.deadline_ms <= 0xFFFFFFFF:
            raise ValueError("deadline_ms must fit in uint32")

    @property
    def kind(self) -> str:
        if self.index is not None:
            return "indexed"
        return "shm-pair" if self.shm is not None else "scan-pair"

    def encode(self) -> bytes:
        """Serialize into the CRC32-framed ``SQ01`` envelope."""
        if self.index is not None:
            kind = _KIND_INDEXED
            payload = _REQ_INDEX.pack(self.index)
        elif self.shm is not None:
            kind = _KIND_SHM_PAIR
            name = self.shm.name.encode("ascii")
            payload = _REQ_SHM.pack(self.shm.ego_len, self.shm.other_len,
                                    len(name)) + name
        else:
            kind = _KIND_SCAN_PAIR
            ego = encode_message(self.ego, record=False)
            other = encode_message(self.other, record=False)
            payload = _REQ_SCANS.pack(len(ego), len(other)) + ego + other
        header = _REQ_HEAD.pack(REQUEST_MAGIC, self.request_id, kind, 0,
                                self.deadline_ms)
        return _frame(header, payload)


def decode_request(data: bytes) -> ServiceRequest:
    """Parse a ``SQ01`` request envelope; the inverse of
    :meth:`ServiceRequest.encode`.

    Raises:
        CodecError: ``data`` is not a well-formed request envelope —
            wrong magic, truncation, checksum damage, unknown kind, or
            malformed embedded tier messages.
    """
    try:
        magic, request_id, kind, _flags, deadline_ms = \
            _REQ_HEAD.unpack_from(data, 0)
    except struct.error as exc:
        raise CodecError(f"malformed request header: {exc}") from exc
    if magic != REQUEST_MAGIC:
        raise CodecError(f"not a service request (magic {magic!r})")
    payload = _verify_crc(bytes(data), _REQ_HEAD, "service request")
    if kind == _KIND_INDEXED:
        if len(payload) != _REQ_INDEX.size:
            raise CodecError(
                f"indexed request block is {len(payload)} bytes "
                f"(expected {_REQ_INDEX.size})")
        (index,) = _REQ_INDEX.unpack(payload)
        return ServiceRequest(request_id=request_id, index=index,
                              deadline_ms=deadline_ms)
    if kind == _KIND_SCAN_PAIR:
        try:
            ego_len, other_len = _REQ_SCANS.unpack_from(payload, 0)
        except struct.error as exc:
            raise CodecError(f"truncated scan-pair block: {exc}") from exc
        expected = _REQ_SCANS.size + ego_len + other_len
        if len(payload) != expected:
            raise CodecError(
                f"scan-pair block is {len(payload)} bytes, header "
                f"promises {expected}")
        ego = decode_message(payload[_REQ_SCANS.size:
                                     _REQ_SCANS.size + ego_len])
        other = decode_message(payload[_REQ_SCANS.size + ego_len:])
        return ServiceRequest(request_id=request_id, ego=ego, other=other,
                              deadline_ms=deadline_ms)
    if kind == _KIND_SHM_PAIR:
        try:
            ego_len, other_len, name_len = _REQ_SHM.unpack_from(payload, 0)
        except struct.error as exc:
            raise CodecError(f"truncated shm-pair block: {exc}") from exc
        if len(payload) != _REQ_SHM.size + name_len:
            raise CodecError(
                f"shm-pair block is {len(payload)} bytes, header "
                f"promises {_REQ_SHM.size + name_len}")
        try:
            name = payload[_REQ_SHM.size:].decode("ascii")
            ref = ShmPairRef(name=name, ego_len=ego_len,
                             other_len=other_len)
        except (UnicodeDecodeError, ValueError) as exc:
            raise CodecError(f"malformed shm-pair ref: {exc}") from exc
        return ServiceRequest(request_id=request_id, shm=ref,
                              deadline_ms=deadline_ms)
    raise CodecError(f"unknown request kind {kind}")


@dataclass(frozen=True)
class ServiceResponse:
    """One decoded (or to-be-encoded) pose-recovery response.

    Attributes:
        request_id: echo of the request's correlation id.
        status: the service verdict — ``"ok"`` (the pipeline ran,
            possibly degraded), ``"deadline"``, ``"exhausted"`` (retry
            budget spent on worker faults) or ``"shed"`` (shutdown
            drain).  Non-``ok`` responses carry an identity pose.
        success: the pipeline's success criterion (``ok`` only).
        failure_reason: the pipeline's taxonomy tag, or ``None``.
        degradation: which ladder rung produced the pose, ``None`` for
            non-``ok`` responses.
        inliers_bv / inliers_box: confidence counts.
        tx / ty / theta: the recovered planar pose.
    """

    request_id: int
    status: str
    success: bool
    failure_reason: str | None
    degradation: str | None
    inliers_bv: int
    inliers_box: int
    tx: float
    ty: float
    theta: float

    def __post_init__(self) -> None:
        if self.status not in _STATUS_CODES:
            raise ValueError(f"unknown status {self.status!r}")
        if self.degradation is not None \
                and self.degradation not in _DEGRADATIONS:
            raise ValueError(f"unknown degradation {self.degradation!r}")
        if not 0 <= self.request_id <= 0xFFFFFFFF:
            raise ValueError("request_id must fit in uint32")

    def encode(self) -> bytes:
        """Serialize into the CRC32-framed ``SP01`` envelope."""
        reason = (self.failure_reason or "").encode("utf-8")
        if len(reason) > 0xFF:
            raise ValueError("failure_reason too long for the wire")
        degradation = (_NO_RESULT if self.degradation is None
                       else _DEGRADATIONS.index(self.degradation))
        header = _RSP_HEAD.pack(
            RESPONSE_MAGIC, self.request_id, _STATUS_CODES[self.status],
            degradation, len(reason), int(self.success),
            self.inliers_bv, self.inliers_box,
            self.tx, self.ty, self.theta)
        return _frame(header, reason)


def decode_response(data: bytes) -> ServiceResponse:
    """Parse a ``SP01`` response envelope; the inverse of
    :meth:`ServiceResponse.encode`.

    Raises:
        CodecError: ``data`` is not a well-formed response envelope.
    """
    try:
        (magic, request_id, status, degradation, reason_len, success,
         inliers_bv, inliers_box, tx, ty, theta) = \
            _RSP_HEAD.unpack_from(data, 0)
    except struct.error as exc:
        raise CodecError(f"malformed response header: {exc}") from exc
    if magic != RESPONSE_MAGIC:
        raise CodecError(f"not a service response (magic {magic!r})")
    payload = _verify_crc(bytes(data), _RSP_HEAD, "service response")
    if status not in _STATUS_NAMES:
        raise CodecError(f"unknown response status code {status}")
    if degradation != _NO_RESULT and degradation >= len(_DEGRADATIONS):
        raise CodecError(f"unknown degradation code {degradation}")
    if len(payload) != reason_len:
        raise CodecError(
            f"response reason is {len(payload)} bytes, header promises "
            f"{reason_len}")
    if not all(np.isfinite(v) for v in (tx, ty, theta)):
        raise CodecError("response pose carries non-finite values")
    try:
        reason = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"undecodable failure reason: {exc}") from exc
    return ServiceResponse(
        request_id=request_id, status=_STATUS_NAMES[status],
        success=bool(success), failure_reason=reason or None,
        degradation=(None if degradation == _NO_RESULT
                     else _DEGRADATIONS[degradation]),
        inliers_bv=inliers_bv, inliers_box=inliers_box,
        tx=tx, ty=ty, theta=theta)


def sniff_envelope(data: bytes) -> str | None:
    """``"request"`` / ``"response"`` by magic, else ``None``.

    A dispatch hint only — the claim is verified by the decoders.
    """
    magic = bytes(data[:4])
    if magic == REQUEST_MAGIC:
        return "request"
    if magic == RESPONSE_MAGIC:
        return "response"
    return None
