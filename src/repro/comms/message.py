"""The complete V2V message (Algorithm 1, line 3).

``V2VMessage`` bundles exactly what the other car transmits — its BV
image and its BEV detection boxes — with a framed wire format, so the
bandwidth experiment measures real encoded bytes rather than estimates.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.bev.projection import BVImage
from repro.boxes.box import Box2D
from repro.comms.codec import (
    CodecError,
    decode_boxes,
    decode_bv_image,
    encode_boxes,
    encode_bv_image,
)

__all__ = ["V2VMessage"]

_FRAME = struct.Struct("<4sII")  # magic, bv length, boxes length
_MAGIC = b"V2V1"


@dataclass(frozen=True)
class V2VMessage:
    """What the other car sends to the ego car.

    Attributes:
        bv_image: the sender's BV height image.
        boxes: the sender's detected BEV boxes (its own frame).
    """

    bv_image: BVImage
    boxes: list[Box2D]

    def to_bytes(self) -> bytes:
        """Serialize to the framed wire format."""
        bv_payload = encode_bv_image(self.bv_image)
        box_payload = encode_boxes(self.boxes)
        return (_FRAME.pack(_MAGIC, len(bv_payload), len(box_payload))
                + bv_payload + box_payload)

    @staticmethod
    def from_bytes(data: bytes) -> "V2VMessage":
        """Parse a framed message.

        Raises:
            CodecError: the frame or either sub-message is malformed,
                truncated, or fails its integrity check.
        """
        try:
            magic, bv_len, box_len = _FRAME.unpack_from(data, 0)
        except struct.error as exc:
            raise CodecError(f"malformed V2V frame: {exc}") from exc
        if magic != _MAGIC:
            raise CodecError(f"not a V2V message (magic {magic!r})")
        offset = _FRAME.size
        expected = offset + bv_len + box_len
        if len(data) != expected:
            raise CodecError(
                f"V2V frame length mismatch: {len(data)} bytes, header "
                f"promises {expected}")
        bv = decode_bv_image(data[offset:offset + bv_len])
        boxes = decode_boxes(data[offset + bv_len:expected])
        return V2VMessage(bv, boxes)

    @property
    def size_bytes(self) -> int:
        """Encoded size of this message."""
        return len(self.to_bytes())
