"""Adaptive tier selection driven by observed delivery outcomes.

The degradation ladder (PR 5) reacts *after* a message is lost; this
policy reacts *before* the next one is sent.  The intuition follows the
channel model: corruption is per-byte, so under a fixed corruption rate
the survival probability of a message is ``(1 - p) ** bytes`` — a
megabyte full scan is hopeless where a kilobyte keypoint message sails
through.  A sender that steps down the tier ladder when deliveries fail
(and back up when the link looks clean) therefore buys success rate at
a *lower* byte cost than any heavy fixed tier.

The controller is deliberately tiny and deterministic: consecutive-
failure / consecutive-success counters with hysteresis, the same shape
as the pipeline's degradation ladder.  It observes, it never blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.comms.channel import Delivery
from repro.comms.tiers import Tier
from repro.obs.metrics import counter

__all__ = ["TIER_LADDER", "AdaptiveTierPolicy"]

#: Fidelity rungs, heaviest first — the order the policy steps through.
TIER_LADDER: tuple[Tier, ...] = (Tier.FULL_SCAN, Tier.BV_IMAGE,
                                 Tier.KEYPOINTS, Tier.BOXES_ONLY)


@dataclass
class AdaptiveTierPolicy:
    """Hysteresis controller over :data:`TIER_LADDER`.

    Attributes:
        start: tier for the first message.
        step_down_after: consecutive failed deliveries before dropping
            one rung.
        step_up_after: consecutive successful deliveries before climbing
            one rung back toward full fidelity.
    """

    start: Tier = Tier.FULL_SCAN
    step_down_after: int = 2
    step_up_after: int = 4
    _index: int = field(init=False)
    _failures: int = field(init=False, default=0)
    _successes: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self._index = TIER_LADDER.index(self.start)
        if self.step_down_after < 1 or self.step_up_after < 1:
            raise ValueError("hysteresis thresholds must be >= 1")

    @property
    def tier(self) -> Tier:
        """The tier the next message should be sent at."""
        return TIER_LADDER[self._index]

    # ------------------------------------------------------------------
    def observe(self, delivery: Delivery, decoded: bool = True) -> Tier:
        """Record one delivery outcome; returns the next tier to use.

        A message counts as *usable* only if the channel delivered it
        un-dropped and the receiver decoded it (``decoded`` is the
        receiver-side verdict; truncated/corrupted payloads fail CRC).
        Staleness is not punished — a late message still proves the
        link carries this many bytes.
        """
        usable = delivery.delivered and decoded
        if usable:
            self._successes += 1
            self._failures = 0
            if (self._successes >= self.step_up_after and self._index > 0):
                self._index -= 1
                self._successes = 0
                counter("comms/policy/step_up").inc()
        else:
            self._failures += 1
            self._successes = 0
            if (self._failures >= self.step_down_after
                    and self._index < len(TIER_LADDER) - 1):
                self._index += 1
                self._failures = 0
                counter("comms/policy/step_down").inc()
        return self.tier
