"""Tiered compression: four message fidelities behind one envelope.

BB-Align's bandwidth argument is only meaningful against alternatives.
This module defines the four rungs a sender can choose from, ordered by
fidelity (and, strictly, by encoded size):

1. **full-scan** (``TF01``) — the raw point cloud, lossless (float64
   xyz + zlib) plus lossless float64 boxes.  What early fusion would
   transmit; the receiver re-runs the whole pipeline and must reproduce
   a clean local run *byte-identically* (the control tier).
2. **bv-image** (``TB01``) — the quantized, zero-RLE, zlib BV image of
   :mod:`repro.comms.codec` plus float32 boxes.  The paper's message.
3. **keypoints** (``TK01``) — no image at all: the top-K FAST keypoints
   with grid/orientation-pooled BVFT descriptors, 4-bit quantized and
   bit-packed, delta-encoded int16 coordinates, float16 scores, zlib.
   The receiver matches against its own (identically pooled)
   descriptors and still runs both stages.
4. **boxes-only** (``TX01``) — detections only; the receiver can only
   run stage-2 box alignment from a pose prior.

Every tier shares the envelope of :mod:`repro.comms.codec`:
``header | crc32(header + payload) | payload`` — so damage anywhere is
detected, and decoding is *total*: any non-message raises
:class:`~repro.comms.codec.CodecError`, never crashes, never returns
silent garbage.  Unknown magics (including a tier this build does not
know) are a :class:`CodecError` too.

The module deliberately does not import :mod:`repro.core` — the
pipeline imports *us* (locally), and :class:`TierCodecConfig` is
embedded in :class:`repro.core.config.BBAlignConfig`.
"""

from __future__ import annotations

import enum
import struct
import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.bev.projection import BVImage
from repro.boxes.box import Box2D
from repro.comms import accounting
from repro.comms.codec import (
    CodecError,
    _frame,
    _verify_crc,
    decode_boxes,
    decode_bv_image,
    encode_boxes,
    encode_bv_image,
)
from repro.pointcloud.cloud import PointCloud

__all__ = [
    "Tier",
    "TierCodecConfig",
    "KeypointPayload",
    "TieredMessage",
    "TIER_CODECS",
    "build_message",
    "encode_message",
    "decode_message",
    "sniff_tier",
    "pool_descriptors",
]


class Tier(str, enum.Enum):
    """Message fidelity rungs, heaviest first."""

    FULL_SCAN = "full-scan"
    BV_IMAGE = "bv-image"
    KEYPOINTS = "keypoints"
    BOXES_ONLY = "boxes-only"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class TierCodecConfig:
    """Sender-side encoding knobs for the lossy tiers.

    The defaults are calibrated so mean encoded size is *strictly*
    decreasing down the tier ladder on the standard dataset (the
    ``BENCH_comms.json`` acceptance check): 80 four-bit keypoints land
    at ~1.3 KB against the ~1.8 KB compressed BV image.

    Attributes:
        max_keypoints: keypoint budget for the keypoints tier (top-K by
            FAST score).
        descriptor_bits: quantization depth for pooled descriptors
            (4 = two values per byte, 8 = one).
        grid_pool: spatial pooling factor — ``l x l`` descriptor cells
            become ``(l/grid_pool) x (l/grid_pool)``.
        orientation_pool: adjacent orientation bins summed per pooled
            bin.
        compress_level: zlib level for the full-scan and keypoint blobs.
    """

    max_keypoints: int = 80
    descriptor_bits: int = 4
    grid_pool: int = 2
    orientation_pool: int = 2
    compress_level: int = 6

    def __post_init__(self) -> None:
        if self.max_keypoints < 1:
            raise ValueError("max_keypoints must be >= 1")
        if self.descriptor_bits not in (4, 8):
            raise ValueError("descriptor_bits must be 4 or 8")
        if self.grid_pool < 1 or self.orientation_pool < 1:
            raise ValueError("pooling factors must be >= 1")
        if not 0 <= self.compress_level <= 9:
            raise ValueError("compress_level must be in [0, 9]")


@dataclass(frozen=True)
class KeypointPayload:
    """What the keypoints tier carries instead of an image.

    Attributes:
        xy: (K, 2) integer pixel (col, row) keypoint coordinates.
        scores: (K,) detector scores (float16 wire precision).
        descriptors: (K, D) pooled, L2-normalized descriptor rows.
        image_size / cell_size / lidar_range: the sender's BV geometry,
            so the receiver can convert the pixel transform to meters.
        grid_size: pooled descriptor grid edge (cells per axis).
        num_orientations: pooled orientation bins per cell.
    """

    xy: np.ndarray
    scores: np.ndarray
    descriptors: np.ndarray
    image_size: int
    cell_size: float
    lidar_range: float
    grid_size: int
    num_orientations: int


@dataclass(frozen=True)
class TieredMessage:
    """One decoded (or to-be-encoded) tiered V2V message.

    Exactly one sensing field is populated, matching ``tier``; ``boxes``
    always travel (they are the cheapest and most load-bearing part).
    """

    tier: Tier
    boxes: list[Box2D]
    cloud: PointCloud | None = None
    bv_image: BVImage | None = None
    keypoints: KeypointPayload | None = None

    @property
    def size_bytes(self) -> int:
        """Encoded size under the default codec configuration.

        Re-encodes (cheap for light tiers); skips byte accounting so
        sizing a message never counts as sending one.
        """
        return len(encode_message(self, record=False))


# ----------------------------------------------------------------------
# Descriptor pooling (shared by sender and receiver — both sides must
# pool identically or the keypoint tier cannot match).
# ----------------------------------------------------------------------
def pool_descriptors(descriptors: np.ndarray, grid_size: int,
                     num_orientations: int, grid_pool: int,
                     orientation_pool: int) -> np.ndarray:
    """Sum-pool BVFT rows over cell blocks and orientation pairs.

    The descriptor layout is ``(row, col, orientation)`` flattened with
    orientation innermost, so pooling is a reshape + block sum; rows are
    re-normalized to unit L2 afterwards.  Raises :class:`ValueError`
    when the factors do not divide the geometry.
    """
    if grid_size % grid_pool or num_orientations % orientation_pool:
        raise ValueError(
            f"pooling ({grid_pool}, {orientation_pool}) does not divide "
            f"descriptor geometry ({grid_size}, {num_orientations})")
    pg = grid_size // grid_pool
    po = num_orientations // orientation_pool
    d = np.asarray(descriptors, dtype=np.float64)
    n = len(d)
    if n == 0:
        return np.empty((0, pg * pg * po))
    pooled = d.reshape(n, pg, grid_pool, pg, grid_pool, po,
                       orientation_pool).sum(axis=(2, 4, 6))
    pooled = pooled.reshape(n, pg * pg * po)
    norms = np.linalg.norm(pooled, axis=1)
    pooled /= np.where(norms > 0, norms, 1.0)[:, None]
    return np.ascontiguousarray(pooled)


def _infer_descriptor_geometry(dim: int, num_orientations: int) -> int:
    """Grid edge of a ``grid**2 * num_orientations``-dim descriptor."""
    if num_orientations <= 0 or dim % num_orientations:
        raise ValueError(f"descriptor dim {dim} is not a multiple of "
                         f"{num_orientations} orientations")
    cells = dim // num_orientations
    grid = int(round(np.sqrt(cells)))
    if grid * grid != cells:
        raise ValueError(f"descriptor dim {dim} is not a square grid")
    return grid


# ----------------------------------------------------------------------
# Wire format.  Outer envelope shared by all tiers:
#   <4s magic> <I sense_len> <I box_len> <I crc32> <sense block> <box block>
# The CRC runs over the packed header plus both blocks (codec._frame).
# ----------------------------------------------------------------------
_TIER_HEAD = struct.Struct("<4sII")
_MAGIC_BY_TIER = {
    Tier.FULL_SCAN: b"TF01",
    Tier.BV_IMAGE: b"TB01",
    Tier.KEYPOINTS: b"TK01",
    Tier.BOXES_ONLY: b"TX01",
}
_TIER_BY_MAGIC = {magic: tier for tier, magic in _MAGIC_BY_TIER.items()}

# Full-scan sense block: <I num_points> + zlib(float64 xyz rows).
_SCAN_HEAD = struct.Struct("<I")
# Full-scan box block: <H count> + count * <5d> (lossless float64).
_BOX64_HEAD = struct.Struct("<H")
_BOX64_RECORD = struct.Struct("<5d")
# Keypoint sense block header, then zlib(delta-int16 xy | float16
# scores | packed quantized descriptors): image size, cell, range,
# keypoint count, pooled grid, pooled orientations, bits, reserved,
# quantization scale.
_KP_HEAD = struct.Struct("<HddHBBBBf")


def _encode_cloud(cloud: PointCloud, level: int) -> bytes:
    points = np.ascontiguousarray(cloud.points, dtype=np.float64)
    return (_SCAN_HEAD.pack(len(points))
            + zlib.compress(points.tobytes(), level=level))


def _decode_cloud(block: bytes) -> PointCloud:
    try:
        (count,) = _SCAN_HEAD.unpack_from(block, 0)
    except struct.error as exc:
        raise CodecError(f"truncated full-scan block: {exc}") from exc
    try:
        raw = zlib.decompress(block[_SCAN_HEAD.size:])
    except zlib.error as exc:
        raise CodecError(f"corrupt full-scan payload: {exc}") from exc
    expected = count * 3 * 8
    if len(raw) != expected:
        raise CodecError(
            f"full-scan payload is {len(raw)} bytes for {count} points "
            f"(expected {expected})")
    points = np.frombuffer(raw, dtype=np.float64).reshape(count, 3)
    # Non-finite coordinates are legal here: the pipeline's projection
    # boundary filters them (and counts them in StageDiagnostics).
    return PointCloud(points.copy())


def _encode_boxes64(boxes: list[Box2D]) -> bytes:
    if len(boxes) > 0xFFFF:
        raise ValueError(f"too many boxes for one message: {len(boxes)}")
    return _BOX64_HEAD.pack(len(boxes)) + b"".join(
        _BOX64_RECORD.pack(b.center_x, b.center_y, b.length, b.width,
                           b.yaw) for b in boxes)


def _decode_boxes64(block: bytes) -> list[Box2D]:
    try:
        (count,) = _BOX64_HEAD.unpack_from(block, 0)
    except struct.error as exc:
        raise CodecError(f"truncated box64 block: {exc}") from exc
    expected = _BOX64_HEAD.size + count * _BOX64_RECORD.size
    if len(block) != expected:
        raise CodecError(
            f"box64 block is {len(block)} bytes for {count} boxes "
            f"(expected {expected})")
    boxes: list[Box2D] = []
    for offset in range(_BOX64_HEAD.size, expected, _BOX64_RECORD.size):
        values = _BOX64_RECORD.unpack_from(block, offset)
        if not all(np.isfinite(v) for v in values):
            raise CodecError("box record carries non-finite values")
        try:
            boxes.append(Box2D(*values))
        except ValueError as exc:
            raise CodecError(f"invalid box record: {exc}") from exc
    return boxes


def _pack_quantized(quantized: np.ndarray, bits: int) -> bytes:
    flat = quantized.astype(np.uint8).ravel()
    if bits == 8:
        return flat.tobytes()
    if len(flat) % 2:
        flat = np.append(flat, np.uint8(0))
    return ((flat[0::2] << 4) | flat[1::2]).astype(np.uint8).tobytes()


def _unpack_quantized(packed: np.ndarray, count: int,
                      bits: int) -> np.ndarray:
    if bits == 8:
        return packed[:count].astype(np.float64)
    nibbles = np.empty(len(packed) * 2, dtype=np.uint8)
    nibbles[0::2] = packed >> 4
    nibbles[1::2] = packed & 0x0F
    return nibbles[:count].astype(np.float64)


def _encode_keypoints(kp: KeypointPayload, level: int, bits: int) -> bytes:
    xy = np.asarray(kp.xy, dtype=np.int64)
    n_kp = len(xy)
    desc = np.asarray(kp.descriptors, dtype=np.float64)
    dim = kp.grid_size * kp.grid_size * kp.num_orientations
    if desc.shape != (n_kp, dim):
        raise ValueError(f"descriptor shape {desc.shape} does not match "
                         f"{n_kp} keypoints of dim {dim}")
    scale = float(desc.max()) if desc.size else 1.0
    if scale <= 0:
        scale = 1.0
    full = (1 << bits) - 1
    quantized = np.clip(np.round(desc / scale * full), 0, full)
    # Delta-encode coordinates (keypoints arrive in scan order, so
    # successive rows are near each other and the deltas compress well).
    delta = np.diff(xy, axis=0,
                    prepend=np.zeros((1, 2), dtype=np.int64))
    delta = delta.astype(np.int16)  # first row stays absolute
    blob = (delta.tobytes()
            + np.asarray(kp.scores, dtype=np.float16).tobytes()
            + _pack_quantized(quantized, bits))
    header = _KP_HEAD.pack(kp.image_size, kp.cell_size, kp.lidar_range,
                           n_kp, kp.grid_size, kp.num_orientations,
                           bits, 0, scale)
    return header + zlib.compress(blob, level=level)


def _decode_keypoints(block: bytes) -> KeypointPayload:
    try:
        (size, cell, lidar_range, n_kp, grid, n_orient, bits, _reserved,
         scale) = _KP_HEAD.unpack_from(block, 0)
    except struct.error as exc:
        raise CodecError(f"truncated keypoint header: {exc}") from exc
    if bits not in (4, 8):
        raise CodecError(f"unsupported descriptor depth: {bits} bits")
    if grid < 1 or n_orient < 1 or size < 1:
        raise CodecError("keypoint header carries degenerate geometry")
    if not (np.isfinite(cell) and np.isfinite(lidar_range)
            and np.isfinite(scale)) or cell <= 0 or lidar_range <= 0 \
            or scale <= 0:
        raise CodecError("keypoint header carries non-physical geometry")
    try:
        blob = zlib.decompress(block[_KP_HEAD.size:])
    except zlib.error as exc:
        raise CodecError(f"corrupt keypoint payload: {exc}") from exc
    dim = grid * grid * n_orient
    xy_bytes = n_kp * 2 * 2
    score_bytes = n_kp * 2
    packed_bytes = (n_kp * dim + 1) // 2 if bits == 4 else n_kp * dim
    if len(blob) != xy_bytes + score_bytes + packed_bytes:
        raise CodecError(
            f"keypoint payload is {len(blob)} bytes for {n_kp} keypoints "
            f"(expected {xy_bytes + score_bytes + packed_bytes})")
    delta = np.frombuffer(blob, dtype=np.int16,
                          count=n_kp * 2).reshape(n_kp, 2)
    xy = np.cumsum(delta.astype(np.int64), axis=0)
    if n_kp and (xy.min() < 0 or xy.max() >= size):
        raise CodecError("keypoint coordinates fall outside the image")
    scores = np.frombuffer(blob, dtype=np.float16, offset=xy_bytes,
                           count=n_kp).astype(np.float64)
    packed = np.frombuffer(blob, dtype=np.uint8,
                           offset=xy_bytes + score_bytes)
    full = (1 << bits) - 1
    desc = _unpack_quantized(packed, n_kp * dim, bits).reshape(n_kp, dim)
    desc = desc / full * scale
    norms = np.linalg.norm(desc, axis=1)
    desc /= np.where(norms > 0, norms, 1.0)[:, None]
    return KeypointPayload(xy=xy, scores=scores, descriptors=desc,
                           image_size=size, cell_size=cell,
                           lidar_range=lidar_range, grid_size=grid,
                           num_orientations=n_orient)


# ----------------------------------------------------------------------
# The codec registry: per-tier sense/box encoders and decoders.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _TierCodec:
    tier: Tier
    magic: bytes
    encode_sense: Callable[[TieredMessage, TierCodecConfig], bytes]
    decode_sense: Callable[[bytes], dict]
    encode_boxes: Callable[[list[Box2D]], bytes]
    decode_boxes: Callable[[bytes], list[Box2D]]


def _require(value, tier: Tier, what: str):
    if value is None:
        raise ValueError(f"tier {tier.value} requires {what}")
    return value


TIER_CODECS: dict[Tier, _TierCodec] = {
    Tier.FULL_SCAN: _TierCodec(
        Tier.FULL_SCAN, _MAGIC_BY_TIER[Tier.FULL_SCAN],
        lambda m, c: _encode_cloud(
            _require(m.cloud, Tier.FULL_SCAN, "a point cloud"),
            c.compress_level),
        lambda block: {"cloud": _decode_cloud(block)},
        _encode_boxes64, _decode_boxes64),
    Tier.BV_IMAGE: _TierCodec(
        Tier.BV_IMAGE, _MAGIC_BY_TIER[Tier.BV_IMAGE],
        lambda m, c: encode_bv_image(
            _require(m.bv_image, Tier.BV_IMAGE, "a BV image"),
            compress=True),
        lambda block: {"bv_image": decode_bv_image(block)},
        encode_boxes, decode_boxes),
    Tier.KEYPOINTS: _TierCodec(
        Tier.KEYPOINTS, _MAGIC_BY_TIER[Tier.KEYPOINTS],
        lambda m, c: _encode_keypoints(
            _require(m.keypoints, Tier.KEYPOINTS, "a keypoint payload"),
            c.compress_level, c.descriptor_bits),
        lambda block: {"keypoints": _decode_keypoints(block)},
        encode_boxes, decode_boxes),
    Tier.BOXES_ONLY: _TierCodec(
        Tier.BOXES_ONLY, _MAGIC_BY_TIER[Tier.BOXES_ONLY],
        lambda m, c: b"",
        lambda block: {} if len(block) == 0
        else (_ for _ in ()).throw(CodecError(
            f"boxes-only message carries {len(block)} unexpected sense "
            "bytes")),
        encode_boxes, decode_boxes),
}


def sniff_tier(data: bytes) -> Tier | None:
    """The tier a buffer claims to carry, or None for non-tier magics.

    Purely a dispatch hint (e.g. "is this a legacy ``V2V1`` frame or a
    tiered one?") — the claim is only *verified* by
    :func:`decode_message`.
    """
    return _TIER_BY_MAGIC.get(bytes(data[:4]))


def dense_payload_bytes(message: TieredMessage) -> int:
    """Uncompressed single-precision cost of the carried content.

    The accountant's numerator: what the tier's information would cost
    with no quantization, packing, RLE or deflate — float32 xyz for the
    cloud, dense 8-bit pixels for the image, float32 keypoint rows, 20
    bytes per box.  ``payload / encoded`` is the compression ratio.
    """
    boxes = 20 * len(message.boxes)
    if message.tier is Tier.FULL_SCAN:
        return 12 * len(message.cloud) + boxes
    if message.tier is Tier.BV_IMAGE:
        return message.bv_image.size ** 2 + boxes
    if message.tier is Tier.KEYPOINTS:
        kp = message.keypoints
        return len(kp.xy) * (12 + 4 * kp.descriptors.shape[1]) + boxes
    return boxes


def encode_message(message: TieredMessage,
                   config: TierCodecConfig | None = None, *,
                   record: bool = True) -> bytes:
    """Serialize a tiered message into the CRC32-framed envelope.

    Unless ``record=False``, records sender-side byte accounting
    (encoded bytes, dense payload bytes, per-tier counters) into the
    active metrics registry — a no-op when none is installed.
    """
    config = config or TierCodecConfig()
    codec = TIER_CODECS[message.tier]
    sense = codec.encode_sense(message, config)
    boxes = codec.encode_boxes(message.boxes)
    header = _TIER_HEAD.pack(codec.magic, len(sense), len(boxes))
    encoded = _frame(header, sense + boxes)
    if record:
        accounting.record_sent(message.tier.value, len(encoded),
                               dense_payload_bytes(message))
    return encoded


def decode_message(data: bytes) -> TieredMessage:
    """Parse any tiered message; the inverse of :func:`encode_message`.

    Raises:
        CodecError: ``data`` is not a well-formed tiered message of a
            known tier (unknown magics included).
    """
    try:
        magic, sense_len, box_len = _TIER_HEAD.unpack_from(data, 0)
    except struct.error as exc:
        raise CodecError(f"malformed tier header: {exc}") from exc
    tier = _TIER_BY_MAGIC.get(magic)
    if tier is None:
        raise CodecError(f"unknown message tier (magic {magic!r})")
    payload = _verify_crc(bytes(data), _TIER_HEAD, f"tier {tier.value}")
    if len(payload) != sense_len + box_len:
        raise CodecError(
            f"tier {tier.value} payload is {len(payload)} bytes, header "
            f"promises {sense_len + box_len}")
    codec = TIER_CODECS[tier]
    sense = codec.decode_sense(payload[:sense_len])
    boxes = codec.decode_boxes(payload[sense_len:])
    return TieredMessage(tier=tier, boxes=boxes, **sense)


# ----------------------------------------------------------------------
# Sender-side construction from pipeline objects.
# ----------------------------------------------------------------------
def build_message(tier: Tier, boxes: list[Box2D], *,
                  cloud: PointCloud | None = None,
                  features=None,
                  config: TierCodecConfig | None = None) -> TieredMessage:
    """Assemble the message a sender at ``tier`` would transmit.

    Args:
        tier: the fidelity rung to send at.
        boxes: the sender's BEV detection boxes (always transmitted).
        cloud: the raw scan (full-scan tier only).
        features: the sender's extracted
            :class:`~repro.core.bv_matching.BVFeatures` (BV-image and
            keypoint tiers; accessed duck-typed to keep this package
            core-free).
        config: encoding knobs (defaults).
    """
    config = config or TierCodecConfig()
    if tier is Tier.FULL_SCAN:
        return TieredMessage(tier, list(boxes), cloud=_require(
            cloud, tier, "the raw point cloud"))
    if tier is Tier.BV_IMAGE:
        features = _require(features, tier, "extracted BVFeatures")
        return TieredMessage(tier, list(boxes), bv_image=features.bv_image)
    if tier is Tier.KEYPOINTS:
        features = _require(features, tier, "extracted BVFeatures")
        return TieredMessage(tier, list(boxes),
                             keypoints=_keypoint_payload(features, config))
    if tier is Tier.BOXES_ONLY:
        return TieredMessage(tier, list(boxes))
    raise ValueError(f"unknown tier: {tier!r}")


def _keypoint_payload(features, config: TierCodecConfig) -> KeypointPayload:
    """Top-K pooled keypoints + descriptors from extracted features."""
    desc_set = features.descriptors
    bv = features.bv_image
    n_orient = features.mim.num_orientations
    dim = (desc_set.descriptors.shape[1] if len(desc_set)
           else features.mim.num_orientations)
    if len(desc_set) == 0:
        pooled_grid = 1
        pooled_orient = max(n_orient // config.orientation_pool, 1)
        return KeypointPayload(
            xy=np.empty((0, 2), dtype=np.int64), scores=np.empty(0),
            descriptors=np.empty((0, pooled_grid ** 2 * pooled_orient)),
            image_size=bv.size, cell_size=bv.cell_size,
            lidar_range=bv.lidar_range, grid_size=pooled_grid,
            num_orientations=pooled_orient)
    grid = _infer_descriptor_geometry(dim, n_orient)
    scores = np.asarray(features.keypoints.scores)[
        desc_set.keypoint_indices]
    if len(desc_set) > config.max_keypoints:
        top = np.argpartition(scores, -config.max_keypoints)[
            -config.max_keypoints:]
        selected = np.sort(top)  # back to scan order for delta coding
    else:
        selected = np.arange(len(desc_set))
    pooled = pool_descriptors(desc_set.descriptors[selected], grid,
                              n_orient, config.grid_pool,
                              config.orientation_pool)
    xy = np.rint(desc_set.keypoint_xy[selected]).astype(np.int64)
    return KeypointPayload(
        xy=xy, scores=scores[selected], descriptors=pooled,
        image_size=bv.size, cell_size=bv.cell_size,
        lidar_range=bv.lidar_range,
        grid_size=grid // config.grid_pool,
        num_orientations=n_orient // config.orientation_pool)
