"""BB-Align: the paper's two-stage pose recovery framework.

:class:`BBAlign` (in :mod:`repro.core.pipeline`) implements Algorithm 1
end-to-end; :mod:`repro.core.bv_matching` is stage 1 (BV image matching)
and :mod:`repro.core.box_alignment` stage 2 (bounding-box refinement).
"""

from repro.core.box_alignment import BoxAligner, BoxAlignment
from repro.core.bv_matching import BVFeatures, BVMatch, BVMatcher
from repro.core.confidence import ConfidenceModel, fit_confidence_model
from repro.core.config import (
    BBAlignConfig,
    BoxAlignConfig,
    BVImageConfig,
    BVMatchRansacConfig,
    SuccessCriteria,
)
from repro.core.degradation import (
    DegradationLevel,
    FailureReason,
    StageDiagnostics,
)
from repro.core.multi import MultiAlignment, MultiVehicleAligner, PairwiseEdge
from repro.core.pipeline import BBAlign
from repro.core.result import PoseRecoveryResult
from repro.core.temporal import PoseTracker, TrackedPose, TrackerConfig

__all__ = [
    "BBAlign",
    "BBAlignConfig",
    "BVFeatures",
    "BVImageConfig",
    "BVMatch",
    "BVMatchRansacConfig",
    "BVMatcher",
    "BoxAlignConfig",
    "BoxAligner",
    "BoxAlignment",
    "ConfidenceModel",
    "DegradationLevel",
    "FailureReason",
    "StageDiagnostics",
    "MultiAlignment",
    "MultiVehicleAligner",
    "PairwiseEdge",
    "PoseRecoveryResult",
    "PoseTracker",
    "SuccessCriteria",
    "TrackedPose",
    "TrackerConfig",
    "fit_confidence_model",
]
