"""Stage 2: fine alignment from object bounding boxes (Section IV-B).

The other car's BEV boxes are brought into the ego frame with the stage-1
transform ``T_bv``; boxes that overlap an ego box are treated as the same
physical object, their corners paired in consistent order, and a second
RANSAC estimates the residual correction ``T_box``.  The combined result
is ``T_2D = T_box @ T_bv`` (Algorithm 1, line 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.boxes.box import Box2D
from repro.boxes.matching import (
    BoxMatch,
    corner_correspondences,
    match_boxes_by_overlap,
)
from repro.core.config import BoxAlignConfig
from repro.geometry.ransac import RansacResult, ransac_rigid_2d
from repro.geometry.se2 import SE2
from repro.obs.metrics import counter, histogram

__all__ = ["BoxAlignment", "BoxAligner"]


@dataclass(frozen=True)
class BoxAlignment:
    """Stage-2 output.

    Attributes:
        correction: ``T_box`` — the residual transform refining ``T_bv``
            (identity when refinement failed or was skipped).
        inliers_box: corner-level RANSAC inlier count (``Inliers_box``).
        num_matched_boxes: overlapped box pairs found.
        num_correspondences: corner pairs fed to RANSAC (4 per box pair).
        success: a valid correction was estimated.
        ransac: full RANSAC diagnostics (None when no correspondences).
        matches: the box-level matches (for analysis).
    """

    correction: SE2
    inliers_box: int
    num_matched_boxes: int
    num_correspondences: int
    success: bool
    ransac: RansacResult | None
    matches: list[BoxMatch]

    @staticmethod
    def skipped() -> "BoxAlignment":
        return BoxAlignment(SE2.identity(), 0, 0, 0, False, None, [])


class BoxAligner:
    """Runs stage 2 of BB-Align."""

    def __init__(self, config: BoxAlignConfig | None = None) -> None:
        self.config = config or BoxAlignConfig()

    def align(self, other_boxes: list[Box2D], ego_boxes: list[Box2D],
              stage1_transform: SE2,
              rng: np.random.Generator | int | None = None) -> BoxAlignment:
        """Estimate the residual correction ``T_box``.

        Args:
            other_boxes: the other car's BEV boxes *in its own frame*.
            ego_boxes: the ego car's BEV boxes in the ego frame.
            stage1_transform: ``T_bv`` from stage 1.
            rng: RANSAC randomness.

        Returns:
            A :class:`BoxAlignment`.  On failure the correction is the
            identity, so callers can always compose
            ``correction @ stage1_transform``.
        """
        cfg = self.config
        if not other_boxes or not ego_boxes:
            counter("stage2/skipped_no_boxes").inc()
            return BoxAlignment.skipped()

        transformed = [box.transform(stage1_transform) for box in other_boxes]
        matches = match_boxes_by_overlap(transformed, ego_boxes,
                                         min_iou=cfg.min_overlap_iou)
        if not matches:
            counter("stage2/skipped_no_overlap").inc()
            return BoxAlignment.skipped()
        histogram("stage2/matched_boxes").observe(float(len(matches)))

        src, dst = corner_correspondences(transformed, ego_boxes, matches)
        ransac = ransac_rigid_2d(src, dst,
                                 threshold=cfg.threshold_meters,
                                 max_iterations=cfg.max_iterations,
                                 min_inliers=4,
                                 rng=rng)
        if not ransac.success:
            return BoxAlignment(SE2.identity(), 0, len(matches), len(src),
                                False, ransac, matches)

        correction = ransac.transform
        drift = float(np.hypot(correction.tx, correction.ty))
        if drift > cfg.max_correction_meters:
            # The "correction" teleports boxes across the scene — stage 1
            # residuals are never that large, so this is a mismatch; keep
            # the stage-1 estimate.
            counter("stage2/correction_rejected").inc()
            return BoxAlignment(SE2.identity(), 0, len(matches), len(src),
                                False, ransac, matches)
        histogram("stage2/inliers_box").observe(float(ransac.num_inliers))
        return BoxAlignment(correction, ransac.num_inliers, len(matches),
                            len(src), True, ransac, matches)
