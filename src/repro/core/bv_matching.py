"""Stage 1: BV image matching (paper Section IV-A, Algorithm 1 lines 5-11).

Pipeline per vehicle: lidar scan -> height-map BV image -> MIM -> FAST
keypoints -> BVFT descriptors.  Across vehicles: descriptor matching ->
RANSAC -> the coarse transform ``T_bv`` (other -> ego) in world
coordinates, plus the inlier count ``Inliers_bv`` used by the success
criterion.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, ContextManager

import numpy as np

from repro.bev.mim import MIMResult, compute_mim
from repro.bev.projection import BVImage, density_map, height_map
from repro.core.config import BBAlignConfig
from repro.features.descriptors import BvftDescriptorExtractor, DescriptorSet
from repro.features.fast import Keypoints, detect_fast
from repro.features.harris import detect_harris
from repro.features.pc_keypoints import PcKeypointConfig, detect_pc_keypoints
from repro.features.matching import MatchResult, match_descriptors
from repro.geometry.ransac import RansacResult, ransac_rigid_2d
from repro.obs.metrics import counter, histogram
from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud

__all__ = ["BVFeatures", "BVMatch", "BVMatcher"]

# A stage timer is a factory of context managers keyed by stage name (see
# repro.runtime.timings.stage); None disables instrumentation.  Stage-1
# records per-kernel detail stages ("bv_extract/mim", "stage1_match/nn",
# ...) that the timings report nests under their top-level stage.
StageTimer = Callable[[str], ContextManager]


def _no_timing(_stage: str) -> ContextManager:
    return contextlib.nullcontext()


@dataclass(frozen=True)
class BVFeatures:
    """Everything stage 1 extracts from one vehicle's scan."""

    bv_image: BVImage
    mim: MIMResult
    keypoints: Keypoints
    descriptors: DescriptorSet

    def flipped(self) -> "BVFeatures":
        """The same features under an exact 180-degree image rotation.

        A 180-degree rotation permutes pixels without resampling, leaves
        Log-Gabor amplitudes (and hence MIM values — orientations are
        mod pi) in place, and maps a keypoint at (c, r) to
        (H-1-c, H-1-r).  Descriptors are *not* carried over (the patch
        content flips), so the returned object has an empty descriptor
        set; callers re-extract.

        The flipped arrays are reversed *views* of the originals (no
        copies): consumers treat features as read-only, and the derived
        flip-descriptor path never touches the flipped image or MIM.
        """
        image = self.bv_image
        size = image.size
        flipped_image = BVImage(image.image[::-1, ::-1],
                                image.cell_size, image.lidar_range)
        flipped_mim = MIMResult(
            mim=self.mim.mim[::-1, ::-1],
            max_amplitude=self.mim.max_amplitude[::-1, ::-1],
            total_amplitude=self.mim.total_amplitude[::-1, ::-1],
            num_orientations=self.mim.num_orientations,
        )
        flipped_xy = (size - 1) - self.keypoints.xy
        flipped_kp = Keypoints(flipped_xy, self.keypoints.scores)
        empty = DescriptorSet.empty(
            self.descriptors.descriptors.shape[1]
            if len(self.descriptors) else 0)
        return BVFeatures(flipped_image, flipped_mim, flipped_kp, empty)


@dataclass(frozen=True)
class BVMatch:
    """Stage-1 output.

    Attributes:
        transform: ``T_bv`` — maps points from the other car's frame into
            the ego frame (world meters).  Identity when matching failed.
        inliers_bv: RANSAC inlier count (the paper's ``Inliers_bv``).
        num_matches: descriptor matches fed to RANSAC.
        success: RANSAC found a consensus model at all (distinct from the
            paper's success criterion, which also thresholds the count).
        pixel_transform: the raw pixel-frame transform (diagnostics).
        ransac: full RANSAC diagnostics.
        matches: the descriptor match set (for plotting/analysis).
    """

    transform: SE2
    inliers_bv: int
    num_matches: int
    success: bool
    pixel_transform: SE2
    ransac: RansacResult
    matches: MatchResult
    used_flip: bool = False

    @staticmethod
    def failed(matches: MatchResult, ransac: RansacResult) -> "BVMatch":
        return BVMatch(SE2.identity(), 0, len(matches), False,
                       SE2.identity(), ransac, matches)


class BVMatcher:
    """Runs stage 1 of BB-Align.

    Stateless apart from configuration and cached extractors, so one
    instance can serve a whole dataset sweep.
    """

    def __init__(self, config: BBAlignConfig | None = None) -> None:
        self.config = config or BBAlignConfig()
        self._extractor = BvftDescriptorExtractor(self.config.descriptor)

    # ------------------------------------------------------------------
    # Per-vehicle feature extraction
    # ------------------------------------------------------------------
    def make_bv_image(self, cloud: PointCloud) -> BVImage:
        """Project a scan to a BV image (height map per Eq. 4 by default;
        density map when configured, for the ablation)."""
        cfg = self.config.bv_image
        if cfg.projection == "density":
            return density_map(cloud, cell_size=cfg.cell_size,
                               lidar_range=cfg.lidar_range)
        return height_map(cloud, cell_size=cfg.cell_size,
                          lidar_range=cfg.lidar_range,
                          min_height=cfg.min_height,
                          max_height=cfg.max_height)

    def _detect_keypoints(self, bv_image: BVImage) -> Keypoints:
        """Run the configured keypoint detector."""
        detector = self.config.keypoint_detector
        if detector == "harris":
            return detect_harris(bv_image.image)
        if detector == "phase_congruency":
            return detect_pc_keypoints(
                bv_image.image,
                PcKeypointConfig(log_gabor=self.config.log_gabor))
        return detect_fast(bv_image.image, self.config.fast)

    def extract(self, bv_image: BVImage,
                timer: StageTimer | None = None) -> BVFeatures:
        """Compute MIM, keypoints and descriptors for one BV image."""
        timer = timer or _no_timing
        with timer("bv_extract/mim"):
            mim = compute_mim(bv_image, self.config.log_gabor)
        with timer("bv_extract/keypoints"):
            keypoints = self._detect_keypoints(bv_image)
        with timer("bv_extract/descriptors"):
            descriptors = self._extractor.compute(mim, keypoints)
        return BVFeatures(bv_image, mim, keypoints, descriptors)

    def extract_from_cloud(self, cloud: PointCloud,
                           timer: StageTimer | None = None) -> BVFeatures:
        """Convenience: projection + extraction in one call."""
        return self.extract(self.make_bv_image(cloud), timer=timer)

    # ------------------------------------------------------------------
    # Cross-vehicle matching
    # ------------------------------------------------------------------
    def match(self, other: BVFeatures, ego: BVFeatures,
              rng: np.random.Generator | int | None = None,
              timer: StageTimer | None = None) -> BVMatch:
        """Match the other car's features against the ego car's.

        Args:
            other: features from the received BV image (source).
            ego: features from the ego car's BV image (destination).
            rng: RANSAC randomness; defaults to the config seed.
            timer: optional stage-timer factory recording the
                ``stage1_match/*`` detail stages.

        Returns:
            A :class:`BVMatch` whose ``transform`` maps other-frame world
            coordinates into the ego frame.
        """
        cfg = self.config.bv_ransac
        timer = timer or _no_timing
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(
                self.config.random_seed if rng is None else rng)

        direct = self._match_one(other, ego, rng, timer)
        if not cfg.disambiguate_pi:
            self._record_match(direct)
            return direct

        # Second hypothesis: the other image rotated 180 degrees, which
        # folds relative yaws in (90, 270) back into the descriptor's
        # unambiguous range.  The winner is whichever consensus is larger.
        with timer("stage1_match/flip"):
            flipped = other.flipped()
            flipped = BVFeatures(flipped.bv_image, flipped.mim,
                                 flipped.keypoints,
                                 self._flipped_descriptors(other, flipped))
        mirrored = self._match_one(flipped, ego, rng, timer)
        if mirrored.inliers_bv <= direct.inliers_bv:
            self._record_match(direct)
            return direct
        # Compose out the flip: p_flipped = (H-1) - p = SE2(pi, H-1, H-1) p.
        size = other.bv_image.size
        flip = SE2(np.pi, float(size - 1), float(size - 1))
        pixel_transform = mirrored.pixel_transform @ flip
        world = ego.bv_image.pixel_transform_to_world(pixel_transform)
        result = BVMatch(transform=world,
                         inliers_bv=mirrored.inliers_bv,
                         num_matches=mirrored.num_matches,
                         success=mirrored.success,
                         pixel_transform=pixel_transform,
                         ransac=mirrored.ransac,
                         matches=mirrored.matches,
                         used_flip=True)
        self._record_match(result)
        return result

    @staticmethod
    def _record_match(match: "BVMatch") -> None:
        """Observability: per-match counts into the active registry.

        A no-op unless a registry is installed; reads results only, so
        traced and untraced matching stay byte-identical.
        """
        counter("stage1/matches").inc()
        if match.success:
            counter("stage1/consensus").inc()
        if match.used_flip:
            counter("stage1/flip_wins").inc()
        histogram("stage1/num_matches").observe(float(match.num_matches))
        histogram("stage1/inliers_bv").observe(float(match.inliers_bv))

    def _flipped_descriptors(self, other: BVFeatures,
                             flipped: BVFeatures) -> DescriptorSet:
        """Descriptors for the 180-degree flip hypothesis.

        Integral keypoints (FAST) let the flipped descriptors be derived
        as an exact cell permutation of the originals; subpixel
        detectors fall back to a full recompute on the flipped MIM.
        """
        xy = other.keypoints.xy
        if np.array_equal(xy, np.rint(xy)):
            return self._extractor.flipped_set(other.descriptors,
                                               other.bv_image.size)
        return self._extractor.compute(flipped.mim, flipped.keypoints)

    def _match_one(self, other: BVFeatures, ego: BVFeatures,
                   rng: np.random.Generator,
                   timer: StageTimer | None = None) -> BVMatch:
        """Single-hypothesis matching (no pi disambiguation)."""
        cfg = self.config.bv_ransac
        timer = timer or _no_timing
        with timer("stage1_match/nn"):
            matches = match_descriptors(other.descriptors, ego.descriptors,
                                        ratio=cfg.ratio_test,
                                        mutual=cfg.mutual_check)
        if len(matches) < 2:
            empty = ransac_rigid_2d(np.empty((0, 2)), np.empty((0, 2)),
                                    threshold=cfg.threshold_pixels, rng=rng)
            return BVMatch.failed(matches, empty)

        with timer("stage1_match/ransac"):
            ransac = ransac_rigid_2d(matches.src_xy, matches.dst_xy,
                                     threshold=cfg.threshold_pixels,
                                     max_iterations=cfg.max_iterations,
                                     rng=rng)
        if not ransac.success:
            return BVMatch.failed(matches, ransac)

        # Both images share one configuration, so either can convert the
        # pixel-frame transform back to meters.
        world = ego.bv_image.pixel_transform_to_world(ransac.transform)
        return BVMatch(transform=world,
                       inliers_bv=ransac.num_inliers,
                       num_matches=len(matches),
                       success=True,
                       pixel_transform=ransac.transform,
                       ransac=ransac,
                       matches=matches)

    def match_clouds(self, other_cloud: PointCloud, ego_cloud: PointCloud,
                     rng: np.random.Generator | int | None = None) -> BVMatch:
        """End-to-end stage 1 from raw scans."""
        return self.match(self.extract_from_cloud(other_cloud),
                          self.extract_from_cloud(ego_cloud), rng=rng)
