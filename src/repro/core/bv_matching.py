"""Stage 1: BV image matching (paper Section IV-A, Algorithm 1 lines 5-11).

Pipeline per vehicle: lidar scan -> height-map BV image -> MIM -> FAST
keypoints -> BVFT descriptors.  Across vehicles: descriptor matching ->
RANSAC -> the coarse transform ``T_bv`` (other -> ego) in world
coordinates, plus the inlier count ``Inliers_bv`` used by the success
criterion.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Callable, ContextManager

import numpy as np

from repro.bev.mim import MIMResult, compute_mim, compute_mim_batch
from repro.bev.projection import BVImage, density_map, height_map
from repro.bev.roi import RoiWindow, roi_window
from repro.core.config import BBAlignConfig
from repro.features.descriptors import BvftDescriptorExtractor, DescriptorSet
from repro.features.fast import Keypoints, detect_fast
from repro.features.harris import detect_harris
from repro.features.matching import MatchResult, match_descriptors
from repro.features.pc_keypoints import PcKeypointConfig, detect_pc_keypoints
from repro.geometry.ransac import RansacResult, ransac_rigid_2d
from repro.geometry.se2 import SE2
from repro.obs.metrics import counter, histogram
from repro.pointcloud.cloud import PointCloud

__all__ = ["BVFeatures", "BVMatch", "BVMatcher"]

# A stage timer is a factory of context managers keyed by stage name (see
# repro.runtime.timings.stage); None disables instrumentation.  Stage-1
# records per-kernel detail stages ("bv_extract/mim", "stage1_match/nn",
# ...) that the timings report nests under their top-level stage.
StageTimer = Callable[[str], ContextManager]


def _no_timing(_stage: str) -> ContextManager:
    return contextlib.nullcontext()


@dataclass(frozen=True)
class BVFeatures:
    """Everything stage 1 extracts from one vehicle's scan.

    When overlap-ROI culling was applied, ``roi`` records the crop
    window: ``mim`` then covers only that window of ``bv_image`` (its
    arrays are ``(roi.size, roi.size)``), while keypoint and descriptor
    coordinates are always expressed in the **full** image frame so the
    downstream matching/RANSAC/stage-2 geometry is unchanged.
    """

    bv_image: BVImage
    mim: MIMResult
    keypoints: Keypoints
    descriptors: DescriptorSet
    roi: RoiWindow | None = None

    def flipped(self) -> "BVFeatures":
        """The same features under an exact 180-degree image rotation.

        A 180-degree rotation permutes pixels without resampling, leaves
        Log-Gabor amplitudes (and hence MIM values — orientations are
        mod pi) in place, and maps a keypoint at (c, r) to
        (H-1-c, H-1-r).  Descriptors are *not* carried over (the patch
        content flips), so the returned object has an empty descriptor
        set; callers re-extract.

        The flipped arrays are reversed *views* of the originals (no
        copies): consumers treat features as read-only, and the derived
        flip-descriptor path never touches the flipped image or MIM.
        """
        image = self.bv_image
        size = image.size
        flipped_image = BVImage(image.image[::-1, ::-1],
                                image.cell_size, image.lidar_range)
        flipped_mim = MIMResult(
            mim=self.mim.mim[::-1, ::-1],
            max_amplitude=self.mim.max_amplitude[::-1, ::-1],
            total_amplitude=self.mim.total_amplitude[::-1, ::-1],
            num_orientations=self.mim.num_orientations,
        )
        flipped_xy = (size - 1) - self.keypoints.xy
        flipped_kp = Keypoints(flipped_xy, self.keypoints.scores)
        empty = DescriptorSet.empty(
            self.descriptors.descriptors.shape[1]
            if len(self.descriptors) else 0)
        return BVFeatures(flipped_image, flipped_mim, flipped_kp, empty)


@dataclass(frozen=True)
class BVMatch:
    """Stage-1 output.

    Attributes:
        transform: ``T_bv`` — maps points from the other car's frame into
            the ego frame (world meters).  Identity when matching failed.
        inliers_bv: RANSAC inlier count (the paper's ``Inliers_bv``).
        num_matches: descriptor matches fed to RANSAC.
        success: RANSAC found a consensus model at all (distinct from the
            paper's success criterion, which also thresholds the count).
        pixel_transform: the raw pixel-frame transform (diagnostics).
        ransac: full RANSAC diagnostics.
        matches: the descriptor match set (for plotting/analysis).
    """

    transform: SE2
    inliers_bv: int
    num_matches: int
    success: bool
    pixel_transform: SE2
    ransac: RansacResult
    matches: MatchResult
    used_flip: bool = False

    @staticmethod
    def failed(matches: MatchResult, ransac: RansacResult) -> "BVMatch":
        return BVMatch(SE2.identity(), 0, len(matches), False,
                       SE2.identity(), ransac, matches)


class BVMatcher:
    """Runs stage 1 of BB-Align.

    Stateless apart from configuration and cached extractors, so one
    instance can serve a whole dataset sweep.
    """

    def __init__(self, config: BBAlignConfig | None = None) -> None:
        self.config = config or BBAlignConfig()
        self._extractor = BvftDescriptorExtractor(self.config.descriptor)

    # ------------------------------------------------------------------
    # Per-vehicle feature extraction
    # ------------------------------------------------------------------
    def make_bv_image(self, cloud: PointCloud) -> BVImage:
        """Project a scan to a BV image (height map per Eq. 4 by default;
        density map when configured, for the ablation)."""
        cfg = self.config.bv_image
        if cfg.projection == "density":
            return density_map(cloud, cell_size=cfg.cell_size,
                               lidar_range=cfg.lidar_range)
        return height_map(cloud, cell_size=cfg.cell_size,
                          lidar_range=cfg.lidar_range,
                          min_height=cfg.min_height,
                          max_height=cfg.max_height)

    def _detect_keypoints(self, bv_image: BVImage) -> Keypoints:
        """Run the configured keypoint detector."""
        detector = self.config.keypoint_detector
        if detector == "harris":
            return detect_harris(bv_image.image)
        if detector == "phase_congruency":
            return detect_pc_keypoints(
                bv_image.image,
                PcKeypointConfig(log_gabor=self.config.log_gabor))
        return detect_fast(bv_image.image, self.config.fast)

    def _roi_window(self, bv_image: BVImage, prior) -> RoiWindow | None:
        """The overlap crop window for one image, or None (no culling).

        Culling requires the feature to be enabled, a prior, and the
        FAST detector: FAST keypoints are integral, which keeps the
        π-flip disambiguation on the exact permutation path that never
        touches the (cropped) MIM of the flipped hypothesis.
        """
        cfg = self.config
        if prior is None or not cfg.roi.enabled:
            return None
        if cfg.keypoint_detector != "fast":
            return None
        return roi_window(prior, cell_size=bv_image.cell_size,
                          lidar_range=bv_image.lidar_range,
                          image_size=bv_image.size, config=cfg.roi)

    @staticmethod
    def _roi_crop(bv_image: BVImage, window: RoiWindow | None) -> np.ndarray:
        """The (contiguous) image region extraction runs on."""
        if window is None:
            return bv_image.image
        r0, c0, s = window.row0, window.col0, window.size
        return np.ascontiguousarray(bv_image.image[r0:r0 + s, c0:c0 + s])

    def _finish_extract(self, bv_image: BVImage, image: np.ndarray,
                        mim: MIMResult, window: RoiWindow | None,
                        timer: StageTimer) -> BVFeatures:
        """Keypoints + descriptors on an (optionally cropped) MIM.

        Shared verbatim by the single and pair extraction paths, so the
        two produce identical features for identical inputs.
        """
        with timer("bv_extract/keypoints"):
            if window is None:
                keypoints = self._detect_keypoints(bv_image)
            else:
                # _roi_window gates culling to the FAST detector.
                keypoints = detect_fast(image, self.config.fast)
        with timer("bv_extract/descriptors"):
            descriptors = self._extractor.compute(mim, keypoints)
        if window is not None:
            # Map window-local coordinates back to the full image frame;
            # downstream matching/RANSAC/stage-2 never see the crop.
            offset = window.offset_xy
            keypoints = Keypoints(keypoints.xy + offset, keypoints.scores)
            descriptors = DescriptorSet(
                descriptors.descriptors,
                descriptors.keypoint_xy + offset,
                descriptors.keypoint_indices,
                descriptors.dominant_bins)
        return BVFeatures(bv_image, mim, keypoints, descriptors, roi=window)

    def extract(self, bv_image: BVImage,
                timer: StageTimer | None = None,
                prior=None) -> BVFeatures:
        """Compute MIM, keypoints and descriptors for one BV image.

        ``prior`` is an optional coarse (x, y) translation of the other
        sensor in this image's frame (meters); with ROI culling enabled
        it crops extraction to the predicted overlap window (see
        :mod:`repro.bev.roi`).
        """
        timer = timer or _no_timing
        window = self._roi_window(bv_image, prior)
        image = self._roi_crop(bv_image, window)
        with timer("bv_extract/mim"):
            mim = compute_mim(image, self.config.log_gabor,
                              precision=self.config.stage1_precision)
        return self._finish_extract(bv_image, image, mim, window, timer)

    def extract_pair(self, bv_a: BVImage, bv_b: BVImage,
                     timer: StageTimer | None = None,
                     priors=(None, None)) -> tuple[BVFeatures, BVFeatures]:
        """Extract both cars of a pair through the bank in one pass.

        The two (optionally ROI-cropped) images go through the Log-Gabor
        bank as one ``(2, S, S)`` batch, touching windows and scratch
        once per pair.  Results are bitwise-identical to two
        :meth:`extract` calls (batched transforms match per-image
        transforms bit-for-bit, and the symmetric ROI sizing guarantees
        both crops share one size); when the sizes *cannot* be batched
        (mixed crop fallbacks or differing image sizes), the pair is
        extracted separately, same results either way.
        """
        timer = timer or _no_timing
        window_a = self._roi_window(bv_a, priors[0])
        window_b = self._roi_window(bv_b, priors[1])
        size_a = window_a.size if window_a is not None else bv_a.size
        size_b = window_b.size if window_b is not None else bv_b.size
        if size_a != size_b:
            return (self.extract(bv_a, timer=timer, prior=priors[0]),
                    self.extract(bv_b, timer=timer, prior=priors[1]))
        image_a = self._roi_crop(bv_a, window_a)
        image_b = self._roi_crop(bv_b, window_b)
        with timer("bv_extract/mim"):
            mims = compute_mim_batch(
                (image_a, image_b), self.config.log_gabor,
                precision=self.config.stage1_precision)
        return (self._finish_extract(bv_a, image_a, mims[0], window_a, timer),
                self._finish_extract(bv_b, image_b, mims[1], window_b, timer))

    def extract_from_cloud(self, cloud: PointCloud,
                           timer: StageTimer | None = None,
                           prior=None) -> BVFeatures:
        """Convenience: projection + extraction in one call."""
        return self.extract(self.make_bv_image(cloud), timer=timer,
                            prior=prior)

    # ------------------------------------------------------------------
    # Cross-vehicle matching
    # ------------------------------------------------------------------
    def match(self, other: BVFeatures, ego: BVFeatures,
              rng: np.random.Generator | int | None = None,
              timer: StageTimer | None = None) -> BVMatch:
        """Match the other car's features against the ego car's.

        Args:
            other: features from the received BV image (source).
            ego: features from the ego car's BV image (destination).
            rng: RANSAC randomness; defaults to the config seed.
            timer: optional stage-timer factory recording the
                ``stage1_match/*`` detail stages.

        Returns:
            A :class:`BVMatch` whose ``transform`` maps other-frame world
            coordinates into the ego frame.
        """
        cfg = self.config.bv_ransac
        timer = timer or _no_timing
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(
                self.config.random_seed if rng is None else rng)

        direct = self._match_one(other, ego, rng, timer)
        if not cfg.disambiguate_pi:
            self._record_match(direct)
            return direct

        # Second hypothesis: the other image rotated 180 degrees, which
        # folds relative yaws in (90, 270) back into the descriptor's
        # unambiguous range.  The winner is whichever consensus is larger.
        with timer("stage1_match/flip"):
            flipped = other.flipped()
            flipped = BVFeatures(flipped.bv_image, flipped.mim,
                                 flipped.keypoints,
                                 self._flipped_descriptors(other, flipped))
        mirrored = self._match_one(flipped, ego, rng, timer)
        if mirrored.inliers_bv <= direct.inliers_bv:
            self._record_match(direct)
            return direct
        # Compose out the flip: p_flipped = (H-1) - p = SE2(pi, H-1, H-1) p.
        size = other.bv_image.size
        flip = SE2(np.pi, float(size - 1), float(size - 1))
        pixel_transform = mirrored.pixel_transform @ flip
        world = ego.bv_image.pixel_transform_to_world(pixel_transform)
        result = BVMatch(transform=world,
                         inliers_bv=mirrored.inliers_bv,
                         num_matches=mirrored.num_matches,
                         success=mirrored.success,
                         pixel_transform=pixel_transform,
                         ransac=mirrored.ransac,
                         matches=mirrored.matches,
                         used_flip=True)
        self._record_match(result)
        return result

    @staticmethod
    def _record_match(match: "BVMatch") -> None:
        """Observability: per-match counts into the active registry.

        A no-op unless a registry is installed; reads results only, so
        traced and untraced matching stay byte-identical.
        """
        counter("stage1/matches").inc()
        if match.success:
            counter("stage1/consensus").inc()
        if match.used_flip:
            counter("stage1/flip_wins").inc()
        histogram("stage1/num_matches").observe(float(match.num_matches))
        histogram("stage1/inliers_bv").observe(float(match.inliers_bv))

    def _flipped_descriptors(self, other: BVFeatures,
                             flipped: BVFeatures) -> DescriptorSet:
        """Descriptors for the 180-degree flip hypothesis.

        Integral keypoints (FAST) let the flipped descriptors be derived
        as an exact cell permutation of the originals; subpixel
        detectors fall back to a full recompute on the flipped MIM.
        """
        xy = other.keypoints.xy
        if np.array_equal(xy, np.rint(xy)):
            return self._extractor.flipped_set(other.descriptors,
                                               other.bv_image.size)
        return self._extractor.compute(flipped.mim, flipped.keypoints)

    def _match_one(self, other: BVFeatures, ego: BVFeatures,
                   rng: np.random.Generator,
                   timer: StageTimer | None = None) -> BVMatch:
        """Single-hypothesis matching (no pi disambiguation)."""
        cfg = self.config.bv_ransac
        timer = timer or _no_timing
        with timer("stage1_match/nn"):
            matches = match_descriptors(other.descriptors, ego.descriptors,
                                        ratio=cfg.ratio_test,
                                        mutual=cfg.mutual_check)
        if len(matches) < 2:
            empty = ransac_rigid_2d(np.empty((0, 2)), np.empty((0, 2)),
                                    threshold=cfg.threshold_pixels, rng=rng)
            return BVMatch.failed(matches, empty)

        with timer("stage1_match/ransac"):
            ransac = ransac_rigid_2d(matches.src_xy, matches.dst_xy,
                                     threshold=cfg.threshold_pixels,
                                     max_iterations=cfg.max_iterations,
                                     rng=rng)
        if not ransac.success:
            return BVMatch.failed(matches, ransac)

        # Both images share one configuration, so either can convert the
        # pixel-frame transform back to meters.
        world = ego.bv_image.pixel_transform_to_world(ransac.transform)
        return BVMatch(transform=world,
                       inliers_bv=ransac.num_inliers,
                       num_matches=len(matches),
                       success=True,
                       pixel_transform=ransac.transform,
                       ransac=ransac,
                       matches=matches)

    def match_clouds(self, other_cloud: PointCloud, ego_cloud: PointCloud,
                     rng: np.random.Generator | int | None = None) -> BVMatch:
        """End-to-end stage 1 from raw scans."""
        return self.match(self.extract_from_cloud(other_cloud),
                          self.extract_from_cloud(ego_cloud), rng=rng)
