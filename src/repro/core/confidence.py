"""Confidence calibration: inlier counts → probability of accuracy.

The paper uses hard inlier thresholds as a binary success signal; a
deployed consumer (a fusion stack, the temporal tracker) wants a
*probability* that the recovered pose is accurate.  This module fits a
monotone binned-frequency model P(translation error < limit | inliers)
from a labeled sweep — the natural continuous refinement of the paper's
Fig. 9 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ConfidenceModel", "fit_confidence_model"]


@dataclass(frozen=True)
class ConfidenceModel:
    """A monotone step model over a combined inlier score.

    The combined score is ``inliers_bv + box_weight * inliers_box``
    (stage-2 inliers are scarcer and individually more informative).

    Attributes:
        bin_edges: ascending score edges; bin i covers
            ``[bin_edges[i], bin_edges[i+1])``.
        probabilities: monotone non-decreasing P(accurate) per bin.
        box_weight: stage-2 inlier weight in the combined score.
        error_limit: the accuracy definition (meters).
    """

    bin_edges: np.ndarray
    probabilities: np.ndarray
    box_weight: float
    error_limit: float

    def score(self, inliers_bv: int, inliers_box: int) -> float:
        return float(inliers_bv + self.box_weight * inliers_box)

    def predict(self, inliers_bv: int, inliers_box: int) -> float:
        """P(translation error < error_limit) for the given counts."""
        value = self.score(inliers_bv, inliers_box)
        index = int(np.searchsorted(self.bin_edges, value,
                                    side="right")) - 1
        index = int(np.clip(index, 0, len(self.probabilities) - 1))
        return float(self.probabilities[index])


def fit_confidence_model(outcomes, error_limit: float = 1.0,
                         box_weight: float = 2.0,
                         num_bins: int = 5) -> ConfidenceModel:
    """Fit the model from a pose-recovery sweep.

    Args:
        outcomes: :class:`repro.experiments.common.PairOutcome` list.
        error_limit: the accuracy definition.
        box_weight: stage-2 inlier weight.
        num_bins: quantile bins over the combined score.

    Returns:
        A :class:`ConfidenceModel`.  Isotonicity is enforced with a pool-
        adjacent-violators pass, so more inliers never predict less
        confidence.
    """
    if num_bins < 2:
        raise ValueError("num_bins must be >= 2")
    attempts = [o for o in outcomes if o.inliers_bv > 0]
    if len(attempts) < num_bins:
        raise ValueError("not enough attempted recoveries to fit")
    scores = np.array([o.inliers_bv + box_weight * o.inliers_box
                       for o in attempts], dtype=float)
    accurate = np.array([o.errors.translation < error_limit
                         for o in attempts], dtype=float)

    quantiles = np.linspace(0.0, 1.0, num_bins + 1)
    edges = np.unique(np.quantile(scores, quantiles))
    if len(edges) < 3:
        edges = np.array([scores.min(), np.median(scores),
                          scores.max() + 1.0])
    edges[0] = -np.inf
    edges[-1] = np.inf

    probabilities = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (scores >= lo) & (scores < hi)
        probabilities.append(float(accurate[mask].mean())
                             if mask.any() else 0.0)
    probabilities = np.asarray(probabilities)

    # Pool adjacent violators: enforce monotone non-decreasing bins.
    probabilities = probabilities.copy()
    for _ in range(len(probabilities)):
        violations = np.nonzero(np.diff(probabilities) < 0)[0]
        if violations.size == 0:
            break
        i = int(violations[0])
        pooled = (probabilities[i] + probabilities[i + 1]) / 2.0
        probabilities[i] = probabilities[i + 1] = pooled
    return ConfidenceModel(bin_edges=edges[:-1],
                           probabilities=probabilities,
                           box_weight=box_weight,
                           error_limit=error_limit)
