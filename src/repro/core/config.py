"""All BB-Align hyperparameters in one place.

Defaults follow the paper's Model Setup (Sec. V) where the substrate
permits — Log-Gabor with ``N_s = 4`` scales and ``N_o = 12`` orientations,
grid ``l = 6`` — and are otherwise re-calibrated for the simulated
dataset the same way the paper calibrated on V2V4Real (descriptor patch
``J = 48`` instead of 96 against occlusion-shadow pollution; success
threshold ``Inliers_bv > 12`` re-derived via the Fig. 9 analysis).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.bev.log_gabor import LogGaborConfig
from repro.bev.roi import RoiCullConfig
from repro.comms.tiers import TierCodecConfig
from repro.features.descriptors import BvftConfig
from repro.features.fast import FastConfig

__all__ = ["BVImageConfig", "BVMatchRansacConfig", "BoxAlignConfig",
           "SuccessCriteria", "BBAlignConfig", "STAGE1_PRECISIONS"]

# The two supported stage-1 numeric precisions ("Stage1Precision"):
# "float64" is the byte-identical reference path; "float32" is the
# opt-in single-precision fast path, validated by tolerance and pose
# agreement rather than byte identity (see CONTRIBUTING.md).
STAGE1_PRECISIONS = ("float64", "float32")


def _default_stage1_precision() -> str:
    """Default stage-1 precision, overridable via the environment.

    ``REPRO_STAGE1_PRECISION=float32`` flips every default-constructed
    configuration in the process to the single-precision path — this is
    how CI runs the whole tier-1 suite in float32.  Explicitly
    constructed configs are unaffected.
    """
    return os.environ.get("REPRO_STAGE1_PRECISION", "float64")


@dataclass(frozen=True)
class BVImageConfig:
    """Height-map projection parameters (paper Eq. 4).

    Attributes:
        cell_size: ground cell edge ``c`` in meters.
        lidar_range: half-extent ``R``; the BV image covers [-R, R]^2.
        min_height: clamp for below-ground returns.
        max_height: clamp that makes wall intensities viewpoint-
            independent (see :func:`repro.bev.projection.height_map`).
        projection: "height" (the paper's Eq. 4 choice) or "density"
            (the [31] alternative the paper argues against) — exposed for
            the ablation study.
    """

    cell_size: float = 0.8
    lidar_range: float = 76.8
    min_height: float = 0.0
    max_height: float | None = 5.0
    projection: str = "height"

    def __post_init__(self) -> None:
        if self.cell_size <= 0 or self.lidar_range <= 0:
            raise ValueError("cell_size and lidar_range must be positive")
        if self.projection not in ("height", "density"):
            raise ValueError("projection must be 'height' or 'density'")

    @property
    def image_size(self) -> int:
        return int(round(2.0 * self.lidar_range / self.cell_size))


@dataclass(frozen=True)
class BVMatchRansacConfig:
    """Stage-1 RANSAC parameters (pixel units).

    Attributes:
        threshold_pixels: inlier residual threshold in BV pixels.
        max_iterations: hypothesis budget.
        ratio_test: Lowe's ratio for descriptor matching.
        mutual_check: require cross-consistent nearest neighbors.
        disambiguate_pi: MIM orientations live on [0, pi), so descriptor
            rotation normalization is blind to 180-degree flips; when True
            the matcher also tries the other image rotated by 180 degrees
            (an exact pixel flip) and keeps the hypothesis with more
            inliers.  Required for relative yaws beyond +-90 degrees.
    """

    threshold_pixels: float = 2.5
    max_iterations: int = 2000
    ratio_test: float = 1.0
    mutual_check: bool = True
    disambiguate_pi: bool = True


@dataclass(frozen=True)
class BoxAlignConfig:
    """Stage-2 parameters (meter units).

    Attributes:
        min_overlap_iou: minimum BEV IoU for two boxes to be treated as
            the same physical object after the stage-1 transform.
        threshold_meters: RANSAC inlier threshold on corner residuals.
        max_iterations: hypothesis budget.
        max_correction_meters: reject a stage-2 refinement whose
            translation exceeds this (a guard against aligning the wrong
            object pairs; stage 1 leaves only small residuals).
    """

    min_overlap_iou: float = 0.05
    threshold_meters: float = 0.6
    max_iterations: int = 500
    max_correction_meters: float = 4.0


@dataclass(frozen=True)
class SuccessCriteria:
    """The empirical success thresholds (paper Sec. V-A).

    The paper derives ``Inliers_bv > 25 and Inliers_box > 6`` from its
    Fig. 9 analysis on V2V4Real.  Our simulated BV images carry fewer
    keypoints per frame than 64-beam real scans, so the same analysis on
    the simulated dataset (see the Fig. 9 experiment) lands the
    equal-role thresholds at ``Inliers_bv > 12``; the box threshold
    matches the paper's.
    """

    min_inliers_bv: int = 12
    min_inliers_box: int = 6

    def is_success(self, inliers_bv: int, inliers_box: int) -> bool:
        """Strictly-greater comparison, as stated in the paper
        ("Inliers_bv > 25 and Inliers_box > 6")."""
        return (inliers_bv > self.min_inliers_bv
                and inliers_box > self.min_inliers_box)


@dataclass(frozen=True)
class BBAlignConfig:
    """Complete configuration of the two-stage framework.

    ``keypoint_detector`` selects the stage-1 detector: "fast" (the
    paper's choice), "harris", or "phase_congruency" (the RIFT-style
    minimum-moment detector) — compared in the ablation study.

    ``roi`` configures overlap-ROI culling (crop each BV image to the
    overlap window predicted by a coarse translation prior before the
    filter bank — see :mod:`repro.bev.roi`); off by default, and only
    active when a prior is actually supplied to extraction.

    ``stage1_precision`` selects the stage-1 numeric path: ``"float64"``
    (default; byte-identical to the ``_reference_*`` twins) or
    ``"float32"`` (opt-in single-precision MIM/descriptor/matching
    path, validated by tolerance + pose agreement).  The default honors
    the ``REPRO_STAGE1_PRECISION`` environment variable.
    """

    bv_image: BVImageConfig = field(default_factory=BVImageConfig)
    log_gabor: LogGaborConfig = field(default_factory=LogGaborConfig)
    fast: FastConfig = field(default_factory=FastConfig)
    descriptor: BvftConfig = field(default_factory=BvftConfig)
    bv_ransac: BVMatchRansacConfig = field(default_factory=BVMatchRansacConfig)
    box_align: BoxAlignConfig = field(default_factory=BoxAlignConfig)
    success: SuccessCriteria = field(default_factory=SuccessCriteria)
    # Sender-side encoding knobs for tiered messages.  Not part of the
    # extraction fingerprint: changing how features are *transmitted*
    # never invalidates cached features.
    comms: TierCodecConfig = field(default_factory=TierCodecConfig)
    roi: RoiCullConfig = field(default_factory=RoiCullConfig)
    enable_box_alignment: bool = True
    keypoint_detector: str = "fast"
    stage1_precision: str = field(default_factory=_default_stage1_precision)
    random_seed: int | None = 0

    def __post_init__(self) -> None:
        if self.keypoint_detector not in ("fast", "harris",
                                          "phase_congruency"):
            raise ValueError(
                "keypoint_detector must be 'fast', 'harris' or "
                "'phase_congruency'")
        if self.stage1_precision not in STAGE1_PRECISIONS:
            raise ValueError(
                f"stage1_precision must be one of {STAGE1_PRECISIONS}, "
                f"got {self.stage1_precision!r}")
