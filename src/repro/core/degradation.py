"""Structured failure taxonomy for the graceful-degradation ladder.

A field deployment feeds BB-Align dropped packets, damaged buffers and
degenerate scans; the pipeline's contract is that **every** input
produces a :class:`~repro.core.result.PoseRecoveryResult` — never an
exception — with the failure mode named and the fallback that produced
the returned transform recorded.  The ladder, from best to worst:

1. **full** — both stages ran; stage-2 refinement applied (or cleanly
   rejected by its own confidence guard).
2. **stage1-only** — stage 2 failed outright (e.g. raised); the stage-1
   estimate is returned unrefined.
3. **boxes-only** — the message tier carried no BV evidence (see
   :class:`repro.comms.tiers.Tier`), so stage 1 was skipped *by
   design* and stage-2 box alignment ran from a pose prior.  Unlike
   the rungs below, this one can still succeed — under the weaker,
   box-consensus-only criterion.
4. **temporal** — the current frame produced nothing usable; the last
   successfully recovered pose is returned (see
   :mod:`repro.core.temporal` for the full odometry-predicted filter).
5. **identity** — nothing usable and no history; a flagged identity
   transform, which downstream consumers must treat as "no pose".

``success`` is always ``False`` from rung 4 down, and ``failure_reason``
is always populated whenever ``success`` is ``False``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.obs.metrics import counter

__all__ = ["FailureReason", "DegradationLevel", "StageDiagnostics",
           "record_transition"]


class FailureReason(str, enum.Enum):
    """Why a recovery did not meet the success criterion."""

    #: The V2V message never arrived (channel drop).
    MESSAGE_DROPPED = "message-dropped"
    #: The V2V message arrived too late to be trusted for this frame.
    MESSAGE_STALE = "message-stale"
    #: The V2V message failed to decode (truncation, corruption,
    #: checksum mismatch — any :class:`repro.comms.CodecError`).
    MESSAGE_UNDECODABLE = "message-undecodable"
    #: Stage-1 feature extraction raised (degenerate image or cloud).
    EXTRACTION_ERROR = "extraction-error"
    #: Stage-1 matching raised an internal exception.
    STAGE1_ERROR = "stage1-error"
    #: Stage-2 box alignment raised an internal exception.
    STAGE2_ERROR = "stage2-error"
    #: One or both BV images yielded no keypoints (featureless scene,
    #: empty or fully non-finite cloud).
    NO_KEYPOINTS = "no-keypoints"
    #: Stage-1 RANSAC found no consensus model.
    STAGE1_NO_CONSENSUS = "stage1-no-consensus"
    #: A boxes-only message left stage-2 alignment as the only
    #: evidence, and it found no box consensus from the pose prior.
    BOXES_ONLY_NO_CONSENSUS = "boxes-only-no-consensus"
    #: Both stages ran but the inlier counts failed the paper's
    #: success criterion.
    BELOW_SUCCESS_THRESHOLD = "below-success-threshold"
    #: The pair evaluation itself crashed (sweep-engine error capture).
    EVALUATION_ERROR = "evaluation-error"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class DegradationLevel(str, enum.Enum):
    """Which rung of the fallback ladder produced the returned pose."""

    FULL = "full"
    STAGE1_ONLY = "stage1-only"
    BOXES_ONLY = "boxes-only"
    TEMPORAL = "temporal"
    IDENTITY = "identity"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def record_transition(level: "DegradationLevel",
                      reason: "FailureReason | None") -> None:
    """Count one walk down (or along) the ladder into the active
    metrics registry.

    Called by the pipeline every time a recovery resolves, so a sweep's
    registry (and hence its trace export) carries the per-reason failure
    rates and per-rung fallback rates — which stage failed and how
    often, not just how long it took.  No-op when no registry is
    installed; consumes no randomness either way.
    """
    counter("pipeline/recoveries").inc()
    counter(f"pipeline/degradation/{level.value}").inc()
    if reason is not None:
        counter(f"pipeline/failure/{reason.value}").inc()


@dataclass(frozen=True)
class StageDiagnostics:
    """Per-stage observability attached to every recovery result.

    Attributes:
        nonfinite_ego_points / nonfinite_other_points: points filtered
            at the BV-projection boundary for carrying NaN/inf
            coordinates (see :func:`repro.bev.projection.height_map`).
        ego_keypoints / other_keypoints: stage-1 keypoint counts.
        decode_error: the :class:`~repro.comms.CodecError` message when
            the V2V payload failed to decode.
        stage1_error / stage2_error: captured exception reprs when a
            stage raised instead of returning.
        tier: the :class:`repro.comms.tiers.Tier` value the decoded
            message carried (``None`` for direct cloud/feature calls
            and legacy ``V2V1`` frames).
    """

    nonfinite_ego_points: int = 0
    nonfinite_other_points: int = 0
    ego_keypoints: int = 0
    other_keypoints: int = 0
    decode_error: str | None = None
    stage1_error: str | None = None
    stage2_error: str | None = None
    tier: str | None = None
