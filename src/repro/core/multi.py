"""Multi-vehicle pose-graph alignment (extension).

BB-Align is pairwise; with K cooperating vehicles the pairwise recoveries
form a *pose graph* whose redundancy buys two things the paper's
two-vehicle setting cannot have:

* **relay** — if the direct recovery ego<->k fails (little overlap), k is
  still reachable through an intermediate vehicle;
* **consistency** — cycles in the graph measure recovery error without
  ground truth (the loop composition should be the identity), and a
  synchronization step distributes loop error over the edges.

:class:`MultiVehicleAligner` runs all pairwise recoveries, builds the
graph over the paper's success criterion, initializes each vehicle's pose
by best-confidence spanning tree from the ego, and refines with a few
Gauss-Seidel sweeps minimizing inlier-weighted edge residuals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bv_matching import BVFeatures
from repro.core.config import BBAlignConfig
from repro.core.pipeline import BBAlign
from repro.core.result import PoseRecoveryResult
from repro.geometry.angles import wrap_to_pi
from repro.geometry.se2 import SE2

__all__ = ["PairwiseEdge", "MultiAlignment", "MultiVehicleAligner"]


@dataclass(frozen=True)
class PairwiseEdge:
    """One successful pairwise recovery.

    Attributes:
        target / source: vehicle indices; ``transform`` maps source-frame
            coordinates into the target frame.
        transform: the recovered pose.
        weight: confidence (inlier-derived), used in synchronization.
    """

    target: int
    source: int
    transform: SE2
    weight: float


@dataclass(frozen=True)
class MultiAlignment:
    """K-vehicle alignment result.

    Attributes:
        poses: per-vehicle pose in the ego (vehicle-0) frame; None where
            the vehicle is unreachable through successful edges.
        edges: the successful pairwise recoveries.
        recoveries: every attempted pairwise result, keyed (target,
            source), for diagnostics.
        cycle_residuals: per-3-cycle loop errors (translation meters,
            rotation degrees) — a ground-truth-free health metric.
    """

    poses: tuple[SE2 | None, ...]
    edges: tuple[PairwiseEdge, ...]
    recoveries: dict[tuple[int, int], PoseRecoveryResult]
    cycle_residuals: tuple[tuple[float, float], ...]

    @property
    def num_resolved(self) -> int:
        return sum(p is not None for p in self.poses)


class MultiVehicleAligner:
    """Pairwise BB-Align + pose-graph synchronization."""

    def __init__(self, config: BBAlignConfig | None = None,
                 refinement_sweeps: int = 5) -> None:
        self.aligner = BBAlign(config)
        self.refinement_sweeps = refinement_sweeps

    # ------------------------------------------------------------------
    def align(self, clouds, boxes_per_vehicle,
              rng: np.random.Generator | int | None = None) -> MultiAlignment:
        """Align K vehicles into the ego (index 0) frame.

        Args:
            clouds: K point clouds, each in its vehicle's own frame.
            boxes_per_vehicle: K lists of detected boxes (own frames).
            rng: randomness for the RANSAC stages.

        Returns:
            A :class:`MultiAlignment`.
        """
        k = len(clouds)
        if len(boxes_per_vehicle) != k:
            raise ValueError("need one box list per vehicle")
        if k < 2:
            raise ValueError("need at least two vehicles")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)

        features: list[BVFeatures] = [
            self.aligner.bv_matcher.extract_from_cloud(cloud)
            for cloud in clouds]

        recoveries: dict[tuple[int, int], PoseRecoveryResult] = {}
        edges: list[PairwiseEdge] = []
        for i in range(k):
            for j in range(i + 1, k):
                result = self.aligner.recover(
                    features[i], features[j],
                    boxes_per_vehicle[i], boxes_per_vehicle[j],
                    rng=np.random.default_rng(rng.integers(0, 2 ** 31)))
                recoveries[(i, j)] = result
                if result.success:
                    weight = float(result.inliers_bv + result.inliers_box)
                    edges.append(PairwiseEdge(i, j, result.transform,
                                              weight))

        poses = self._synchronize(k, edges)
        cycles = self._cycle_residuals(k, edges)
        return MultiAlignment(poses=tuple(poses), edges=tuple(edges),
                              recoveries=recoveries,
                              cycle_residuals=tuple(cycles))

    # ------------------------------------------------------------------
    def _synchronize(self, k: int,
                     edges: list[PairwiseEdge]) -> list[SE2 | None]:
        """Spanning-tree init + Gauss-Seidel refinement."""
        adjacency: dict[int, list[tuple[int, SE2, float]]] = {
            i: [] for i in range(k)}
        for edge in edges:
            # target <- source and the inverse direction.
            adjacency[edge.target].append(
                (edge.source, edge.transform, edge.weight))
            adjacency[edge.source].append(
                (edge.target, edge.transform.inverse(), edge.weight))

        poses: list[SE2 | None] = [None] * k
        poses[0] = SE2.identity()
        # Best-first (max edge weight) tree growth from the ego.
        frontier = [(weight, 0, neighbor, transform)
                    for neighbor, transform, weight in adjacency[0]]
        while frontier:
            frontier.sort(key=lambda item: -item[0])
            weight, parent, node, transform = frontier.pop(0)
            if poses[node] is not None:
                continue
            # pose_node (in ego frame) = pose_parent @ T(parent <- node)
            poses[node] = poses[parent] @ transform
            for neighbor, t_next, w_next in adjacency[node]:
                if poses[neighbor] is None:
                    frontier.append((w_next, node, neighbor, t_next))

        # Gauss-Seidel sweeps: each resolved non-ego node moves toward the
        # weighted blend of its neighbors' predictions.
        for _ in range(self.refinement_sweeps):
            for node in range(1, k):
                if poses[node] is None:
                    continue
                predictions: list[tuple[SE2, float]] = []
                for neighbor, transform, weight in adjacency[node]:
                    # transform maps node-frame -> neighbor? adjacency
                    # stores (other, T(node <- other)); invert to predict
                    # this node from the neighbor.
                    if poses[neighbor] is None:
                        continue
                    predictions.append(
                        (poses[neighbor] @ transform.inverse(), weight))
                if not predictions:
                    continue
                total = sum(w for _, w in predictions)
                tx = sum(p.tx * w for p, w in predictions) / total
                ty = sum(p.ty * w for p, w in predictions) / total
                # Circular-mean the angles.
                sin_sum = sum(np.sin(p.theta) * w for p, w in predictions)
                cos_sum = sum(np.cos(p.theta) * w for p, w in predictions)
                poses[node] = SE2(float(np.arctan2(sin_sum, cos_sum)),
                                  float(tx), float(ty))
        return poses

    @staticmethod
    def _cycle_residuals(k: int, edges: list[PairwiseEdge]):
        """Loop errors of every 3-cycle with all edges present."""
        by_pair = {(e.target, e.source): e.transform for e in edges}

        def get(a: int, b: int) -> SE2 | None:
            if (a, b) in by_pair:
                return by_pair[(a, b)]
            if (b, a) in by_pair:
                return by_pair[(b, a)].inverse()
            return None

        residuals = []
        for a in range(k):
            for b in range(a + 1, k):
                for c in range(b + 1, k):
                    t_ab, t_bc, t_ca = get(a, b), get(b, c), get(c, a)
                    if t_ab is None or t_bc is None or t_ca is None:
                        continue
                    loop = t_ab @ t_bc @ t_ca
                    residuals.append((
                        float(np.hypot(loop.tx, loop.ty)),
                        float(abs(np.degrees(wrap_to_pi(loop.theta))))))
        return residuals
