"""Multi-vehicle pose recovery: pairwise BB-Align + robust pose graph.

BB-Align is pairwise; with K cooperating vehicles the pairwise
recoveries form a *pose graph* whose redundancy buys three things the
paper's two-vehicle setting cannot have:

* **relay** — if the direct recovery ego<->k fails (little overlap), k
  is still reachable through an intermediate vehicle;
* **adjudication** — cycles in the graph measure recovery error without
  ground truth (a loop composition should be the identity), and
  triangle voting rejects a corrupted pairwise estimate a third car
  disputes (:func:`repro.core.pose_graph.cycle_gate`);
* **fusion** — the surviving edges are fused by inlier-weighted robust
  least squares (Gauss-Newton with Huber weights,
  :func:`repro.core.pose_graph.optimize_pose_graph`), so every edge's
  evidence sharpens every pose instead of one spanning-tree path
  deciding each.

:class:`MultiVehicleAligner` extracts each vehicle's stage-1 features
exactly once (optionally through a :class:`~repro.runtime.cache.\
FeatureCache`, so consecutive frames or repeated scenes skip
re-extraction), runs pairwise :meth:`~repro.core.pipeline.BBAlign.\
recover` over a caller-supplied connectivity graph (all pairs by
default), and fuses the successful edges.  An *incremental* mode
(``incremental=True``) warm-starts from the previous call's graph and
only re-solves connected components whose edges changed — on an
unchanged graph the fused poses are returned without running a single
Gauss-Newton iteration, bit-identical to a full solve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bv_matching import BVFeatures
from repro.core.config import BBAlignConfig
from repro.core.pipeline import BBAlign
from repro.core.pose_graph import (
    CycleGateResult,
    PoseGraphConfig,
    PoseGraphEdge,
    PoseGraphSolution,
    connected_components,
    cycle_gate,
    solve_incremental,
)
from repro.core.result import PoseRecoveryResult
from repro.geometry.se2 import SE2
from repro.runtime.cache import FeatureCache, extraction_fingerprint

__all__ = ["PairwiseEdge", "MultiAlignment", "MultiVehicleAligner"]

#: A successful pairwise recovery *is* a pose-graph edge; the historical
#: name remains importable.
PairwiseEdge = PoseGraphEdge


@dataclass(frozen=True)
class MultiAlignment:
    """K-vehicle alignment result.

    Attributes:
        poses: per-vehicle pose in the ego (vehicle-0) frame; ``None``
            where the vehicle is unreachable from the ego through
            surviving edges.
        edges: edges that survived cycle gating and fed the solve.
        rejected_edges: edges cycle gating threw out.
        recoveries: every attempted pairwise result, keyed ``(target,
            source)``, for diagnostics.
        cycle_residuals: per-3-cycle loop errors *before* gating
            (translation meters, rotation degrees) — a ground-truth-free
            health metric.
        edge_residuals: per undirected pair, the post-optimization
            scaled residual norm.
        solution: the raw :class:`~repro.core.pose_graph.\
PoseGraphSolution` (component gauges; feed it back for incremental
            re-solves).
    """

    poses: tuple[SE2 | None, ...]
    edges: tuple[PoseGraphEdge, ...]
    recoveries: dict[tuple[int, int], PoseRecoveryResult]
    cycle_residuals: tuple[tuple[float, float], ...]
    rejected_edges: tuple[PoseGraphEdge, ...] = ()
    edge_residuals: dict[tuple[int, int], float] = field(
        default_factory=dict)
    solution: PoseGraphSolution | None = None

    @property
    def num_resolved(self) -> int:
        return sum(p is not None for p in self.poses)


class MultiVehicleAligner:
    """Pairwise BB-Align + cycle-gated robust pose-graph fusion."""

    def __init__(self, config: BBAlignConfig | None = None,
                 graph: PoseGraphConfig | None = None) -> None:
        self.aligner = BBAlign(config)
        self.graph_config = graph or PoseGraphConfig()
        self._previous: PoseGraphSolution | None = None

    # ------------------------------------------------------------------
    @property
    def previous_solution(self) -> PoseGraphSolution | None:
        """The last fused graph (incremental-mode warm-start memory)."""
        return self._previous

    def reset(self) -> None:
        """Forget the previous graph (e.g. when the fleet changes)."""
        self._previous = None

    # ------------------------------------------------------------------
    def _features(self, clouds, cache: FeatureCache | None,
                  scene_key) -> list[BVFeatures]:
        """Stage-1 features, one extraction per vehicle.

        With a cache and a scene key, each vehicle's features are keyed
        ``(scene_key, index, "multi", extraction fingerprint)`` — the
        incident edges of a vehicle share one extraction, and repeated
        scenes (worker processes revisiting a frame, incremental
        re-alignment of an unchanged fleet) skip extraction entirely.
        """
        if cache is None or scene_key is None:
            return [self.aligner.extract_features(cloud)
                    for cloud in clouds]
        extraction_fp = extraction_fingerprint(self.aligner.config)
        features: list[BVFeatures] = []
        for index, cloud in enumerate(clouds):
            key = (scene_key, index, "multi", extraction_fp)
            cached = cache.get(key)
            if cached is None:
                cached = self.aligner.extract_features(cloud)
                cache.put(key, cached)
            features.append(cached)
        return features

    @staticmethod
    def _normalize_pairs(k: int, pairs) -> list[tuple[int, int]]:
        if pairs is None:
            return [(i, j) for i in range(k) for j in range(i + 1, k)]
        normalized: list[tuple[int, int]] = []
        seen: set[tuple[int, int]] = set()
        for i, j in pairs:
            if not (0 <= i < k and 0 <= j < k) or i == j:
                raise ValueError(f"invalid pair ({i}, {j}) for {k} "
                                 "vehicles")
            key = (min(i, j), max(i, j))
            if key not in seen:
                seen.add(key)
                normalized.append(key)
        return normalized

    # ------------------------------------------------------------------
    def align(self, clouds, boxes_per_vehicle,
              rng: np.random.Generator | int | None = None, *,
              pairs=None, cache: FeatureCache | None = None,
              scene_key=None,
              incremental: bool = False) -> MultiAlignment:
        """Align K vehicles into the ego (index 0) frame.

        Args:
            clouds: K point clouds, each in its vehicle's own frame.
            boxes_per_vehicle: K lists of detected boxes (own frames).
            rng: randomness for the RANSAC stages.  Per-pair streams
                spawn as ``[root, i, j]`` from one root draw, so which
                *subset* of pairs runs does not perturb any pair's
                stream.
            pairs: candidate connectivity — iterable of ``(i, j)``
                vehicle index pairs to attempt (e.g. from
                :meth:`repro.simulation.multi.MultiFrame.\
candidate_pairs`).  ``None`` attempts every pair.
            cache: optional feature cache; see :meth:`_features`.
            scene_key: hashable identity of this frame for the cache.
            incremental: warm-start from the previous call's solved
                graph, re-solving only components whose edge sets
                changed (see :func:`~repro.core.pose_graph.\
solve_incremental`).

        Returns:
            A :class:`MultiAlignment`.
        """
        k = len(clouds)
        if len(boxes_per_vehicle) != k:
            raise ValueError("need one box list per vehicle")
        if k < 2:
            raise ValueError("need at least two vehicles")
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        candidate_pairs = self._normalize_pairs(k, pairs)

        features = self._features(clouds, cache, scene_key)

        # One root draw keeps per-pair streams subset-stable: a sparser
        # connectivity graph replays the exact streams the full graph
        # would hand the same pairs.
        root = int(rng.integers(0, 2 ** 31))
        recoveries: dict[tuple[int, int], PoseRecoveryResult] = {}
        measured: list[PoseGraphEdge] = []
        for i, j in candidate_pairs:
            result = self.aligner.recover(
                features[i], features[j],
                boxes_per_vehicle[i], boxes_per_vehicle[j],
                rng=np.random.default_rng([root, i, j]))
            recoveries[(i, j)] = result
            if result.success:
                weight = float(result.inliers_bv + result.inliers_box)
                measured.append(PoseGraphEdge(i, j, result.transform,
                                              weight))

        poses, gate, solution = self.fuse(k, measured,
                                          incremental=incremental)
        return MultiAlignment(poses=poses, edges=gate.kept,
                              recoveries=recoveries,
                              cycle_residuals=gate.cycle_residuals,
                              rejected_edges=gate.rejected,
                              edge_residuals=dict(
                                  solution.edge_residuals),
                              solution=solution)

    # ------------------------------------------------------------------
    def fuse(self, num_vehicles: int, edges, *,
             incremental: bool = False,
             ) -> tuple[tuple[SE2 | None, ...], CycleGateResult,
                        PoseGraphSolution]:
        """Gate, solve and re-base measured edges into the ego frame.

        The three-step pipeline behind :meth:`align`, exposed for
        callers that already hold pairwise measurements: triangle-vote
        gating, robust per-component Gauss-Newton, then re-basing the
        ego's component so vehicle 0 is the identity.  Vehicles outside
        the ego's component have a pose only in their own component's
        gauge — unrecoverable into the ego frame, so they map to
        ``None``.

        Updates (and in incremental mode consumes) the aligner's
        previous-solution memory.
        """
        gate = cycle_gate(edges, self.graph_config)
        previous = self._previous if incremental else None
        solution = solve_incremental(num_vehicles, gate.kept, previous,
                                     self.graph_config)
        self._previous = solution

        ego_component: set[int] = {0}
        for component in connected_components(num_vehicles, gate.kept):
            if 0 in component:
                ego_component = set(component)
                break
        ego_pose = solution.poses[0]
        poses: list[SE2 | None] = [None] * num_vehicles
        poses[0] = SE2.identity()
        if ego_pose is not None:
            base = ego_pose.inverse()
            for node in ego_component:
                node_pose = solution.poses[node]
                if node != 0 and node_pose is not None:
                    poses[node] = base @ node_pose
        return tuple(poses), gate, solution
