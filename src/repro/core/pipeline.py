"""The BB-Align pipeline (paper Algorithm 1).

:class:`BBAlign` strings the two stages together:

1. each car renders a BV image (line 1) and projects its detections to
   BEV boxes (line 2); the other car transmits both (line 3),
2. the ego car computes MIM features, matches keypoints and estimates
   ``T_bv`` (lines 5-11),
3. the other car's boxes are refined into ``T_box`` (lines 12-14),
4. the combined ``T_2D = T_box @ T_bv`` is lifted to 3-D (lines 15-17).

The class is plug-and-play in the paper's sense: it takes two point clouds
and two detection lists and needs no prior pose and no training.

**Graceful degradation.**  Field inputs are hostile — dropped packets,
corrupt buffers, NaN-polluted scans, featureless scenes — so the recovery
entry points (:meth:`BBAlign.recover`, :meth:`BBAlign.recover_from_features`,
:meth:`BBAlign.recover_from_message`) never raise on bad *data*: every code
path returns a :class:`PoseRecoveryResult` whose ``failure_reason`` names
what went wrong and whose ``degradation`` records which fallback produced
the returned transform (see :mod:`repro.core.degradation` for the ladder).
The aligner remembers the last successfully recovered pose, so a transient
failure coasts on history (the ``temporal`` rung) instead of snapping to
identity; :class:`repro.core.temporal.PoseTracker` remains the full
odometry-aware filter for streamed deployments.
"""

from __future__ import annotations

import contextlib
from dataclasses import replace
from typing import Callable, ContextManager

import numpy as np

from repro.boxes.box import Box2D, Box3D
from repro.core.box_alignment import BoxAligner, BoxAlignment
from repro.core.bv_matching import BVFeatures, BVMatch, BVMatcher
from repro.core.config import BBAlignConfig
from repro.core.degradation import (
    DegradationLevel,
    FailureReason,
    StageDiagnostics,
    record_transition,
)
from repro.core.result import PoseRecoveryResult
from repro.features.matching import MatchResult
from repro.geometry.ransac import RansacResult
from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3
from repro.pointcloud.cloud import PointCloud

__all__ = ["BBAlign"]

# Transmitting one BEV box costs five float32 values (x, y, length,
# width, yaw); a 3-D box adds z and height.
_BYTES_PER_BOX = 5 * 4

# A stage timer is a factory of context managers keyed by stage name
# (see repro.runtime.timings.stage); None disables instrumentation.
StageTimer = Callable[[str], ContextManager]


def _no_timing(_stage: str) -> ContextManager:
    return contextlib.nullcontext()


def _empty_stage1() -> BVMatch:
    """A stage-1 record for recoveries that never reached matching."""
    ransac = RansacResult(SE2.identity(), np.zeros(0, dtype=bool), 0, 0,
                          False, float("nan"))
    return BVMatch.failed(MatchResult.empty(), ransac)


class BBAlign:
    """Two-stage pose recovery (the paper's primary contribution).

    Example:
        >>> from repro.core import BBAlign
        >>> aligner = BBAlign()
        >>> result = aligner.recover(ego_cloud, other_cloud,
        ...                          ego_boxes, other_boxes)  # doctest: +SKIP
        >>> result.transform  # maps other-car coords into the ego frame  # doctest: +SKIP
    """

    def __init__(self, config: BBAlignConfig | None = None) -> None:
        self.config = config or BBAlignConfig()
        self.bv_matcher = BVMatcher(self.config)
        self.box_aligner = BoxAligner(self.config.box_align)
        # Fallback memory: the last transform that met the success
        # criterion.  Only the degraded code paths *read* it, so the
        # numeric output of the healthy path is independent of call
        # history (the sweep-determinism contract).
        self._last_good: SE2 | None = None

    # ------------------------------------------------------------------
    @property
    def last_good_transform(self) -> SE2 | None:
        """The most recent successful recovery (temporal-fallback memory)."""
        return self._last_good

    def reset_temporal(self) -> None:
        """Forget the last-good pose (e.g. when the partner changes)."""
        self._last_good = None

    # ------------------------------------------------------------------
    @staticmethod
    def _to_bev_boxes(boxes) -> list[Box2D]:
        """Accept 3-D or BEV boxes; project 3-D ones (Algorithm 1 line 2)."""
        bev: list[Box2D] = []
        for box in boxes:
            if isinstance(box, Box3D):
                bev.append(box.to_bev())
            elif isinstance(box, Box2D):
                bev.append(box)
            else:
                raise TypeError(f"expected Box2D or Box3D, got {type(box)!r}")
        return bev

    def _rng(self, rng) -> np.random.Generator:
        if isinstance(rng, np.random.Generator):
            return rng
        if rng is None:
            rng = self.config.random_seed
        return np.random.default_rng(rng)

    def _degraded_result(self, reason: FailureReason,
                         diagnostics: StageDiagnostics,
                         message_bytes: int = 0) -> PoseRecoveryResult:
        """Bottom rungs of the ladder: last-good pose, else identity."""
        if self._last_good is not None:
            transform = self._last_good
            level = DegradationLevel.TEMPORAL
        else:
            transform = SE2.identity()
            level = DegradationLevel.IDENTITY
        record_transition(level, reason)
        return PoseRecoveryResult(
            transform=transform,
            transform_3d=SE3.from_se2(transform),
            success=False,
            stage1=_empty_stage1(),
            stage2=BoxAlignment.skipped(),
            message_bytes=message_bytes,
            failure_reason=reason,
            degradation=level,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    def extract_features(self, cloud: PointCloud,
                         timer: StageTimer | None = None) -> BVFeatures:
        """Stage-1 feature extraction for one scan.

        This is the memoization boundary the runtime layer caches:
        extraction is a pure function of (cloud, configuration), consumes
        no randomness, and dominates per-pair cost.  Pair it with
        :meth:`recover_from_features` to reuse features across sweeps.
        The optional ``timer`` records the per-kernel ``bv_extract/*``
        detail stages.
        """
        return self.bv_matcher.extract_from_cloud(cloud, timer=timer)

    def recover(self, ego_cloud: PointCloud, other_cloud: PointCloud,
                ego_boxes, other_boxes,
                rng: np.random.Generator | int | None = None,
                timer: StageTimer | None = None) -> PoseRecoveryResult:
        """Recover the relative pose from the other car to the ego car.

        Args:
            ego_cloud: ego car's lidar scan in its own frame.
            other_cloud: the received scan, in the *other car's* frame.
            ego_boxes: ego detections (Box3D or Box2D) in the ego frame.
            other_boxes: received detections in the other car's frame.
            rng: randomness for both RANSAC stages (defaults to the
                config seed, making runs reproducible).
            timer: optional stage-timer factory (see
                :func:`repro.runtime.timings.stage`) recording
                ``bv_extract`` / ``stage1_match`` / ``stage2_align``.

        Returns:
            A :class:`PoseRecoveryResult`; ``result.transform`` maps
            other-frame coordinates into the ego frame.  Degenerate
            inputs produce a flagged failure (see ``failure_reason``),
            never an exception.
        """
        try:
            with (timer or _no_timing)("bv_extract"):
                ego_features = self.extract_features(ego_cloud, timer=timer)
                other_features = self.extract_features(other_cloud,
                                                       timer=timer)
        except Exception as error:
            return self._degraded_result(
                FailureReason.EXTRACTION_ERROR,
                StageDiagnostics(stage1_error=repr(error)))
        return self.recover_from_features(ego_features, other_features,
                                          ego_boxes, other_boxes, rng=rng,
                                          timer=timer)

    def recover_from_features(self, ego_features: BVFeatures,
                              other_features: BVFeatures,
                              ego_boxes, other_boxes,
                              rng: np.random.Generator | int | None = None,
                              timer: StageTimer | None = None,
                              ) -> PoseRecoveryResult:
        """Like :meth:`recover` but with precomputed stage-1 features.

        Useful when sweeping many "other" frames against one ego frame,
        for ablations that reuse extraction, or with the runtime layer's
        feature cache (:mod:`repro.runtime.cache`).
        """
        timer = timer or _no_timing
        rng = self._rng(rng)
        ego_bev = self._to_bev_boxes(ego_boxes)
        other_bev = self._to_bev_boxes(other_boxes)

        diagnostics = StageDiagnostics(
            nonfinite_ego_points=ego_features.bv_image.num_nonfinite,
            nonfinite_other_points=other_features.bv_image.num_nonfinite,
            ego_keypoints=len(ego_features.keypoints.xy),
            other_keypoints=len(other_features.keypoints.xy),
        )
        message_bytes = (other_features.bv_image.message_size_bytes()
                         + _BYTES_PER_BOX * len(other_bev))

        try:
            with timer("stage1_match"):
                stage1 = self.bv_matcher.match(other_features, ego_features,
                                               rng=rng, timer=timer)
        except Exception as error:
            return self._degraded_result(
                FailureReason.STAGE1_ERROR,
                replace(diagnostics, stage1_error=repr(error)),
                message_bytes=message_bytes)

        stage2_failure: FailureReason | None = None
        if self.config.enable_box_alignment and stage1.success:
            try:
                with timer("stage2_align"):
                    stage2 = self.box_aligner.align(other_bev, ego_bev,
                                                    stage1.transform, rng=rng)
            except Exception as error:
                # One rung down: keep the stage-1 estimate unrefined.
                stage2 = BoxAlignment.skipped()
                stage2_failure = FailureReason.STAGE2_ERROR
                diagnostics = replace(diagnostics, stage2_error=repr(error))
        else:
            stage2 = BoxAlignment.skipped()

        # Apply the refinement only when its own confidence criterion
        # holds: a correction estimated from a single box pair amplifies
        # detector yaw noise through the box-to-origin lever arm, so an
        # unreliable stage 2 must not damage a good stage-1 estimate.
        apply_correction = (stage2.success
                            and stage2.inliers_box
                            > self.config.success.min_inliers_box)
        combined = (stage2.correction @ stage1.transform
                    if apply_correction else stage1.transform)
        transform_3d = SE3.from_se2(combined)

        if self.config.enable_box_alignment:
            success = (stage1.success
                       and self.config.success.is_success(
                           stage1.inliers_bv, stage2.inliers_box))
        else:
            # Ablation mode: only the stage-1 criterion applies.
            success = (stage1.success
                       and stage1.inliers_bv > self.config.success.min_inliers_bv)

        if success:
            failure_reason = None
            self._last_good = combined
        elif stage2_failure is not None:
            failure_reason = stage2_failure
        elif not stage1.success:
            no_features = (diagnostics.ego_keypoints == 0
                           or diagnostics.other_keypoints == 0)
            failure_reason = (FailureReason.NO_KEYPOINTS if no_features
                              else FailureReason.STAGE1_NO_CONSENSUS)
        else:
            failure_reason = FailureReason.BELOW_SUCCESS_THRESHOLD

        degradation = (DegradationLevel.STAGE1_ONLY
                       if stage2_failure is not None
                       else DegradationLevel.FULL)
        record_transition(degradation, failure_reason)
        return PoseRecoveryResult(
            transform=combined,
            transform_3d=transform_3d,
            success=success,
            stage1=stage1,
            stage2=stage2,
            message_bytes=message_bytes,
            failure_reason=failure_reason,
            degradation=degradation,
            diagnostics=diagnostics,
        )

    def recover_from_message(self, ego_cloud: PointCloud,
                             payload: bytes | None,
                             ego_boxes,
                             rng: np.random.Generator | int | None = None,
                             timer: StageTimer | None = None,
                             stale: bool = False,
                             ego_features: BVFeatures | None = None,
                             ) -> PoseRecoveryResult:
        """Recover the pose from a received (possibly damaged) wire message.

        The receiver-side entry point a deployment actually has: the raw
        bytes that came off the V2V link, or ``None`` when the frame was
        dropped.  Decode failures (:class:`repro.comms.CodecError`) and
        drops walk the fallback ladder instead of raising.

        Args:
            ego_cloud: ego car's lidar scan.
            payload: the received :class:`~repro.comms.V2VMessage` bytes,
                or ``None`` for a dropped frame.
            ego_boxes: ego detections (Box3D or Box2D) in the ego frame.
            rng: randomness for both RANSAC stages.
            timer: optional stage-timer factory.
            stale: the frame arrived too late to trust for this timestep
                (e.g. :attr:`repro.comms.Delivery.delay_frames` > 0);
                treated as unusable for the current frame.
            ego_features: precomputed ego-side stage-1 features — sweeps
                that transmit many variants of the same frame pass this
                to skip re-extraction.

        Returns:
            A :class:`PoseRecoveryResult`; never raises on bad data.
        """
        # Imported here: repro.comms depends on repro.bev, and keeping
        # the import local avoids a package-level core <-> comms cycle.
        from repro.comms.codec import CodecError
        from repro.comms.message import V2VMessage

        if payload is None:
            return self._degraded_result(FailureReason.MESSAGE_DROPPED,
                                         StageDiagnostics())
        if stale:
            return self._degraded_result(FailureReason.MESSAGE_STALE,
                                         StageDiagnostics(),
                                         message_bytes=len(payload))
        try:
            message = V2VMessage.from_bytes(payload)
        except CodecError as error:
            return self._degraded_result(
                FailureReason.MESSAGE_UNDECODABLE,
                StageDiagnostics(decode_error=str(error)),
                message_bytes=len(payload))
        timer = timer or _no_timing
        try:
            with timer("bv_extract"):
                if ego_features is None:
                    ego_features = self.extract_features(ego_cloud,
                                                         timer=timer)
                other_features = self.bv_matcher.extract(message.bv_image,
                                                         timer=timer)
        except Exception as error:
            return self._degraded_result(
                FailureReason.EXTRACTION_ERROR,
                StageDiagnostics(stage1_error=repr(error)),
                message_bytes=len(payload))
        return self.recover_from_features(ego_features, other_features,
                                          ego_boxes, message.boxes,
                                          rng=rng, timer=timer)

    # ------------------------------------------------------------------
    @staticmethod
    def raw_cloud_bytes(cloud: PointCloud) -> int:
        """Transmission cost of sending the raw scan instead (float32
        xyz) — the early-fusion bandwidth the paper argues against."""
        return len(cloud) * 3 * 4
