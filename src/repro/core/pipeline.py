"""The BB-Align pipeline (paper Algorithm 1).

:class:`BBAlign` strings the two stages together:

1. each car renders a BV image (line 1) and projects its detections to
   BEV boxes (line 2); the other car transmits both (line 3),
2. the ego car computes MIM features, matches keypoints and estimates
   ``T_bv`` (lines 5-11),
3. the other car's boxes are refined into ``T_box`` (lines 12-14),
4. the combined ``T_2D = T_box @ T_bv`` is lifted to 3-D (lines 15-17).

The class is plug-and-play in the paper's sense: it takes two point clouds
and two detection lists and needs no prior pose and no training.

**One entry point.**  :meth:`BBAlign.recover` dispatches on its inputs:
raw clouds, precomputed :class:`BVFeatures`, wire payloads (legacy
``V2V1`` frames or any :class:`repro.comms.tiers.Tier`), deliveries, and
decoded messages all go through the same two-stage core.  The historical
``recover_from_features`` / ``recover_from_message`` names remain as
deprecated wrappers.

**Graceful degradation.**  Field inputs are hostile — dropped packets,
corrupt buffers, NaN-polluted scans, featureless scenes — so
:meth:`BBAlign.recover` never raises on bad *data*: every code path
returns a :class:`PoseRecoveryResult` whose ``failure_reason`` names
what went wrong and whose ``degradation`` records which fallback produced
the returned transform (see :mod:`repro.core.degradation` for the ladder).
The ladder also adapts to what a message *tier* carries: boxes-only
messages skip stage 1 by design and run box alignment from the pose
prior.
The aligner remembers the last successfully recovered pose, so a transient
failure coasts on history (the ``temporal`` rung) instead of snapping to
identity; :class:`repro.core.temporal.PoseTracker` remains the full
odometry-aware filter for streamed deployments.
"""

from __future__ import annotations

import contextlib
import warnings
from dataclasses import replace
from typing import Callable, ContextManager

import numpy as np

from repro.bev.projection import BVImage
from repro.boxes.box import Box2D, Box3D
from repro.core.box_alignment import BoxAligner, BoxAlignment
from repro.core.bv_matching import BVFeatures, BVMatch, BVMatcher
from repro.core.config import BBAlignConfig
from repro.core.degradation import (
    DegradationLevel,
    FailureReason,
    StageDiagnostics,
    record_transition,
)
from repro.core.result import PoseRecoveryResult
from repro.features.matching import MatchResult
from repro.geometry.ransac import RansacResult
from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3
from repro.obs.metrics import histogram
from repro.pointcloud.cloud import PointCloud

__all__ = ["BBAlign"]

# Transmitting one BEV box costs five float32 values (x, y, length,
# width, yaw); a 3-D box adds z and height.
_BYTES_PER_BOX = 5 * 4

# A stage timer is a factory of context managers keyed by stage name
# (see repro.runtime.timings.stage); None disables instrumentation.
StageTimer = Callable[[str], ContextManager]


def _no_timing(_stage: str) -> ContextManager:
    return contextlib.nullcontext()


def _empty_stage1() -> BVMatch:
    """A stage-1 record for recoveries that never reached matching."""
    ransac = RansacResult(SE2.identity(), np.zeros(0, dtype=bool), 0, 0,
                          False, float("nan"))
    return BVMatch.failed(MatchResult.empty(), ransac)


class BBAlign:
    """Two-stage pose recovery (the paper's primary contribution).

    Example:
        >>> from repro.core import BBAlign
        >>> aligner = BBAlign()
        >>> result = aligner.recover(ego_cloud, other_cloud,
        ...                          ego_boxes, other_boxes)  # doctest: +SKIP
        >>> result.transform  # maps other-car coords into the ego frame  # doctest: +SKIP
    """

    def __init__(self, config: BBAlignConfig | None = None) -> None:
        self.config = config or BBAlignConfig()
        self.bv_matcher = BVMatcher(self.config)
        self.box_aligner = BoxAligner(self.config.box_align)
        # Matchers for pooled descriptor geometries (keypoints-tier
        # messages), built lazily and keyed by pooled grid size.
        self._pooled_matchers: dict[int, BVMatcher] = {}
        # Fallback memory: the last transform that met the success
        # criterion.  Only the degraded code paths *read* it, so the
        # numeric output of the healthy path is independent of call
        # history (the sweep-determinism contract).
        self._last_good: SE2 | None = None

    # ------------------------------------------------------------------
    @property
    def last_good_transform(self) -> SE2 | None:
        """The most recent successful recovery (temporal-fallback memory)."""
        return self._last_good

    def reset_temporal(self) -> None:
        """Forget the last-good pose (e.g. when the partner changes)."""
        self._last_good = None

    # ------------------------------------------------------------------
    @staticmethod
    def _to_bev_boxes(boxes) -> list[Box2D]:
        """Accept 3-D or BEV boxes; project 3-D ones (Algorithm 1 line 2)."""
        bev: list[Box2D] = []
        for box in boxes:
            if isinstance(box, Box3D):
                bev.append(box.to_bev())
            elif isinstance(box, Box2D):
                bev.append(box)
            else:
                raise TypeError(f"expected Box2D or Box3D, got {type(box)!r}")
        return bev

    def _rng(self, rng) -> np.random.Generator:
        if isinstance(rng, np.random.Generator):
            return rng
        if rng is None:
            rng = self.config.random_seed
        return np.random.default_rng(rng)

    def _degraded_result(self, reason: FailureReason,
                         diagnostics: StageDiagnostics,
                         message_bytes: int = 0) -> PoseRecoveryResult:
        """Bottom rungs of the ladder: last-good pose, else identity."""
        if self._last_good is not None:
            transform = self._last_good
            level = DegradationLevel.TEMPORAL
        else:
            transform = SE2.identity()
            level = DegradationLevel.IDENTITY
        record_transition(level, reason)
        return PoseRecoveryResult(
            transform=transform,
            transform_3d=SE3.from_se2(transform),
            success=False,
            stage1=_empty_stage1(),
            stage2=BoxAlignment.skipped(),
            message_bytes=message_bytes,
            failure_reason=reason,
            degradation=level,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    def extract_features(self, cloud: PointCloud,
                         timer: StageTimer | None = None,
                         prior=None) -> BVFeatures:
        """Stage-1 feature extraction for one scan.

        This is the memoization boundary the runtime layer caches:
        extraction is a pure function of (cloud, configuration, prior),
        consumes no randomness, and dominates per-pair cost.  Pair it
        with :meth:`recover_from_features` to reuse features across
        sweeps.  The optional ``timer`` records the per-kernel
        ``bv_extract/*`` detail stages; the optional ``prior`` (coarse
        (x, y) translation of the partner sensor, meters) enables
        overlap-ROI culling when ``config.roi.enabled``.
        """
        return self.bv_matcher.extract_from_cloud(cloud, timer=timer,
                                                  prior=prior)

    def extract_features_pair(self, ego_cloud: PointCloud,
                              other_cloud: PointCloud,
                              timer: StageTimer | None = None,
                              priors=(None, None),
                              ) -> tuple[BVFeatures, BVFeatures]:
        """Batched stage-1 extraction for both scans of a pair.

        Both BV images go through the Log-Gabor bank in one batched
        pass (see :meth:`BVMatcher.extract_pair`); results are
        bitwise-identical to two :meth:`extract_features` calls, so the
        feature cache can mix entries produced by either path.
        ``priors`` optionally carries the (ego, other) coarse
        translation priors for ROI culling.
        """
        ego_bv = self.bv_matcher.make_bv_image(ego_cloud)
        other_bv = self.bv_matcher.make_bv_image(other_cloud)
        return self.bv_matcher.extract_pair(ego_bv, other_bv, timer=timer,
                                            priors=priors)

    def recover(self, ego, other=None, ego_boxes=None, other_boxes=None,
                rng: np.random.Generator | int | None = None,
                timer: StageTimer | None = None, *,
                stale: bool = False) -> PoseRecoveryResult:
        """Recover the relative pose from the other car to the ego car.

        One entry point, three input shapes, dispatched on ``other``:

        * **clouds / features** — ``other`` is a :class:`PointCloud` or
          precomputed :class:`BVFeatures` (and so is ``ego``, in any
          combination); ``other_boxes`` carries the other car's
          detections.  Extraction runs only for the cloud inputs.
        * **wire payload** — ``other`` is the raw received ``bytes`` (a
          legacy ``V2V1`` frame or any :class:`repro.comms.tiers.Tier`
          message), a :class:`repro.comms.Delivery`, or ``None`` for a
          dropped frame.  Boxes travel inside the message, so
          ``other_boxes`` must be omitted.
        * **decoded message** — ``other`` is an already-decoded
          :class:`~repro.comms.V2VMessage` or
          :class:`~repro.comms.tiers.TieredMessage`.

        The stage ladder adapts to what the tier carries: a boxes-only
        message skips BV matching entirely and runs stage-2 alignment
        from the pose prior (``DegradationLevel.BOXES_ONLY``); a
        keypoints message matches transmitted descriptors against an
        identically pooled copy of the ego descriptors.

        Args:
            ego: ego car's lidar scan, or its precomputed features.
            other: see above.
            ego_boxes: ego detections (Box3D or Box2D) in the ego frame.
            other_boxes: received detections in the other car's frame
                (cloud/feature inputs only).
            rng: randomness for both RANSAC stages (defaults to the
                config seed, making runs reproducible).
            timer: optional stage-timer factory (see
                :func:`repro.runtime.timings.stage`) recording
                ``bv_extract`` / ``stage1_match`` / ``stage2_align``.
            stale: the input arrived too late to trust for this frame
                (ORed with :attr:`repro.comms.Delivery.delay_frames`).

        Returns:
            A :class:`PoseRecoveryResult`; ``result.transform`` maps
            other-frame coordinates into the ego frame.  Degenerate
            *data* produces a flagged failure (see ``failure_reason``),
            never an exception; unsupported input *types* still raise
            :class:`TypeError`.
        """
        if isinstance(other, (PointCloud, BVFeatures)):
            return self._recover_sensed(ego, other, ego_boxes, other_boxes,
                                        rng, timer, stale)
        return self._recover_payload(ego, other, ego_boxes, other_boxes,
                                     rng, timer, stale)

    # ------------------------------------------------------------------
    def _recover_sensed(self, ego, other, ego_boxes, other_boxes, rng,
                        timer, stale) -> PoseRecoveryResult:
        """Cloud/feature inputs: extract whatever is still raw, match."""
        for name, value in (("ego", ego), ("other", other)):
            if not isinstance(value, (PointCloud, BVFeatures)):
                raise TypeError(f"{name} must be a PointCloud or "
                                f"BVFeatures, got {type(value)!r}")
        if stale:
            return self._degraded_result(FailureReason.MESSAGE_STALE,
                                         StageDiagnostics())
        if isinstance(ego, PointCloud) or isinstance(other, PointCloud):
            try:
                with (timer or _no_timing)("bv_extract"):
                    if isinstance(ego, PointCloud) \
                            and isinstance(other, PointCloud):
                        # Both raw: one batched bank pass (bitwise-
                        # identical to two single extractions).
                        ego, other = self.extract_features_pair(
                            ego, other, timer=timer)
                    if isinstance(ego, PointCloud):
                        ego = self.extract_features(ego, timer=timer)
                    if isinstance(other, PointCloud):
                        other = self.extract_features(other, timer=timer)
            except Exception as error:
                return self._degraded_result(
                    FailureReason.EXTRACTION_ERROR,
                    StageDiagnostics(stage1_error=repr(error)))
        return self._recover_features(ego, other, ego_boxes, other_boxes,
                                      rng=rng, timer=timer)

    def _recover_features(self, ego_features: BVFeatures,
                          other_features: BVFeatures,
                          ego_boxes, other_boxes,
                          rng: np.random.Generator | int | None = None,
                          timer: StageTimer | None = None, *,
                          matcher: BVMatcher | None = None,
                          message_bytes: int | None = None,
                          tier: str | None = None) -> PoseRecoveryResult:
        """The two-stage core shared by every input shape.

        ``matcher`` overrides stage-1 matching (the keypoints tier uses
        a pooled-geometry matcher); ``message_bytes`` overrides the
        dense-message estimate with actual wire bytes; ``tier`` labels
        the diagnostics.
        """
        matcher = matcher or self.bv_matcher
        timer = timer or _no_timing
        rng = self._rng(rng)
        ego_bev = self._to_bev_boxes(ego_boxes)
        other_bev = self._to_bev_boxes(other_boxes)

        diagnostics = StageDiagnostics(
            nonfinite_ego_points=ego_features.bv_image.num_nonfinite,
            nonfinite_other_points=other_features.bv_image.num_nonfinite,
            ego_keypoints=len(ego_features.keypoints.xy),
            other_keypoints=len(other_features.keypoints.xy),
            tier=tier,
        )
        if message_bytes is None:
            message_bytes = (other_features.bv_image.message_size_bytes()
                             + _BYTES_PER_BOX * len(other_bev))

        try:
            with timer("stage1_match"):
                stage1 = matcher.match(other_features, ego_features,
                                       rng=rng, timer=timer)
        except Exception as error:
            return self._degraded_result(
                FailureReason.STAGE1_ERROR,
                replace(diagnostics, stage1_error=repr(error)),
                message_bytes=message_bytes)

        stage2_failure: FailureReason | None = None
        if self.config.enable_box_alignment and stage1.success:
            try:
                with timer("stage2_align"):
                    stage2 = self.box_aligner.align(other_bev, ego_bev,
                                                    stage1.transform, rng=rng)
            except Exception as error:
                # One rung down: keep the stage-1 estimate unrefined.
                stage2 = BoxAlignment.skipped()
                stage2_failure = FailureReason.STAGE2_ERROR
                diagnostics = replace(diagnostics, stage2_error=repr(error))
        else:
            stage2 = BoxAlignment.skipped()

        # Apply the refinement only when its own confidence criterion
        # holds: a correction estimated from a single box pair amplifies
        # detector yaw noise through the box-to-origin lever arm, so an
        # unreliable stage 2 must not damage a good stage-1 estimate.
        apply_correction = (stage2.success
                            and stage2.inliers_box
                            > self.config.success.min_inliers_box)
        combined = (stage2.correction @ stage1.transform
                    if apply_correction else stage1.transform)
        transform_3d = SE3.from_se2(combined)

        if self.config.enable_box_alignment:
            success = (stage1.success
                       and self.config.success.is_success(
                           stage1.inliers_bv, stage2.inliers_box))
        else:
            # Ablation mode: only the stage-1 criterion applies.
            success = (stage1.success
                       and stage1.inliers_bv > self.config.success.min_inliers_bv)

        if success:
            failure_reason = None
            self._last_good = combined
        elif stage2_failure is not None:
            failure_reason = stage2_failure
        elif not stage1.success:
            no_features = (diagnostics.ego_keypoints == 0
                           or diagnostics.other_keypoints == 0)
            failure_reason = (FailureReason.NO_KEYPOINTS if no_features
                              else FailureReason.STAGE1_NO_CONSENSUS)
        else:
            failure_reason = FailureReason.BELOW_SUCCESS_THRESHOLD

        degradation = (DegradationLevel.STAGE1_ONLY
                       if stage2_failure is not None
                       else DegradationLevel.FULL)
        record_transition(degradation, failure_reason)
        return PoseRecoveryResult(
            transform=combined,
            transform_3d=transform_3d,
            success=success,
            stage1=stage1,
            stage2=stage2,
            message_bytes=message_bytes,
            failure_reason=failure_reason,
            degradation=degradation,
            diagnostics=diagnostics,
        )

    def _recover_payload(self, ego, payload, ego_boxes, other_boxes, rng,
                         timer, stale) -> PoseRecoveryResult:
        """Wire-payload inputs: unwrap, decode, dispatch on the tier.

        The receiver-side path a deployment actually has: raw bytes off
        the V2V link (or ``None`` for a drop).  Decode failures
        (:class:`repro.comms.CodecError`) and drops walk the fallback
        ladder instead of raising.
        """
        # Imported here: repro.comms depends on repro.bev, and keeping
        # the import local avoids a package-level core <-> comms cycle.
        from repro.comms import accounting
        from repro.comms.channel import Delivery
        from repro.comms.codec import CodecError
        from repro.comms.message import V2VMessage
        from repro.comms.tiers import Tier, TieredMessage, decode_message

        if other_boxes is not None:
            raise TypeError("other_boxes travel inside the message; pass "
                            "them only with cloud/feature inputs")
        if not isinstance(ego, (PointCloud, BVFeatures)):
            raise TypeError(f"ego must be a PointCloud or BVFeatures, "
                            f"got {type(ego)!r}")
        if isinstance(payload, Delivery):
            stale = stale or payload.delay_frames > 0
            payload = payload.payload
        if payload is None:
            return self._degraded_result(FailureReason.MESSAGE_DROPPED,
                                         StageDiagnostics())

        timer = timer or _no_timing
        if isinstance(payload, (bytes, bytearray, memoryview)):
            payload = bytes(payload)
            num_bytes = len(payload)
            if stale:
                return self._degraded_result(FailureReason.MESSAGE_STALE,
                                             StageDiagnostics(),
                                             message_bytes=num_bytes)
            try:
                if payload[:4] == b"V2V1":
                    message = V2VMessage.from_bytes(payload)
                else:
                    message = decode_message(payload)
            except CodecError as error:
                accounting.record_received(None, num_bytes, ok=False)
                return self._degraded_result(
                    FailureReason.MESSAGE_UNDECODABLE,
                    StageDiagnostics(decode_error=str(error)),
                    message_bytes=num_bytes)
            tier_name = (message.tier.value
                         if isinstance(message, TieredMessage) else "v2v1")
            accounting.record_received(tier_name, num_bytes, ok=True)
            histogram("comms/message_bytes").observe(float(num_bytes))
        elif isinstance(payload, (V2VMessage, TieredMessage)):
            message = payload
            num_bytes = message.size_bytes
            if stale:
                return self._degraded_result(FailureReason.MESSAGE_STALE,
                                             StageDiagnostics(),
                                             message_bytes=num_bytes)
        else:
            raise TypeError(
                f"other must be a PointCloud, BVFeatures, bytes payload, "
                f"Delivery, V2VMessage, TieredMessage or None, got "
                f"{type(payload)!r}")

        if isinstance(message, TieredMessage) \
                and message.tier is Tier.BOXES_ONLY:
            return self._recover_boxes_only(message, ego_boxes, rng, timer,
                                            num_bytes)

        try:
            with timer("bv_extract"):
                if isinstance(ego, PointCloud):
                    ego_features = self.extract_features(ego, timer=timer)
                else:
                    ego_features = ego
                if isinstance(message, V2VMessage) \
                        or message.tier is Tier.BV_IMAGE:
                    other_features = self.bv_matcher.extract(
                        message.bv_image, timer=timer)
                elif message.tier is Tier.FULL_SCAN:
                    other_features = self.extract_features(message.cloud,
                                                           timer=timer)
                else:
                    other_features = None  # keypoints: no image to extract
        except Exception as error:
            return self._degraded_result(
                FailureReason.EXTRACTION_ERROR,
                StageDiagnostics(stage1_error=repr(error)),
                message_bytes=num_bytes)

        if other_features is None:
            return self._recover_keypoints(ego_features, message, ego_boxes,
                                           rng, timer, num_bytes)
        if isinstance(message, V2VMessage):
            # Legacy frames keep the historical dense-size estimate so
            # pre-tier sweeps stay byte-for-byte reproducible.
            return self._recover_features(ego_features, other_features,
                                          ego_boxes, message.boxes,
                                          rng=rng, timer=timer)
        return self._recover_features(ego_features, other_features,
                                      ego_boxes, message.boxes,
                                      rng=rng, timer=timer,
                                      message_bytes=num_bytes,
                                      tier=message.tier.value)

    def _recover_keypoints(self, ego_features: BVFeatures, message,
                           ego_boxes, rng, timer,
                           num_bytes: int) -> PoseRecoveryResult:
        """Keypoints tier: match transmitted descriptors directly.

        The message carries no image, so the ego side is brought to the
        sender's pooled descriptor geometry (same pooling, same
        normalization) and a pooled-geometry matcher runs the usual
        stage 1 — π-flip disambiguation included, since the transmitted
        coordinates are integral pixels.
        """
        from repro.bev.mim import MIMResult
        from repro.comms.tiers import Tier, pool_descriptors
        from repro.features.descriptors import DescriptorSet
        from repro.features.fast import Keypoints

        kp = message.keypoints
        tier = Tier.KEYPOINTS.value
        base_orient = ego_features.mim.num_orientations
        ego_desc = ego_features.descriptors
        try:
            if len(ego_desc):
                dim = ego_desc.descriptors.shape[1]
                cells = dim // base_orient
                base_grid = int(round(np.sqrt(cells)))
                pooled = pool_descriptors(
                    ego_desc.descriptors, base_grid, base_orient,
                    base_grid // kp.grid_size,
                    base_orient // kp.num_orientations)
            else:
                pooled = np.empty((0, kp.grid_size ** 2
                                   * kp.num_orientations))
        except (ValueError, ZeroDivisionError) as error:
            return self._degraded_result(
                FailureReason.EXTRACTION_ERROR,
                StageDiagnostics(stage1_error=repr(error), tier=tier),
                message_bytes=num_bytes)
        ego_pooled = BVFeatures(
            ego_features.bv_image, ego_features.mim,
            ego_features.keypoints,
            DescriptorSet(pooled, ego_desc.keypoint_xy,
                          ego_desc.keypoint_indices,
                          ego_desc.dominant_bins))

        # The other side never rendered an image here; zero placeholders
        # carry the geometry.  Matching only permutes these arrays (for
        # the flip hypothesis) — with integral keypoints the flipped
        # descriptors are derived by cell permutation, never recomputed.
        size = kp.image_size
        zeros = np.zeros((size, size))
        placeholder_bv = BVImage(zeros, kp.cell_size, kp.lidar_range)
        placeholder_mim = MIMResult(
            mim=zeros, max_amplitude=zeros, total_amplitude=zeros,
            num_orientations=kp.num_orientations)
        xy = kp.xy.astype(float)
        other_features = BVFeatures(
            placeholder_bv, placeholder_mim,
            Keypoints(xy, np.asarray(kp.scores, dtype=float)),
            DescriptorSet(kp.descriptors, xy,
                          np.arange(len(xy), dtype=int),
                          np.zeros(len(xy), dtype=int)))
        return self._recover_features(ego_pooled, other_features, ego_boxes,
                                      message.boxes, rng=rng, timer=timer,
                                      matcher=self._pooled_matcher(
                                          kp.grid_size),
                                      message_bytes=num_bytes, tier=tier)

    def _pooled_matcher(self, grid_size: int) -> BVMatcher:
        """A matcher whose descriptor geometry matches pooled messages.

        Only the extractor's ``grid_size`` matters (it drives the
        flip-permutation layout); matching thresholds and RANSAC
        configuration are inherited unchanged.  Cached per grid size.
        """
        matcher = self._pooled_matchers.get(grid_size)
        if matcher is None:
            config = replace(self.config, descriptor=replace(
                self.config.descriptor, grid_size=grid_size))
            matcher = self._pooled_matchers[grid_size] = BVMatcher(config)
        return matcher

    def _recover_boxes_only(self, message, ego_boxes, rng, timer,
                            num_bytes: int) -> PoseRecoveryResult:
        """Boxes-only tier: stage 2 from the pose prior, no stage 1.

        The tier carries no BV evidence, so success here is judged by
        the *weaker*, box-consensus-only criterion — the result is
        honest about it via ``DegradationLevel.BOXES_ONLY``.  The prior
        is the last good pose (identity cold): box alignment can only
        correct within ``max_correction_meters``, so cold-start pairs
        with large offsets legitimately fail into the ladder.
        """
        from repro.comms.tiers import Tier

        rng = self._rng(rng)
        ego_bev = self._to_bev_boxes(ego_boxes)
        other_bev = self._to_bev_boxes(message.boxes)
        diagnostics = StageDiagnostics(tier=Tier.BOXES_ONLY.value)
        prior = (self._last_good if self._last_good is not None
                 else SE2.identity())
        try:
            with timer("stage2_align"):
                stage2 = self.box_aligner.align(other_bev, ego_bev, prior,
                                                rng=rng)
        except Exception as error:
            return self._degraded_result(
                FailureReason.STAGE2_ERROR,
                replace(diagnostics, stage2_error=repr(error)),
                message_bytes=num_bytes)
        success = (stage2.success and stage2.inliers_box
                   > self.config.success.min_inliers_box)
        if not success:
            return self._degraded_result(
                FailureReason.BOXES_ONLY_NO_CONSENSUS, diagnostics,
                message_bytes=num_bytes)
        combined = stage2.correction @ prior
        self._last_good = combined
        record_transition(DegradationLevel.BOXES_ONLY, None)
        return PoseRecoveryResult(
            transform=combined,
            transform_3d=SE3.from_se2(combined),
            success=True,
            stage1=_empty_stage1(),
            stage2=stage2,
            message_bytes=num_bytes,
            failure_reason=None,
            degradation=DegradationLevel.BOXES_ONLY,
            diagnostics=diagnostics,
        )

    # ------------------------------------------------------------------
    # Deprecated entry points (kept as thin wrappers around recover()).
    # ------------------------------------------------------------------
    def recover_from_features(self, ego_features: BVFeatures,
                              other_features: BVFeatures,
                              ego_boxes, other_boxes,
                              rng: np.random.Generator | int | None = None,
                              timer: StageTimer | None = None,
                              ) -> PoseRecoveryResult:
        """Deprecated: :meth:`recover` accepts features directly."""
        warnings.warn(
            "BBAlign.recover_from_features() is deprecated; recover() "
            "dispatches on its inputs and accepts BVFeatures directly",
            DeprecationWarning, stacklevel=2)
        return self.recover(ego_features, other_features, ego_boxes,
                            other_boxes, rng=rng, timer=timer)

    def recover_from_message(self, ego_cloud: PointCloud,
                             payload: bytes | None,
                             ego_boxes,
                             rng: np.random.Generator | int | None = None,
                             timer: StageTimer | None = None,
                             stale: bool = False,
                             ego_features: BVFeatures | None = None,
                             ) -> PoseRecoveryResult:
        """Deprecated: :meth:`recover` accepts wire payloads directly."""
        warnings.warn(
            "BBAlign.recover_from_message() is deprecated; recover() "
            "dispatches on its inputs and accepts wire payloads directly",
            DeprecationWarning, stacklevel=2)
        ego = ego_features if ego_features is not None else ego_cloud
        return self.recover(ego, payload, ego_boxes, rng=rng, timer=timer,
                            stale=stale)

    # ------------------------------------------------------------------
    @staticmethod
    def raw_cloud_bytes(cloud: PointCloud) -> int:
        """Transmission cost of sending the raw scan instead (float32
        xyz) — the early-fusion bandwidth the paper argues against."""
        return len(cloud) * 3 * 4
