"""The BB-Align pipeline (paper Algorithm 1).

:class:`BBAlign` strings the two stages together:

1. each car renders a BV image (line 1) and projects its detections to
   BEV boxes (line 2); the other car transmits both (line 3),
2. the ego car computes MIM features, matches keypoints and estimates
   ``T_bv`` (lines 5-11),
3. the other car's boxes are refined into ``T_box`` (lines 12-14),
4. the combined ``T_2D = T_box @ T_bv`` is lifted to 3-D (lines 15-17).

The class is plug-and-play in the paper's sense: it takes two point clouds
and two detection lists and needs no prior pose and no training.
"""

from __future__ import annotations

import contextlib
from typing import Callable, ContextManager

import numpy as np

from repro.boxes.box import Box2D, Box3D
from repro.core.box_alignment import BoxAligner, BoxAlignment
from repro.core.bv_matching import BVFeatures, BVMatcher
from repro.core.config import BBAlignConfig
from repro.core.result import PoseRecoveryResult
from repro.geometry.se3 import SE3
from repro.pointcloud.cloud import PointCloud

__all__ = ["BBAlign"]

# Transmitting one BEV box costs five float32 values (x, y, length,
# width, yaw); a 3-D box adds z and height.
_BYTES_PER_BOX = 5 * 4

# A stage timer is a factory of context managers keyed by stage name
# (see repro.runtime.timings.stage); None disables instrumentation.
StageTimer = Callable[[str], ContextManager]


def _no_timing(_stage: str) -> ContextManager:
    return contextlib.nullcontext()


class BBAlign:
    """Two-stage pose recovery (the paper's primary contribution).

    Example:
        >>> from repro.core import BBAlign
        >>> aligner = BBAlign()
        >>> result = aligner.recover(ego_cloud, other_cloud,
        ...                          ego_boxes, other_boxes)  # doctest: +SKIP
        >>> result.transform  # maps other-car coords into the ego frame  # doctest: +SKIP
    """

    def __init__(self, config: BBAlignConfig | None = None) -> None:
        self.config = config or BBAlignConfig()
        self.bv_matcher = BVMatcher(self.config)
        self.box_aligner = BoxAligner(self.config.box_align)

    # ------------------------------------------------------------------
    @staticmethod
    def _to_bev_boxes(boxes) -> list[Box2D]:
        """Accept 3-D or BEV boxes; project 3-D ones (Algorithm 1 line 2)."""
        bev: list[Box2D] = []
        for box in boxes:
            if isinstance(box, Box3D):
                bev.append(box.to_bev())
            elif isinstance(box, Box2D):
                bev.append(box)
            else:
                raise TypeError(f"expected Box2D or Box3D, got {type(box)!r}")
        return bev

    def _rng(self, rng) -> np.random.Generator:
        if isinstance(rng, np.random.Generator):
            return rng
        if rng is None:
            rng = self.config.random_seed
        return np.random.default_rng(rng)

    # ------------------------------------------------------------------
    def extract_features(self, cloud: PointCloud,
                         timer: StageTimer | None = None) -> BVFeatures:
        """Stage-1 feature extraction for one scan.

        This is the memoization boundary the runtime layer caches:
        extraction is a pure function of (cloud, configuration), consumes
        no randomness, and dominates per-pair cost.  Pair it with
        :meth:`recover_from_features` to reuse features across sweeps.
        The optional ``timer`` records the per-kernel ``bv_extract/*``
        detail stages.
        """
        return self.bv_matcher.extract_from_cloud(cloud, timer=timer)

    def recover(self, ego_cloud: PointCloud, other_cloud: PointCloud,
                ego_boxes, other_boxes,
                rng: np.random.Generator | int | None = None,
                timer: StageTimer | None = None) -> PoseRecoveryResult:
        """Recover the relative pose from the other car to the ego car.

        Args:
            ego_cloud: ego car's lidar scan in its own frame.
            other_cloud: the received scan, in the *other car's* frame.
            ego_boxes: ego detections (Box3D or Box2D) in the ego frame.
            other_boxes: received detections in the other car's frame.
            rng: randomness for both RANSAC stages (defaults to the
                config seed, making runs reproducible).
            timer: optional stage-timer factory (see
                :func:`repro.runtime.timings.stage`) recording
                ``bv_extract`` / ``stage1_match`` / ``stage2_align``.

        Returns:
            A :class:`PoseRecoveryResult`; ``result.transform`` maps
            other-frame coordinates into the ego frame.
        """
        with (timer or _no_timing)("bv_extract"):
            ego_features = self.extract_features(ego_cloud, timer=timer)
            other_features = self.extract_features(other_cloud, timer=timer)
        return self.recover_from_features(ego_features, other_features,
                                          ego_boxes, other_boxes, rng=rng,
                                          timer=timer)

    def recover_from_features(self, ego_features: BVFeatures,
                              other_features: BVFeatures,
                              ego_boxes, other_boxes,
                              rng: np.random.Generator | int | None = None,
                              timer: StageTimer | None = None,
                              ) -> PoseRecoveryResult:
        """Like :meth:`recover` but with precomputed stage-1 features.

        Useful when sweeping many "other" frames against one ego frame,
        for ablations that reuse extraction, or with the runtime layer's
        feature cache (:mod:`repro.runtime.cache`).
        """
        timer = timer or _no_timing
        rng = self._rng(rng)
        ego_bev = self._to_bev_boxes(ego_boxes)
        other_bev = self._to_bev_boxes(other_boxes)

        with timer("stage1_match"):
            stage1 = self.bv_matcher.match(other_features, ego_features,
                                           rng=rng, timer=timer)

        if self.config.enable_box_alignment and stage1.success:
            with timer("stage2_align"):
                stage2 = self.box_aligner.align(other_bev, ego_bev,
                                                stage1.transform, rng=rng)
        else:
            stage2 = BoxAlignment.skipped()

        # Apply the refinement only when its own confidence criterion
        # holds: a correction estimated from a single box pair amplifies
        # detector yaw noise through the box-to-origin lever arm, so an
        # unreliable stage 2 must not damage a good stage-1 estimate.
        apply_correction = (stage2.success
                            and stage2.inliers_box
                            > self.config.success.min_inliers_box)
        combined = (stage2.correction @ stage1.transform
                    if apply_correction else stage1.transform)
        transform_3d = SE3.from_se2(combined)

        if self.config.enable_box_alignment:
            success = (stage1.success
                       and self.config.success.is_success(
                           stage1.inliers_bv, stage2.inliers_box))
        else:
            # Ablation mode: only the stage-1 criterion applies.
            success = (stage1.success
                       and stage1.inliers_bv > self.config.success.min_inliers_bv)

        message_bytes = (other_features.bv_image.message_size_bytes()
                         + _BYTES_PER_BOX * len(other_bev))
        return PoseRecoveryResult(
            transform=combined,
            transform_3d=transform_3d,
            success=success,
            stage1=stage1,
            stage2=stage2,
            message_bytes=message_bytes,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def raw_cloud_bytes(cloud: PointCloud) -> int:
        """Transmission cost of sending the raw scan instead (float32
        xyz) — the early-fusion bandwidth the paper argues against."""
        return len(cloud) * 3 * 4
