"""Robust SE(2) pose-graph optimization for N-vehicle recovery.

Pairwise BB-Align produces relative-pose *measurements*; with N
cooperating vehicles those measurements form a pose graph whose
redundancy this module exploits in three steps:

1. **Cycle gating** (:func:`cycle_gate`) — every 3-cycle of edges
   composes to (near) identity when its edges are consistent.  Each
   triangle votes on its three edges; an edge whose inconsistent votes
   decisively outnumber its consistent ones is rejected *before*
   optimization.  This is the "third car adjudicates a disputed pair"
   mechanism: a corrupted pairwise estimate trips every triangle it
   participates in, while the good edges it implicates are vindicated by
   their other triangles.  A lone inconsistent triangle (no witness) is
   left alone — with no adjudicator the blame cannot be pinned, and the
   robust optimizer's Huber weights absorb the error instead.
2. **Robust fusion** (:func:`optimize_pose_graph`) — Gauss-Newton over
   all vehicle poses, minimizing inlier-weighted edge residuals under a
   Huber loss.  Gauge freedom is fixed by anchoring one node per
   connected component (the lowest index; the caller re-bases to the
   ego afterwards, see DESIGN.md).  Graphs are small (N <= 8), so the
   normal equations are solved densely.
3. **Incremental re-solve** (:func:`solve_incremental`) — frame t+1
   usually repeats most of frame t's graph.  Connected components whose
   node and edge sets are unchanged reuse the previous solution's poses
   verbatim; only *dirty* components re-solve.  Because a full solve is
   independent per component, the incremental result is exactly the
   full-solve result — on a completely unchanged graph, no optimization
   runs at all.

All inputs are :class:`~repro.geometry.se2.SE2`; edges are directed
``target <- source`` (``transform`` maps source-frame coordinates into
the target frame), matching :class:`repro.core.multi.PairwiseEdge`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import numpy as np

from repro.geometry.angles import wrap_to_pi
from repro.geometry.se2 import SE2

__all__ = [
    "PoseGraphEdge",
    "PoseGraphConfig",
    "CycleGateResult",
    "PoseGraphSolution",
    "cycle_gate",
    "connected_components",
    "spanning_tree_init",
    "optimize_pose_graph",
    "solve_incremental",
]


@dataclass(frozen=True)
class PoseGraphEdge:
    """One relative-pose measurement ``target <- source``.

    Attributes:
        target / source: node (vehicle) indices.
        transform: maps source-frame coordinates into the target frame.
        weight: measurement confidence (inlier-derived); scales the
            edge's information in the least squares.
    """

    target: int
    source: int
    transform: SE2
    weight: float = 1.0

    @property
    def key(self) -> tuple[int, int]:
        """Undirected identity of the pair, ``(min, max)``."""
        return (min(self.target, self.source),
                max(self.target, self.source))


@dataclass(frozen=True)
class PoseGraphConfig:
    """Gating and optimization knobs.

    Attributes:
        cycle_translation_tol: loop translation (m) above which a
            triangle votes its edges inconsistent.
        cycle_rotation_tol_deg: loop rotation (deg) above which a
            triangle votes inconsistent.
        min_inconsistent_votes: rejection needs at least this many
            inconsistent triangles — a lone bad triangle has no witness
            to adjudicate blame, so nothing is rejected from it.
        huber_delta: residual norm (in scaled units, see
            ``rotation_scale``) beyond which the Huber loss goes linear.
        rotation_scale: meters-per-radian conversion folding the angular
            residual into the same norm as translation.
        max_iterations / tolerance: Gauss-Newton stopping criteria
            (update norm below ``tolerance`` counts as converged).
    """

    cycle_translation_tol: float = 1.5
    cycle_rotation_tol_deg: float = 6.0
    min_inconsistent_votes: int = 2
    huber_delta: float = 1.0
    rotation_scale: float = 5.0
    max_iterations: int = 25
    tolerance: float = 1e-10

    def __post_init__(self) -> None:
        if self.cycle_translation_tol <= 0:
            raise ValueError("cycle_translation_tol must be positive")
        if self.huber_delta <= 0:
            raise ValueError("huber_delta must be positive")
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")


@dataclass(frozen=True)
class CycleGateResult:
    """Outcome of triangle-consistency gating.

    Attributes:
        kept / rejected: the partitioned edges.
        votes: per undirected pair, ``(consistent, inconsistent)``
            triangle counts.
        cycle_residuals: per evaluated triangle, ``(translation_m,
            rotation_deg)`` loop error — the ground-truth-free health
            metric.
    """

    kept: tuple[PoseGraphEdge, ...]
    rejected: tuple[PoseGraphEdge, ...]
    votes: dict[tuple[int, int], tuple[int, int]]
    cycle_residuals: tuple[tuple[float, float], ...]


@dataclass(frozen=True)
class PoseGraphSolution:
    """Optimized poses plus enough structure to re-solve incrementally.

    Attributes:
        poses: per-node pose, gauge-fixed at each connected component's
            lowest-index node (identity there); ``None`` for isolated
            nodes (no incident edge).
        edges: the edges the solve consumed (post-gating).
        edge_residuals: per undirected pair, the post-optimization
            scaled residual norm.
        iterations: Gauss-Newton iterations spent (summed over
            re-solved components).
        converged: every re-solved component met the update tolerance.
        reused_components: components copied verbatim from a previous
            solution (incremental mode; 0 for a full solve).
    """

    poses: tuple[SE2 | None, ...]
    edges: tuple[PoseGraphEdge, ...]
    edge_residuals: dict[tuple[int, int], float] = field(
        default_factory=dict)
    iterations: int = 0
    converged: bool = True
    reused_components: int = 0

    @property
    def num_nodes(self) -> int:
        return len(self.poses)


# ----------------------------------------------------------------------
# Cycle gating
# ----------------------------------------------------------------------
def _edge_lookup(edges: tuple[PoseGraphEdge, ...] | list[PoseGraphEdge]):
    """Map undirected pair -> canonical transform ``min <- max``."""
    lookup: dict[tuple[int, int], SE2] = {}
    for edge in edges:
        if edge.target <= edge.source:
            lookup[edge.key] = edge.transform
        else:
            lookup[edge.key] = edge.transform.inverse()
    return lookup


def cycle_residual(t_ab: SE2, t_bc: SE2, t_ca: SE2) -> tuple[float, float]:
    """Loop error of one triangle: ``(translation_m, rotation_deg)``.

    Arguments are the canonically oriented edges ``a <- b``, ``b <- c``,
    ``c <- a``; a consistent triple composes to the identity.
    """
    loop = t_ab @ t_bc @ t_ca
    return (float(np.hypot(loop.tx, loop.ty)),
            float(abs(np.degrees(wrap_to_pi(loop.theta)))))


def cycle_gate(edges, config: PoseGraphConfig | None = None,
               ) -> CycleGateResult:
    """Reject edges that triangles decisively vote inconsistent.

    Every 3-cycle with all three edges present is composed; within
    tolerance it casts a *consistent* vote on each edge, otherwise an
    *inconsistent* one.  An edge is rejected when its inconsistent
    votes strictly outnumber its consistent votes **and** reach
    ``min_inconsistent_votes`` — the second condition keeps a lone bad
    triangle (one cycle, no witness) from nuking all three of its
    edges.

    Duplicate measurements of the same pair vote (and are kept or
    rejected) together under their undirected key.
    """
    config = config or PoseGraphConfig()
    edges = list(edges)
    lookup = _edge_lookup(edges)
    nodes = sorted({n for key in lookup for n in key})

    consistent: dict[tuple[int, int], int] = {k: 0 for k in lookup}
    inconsistent: dict[tuple[int, int], int] = {k: 0 for k in lookup}
    residuals: list[tuple[float, float]] = []
    for a, b, c in combinations(nodes, 3):
        keys = ((a, b), (b, c), (a, c))
        if any(k not in lookup for k in keys):
            continue
        residual = cycle_residual(lookup[(a, b)], lookup[(b, c)],
                                  lookup[(a, c)].inverse())
        residuals.append(residual)
        ok = (residual[0] <= config.cycle_translation_tol
              and residual[1] <= config.cycle_rotation_tol_deg)
        for key in keys:
            if ok:
                consistent[key] += 1
            else:
                inconsistent[key] += 1

    rejected_keys = {
        key for key in lookup
        if inconsistent[key] > consistent[key]
        and inconsistent[key] >= config.min_inconsistent_votes}
    kept = tuple(e for e in edges if e.key not in rejected_keys)
    rejected = tuple(e for e in edges if e.key in rejected_keys)
    votes = {key: (consistent[key], inconsistent[key]) for key in lookup}
    return CycleGateResult(kept=kept, rejected=rejected, votes=votes,
                           cycle_residuals=tuple(residuals))


# ----------------------------------------------------------------------
# Connectivity
# ----------------------------------------------------------------------
def connected_components(num_nodes: int, edges) -> list[tuple[int, ...]]:
    """Connected components over nodes ``0..num_nodes-1`` (sorted;
    isolated nodes form singleton components)."""
    parent = list(range(num_nodes))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in edges:
        a, b = find(edge.target), find(edge.source)
        if a != b:
            parent[max(a, b)] = min(a, b)
    groups: dict[int, list[int]] = {}
    for node in range(num_nodes):
        groups.setdefault(find(node), []).append(node)
    return [tuple(sorted(members))
            for _, members in sorted(groups.items())]


def spanning_tree_init(edges, anchor: int) -> dict[int, SE2]:
    """Best-first (max weight) spanning-tree poses from ``anchor``.

    Returns poses (anchor frame) for every node reachable from the
    anchor; the Gauss-Newton solve starts here so the linearization is
    already near the basin.
    """
    adjacency: dict[int, list[tuple[float, int, SE2]]] = {}
    for edge in edges:
        adjacency.setdefault(edge.target, []).append(
            (edge.weight, edge.source, edge.transform))
        adjacency.setdefault(edge.source, []).append(
            (edge.weight, edge.target, edge.transform.inverse()))

    poses: dict[int, SE2] = {anchor: SE2.identity()}
    frontier = [(weight, anchor, node, transform)
                for weight, node, transform in adjacency.get(anchor, [])]
    while frontier:
        frontier.sort(key=lambda item: (-item[0], item[2]))
        weight, parent, node, transform = frontier.pop(0)
        if node in poses:
            continue
        # pose_node (anchor frame) = pose_parent @ T(parent <- node)
        poses[node] = poses[parent] @ transform
        for w_next, neighbor, t_next in adjacency.get(node, []):
            if neighbor not in poses:
                frontier.append((w_next, node, neighbor, t_next))
    return poses


# ----------------------------------------------------------------------
# Gauss-Newton with Huber weights
# ----------------------------------------------------------------------
def _edge_residual_vector(edge: PoseGraphEdge, pose_t: SE2,
                          pose_s: SE2, rotation_scale: float,
                          ) -> np.ndarray:
    """Scaled residual of one edge at the current estimate.

    The prediction is ``pose_target^-1 @ pose_source`` (what the edge
    *should* measure); the residual is expressed in the measurement
    frame and the angle folded into meters via ``rotation_scale``.
    """
    predicted = pose_t.inverse() @ pose_s
    error = edge.transform.inverse() @ predicted
    return np.array([error.tx, error.ty,
                     rotation_scale * error.theta])


def _solve_component(nodes: tuple[int, ...], edges: list[PoseGraphEdge],
                     anchor: int, config: PoseGraphConfig,
                     ) -> tuple[dict[int, SE2],
                                dict[tuple[int, int], float], int, bool]:
    """Gauss-Newton over one connected component.

    Returns (poses in anchor frame, per-pair residual norms,
    iterations, converged).
    """
    poses = spanning_tree_init(edges, anchor)
    # Column layout: 3 unknowns (x, y, theta) per non-anchor node.
    free = [n for n in nodes if n != anchor]
    index = {node: 3 * k for k, node in enumerate(free)}
    state = {node: poses.get(node, SE2.identity()) for node in nodes}

    iterations = 0
    converged = not free
    scale = config.rotation_scale
    for _ in range(config.max_iterations if free else 0):
        iterations += 1
        dim = 3 * len(free)
        hessian = np.zeros((dim, dim))
        gradient = np.zeros(dim)
        for edge in edges:
            pose_t, pose_s = state[edge.target], state[edge.source]
            residual = _edge_residual_vector(edge, pose_t, pose_s, scale)
            norm = float(np.linalg.norm(residual))
            # Huber: quadratic inside delta, linear outside — the
            # familiar IRLS weight min(1, delta/|r|).
            robust = (1.0 if norm <= config.huber_delta
                      else config.huber_delta / norm)
            weight = edge.weight * robust

            # Jacobians of the scaled residual wrt (x, y, theta) of the
            # target and source nodes.  With R_z the measurement
            # rotation and R_t the target rotation:
            #   e_t = R_z^T (R_t^T (t_s - t_t) - t_z)
            #   e_theta = wrap(theta_s - theta_t - theta_z)
            r_z = edge.transform.rotation
            r_t = pose_t.rotation
            diff = pose_s.translation - pose_t.translation
            # d(R_t^T)/dtheta = (dR_t/dtheta)^T
            c, s = np.cos(pose_t.theta), np.sin(pose_t.theta)
            dr_t = np.array([[-s, c], [-c, -s]])  # d(R^T)/dtheta
            j_t = np.zeros((3, 3))
            j_t[:2, :2] = -r_z.T @ r_t.T
            j_t[:2, 2] = r_z.T @ (dr_t @ diff)
            j_t[2, 2] = -scale
            j_s = np.zeros((3, 3))
            j_s[:2, :2] = r_z.T @ r_t.T
            j_s[2, 2] = scale
            # The angle column differentiates wrt theta (radians); the
            # residual's angle row is scaled, handled via j[2, 2].

            blocks = []
            if edge.target != anchor:
                blocks.append((index[edge.target], j_t))
            if edge.source != anchor:
                blocks.append((index[edge.source], j_s))
            for col_a, jac_a in blocks:
                gradient[col_a:col_a + 3] += weight * (jac_a.T @ residual)
                for col_b, jac_b in blocks:
                    hessian[col_a:col_a + 3, col_b:col_b + 3] += \
                        weight * (jac_a.T @ jac_b)

        # Tiny Levenberg damping keeps a rank-deficient linearization
        # (collinear translations) solvable without changing the
        # converged optimum.
        hessian[np.diag_indices(dim)] += 1e-9
        try:
            delta = np.linalg.solve(hessian, -gradient)
        except np.linalg.LinAlgError:
            break
        for node in free:
            k = index[node]
            current = state[node]
            state[node] = SE2(current.theta + delta[k + 2],
                              current.tx + delta[k],
                              current.ty + delta[k + 1])
        if float(np.linalg.norm(delta)) < config.tolerance:
            converged = True
            break

    residual_norms: dict[tuple[int, int], float] = {}
    for edge in edges:
        residual = _edge_residual_vector(
            edge, state[edge.target], state[edge.source], scale)
        key = edge.key
        norm = float(np.linalg.norm(residual))
        residual_norms[key] = max(norm, residual_norms.get(key, 0.0))
    return state, residual_norms, iterations, converged


def optimize_pose_graph(num_nodes: int, edges,
                        config: PoseGraphConfig | None = None,
                        ) -> PoseGraphSolution:
    """Robust least-squares solve of the whole graph.

    Every connected component is solved independently, anchored (gauge
    fixed to identity) at its lowest-index node; nodes with no incident
    edge stay ``None``.  Callers wanting ego-frame poses re-base with
    ``poses[ego].inverse() @ poses[k]`` for nodes sharing the ego's
    component (see :class:`repro.core.multi.MultiVehicleAligner`).
    """
    config = config or PoseGraphConfig()
    edges = list(edges)
    for edge in edges:
        if not (0 <= edge.target < num_nodes
                and 0 <= edge.source < num_nodes):
            raise ValueError(f"edge {edge.target}<-{edge.source} outside "
                             f"0..{num_nodes - 1}")
        if edge.target == edge.source:
            raise ValueError("self-loop edges are not allowed")

    poses: list[SE2 | None] = [None] * num_nodes
    residuals: dict[tuple[int, int], float] = {}
    iterations = 0
    converged = True
    for component in connected_components(num_nodes, edges):
        if len(component) == 1:
            continue  # isolated node: unresolvable, stays None
        members = set(component)
        component_edges = [e for e in edges if e.target in members]
        state, norms, spent, ok = _solve_component(
            component, component_edges, anchor=component[0],
            config=config)
        for node in component:
            poses[node] = state[node]
        residuals.update(norms)
        iterations += spent
        converged = converged and ok
    return PoseGraphSolution(poses=tuple(poses), edges=tuple(edges),
                             edge_residuals=residuals,
                             iterations=iterations, converged=converged)


# ----------------------------------------------------------------------
# Incremental mode
# ----------------------------------------------------------------------
def _edge_signature(edges) -> frozenset:
    """Order-independent identity of an edge set (exact transforms)."""
    return frozenset(
        (e.target, e.source, e.transform.theta, e.transform.tx,
         e.transform.ty, e.weight) for e in edges)


def solve_incremental(num_nodes: int, edges,
                      previous: PoseGraphSolution | None,
                      config: PoseGraphConfig | None = None,
                      ) -> PoseGraphSolution:
    """Re-solve only the components the new edge set dirtied.

    A component of the *new* graph is clean when some component of the
    previous solution has exactly the same node set and exactly the
    same incident edges (transforms included); its poses are then
    copied verbatim.  Everything else re-solves through
    :func:`optimize_pose_graph` on its own edges.  Because a full solve
    is per-component independent and clean components reproduce their
    previous (full-solve) poses bit-for-bit, the incremental result is
    identical to a fresh full solve of the same graph.

    With ``previous=None`` this is exactly a full solve.
    """
    config = config or PoseGraphConfig()
    edges = list(edges)
    if previous is None:
        return optimize_pose_graph(num_nodes, edges, config)

    prev_components = {}
    if previous.num_nodes:
        prev_edges = list(previous.edges)
        for component in connected_components(previous.num_nodes, prev_edges):
            members = set(component)
            prev_components[component] = _edge_signature(
                e for e in prev_edges if e.target in members)

    poses: list[SE2 | None] = [None] * num_nodes
    residuals: dict[tuple[int, int], float] = {}
    iterations = 0
    converged = True
    reused = 0
    for component in connected_components(num_nodes, edges):
        members = set(component)
        component_edges = [e for e in edges if e.target in members]
        signature = _edge_signature(component_edges)
        previous_signature = prev_components.get(component)
        if (previous_signature is not None
                and previous_signature == signature
                and len(component) > 1):
            # Clean: copy the previous component's poses and residuals.
            for node in component:
                poses[node] = previous.poses[node]
            for edge in component_edges:
                key = edge.key
                if key in previous.edge_residuals:
                    residuals[key] = previous.edge_residuals[key]
            reused += 1
            continue
        if len(component) == 1:
            continue
        state, norms, spent, ok = _solve_component(
            component, component_edges, anchor=component[0],
            config=config)
        for node in component:
            poses[node] = state[node]
        residuals.update(norms)
        iterations += spent
        converged = converged and ok
    return PoseGraphSolution(poses=tuple(poses), edges=tuple(edges),
                             edge_residuals=residuals,
                             iterations=iterations, converged=converged,
                             reused_components=reused)
