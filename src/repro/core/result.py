"""Typed results of a full BB-Align pose recovery."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.box_alignment import BoxAlignment
from repro.core.bv_matching import BVMatch
from repro.core.degradation import (
    DegradationLevel,
    FailureReason,
    StageDiagnostics,
)
from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3

__all__ = ["PoseRecoveryResult"]


@dataclass(frozen=True)
class PoseRecoveryResult:
    """Outcome of Algorithm 1 on one frame pair.

    Attributes:
        transform: the recovered planar pose ``T_2D = T_box @ T_bv``
            mapping other-car coordinates into the ego frame.
        transform_3d: the 3-D lift ``T_3D`` of Eq. (1).
        success: the paper's success criterion — both stages produced
            enough inliers (``Inliers_bv > 25 and Inliers_box > 6`` by
            default; only stage 1 is required when box alignment is
            disabled for ablation).
        stage1: stage-1 diagnostics (``T_bv``, ``Inliers_bv``...).
        stage2: stage-2 diagnostics (``T_box``, ``Inliers_box``...).
        message_bytes: size of the data the other car had to transmit
            (BV image + boxes) — the paper's bandwidth argument.
        failure_reason: why the success criterion was missed
            (:class:`~repro.core.degradation.FailureReason`); ``None``
            exactly when ``success`` is ``True``.
        degradation: which rung of the fallback ladder produced
            ``transform``
            (:class:`~repro.core.degradation.DegradationLevel`).
        diagnostics: per-stage observability
            (:class:`~repro.core.degradation.StageDiagnostics`).
    """

    transform: SE2
    transform_3d: SE3
    success: bool
    stage1: BVMatch
    stage2: BoxAlignment
    message_bytes: int
    failure_reason: FailureReason | None = None
    degradation: DegradationLevel = DegradationLevel.FULL
    diagnostics: StageDiagnostics = field(default_factory=StageDiagnostics)

    @property
    def degraded(self) -> bool:
        """The returned pose did not come from the full two-stage path
        (the ``temporal`` and ``identity`` ladder rungs)."""
        return self.degradation in (DegradationLevel.TEMPORAL,
                                    DegradationLevel.IDENTITY)

    # Convenience accessors mirroring the paper's notation -------------
    @property
    def alpha(self) -> float:
        """Estimated yaw (radians)."""
        return self.transform.theta

    @property
    def t_x(self) -> float:
        return self.transform.tx

    @property
    def t_y(self) -> float:
        return self.transform.ty

    @property
    def inliers_bv(self) -> int:
        return self.stage1.inliers_bv

    @property
    def inliers_box(self) -> int:
        return self.stage2.inliers_box

    def translation_error(self, ground_truth: SE2) -> float:
        """Euclidean error of (t_x, t_y) against the ground truth (m)."""
        return self.transform.translation_distance(ground_truth)

    def rotation_error_deg(self, ground_truth: SE2) -> float:
        """Absolute yaw error in degrees."""
        return float(np.degrees(self.transform.rotation_distance(ground_truth)))
