"""Temporal pose tracking across a drive sequence (extension).

The paper recovers the relative pose per frame pair; a deployed V2V
system sees a stream and can do better.  :class:`PoseTracker` fuses
per-frame BB-Align measurements with both vehicles' odometry:

* **predict** — the relative pose evolves as
  ``T(t+1) = dEgo^-1 @ T(t) @ dOther`` where ``dEgo``/``dOther`` are the
  vehicles' own pose increments (the other car's increment rides along in
  the V2V message at negligible cost);
* **update** — a successful BB-Align measurement is blended with the
  prediction, weighted by its inlier-derived confidence, after an outlier
  gate; failed recoveries simply coast on the prediction.

This fills recovery gaps (frames where the success criterion fails) and
suppresses single-frame outliers — the natural deployment of the paper's
"plug-and-play" module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import PoseRecoveryResult
from repro.geometry.angles import wrap_to_pi
from repro.geometry.se2 import SE2

__all__ = ["TrackerConfig", "TrackedPose", "PoseTracker"]


@dataclass(frozen=True)
class TrackerConfig:
    """Tracking parameters.

    Attributes:
        gate_translation: reject measurements farther than this from the
            prediction (meters) — unless the tracker is still cold or has
            coasted too long.
        gate_rotation_deg: rotation gate (degrees).
        max_coast_frames: after this many consecutive gated/failed
            frames, accept the next successful measurement outright
            (re-acquisition).
        min_blend: floor of the measurement weight in the blend.
        max_blend: ceiling of the measurement weight.
        confidence_inliers: inlier count at which the measurement weight
            saturates at ``max_blend``.
    """

    gate_translation: float = 3.0
    gate_rotation_deg: float = 10.0
    max_coast_frames: int = 5
    min_blend: float = 0.2
    max_blend: float = 0.8
    confidence_inliers: int = 40

    def __post_init__(self) -> None:
        if not (0 < self.min_blend <= self.max_blend <= 1):
            raise ValueError("need 0 < min_blend <= max_blend <= 1")
        if self.max_coast_frames < 1:
            raise ValueError("max_coast_frames must be >= 1")


@dataclass(frozen=True)
class TrackedPose:
    """Tracker output for one frame.

    Attributes:
        transform: the fused relative-pose estimate.
        used_measurement: the BB-Align measurement was accepted.
        coasting: no measurement was available/accepted this frame.
        frames_since_update: consecutive frames without an accepted
            measurement.
    """

    transform: SE2
    used_measurement: bool
    coasting: bool
    frames_since_update: int


def _blend(prediction: SE2, measurement: SE2, weight: float) -> SE2:
    """Convex blend of two planar poses (component-wise with angle wrap)."""
    theta = prediction.theta + weight * wrap_to_pi(measurement.theta
                                                   - prediction.theta)
    tx = (1 - weight) * prediction.tx + weight * measurement.tx
    ty = (1 - weight) * prediction.ty + weight * measurement.ty
    return SE2(float(theta), float(tx), float(ty))


class PoseTracker:
    """Odometry-predicted, measurement-updated relative-pose filter."""

    def __init__(self, config: TrackerConfig | None = None) -> None:
        self.config = config or TrackerConfig()
        self._estimate: SE2 | None = None
        self._frames_since_update = 0

    @property
    def initialized(self) -> bool:
        return self._estimate is not None

    # ------------------------------------------------------------------
    def predict(self, ego_step: SE2, other_step: SE2) -> SE2 | None:
        """Propagate the estimate one frame using both odometries.

        ``ego_step``/``other_step`` are each vehicle's pose increment in
        its own previous frame.  Returns the predicted relative pose (or
        None while uninitialized).
        """
        if self._estimate is None:
            return None
        self._estimate = (ego_step.inverse()
                          @ self._estimate @ other_step)
        return self._estimate

    def update(self, recovery: PoseRecoveryResult | None) -> TrackedPose:
        """Fuse this frame's BB-Align result (call after :meth:`predict`).

        Args:
            recovery: the frame's recovery result, or None when no
                message arrived.

        Returns:
            The fused :class:`TrackedPose`.
        """
        cfg = self.config
        measurement = (recovery.transform
                       if recovery is not None and recovery.success
                       else None)

        if measurement is None:
            self._frames_since_update += 1
            return TrackedPose(
                transform=self._estimate or SE2.identity(),
                used_measurement=False,
                coasting=True,
                frames_since_update=self._frames_since_update)

        if self._estimate is None \
                or self._frames_since_update >= cfg.max_coast_frames:
            # Cold start / re-acquisition: adopt the measurement.
            self._estimate = measurement
            self._frames_since_update = 0
            return TrackedPose(measurement, True, False, 0)

        gate_t = self._estimate.translation_distance(measurement)
        gate_r = np.degrees(self._estimate.rotation_distance(measurement))
        if gate_t > cfg.gate_translation \
                or gate_r > cfg.gate_rotation_deg:
            self._frames_since_update += 1
            return TrackedPose(self._estimate, False, True,
                               self._frames_since_update)

        confidence = min(recovery.inliers_bv / cfg.confidence_inliers, 1.0)
        weight = cfg.min_blend + (cfg.max_blend - cfg.min_blend) * confidence
        self._estimate = _blend(self._estimate, measurement, weight)
        self._frames_since_update = 0
        return TrackedPose(self._estimate, True, False, 0)
