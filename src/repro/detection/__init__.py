"""Object detection simulation and cooperative fusion pipelines.

The paper's stage-2 boxes come from single-car 3-D detectors (coBEVT,
F-Cooper) and its Table I evaluates cooperative fusion pipelines under
pose error.  Neither neural model is reproducible offline, so this
package provides:

* :mod:`repro.detection.simulated` — a statistical single-car detector
  whose recall/noise/false-positive behaviour is set by a per-model
  profile (``COBEVT_PROFILE``, ``FCOOPER_PROFILE``).
* :mod:`repro.detection.fusion` — early/late/intermediate cooperative
  fusion detectors sharing a classical BEV clustering head.
* :mod:`repro.detection.evaluation` — AP@IoU evaluation against
  ground-truth boxes with the paper's distance binning.
"""

from repro.detection.evaluation import (
    DetectionEvalResult,
    evaluate_cooperative_detection,
)
from repro.detection.simulated import (
    COBEVT_PROFILE,
    FCOOPER_PROFILE,
    Detection,
    DetectorProfile,
    SimulatedDetector,
)

__all__ = [
    "COBEVT_PROFILE",
    "Detection",
    "DetectionEvalResult",
    "DetectorProfile",
    "FCOOPER_PROFILE",
    "SimulatedDetector",
    "evaluate_cooperative_detection",
]
