"""Cooperative detection evaluation (the Table I harness).

Ground truth for a frame pair is the union of vehicles observed by either
car, expressed in the ego frame through the *true* relative pose.  A
fusion detector is run with some believed pose (true / corrupted /
recovered); AP is computed at the paper's IoU thresholds, overall and in
the paper's distance bins (0-30, 30-50, 50-100 m from the ego vehicle).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.boxes.box import Box2D
from repro.detection.simulated import Detection
from repro.metrics.average_precision import APResult, average_precision
from repro.simulation.scenario import FramePair

__all__ = ["DetectionEvalResult", "ground_truth_boxes",
           "evaluate_cooperative_detection", "DISTANCE_BINS"]

# The paper's Table I distance breakdown (meters from the ego vehicle).
DISTANCE_BINS: tuple[tuple[float, float], ...] = (
    (0.0, 30.0), (30.0, 50.0), (50.0, 100.0))


def ground_truth_boxes(pair: FramePair) -> list[Box2D]:
    """Union of vehicles observed by either car, in the ego frame.

    The other car's observations are brought over with the *ground-truth*
    relative pose; objects seen by both are deduplicated by identity.
    The partner vehicles themselves are included (each is a labeled
    object for its observer, exactly as the companion CAV is labeled in
    V2V4Real).
    """
    boxes: dict[int, Box2D] = {}
    for obj in pair.ego_visible:
        boxes[obj.vehicle_id] = obj.box.to_bev()
    for obj in pair.other_visible:
        if obj.vehicle_id not in boxes:
            boxes[obj.vehicle_id] = (obj.box.transform(pair.gt_relative)
                                     .to_bev())
    return list(boxes.values())


@dataclass(frozen=True)
class DetectionEvalResult:
    """AP table for one (method, pose source) combination.

    Attributes:
        overall: ``{iou: APResult}`` over all ranges.
        by_distance: ``{(lo, hi): {iou: APResult}}`` per distance bin.
        num_frames: evaluated frame count.
    """

    overall: dict[float, APResult]
    by_distance: dict[tuple[float, float], dict[float, APResult]]
    num_frames: int

    def row(self, iou: float) -> list[float]:
        """The Table I row layout: overall then each distance bin, as
        AP percentages."""
        values = [self.overall[iou].ap_percent]
        for bin_key in DISTANCE_BINS:
            values.append(self.by_distance[bin_key][iou].ap_percent)
        return values


def _range_of(box: Box2D) -> float:
    return float(np.hypot(box.center_x, box.center_y))


def evaluate_cooperative_detection(
        pairs_and_poses: list[tuple[FramePair, "SE2"]],
        method,
        iou_thresholds: tuple[float, ...] = (0.5, 0.7),
        rng: np.random.Generator | int | None = None) -> DetectionEvalResult:
    """Evaluate one fusion method over a set of frame pairs.

    Args:
        pairs_and_poses: ``(pair, believed_pose)`` tuples; the believed
            pose is whatever the ego car would use for fusion.
        method: a fusion detector (``detect(pair, pose, rng)``).
        iou_thresholds: AP thresholds (paper: 0.5 and 0.7).
        rng: randomness for stochastic pipelines (late fusion).

    Returns:
        A :class:`DetectionEvalResult`.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    overall_frames: list[tuple[list[Box2D], np.ndarray, list[Box2D]]] = []
    binned_frames: dict[tuple[float, float], list] = {
        b: [] for b in DISTANCE_BINS}

    for pair, believed_pose in pairs_and_poses:
        detections: list[Detection] = method.detect(pair, believed_pose, rng)
        det_boxes = [d.box.to_bev() for d in detections]
        det_scores = np.array([d.score for d in detections])
        gt_boxes = ground_truth_boxes(pair)
        overall_frames.append((det_boxes, det_scores, gt_boxes))

        for lo, hi in DISTANCE_BINS:
            in_bin = [i for i, b in enumerate(det_boxes)
                      if lo <= _range_of(b) < hi]
            gt_in_bin = [b for b in gt_boxes if lo <= _range_of(b) < hi]
            binned_frames[(lo, hi)].append((
                [det_boxes[i] for i in in_bin],
                det_scores[in_bin] if len(det_scores) else det_scores,
                gt_in_bin))

    overall = {iou: average_precision(overall_frames, iou)
               for iou in iou_thresholds}
    by_distance = {
        bin_key: {iou: average_precision(frames, iou)
                  for iou in iou_thresholds}
        for bin_key, frames in binned_frames.items()}
    return DetectionEvalResult(overall=overall, by_distance=by_distance,
                               num_frames=len(pairs_and_poses))
