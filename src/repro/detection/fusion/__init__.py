"""Cooperative fusion detectors (Table I).

Four pipelines matching the paper's comparison set, all consuming a
:class:`~repro.simulation.scenario.FramePair` plus the relative pose used
for fusion (truth, corrupted, or recovered):

* :class:`EarlyFusionDetector` — merge raw point clouds, detect on the
  union (the Cooper [11] approach).
* :class:`LateFusionDetector` — detect per vehicle, transform and
  NMS-merge the box lists.
* :class:`FCooperFusionDetector` — per-vehicle BEV feature grids fused by
  element-wise max (F-Cooper's voxel maxout).
* :class:`CoBEVTFusionDetector` — confidence-weighted (attention-style)
  grid fusion with disagreement discounting, the coBEVT stand-in.

The intermediate pipelines share :class:`repro.detection.fusion.head.ClusteringHead`.
"""

from repro.detection.fusion.cobevt import CoBEVTFusionDetector
from repro.detection.fusion.early import EarlyFusionDetector
from repro.detection.fusion.fcooper import FCooperFusionDetector
from repro.detection.fusion.grid import BevFeatureGrid, build_feature_grid, warp_grid
from repro.detection.fusion.head import ClusteringHead, HeadConfig
from repro.detection.fusion.late import LateFusionDetector

__all__ = [
    "BevFeatureGrid",
    "ClusteringHead",
    "CoBEVTFusionDetector",
    "EarlyFusionDetector",
    "FCooperFusionDetector",
    "HeadConfig",
    "LateFusionDetector",
    "build_feature_grid",
    "warp_grid",
]
