"""coBEVT-style intermediate fusion: attention-weighted grid averaging.

coBEVT [1] fuses BEV features with sparse transformer attention, which in
practice lets the network downweight cells where the two views disagree —
the source of its (partial) robustness to pose noise in the paper's
Table I.  The classical stand-in computes per-cell fusion weights from
each view's own evidence and discounts the other view where the two
feature vectors disagree strongly.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.detection.fusion.grid import BevFeatureGrid, build_feature_grid, warp_grid
from repro.detection.fusion.head import ClusteringHead, HeadConfig
from repro.detection.simulated import Detection
from repro.geometry.se2 import SE2
from repro.simulation.scenario import FramePair

__all__ = ["CoBEVTFusionDetector"]


class CoBEVTFusionDetector:
    """Disagreement-discounted weighted fusion."""

    name = "coBEVT"

    def __init__(self, head_config: HeadConfig | None = None,
                 cell_size: float = 0.4, half_range: float = 76.8,
                 disagreement_scale: float = 1.5,
                 contradiction_discount: float = 0.4) -> None:
        self.head = ClusteringHead(head_config)
        self.cell_size = cell_size
        self.half_range = half_range
        self.disagreement_scale = disagreement_scale
        self.contradiction_discount = contradiction_discount

    def fuse(self, ego_grid: BevFeatureGrid,
             other_warped: BevFeatureGrid) -> BevFeatureGrid:
        """Attention-style fusion.

        Each view's weight is its own evidence (car-band point count);
        the other view is additionally discounted where its features
        disagree with the ego view's — mimicking attention heads keying
        on cross-view consistency.
        """
        f_e, f_o = ego_grid.features, other_warped.features
        evidence_e = f_e[1]
        evidence_o = f_o[1]
        disagreement = np.abs(f_e[0] - f_o[0])
        discount = np.exp(-disagreement / self.disagreement_scale)
        w_e = evidence_e + 1e-6
        w_o = evidence_o * discount + 1e-6
        total = w_e + w_o
        fused = (f_e * w_e[None] + f_o * w_o[None]) / total[None]
        # Where only one view has evidence, keep it at full strength
        # (weighted averaging would halve isolated evidence).
        only_e = (evidence_o <= 0) & (evidence_e > 0)
        only_o = (evidence_e <= 0) & (evidence_o > 0)
        fused[:, only_e] = f_e[:, only_e]
        fused[:, only_o] = f_o[:, only_o]
        # Visibility attention: other-car evidence landing where the ego
        # *observes free space* (many returns, none in the car band) is
        # most likely misplaced by pose error — attenuate it.  This is
        # the classical analogue of attention keying on cross-view
        # consistency, and the source of coBEVT's (partial) pose-noise
        # resilience in Table I.
        neighborhood_obs = ndimage.maximum_filter(f_e[3], size=5)
        neighborhood_car = ndimage.maximum_filter(evidence_e, size=5)
        free_e = (neighborhood_obs > 1.0) & (neighborhood_car <= 0)
        contradicted = only_o & free_e
        fused[0, contradicted] *= self.contradiction_discount
        fused[1, contradicted] *= self.contradiction_discount
        return BevFeatureGrid(fused, ego_grid.cell_size, ego_grid.half_range)

    def detect(self, pair: FramePair, relative_pose: SE2,
               rng: np.random.Generator | int | None = None) -> list[Detection]:
        """Build per-car grids, warp, fuse with attention weights, run
        the shared head."""
        ego_grid = build_feature_grid(pair.ego_cloud, self.cell_size,
                                      self.half_range)
        other_grid = build_feature_grid(pair.other_cloud, self.cell_size,
                                        self.half_range)
        warped = warp_grid(other_grid, relative_pose)
        return self.head.detect(self.fuse(ego_grid, warped))
