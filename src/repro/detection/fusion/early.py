"""Early fusion: merge raw point clouds, then detect (Cooper [11]).

The highest-bandwidth, highest-fidelity fusion — and the most sensitive
to pose error, since every point of the other scan is displaced by the
full pose mistake before detection sees it.
"""

from __future__ import annotations

import numpy as np

from repro.detection.fusion.grid import build_feature_grid
from repro.detection.fusion.head import ClusteringHead, HeadConfig
from repro.detection.simulated import Detection
from repro.geometry.se2 import SE2
from repro.pointcloud.ops import merge_clouds
from repro.simulation.scenario import FramePair

__all__ = ["EarlyFusionDetector"]


class EarlyFusionDetector:
    """Point-level cooperative detection."""

    name = "Early Fusion"

    def __init__(self, head_config: HeadConfig | None = None,
                 cell_size: float = 0.4, half_range: float = 76.8) -> None:
        self.head = ClusteringHead(head_config)
        self.cell_size = cell_size
        self.half_range = half_range

    def detect(self, pair: FramePair, relative_pose: SE2,
               rng: np.random.Generator | int | None = None) -> list[Detection]:
        """Detect objects in the ego frame.

        Args:
            pair: the frame pair (scans in each vehicle's own frame).
            relative_pose: the believed other->ego transform used to merge
                the clouds (ground truth, corrupted, or recovered).
            rng: unused (the pipeline is deterministic); accepted for
                interface uniformity.

        Returns:
            Detections in the ego frame.
        """
        transformed = pair.other_cloud.transform(relative_pose)
        merged = merge_clouds(pair.ego_cloud, transformed)
        grid = build_feature_grid(merged, self.cell_size, self.half_range)
        return self.head.detect(grid)
