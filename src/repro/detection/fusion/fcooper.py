"""F-Cooper-style intermediate fusion: element-wise feature max-out.

F-Cooper [12] fuses the two vehicles' voxel/BEV feature maps with a
max-out operation.  Here the exchanged features are the classical pillar
grids of :mod:`repro.detection.fusion.grid`; the other car's grid is
warped by the believed pose and fused by per-channel maximum.  Pose error
therefore smears each object's evidence across two locations — weaker
degradation than early fusion's point-level corruption, matching the
paper's ordering.
"""

from __future__ import annotations

import numpy as np

from repro.detection.fusion.grid import BevFeatureGrid, build_feature_grid, warp_grid
from repro.detection.fusion.head import ClusteringHead, HeadConfig
from repro.detection.simulated import Detection
from repro.geometry.se2 import SE2
from repro.simulation.scenario import FramePair

__all__ = ["FCooperFusionDetector"]


class FCooperFusionDetector:
    """Max-out intermediate fusion."""

    name = "F-Cooper"

    def __init__(self, head_config: HeadConfig | None = None,
                 cell_size: float = 0.4, half_range: float = 76.8) -> None:
        self.head = ClusteringHead(head_config)
        self.cell_size = cell_size
        self.half_range = half_range

    def fuse(self, ego_grid: BevFeatureGrid,
             other_warped: BevFeatureGrid) -> BevFeatureGrid:
        """Per-channel element-wise maximum (the F-Cooper max-out)."""
        fused = np.maximum(ego_grid.features, other_warped.features)
        return BevFeatureGrid(fused, ego_grid.cell_size, ego_grid.half_range)

    def detect(self, pair: FramePair, relative_pose: SE2,
               rng: np.random.Generator | int | None = None) -> list[Detection]:
        """Build per-car grids, warp the other's by the believed pose,
        fuse, and run the shared head."""
        ego_grid = build_feature_grid(pair.ego_cloud, self.cell_size,
                                      self.half_range)
        other_grid = build_feature_grid(pair.other_cloud, self.cell_size,
                                        self.half_range)
        warped = warp_grid(other_grid, relative_pose)
        return self.head.detect(self.fuse(ego_grid, warped))
