"""BEV feature grids — the "intermediate features" of fusion methods.

Real intermediate-fusion systems (F-Cooper, coBEVT) exchange neural BEV
feature maps.  The classical stand-in is a grid of hand-crafted pillar
features per cell:

* channel 0 — maximum height inside the car band (0.2-2.5 m),
* channel 1 — log point count inside the car band,
* channel 2 — maximum height overall (tall-structure indicator, used to
  veto building cells in the head),
* channel 3 — log count of *all* returns (ground included): cells with
  many returns but no car-band evidence are *observed free space*, the
  signal attention-style fusion uses to discount misplaced evidence.

What Table I measures — how pose error at the fusion boundary corrupts
the combined representation — acts on these grids exactly as on neural
ones: the other vehicle's grid is *warped* by the believed relative pose
before fusing, so a wrong pose misplaces its evidence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud

__all__ = ["BevFeatureGrid", "build_feature_grid", "warp_grid",
           "CAR_BAND"]

# Height band occupied by vehicles (above ground clutter, below crowns).
CAR_BAND = (0.2, 2.5)


@dataclass(frozen=True)
class BevFeatureGrid:
    """A multi-channel BEV grid.

    Attributes:
        features: (C, H, H) float array.
        cell_size: cell edge in meters.
        half_range: grid covers [-half_range, half_range]^2.
    """

    features: np.ndarray
    cell_size: float
    half_range: float

    @property
    def size(self) -> int:
        return self.features.shape[1]

    def cell_centers(self) -> np.ndarray:
        """(H, H, 2) world coordinates of cell centers."""
        coords = (np.arange(self.size) + 0.5) * self.cell_size - self.half_range
        xs, ys = np.meshgrid(coords, coords)
        return np.stack([xs, ys], axis=-1)


def build_feature_grid(cloud: PointCloud, cell_size: float = 0.8,
                       half_range: float = 76.8) -> BevFeatureGrid:
    """Pillar-feature grid from one scan (sensor frame)."""
    if cell_size <= 0 or half_range <= 0:
        raise ValueError("cell_size and half_range must be positive")
    size = int(round(2.0 * half_range / cell_size))
    features = np.zeros((4, size, size))
    if len(cloud) == 0:
        return BevFeatureGrid(features, cell_size, half_range)

    xy = cloud.xy
    z = cloud.z
    in_range = ((xy[:, 0] >= -half_range) & (xy[:, 0] < half_range)
                & (xy[:, 1] >= -half_range) & (xy[:, 1] < half_range))
    xy, z = xy[in_range], z[in_range]
    cols = np.clip(((xy[:, 0] + half_range) / cell_size).astype(np.int64),
                   0, size - 1)
    rows = np.clip(((xy[:, 1] + half_range) / cell_size).astype(np.int64),
                   0, size - 1)
    flat = rows * size + cols

    in_band = (z >= CAR_BAND[0]) & (z <= CAR_BAND[1])
    np.maximum.at(features[0].reshape(-1), flat[in_band], z[in_band])
    counts = np.zeros(size * size)
    np.add.at(counts, flat[in_band], 1.0)
    features[1] = np.log1p(counts).reshape(size, size)
    np.maximum.at(features[2].reshape(-1), flat, z)
    all_counts = np.zeros(size * size)
    np.add.at(all_counts, flat, 1.0)
    features[3] = np.log1p(all_counts).reshape(size, size)
    return BevFeatureGrid(features, cell_size, half_range)


def warp_grid(grid: BevFeatureGrid, transform: SE2) -> BevFeatureGrid:
    """Resample a grid into a frame related by ``transform``.

    The output cell at world position p takes the input cell at
    ``transform^-1 p`` (nearest neighbor; out-of-range cells become 0) —
    i.e. the returned grid shows the input data as seen from the frame
    ``transform`` maps *into*.
    """
    inverse = transform.inverse()
    centers = grid.cell_centers().reshape(-1, 2)
    source = inverse.apply(centers)
    size = grid.size
    cols = np.floor((source[:, 0] + grid.half_range)
                    / grid.cell_size).astype(np.int64)
    rows = np.floor((source[:, 1] + grid.half_range)
                    / grid.cell_size).astype(np.int64)
    valid = (cols >= 0) & (cols < size) & (rows >= 0) & (rows < size)
    warped = np.zeros_like(grid.features)
    out_rows, out_cols = np.divmod(np.arange(size * size), size)
    warped[:, out_rows[valid], out_cols[valid]] = \
        grid.features[:, rows[valid], cols[valid]]
    return BevFeatureGrid(warped, grid.cell_size, grid.half_range)
