"""Classical BEV detection head shared by the fusion pipelines.

Thresholds car-band evidence on a BEV feature grid, vetoes tall-structure
cells (building walls also produce low returns), connected-component
clusters the remainder, and fits an oriented box to each cluster via PCA
with a car-size prior.  Deliberately simple: every fusion method feeds it
the same way, so Table I's differences come from the *fusion*, not the
head.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.boxes.box import Box3D
from repro.geometry.polygon import minimum_area_rectangle
from repro.detection.fusion.grid import BevFeatureGrid
from repro.detection.simulated import Detection

__all__ = ["HeadConfig", "ClusteringHead"]


@dataclass(frozen=True)
class HeadConfig:
    """Detection-head thresholds.

    Attributes:
        min_cell_height: car-band max-height needed to activate a cell.
        tall_veto_height: cells whose overall max height exceeds this are
            treated as static structure and suppressed.
        min_cells / max_cells: plausible cluster sizes (in cells).
        min_extent / max_extent: plausible box extents (meters).
        score_scale: cluster evidence at which confidence saturates.
        link_cells: dilation radius (cells) used to bridge gaps in sparse
            surface traces before connected-component labeling.
    """

    min_cell_height: float = 0.5
    tall_veto_height: float = 3.0
    min_cells: int = 4
    max_cells: int = 400
    min_extent: float = 1.0
    max_extent: float = 8.0
    score_scale: float = 60.0
    link_cells: int = 2


class ClusteringHead:
    """Box proposals from a fused BEV feature grid."""

    def __init__(self, config: HeadConfig | None = None) -> None:
        self.config = config or HeadConfig()

    def detect(self, grid: BevFeatureGrid) -> list[Detection]:
        """Run the head on a fused grid.

        Returns:
            Detections in the grid's frame, sorted by descending score.
        """
        cfg = self.config
        car_height = grid.features[0]
        counts = grid.features[1]
        tall = grid.features[2]

        active = (car_height >= cfg.min_cell_height) \
            & (tall <= cfg.tall_veto_height)
        if not active.any():
            return []

        detections: list[Detection] = []
        centers = grid.cell_centers()

        def fit_component(mask: np.ndarray, allow_split: bool) -> None:
            n_cells = int(mask.sum())
            if n_cells < cfg.min_cells:
                return
            pts = centers[mask]
            # Minimum-area oriented rectangle over the occupied cells —
            # exact for the L-shaped single-view traces and the fuller
            # two-view outlines alike.
            center, length, width, yaw = minimum_area_rectangle(pts)
            length = max(length, grid.cell_size)
            width = max(width, grid.cell_size)
            oversized = (n_cells > cfg.max_cells
                         or length > cfg.max_extent
                         or width > cfg.max_extent)
            if oversized:
                if not allow_split:
                    return
                # The gap-bridging dilation linked distinct objects (a
                # car chained into roadside clutter); retry with strict
                # connectivity inside this component only.
                sub_labels, sub_num = ndimage.label(
                    mask, structure=np.ones((3, 3), dtype=int))
                if sub_num <= 1:
                    return
                for sub in range(1, sub_num + 1):
                    fit_component(sub_labels == sub, allow_split=False)
                return
            if length < cfg.min_extent or width < cfg.min_extent:
                return
            height = float(car_height[mask].max())
            evidence = float(np.maximum(np.expm1(counts[mask]), 1.0).sum())
            # Confidence: observation evidence times a car-shape prior —
            # the classical stand-in for a learned classifier's "this
            # looks like a vehicle" score.  Clutter clusters (hedges,
            # fence stubs) get sized boxes too, but rank below true cars.
            shape_prior = float(np.exp(
                -((length - 4.7) / 2.0) ** 2
                - ((width - 2.0) / 1.0) ** 2))
            support = float(np.clip(evidence / cfg.score_scale, 0.0, 1.0))
            score = float(np.clip(0.9 * shape_prior * support + 0.05,
                                  0.05, 1.0))
            detections.append(Detection(
                Box3D(float(center[0]), float(center[1]), height / 2.0,
                      length, width, max(height, 0.6), float(yaw)),
                score, None))

        # A car's surface trace is a sparse outline at fine cell sizes;
        # close small gaps before connected components, but fit boxes on
        # the original active cells so geometry stays tight.
        closed = ndimage.binary_dilation(active, iterations=cfg.link_cells)
        labels, num = ndimage.label(closed,
                                    structure=np.ones((3, 3), dtype=int))
        labels[~active] = 0
        for component in range(1, num + 1):
            fit_component(labels == component, allow_split=True)

        detections.sort(key=lambda d: -d.score)
        return detections
