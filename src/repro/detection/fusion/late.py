"""Late fusion: exchange detection boxes, merge with NMS.

The lowest-bandwidth fusion.  Pose error displaces the other car's boxes
wholesale; overlapping duplicates are resolved by NMS, but displaced ones
survive as false positives and missed localizations — the paper's Table I
shows late fusion suffering about as much as early fusion.
"""

from __future__ import annotations

import numpy as np

from repro.boxes.nms import non_max_suppression
from repro.detection.simulated import Detection, DetectorProfile, SimulatedDetector
from repro.geometry.se2 import SE2
from repro.simulation.scenario import FramePair

__all__ = ["LateFusionDetector"]


class LateFusionDetector:
    """Box-level cooperative detection."""

    name = "Late Fusion"

    def __init__(self, profile: DetectorProfile | None = None,
                 nms_iou: float = 0.3) -> None:
        from repro.detection.simulated import COBEVT_PROFILE
        self.detector = SimulatedDetector(profile or COBEVT_PROFILE)
        self.nms_iou = nms_iou

    def detect(self, pair: FramePair, relative_pose: SE2,
               rng: np.random.Generator | int | None = None) -> list[Detection]:
        """Detect per vehicle, transform the other car's boxes by the
        believed pose, and NMS-merge."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        ego_dets = self.detector.detect(pair.ego_visible, rng)
        other_dets = self.detector.detect(pair.other_visible, rng)
        moved = [Detection(d.box.transform(relative_pose), d.score,
                           d.gt_vehicle_id) for d in other_dets]
        combined = ego_dets + moved
        if not combined:
            return []
        boxes = [d.box.to_bev() for d in combined]
        scores = np.array([d.score for d in combined])
        keep = non_max_suppression(boxes, scores, self.nms_iou)
        return [combined[i] for i in keep]
