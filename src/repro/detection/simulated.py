"""Statistical single-car object detector.

Stage 2 of BB-Align consumes detector output boxes; what matters to the
alignment (and to Fig. 13's detector-model comparison) is the *statistics*
of those boxes: how recall decays with sparser returns, how box centers /
extents / headings are perturbed, and how often spurious boxes appear.
:class:`SimulatedDetector` implements exactly that statistical model on
top of the simulator's ground-truth visibility (which already encodes
occlusion and distance through per-object return counts).

Two calibrated profiles mirror the paper's detector choices: coBEVT
(stronger) and F-Cooper (slightly weaker) — the paper's Fig. 13 finds the
difference has only a minor effect on pose recovery, a property these
profiles preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.boxes.box import Box3D
from repro.geometry.angles import wrap_to_pi
from repro.simulation.scenario import VisibleObject

__all__ = ["Detection", "DetectorProfile", "SimulatedDetector",
           "COBEVT_PROFILE", "FCOOPER_PROFILE"]


@dataclass(frozen=True)
class Detection:
    """One detector output.

    Attributes:
        box: detected 3-D box in the sensor frame.
        score: confidence in [0, 1].
        gt_vehicle_id: ground-truth identity for analysis (None for false
            positives).  Real pipelines don't have this; nothing in the
            fusion/alignment path reads it.
    """

    box: Box3D
    score: float
    gt_vehicle_id: int | None = None


@dataclass(frozen=True)
class DetectorProfile:
    """Statistical behaviour of a 3-D detector.

    Attributes:
        name: display name.
        recall_ceiling: recall on densely observed objects.
        recall_points_scale: return count at which recall reaches ~63% of
            the ceiling (exponential saturation).
        center_noise: sigma of box-center error, meters (isotropic BEV).
        yaw_noise_deg: sigma of heading error, degrees.
        size_noise: relative sigma of length/width errors.
        flip_prob: probability the heading is off by 180 degrees (front/
            back confusion — harmless to corner pairing, which is
            cyclic-shift invariant).
        false_positives_per_frame: expected count of spurious boxes.
        score_noise: sigma of the confidence jitter.
    """

    name: str
    recall_ceiling: float = 0.95
    recall_points_scale: float = 25.0
    center_noise: float = 0.15
    yaw_noise_deg: float = 2.0
    size_noise: float = 0.05
    flip_prob: float = 0.05
    false_positives_per_frame: float = 0.3
    score_noise: float = 0.08

    def __post_init__(self) -> None:
        if not (0 < self.recall_ceiling <= 1):
            raise ValueError("recall_ceiling must be in (0, 1]")
        if self.recall_points_scale <= 0:
            raise ValueError("recall_points_scale must be positive")

    def recall_at(self, num_points: int) -> float:
        """Detection probability given the object's return count."""
        return self.recall_ceiling * (1.0 - np.exp(-num_points
                                                   / self.recall_points_scale))


COBEVT_PROFILE = DetectorProfile(
    name="coBEVT",
    recall_ceiling=0.97,
    recall_points_scale=18.0,
    center_noise=0.06,
    yaw_noise_deg=0.8,
    size_noise=0.04,
    flip_prob=0.03,
    false_positives_per_frame=0.25,
)

FCOOPER_PROFILE = DetectorProfile(
    name="F-Cooper",
    recall_ceiling=0.93,
    recall_points_scale=28.0,
    center_noise=0.10,
    yaw_noise_deg=1.3,
    size_noise=0.06,
    flip_prob=0.06,
    false_positives_per_frame=0.45,
)


class SimulatedDetector:
    """Draws detector outputs from a :class:`DetectorProfile`."""

    def __init__(self, profile: DetectorProfile = COBEVT_PROFILE,
                 max_range: float = 100.0) -> None:
        if max_range <= 0:
            raise ValueError("max_range must be positive")
        self.profile = profile
        self.max_range = max_range

    def detect(self, visible: tuple[VisibleObject, ...] | list[VisibleObject],
               rng: np.random.Generator | int | None = None) -> list[Detection]:
        """Produce detections for one frame.

        Args:
            visible: ground-truth objects with return counts, in the
                sensor frame (from :class:`FramePair`).
            rng: generator or seed.

        Returns:
            Detections sorted by decreasing confidence.
        """
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        profile = self.profile
        detections: list[Detection] = []

        for obj in visible:
            if rng.random() > profile.recall_at(obj.num_points):
                continue
            box = obj.box
            center_err = rng.normal(0.0, profile.center_noise, size=2)
            yaw_err = rng.normal(0.0, np.deg2rad(profile.yaw_noise_deg))
            if rng.random() < profile.flip_prob:
                yaw_err += np.pi
            length = box.length * (1.0 + rng.normal(0.0, profile.size_noise))
            width = box.width * (1.0 + rng.normal(0.0, profile.size_noise))
            noisy = Box3D(box.center_x + center_err[0],
                          box.center_y + center_err[1],
                          box.center_z,
                          max(length, 0.5), max(width, 0.5), box.height,
                          float(wrap_to_pi(box.yaw + yaw_err)))
            # Confidence correlates with observation density.
            base = profile.recall_at(obj.num_points)
            score = float(np.clip(base + rng.normal(0.0, profile.score_noise),
                                  0.05, 1.0))
            detections.append(Detection(noisy, score, obj.vehicle_id))

        for _ in range(rng.poisson(profile.false_positives_per_frame)):
            radius = rng.uniform(5.0, self.max_range * 0.8)
            angle = rng.uniform(-np.pi, np.pi)
            height = rng.uniform(1.4, 1.9)
            ghost = Box3D(radius * np.cos(angle), radius * np.sin(angle),
                          height / 2.0,
                          rng.uniform(3.8, 5.4), rng.uniform(1.7, 2.2),
                          height, rng.uniform(-np.pi, np.pi))
            score = float(np.clip(rng.uniform(0.05, 0.45), 0.0, 1.0))
            detections.append(Detection(ghost, score, None))

        detections.sort(key=lambda d: -d.score)
        return detections
