"""Reproductions of every figure and table in the paper's evaluation.

Each module exposes ``run_*`` functions returning structured results and
``format_*`` helpers printing the same rows/series the paper reports.
All experiments accept ``num_pairs`` so the same code scales from quick
benchmark runs to paper-scale sweeps.

| Paper artifact | Module |
|----------------|--------|
| Fig. 7 (CDF vs VIPS)            | :mod:`repro.experiments.fig7_comparison` |
| Fig. 8 (common cars, both)      | :mod:`repro.experiments.fig8_common_cars` |
| Fig. 9 (inlier confidence)      | :mod:`repro.experiments.fig9_inliers` |
| Success rate (Sec. V-A)         | :mod:`repro.experiments.success_rate` |
| Fig. 10 (distance)              | :mod:`repro.experiments.fig10_distance` |
| Fig. 11 (stage 1 vs distance)   | :mod:`repro.experiments.fig11_bv_distance` |
| Fig. 12 (stage 2 vs commons)    | :mod:`repro.experiments.fig12_box_common_cars` |
| Fig. 13 (detector model)        | :mod:`repro.experiments.fig13_detector_model` |
| Table I (detection AP)          | :mod:`repro.experiments.table1_detection` |
| Fig. 14 (ablation)              | :mod:`repro.experiments.fig14_ablation` |
| Bandwidth claim (Sec. III)      | :mod:`repro.experiments.bandwidth` |
"""

from repro.experiments.common import (
    PairOutcome,
    evaluate_pair,
    run_pose_recovery_sweep,
)
from repro.experiments.registry import (
    ExperimentSpec,
    all_specs,
    experiment_names,
    get_experiment,
    get_spec,
    register,
)

__all__ = ["PairOutcome", "evaluate_pair", "run_pose_recovery_sweep",
           "ExperimentSpec", "all_specs", "experiment_names",
           "get_experiment", "get_spec", "register"]
