"""Ablation studies of BB-Align's design choices (beyond the paper).

The paper ablates only the second stage (Fig. 14).  DESIGN.md calls out
several further design choices this implementation makes or inherits;
each variant here switches exactly one of them off (or to its documented
alternative) and reruns the pose-recovery sweep:

* ``height map -> density map`` — the paper's Sec. IV-A argument for
  height-map BV images.
* ``rotation invariance off`` — the BVFT dominant-orientation
  normalization (paper: "MIM ... does not inherently offer rotation
  invariance").
* ``pi disambiguation off`` — the 180-degree second hypothesis required
  by MIM's mod-pi orientations.
* ``height clamp off`` — the viewpoint-independence clamp.
* ``fine cells (0.4 m)`` — cell-size sensitivity.
* ``Harris keypoints`` / ``PC keypoints`` — the keypoint-detector choice
  (the paper picked FAST; Harris is the classic intensity alternative,
  PC minimum-moment corners are RIFT's own detector).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.config import (
    BBAlignConfig,
    BVImageConfig,
    BVMatchRansacConfig,
)
from repro.experiments.common import (
    PairOutcome,
    run_pose_recovery_sweep,
)
from repro.experiments.registry import ExperimentSpec, register
from repro.features.descriptors import BvftConfig
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim

__all__ = ["AblationRow", "AblationResult", "run_ablations",
           "format_ablations", "ablation_variants"]


@dataclass(frozen=True)
class AblationRow:
    """One variant's aggregate results.

    Attributes:
        name: variant label.
        success_rate: fraction of pairs meeting the success criterion.
        median_translation: median translation error of successes (m).
        median_rotation_deg: median rotation error of successes (deg).
        fraction_under_1m: successes under 1 m, over *all* pairs.
    """

    name: str
    success_rate: float
    median_translation: float
    median_rotation_deg: float
    fraction_under_1m: float


@dataclass(frozen=True)
class AblationResult:
    rows: list[AblationRow]
    num_pairs: int


def ablation_variants() -> dict[str, BBAlignConfig]:
    """The variant configurations, first entry = full system."""
    base = BBAlignConfig()
    return {
        "full system": base,
        "density-map BV": replace(
            base, bv_image=replace(base.bv_image, projection="density")),
        "no rotation invariance": replace(
            base, descriptor=BvftConfig(
                patch_size=base.descriptor.patch_size,
                grid_size=base.descriptor.grid_size,
                rotation_invariant=False)),
        "no pi disambiguation": replace(
            base, bv_ransac=replace(base.bv_ransac,
                                    disambiguate_pi=False)),
        "no height clamp": replace(
            base, bv_image=replace(base.bv_image, max_height=None)),
        "fine cells (0.4 m)": replace(
            base, bv_image=replace(base.bv_image, cell_size=0.4)),
        "Harris keypoints": replace(base, keypoint_detector="harris"),
        "PC keypoints": replace(base,
                                keypoint_detector="phase_congruency"),
    }


def _summarize(name: str, outcomes: list[PairOutcome]) -> AblationRow:
    successes = [o for o in outcomes if o.success]
    n = max(len(outcomes), 1)
    translations = [o.errors.translation for o in successes]
    rotations = [o.errors.rotation_deg for o in successes]
    return AblationRow(
        name=name,
        success_rate=len(successes) / n,
        median_translation=(float(np.median(translations))
                            if translations else float("nan")),
        median_rotation_deg=(float(np.median(rotations))
                             if rotations else float("nan")),
        fraction_under_1m=sum(t < 1.0 for t in translations) / n,
    )


def run_ablations(num_pairs: int = 24, seed: int = 2024, *,
                  workers: int = 1) -> AblationResult:
    """Run every variant over the same dataset.

    Every variant revisits the same frame pairs, so the records are
    memoized and variants that share an extraction configuration reuse
    cached stage-1 features.
    """
    dataset = V2VDatasetSim(DatasetConfig(num_pairs=num_pairs, seed=seed),
                            memoize_records=num_pairs)
    rows = []
    for name, config in ablation_variants().items():
        outcomes = run_pose_recovery_sweep(dataset, config=config,
                                           include_vips=False,
                                           workers=workers)
        rows.append(_summarize(name, outcomes))
    return AblationResult(rows=rows, num_pairs=num_pairs)


def format_ablations(result: AblationResult) -> str:
    lines = [f"Design ablations ({result.num_pairs} pairs)",
             f"{'variant':>24} | {'success':>7} | {'med terr':>8} | "
             f"{'med rerr':>8} | {'<1m (all)':>9}"]
    lines.append("-" * 70)
    for row in result.rows:
        lines.append(
            f"{row.name:>24} | {row.success_rate * 100:6.1f}% | "
            f"{row.median_translation:6.2f} m | "
            f"{row.median_rotation_deg:6.2f}d | "
            f"{row.fraction_under_1m * 100:7.1f}%")
    return "\n".join(lines)


register(ExperimentSpec(
    name="ablations", runner=run_ablations, formatter=format_ablations,
    description="design-choice ablations (extension)",
    paper_artifact="extension"))
