"""Bandwidth accounting and the accuracy-vs-bitrate Pareto frontier.

BB-Align ships one BV image plus a handful of boxes instead of the raw
point cloud; the paper argues this is "significantly lower" than raw
lidar (Sec. III).  Two experiments make the claim measurable:

* ``bandwidth`` — the original per-frame size comparison: raw scan vs
  dense 8-bit estimate vs actual encoded wire bytes.  With ``--tier`` /
  ``--adaptive`` it instead runs the requested policies through the
  impairment grid below.
* ``comms-grid`` — the tier x impairment grid: every fixed
  :class:`~repro.comms.tiers.Tier` plus the adaptive policy, against a
  clean link, 30% drops, and two per-byte corruption rates.  Each cell
  reports success rate and bytes actually sent, yielding the
  success-rate-vs-bytes Pareto frontier (``BENCH_comms.json``).

The grid is seeded end to end: channel draws spawn from
``[seed, cell_index, pair_index, 7]`` and recovery draws from
``[seed, pair_index, 2]`` — the same recovery stream the pairwise sweep
uses, which is what makes the zero-impairment full-fidelity cell
byte-identical to a clean direct run (the ``control_identical`` check).
"""

from __future__ import annotations

import contextlib
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from repro.comms.accounting import CommLedger
from repro.comms.channel import LossyChannel
from repro.comms.message import V2VMessage
from repro.comms.policy import TIER_LADDER, AdaptiveTierPolicy
from repro.comms.tiers import (
    Tier,
    build_message,
    dense_payload_bytes,
    encode_message,
)
from repro.core.bv_matching import BVMatcher
from repro.core.config import BBAlignConfig
from repro.core.degradation import FailureReason
from repro.core.pipeline import BBAlign
from repro.detection.simulated import SimulatedDetector
from repro.experiments.common import default_dataset, detect_for_pair
from repro.experiments.registry import ExperimentSpec, register
from repro.obs.metrics import use_registry
from repro.runtime.timings import active_timings

__all__ = ["BandwidthResult", "run_bandwidth", "format_bandwidth",
           "compute_bandwidth", "CommsCell", "CommsGridResult",
           "run_comms_grid", "format_comms_grid", "IMPAIRMENTS"]

# Spawn-key streams (shared convention with the robustness sweep).
_RECOVERY_STREAM = 2
_CHANNEL_STREAM = 7

#: The impairment axis of the grid: (label, drop_rate, corruption_rate).
#: Corruption is per *byte*, so the two corruption cells separate the
#: tiers by size alone: at 3e-4/byte a ~1 MB full scan survives with
#: probability ~e^-300 while a ~1.5 KB keypoint message survives ~64%
#: of the time.
IMPAIRMENTS: tuple[tuple[str, float, float], ...] = (
    ("clean", 0.0, 0.0),
    ("drop-0.3", 0.3, 0.0),
    ("corrupt-3e-5", 0.0, 3e-5),
    ("corrupt-3e-4", 0.0, 3e-4),
)

#: The policy axis: every fixed tier, heaviest first, then adaptive.
POLICIES: tuple[str, ...] = tuple(t.value for t in TIER_LADDER) + (
    "adaptive",)


# ----------------------------------------------------------------------
# Legacy size comparison (unchanged semantics).
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BandwidthResult:
    """Per-frame message-size statistics (bytes).

    Attributes:
        raw_cloud_mean: mean raw-scan size (float32 xyz).
        dense_message_mean: mean dense 8-bit BV image + boxes estimate.
        encoded_message_mean: mean actual encoded wire size.
        reduction_factor_dense: raw / dense.
        reduction_factor_encoded: raw / encoded.
        num_pairs: frames measured.
    """

    raw_cloud_mean: float
    dense_message_mean: float
    encoded_message_mean: float
    reduction_factor_dense: float
    reduction_factor_encoded: float
    num_pairs: int


def compute_bandwidth(outcomes=None, *, num_pairs: int = 20,
                      seed: int = 2024) -> BandwidthResult:
    """Measure message sizes over the standard dataset.

    ``outcomes`` is accepted (and its length reused) for API symmetry
    with the other experiment modules, but sizes are measured directly
    from freshly generated frames so the encoded wire format is
    exercised.
    """
    if outcomes is not None:
        num_pairs = max(len(outcomes) // 4, 2)
    dataset = default_dataset(num_pairs, seed)
    matcher = BVMatcher(BBAlignConfig())
    detector = SimulatedDetector()

    raw, dense, encoded = [], [], []
    for record in dataset:
        pair = record.pair
        _, other_dets = detect_for_pair(pair, detector, seed, record.index)
        bv = matcher.make_bv_image(pair.other_cloud)
        boxes = [d.box.to_bev() for d in other_dets]
        raw.append(BBAlign.raw_cloud_bytes(pair.other_cloud))
        dense.append(bv.message_size_bytes() + 20 * len(boxes))
        encoded.append(V2VMessage(bv, boxes).size_bytes)

    raw_mean = float(np.mean(raw))
    dense_mean = float(np.mean(dense))
    encoded_mean = float(np.mean(encoded))
    return BandwidthResult(
        raw_cloud_mean=raw_mean,
        dense_message_mean=dense_mean,
        encoded_message_mean=encoded_mean,
        reduction_factor_dense=raw_mean / dense_mean,
        reduction_factor_encoded=raw_mean / encoded_mean,
        num_pairs=num_pairs,
    )


# ----------------------------------------------------------------------
# The tier x impairment grid.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommsCell:
    """One (policy, impairment) cell of the grid.

    ``total_sent_bytes`` counts what the sender put on the wire for
    every pair — including messages the channel then destroyed; that is
    the honest bitrate cost of choosing a heavy tier on a bad link.
    """

    policy: str
    impairment: str
    drop_rate: float
    corruption_rate: float
    num_pairs: int
    successes: int
    delivered: int
    decode_errors: int
    total_sent_bytes: int
    tier_messages: dict[str, int] = field(default_factory=dict)

    @property
    def success_rate(self) -> float:
        return self.successes / self.num_pairs if self.num_pairs else 0.0

    @property
    def mean_sent_bytes(self) -> float:
        return (self.total_sent_bytes / self.num_pairs
                if self.num_pairs else 0.0)


@dataclass(frozen=True)
class CommsGridResult:
    """The full grid plus the acceptance-facing summary facts.

    Attributes:
        cells: one :class:`CommsCell` per (policy, impairment).
        tier_mean_bytes: clean-cell mean encoded bytes per fixed tier,
            in ladder order — the "strictly decreasing" check reads
            this.
        control_identical: the (full-scan, clean) cell reproduced a
            direct clean feature-to-feature sweep exactly (success flags
            and SE2 parameters, all pairs).
        dominated: ``"tier@impairment"`` labels of fixed-tier cells the
            adaptive policy dominates (success rate >= and bytes <=,
            at least one strict).
    """

    num_pairs: int
    seed: int
    cells: tuple[CommsCell, ...]
    tier_mean_bytes: dict[str, float]
    control_identical: bool
    dominated: tuple[str, ...]

    def cell(self, policy: str, impairment: str) -> CommsCell:
        for candidate in self.cells:
            if (candidate.policy == policy
                    and candidate.impairment == impairment):
                return candidate
        raise KeyError(f"no cell ({policy}, {impairment})")

    def pareto(self, impairment: str) -> tuple[CommsCell, ...]:
        """Non-dominated (bytes, success) cells for one impairment."""
        cells = [c for c in self.cells if c.impairment == impairment]
        frontier = []
        for cell in cells:
            dominated = any(
                other.success_rate >= cell.success_rate
                and other.mean_sent_bytes <= cell.mean_sent_bytes
                and (other.success_rate > cell.success_rate
                     or other.mean_sent_bytes < cell.mean_sent_bytes)
                for other in cells)
            if not dominated:
                frontier.append(cell)
        return tuple(sorted(frontier, key=lambda c: c.mean_sent_bytes))


def _prepare_pairs(num_pairs: int, seed: int):
    """Extract, detect and pre-encode every tier for every pair."""
    dataset = default_dataset(num_pairs, seed)
    extractor = BBAlign()
    detector = SimulatedDetector()
    config = extractor.config.comms
    prepared = []
    for record in dataset:
        pair = record.pair
        ego_dets, other_dets = detect_for_pair(pair, detector, seed,
                                               record.index)
        ego_features = extractor.extract_features(pair.ego_cloud)
        other_features = extractor.extract_features(pair.other_cloud)
        ego_boxes = [d.box for d in ego_dets]
        other_boxes = [d.box for d in other_dets]
        payloads: dict[str, bytes] = {}
        payload_cost: dict[str, int] = {}
        for tier in Tier:
            message = build_message(
                tier, other_boxes,
                cloud=pair.other_cloud if tier is Tier.FULL_SCAN else None,
                features=other_features if tier in (Tier.BV_IMAGE,
                                                    Tier.KEYPOINTS)
                else None,
                config=config)
            payloads[tier.value] = encode_message(message, config,
                                                  record=False)
            payload_cost[tier.value] = dense_payload_bytes(message)
        prepared.append((record.index, ego_features, other_features,
                         ego_boxes, other_boxes, payloads, payload_cost))
    return prepared


def run_comms_grid(num_pairs: int = 10, seed: int = 2024, *,
                   workers: int = 1,
                   policies: tuple[str, ...] | None = None,
                   ) -> CommsGridResult:
    """Run the tier x impairment grid (see module docstring).

    Cells run serially in a fixed order with spawn-keyed streams, so
    the grid is deterministic for a given ``(num_pairs, seed)`` no
    matter which subset of ``policies`` runs.
    """
    del workers  # deterministic serial grid; cells share prepared pairs
    policies = tuple(policies) if policies is not None else POLICIES
    unknown = set(policies) - set(POLICIES)
    if unknown:
        raise ValueError(f"unknown policies: {sorted(unknown)}")

    # Same ambient-registry treatment as the serial sweep: with
    # --timings/--trace active, the receive-side byte accounting the
    # pipeline records lands in the CLI's report.
    timings = active_timings()
    registry_cm = (use_registry(timings.registry)
                   if timings is not None else contextlib.nullcontext())
    with registry_cm:
        return _run_comms_grid(num_pairs, seed, policies)


def _run_comms_grid(num_pairs: int, seed: int,
                    policies: tuple[str, ...]) -> CommsGridResult:
    prepared = _prepare_pairs(num_pairs, seed)

    # Control: a clean feature-to-feature run with the same recovery
    # streams; the (full-scan, clean) cell must reproduce it exactly.
    control_aligner = BBAlign()
    control = [
        control_aligner.recover(
            ego_features, other_features, ego_boxes, other_boxes,
            rng=np.random.default_rng([seed, index, _RECOVERY_STREAM]))
        for index, ego_features, other_features, ego_boxes, other_boxes,
        _, _ in prepared
    ]

    cells = []
    control_identical = True
    full_scan_clean_seen = False
    # cell_index enumerates the FULL policy grid so channel streams stay
    # stable when a subset of policies is requested.
    for cell_index, (policy, (impairment, drop, corruption)) in enumerate(
            (p, imp) for p in POLICIES for imp in IMPAIRMENTS):
        if policy not in policies:
            continue
        channel = LossyChannel(drop_rate=drop, corruption_rate=corruption)
        aligner = BBAlign()  # fresh temporal memory per cell
        tier_policy = AdaptiveTierPolicy() if policy == "adaptive" else None
        ledger = CommLedger()
        successes = delivered = 0
        tier_messages: Counter[str] = Counter()
        for pair_slot, (index, ego_features, _other_features, ego_boxes,
                        _other_boxes, payloads, payload_cost) \
                in enumerate(prepared):
            tier_name = (tier_policy.tier.value if tier_policy is not None
                         else policy)
            payload = payloads[tier_name]
            ledger.sent(tier_name, len(payload), payload_cost[tier_name])
            tier_messages[tier_name] += 1
            delivery = channel.transmit(
                payload, rng=np.random.default_rng(
                    [seed, cell_index, index, _CHANNEL_STREAM]))
            result = aligner.recover(
                ego_features, delivery, ego_boxes,
                rng=np.random.default_rng([seed, index, _RECOVERY_STREAM]))
            decoded = (result.failure_reason
                       is not FailureReason.MESSAGE_UNDECODABLE)
            if delivery.delivered:
                delivered += 1
                ledger.received(len(delivery.payload), ok=decoded)
            if tier_policy is not None:
                tier_policy.observe(delivery, decoded=decoded)
            if result.success:
                successes += 1
            if policy == Tier.FULL_SCAN.value and impairment == "clean":
                full_scan_clean_seen = True
                ctrl = control[pair_slot]
                same = (ctrl.success == result.success
                        and ctrl.transform.theta == result.transform.theta
                        and ctrl.transform.tx == result.transform.tx
                        and ctrl.transform.ty == result.transform.ty)
                control_identical = control_identical and same
        cells.append(CommsCell(
            policy=policy, impairment=impairment, drop_rate=drop,
            corruption_rate=corruption, num_pairs=len(prepared),
            successes=successes, delivered=delivered,
            decode_errors=ledger.decode_errors,
            total_sent_bytes=ledger.encoded_bytes,
            tier_messages=dict(sorted(tier_messages.items()))))
    if not full_scan_clean_seen:
        # A policy subset without the control cell can't attest identity.
        control_identical = False

    tier_mean_bytes = {}
    for tier in TIER_LADDER:
        clean = [c for c in cells if c.policy == tier.value
                 and c.impairment == "clean"]
        if clean:
            tier_mean_bytes[tier.value] = clean[0].mean_sent_bytes

    dominated = []
    adaptive_cells = {c.impairment: c for c in cells
                      if c.policy == "adaptive"}
    for cell in cells:
        adaptive = adaptive_cells.get(cell.impairment)
        if adaptive is None or cell.policy == "adaptive":
            continue
        if (adaptive.success_rate >= cell.success_rate
                and adaptive.mean_sent_bytes <= cell.mean_sent_bytes
                and (adaptive.success_rate > cell.success_rate
                     or adaptive.mean_sent_bytes < cell.mean_sent_bytes)):
            dominated.append(f"{cell.policy}@{cell.impairment}")

    return CommsGridResult(
        num_pairs=num_pairs, seed=seed, cells=tuple(cells),
        tier_mean_bytes=tier_mean_bytes,
        control_identical=control_identical,
        dominated=tuple(dominated))


def format_comms_grid(result: CommsGridResult) -> str:
    lines = [f"Comms grid over {result.num_pairs} pairs "
             f"(seed {result.seed}):"]
    impairments = []
    for cell in result.cells:
        if cell.impairment not in impairments:
            impairments.append(cell.impairment)
    for impairment in impairments:
        lines.append(f"  [{impairment}]")
        frontier = {id(c) for c in result.pareto(impairment)}
        for cell in result.cells:
            if cell.impairment != impairment:
                continue
            marker = "*" if id(cell) in frontier else " "
            lines.append(
                f"   {marker} {cell.policy:<10}  "
                f"{cell.mean_sent_bytes / 1024:9.1f} KiB/msg  "
                f"success {cell.successes:>2}/{cell.num_pairs}")
    lines.append("  (* = on the success-vs-bytes Pareto frontier)")
    if result.tier_mean_bytes:
        lines.append("  clean-link bytes/message by tier: " + " > ".join(
            f"{tier}={int(round(size))}"
            for tier, size in result.tier_mean_bytes.items()))
    lines.append(f"  control identical to clean sweep: "
                 f"{result.control_identical}")
    if result.dominated:
        lines.append("  adaptive dominates: "
                     + ", ".join(result.dominated))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Runners and registration.
# ----------------------------------------------------------------------
def run_bandwidth(num_pairs: int = 12, seed: int = 2024, *,
                  workers: int = 1, tier: str | None = None,
                  adaptive: bool = False):
    """The ``bandwidth`` experiment.

    Plain: the legacy size comparison.  With ``tier`` and/or
    ``adaptive``: those policies through the impairment grid.
    """
    if tier is None and not adaptive:
        del workers  # size measurement is IO-free and fast; not sharded
        return compute_bandwidth(num_pairs=num_pairs, seed=seed)
    policies = tuple(([tier] if tier is not None else [])
                     + (["adaptive"] if adaptive else []))
    return run_comms_grid(num_pairs=num_pairs, seed=seed, workers=workers,
                          policies=policies)


def format_bandwidth(result) -> str:
    if isinstance(result, CommsGridResult):
        return format_comms_grid(result)
    return "\n".join([
        f"Bandwidth (Sec. III) over {result.num_pairs} frames:",
        f"  raw point cloud (early fusion):        "
        f"{result.raw_cloud_mean / 1024:7.1f} KiB",
        f"  BV image + boxes, dense 8-bit:         "
        f"{result.dense_message_mean / 1024:7.1f} KiB  "
        f"({result.reduction_factor_dense:.1f}x smaller)",
        f"  BV image + boxes, encoded wire format: "
        f"{result.encoded_message_mean / 1024:7.1f} KiB  "
        f"({result.reduction_factor_encoded:.1f}x smaller)",
    ])


def _bandwidth_cli(parser) -> None:
    parser.add_argument("--tier", choices=[t.value for t in Tier],
                        default=None,
                        help="run this fixed tier through the "
                             "impairment grid instead of the size "
                             "comparison")
    parser.add_argument("--adaptive", action="store_true", default=False,
                        help="run the adaptive tier policy through the "
                             "impairment grid")


register(ExperimentSpec(
    name="bandwidth", runner=run_bandwidth, formatter=format_bandwidth,
    description="message size vs raw point cloud (tiers via --tier)",
    paper_artifact="Sec. III", parallelizable=False,
    cli_options=_bandwidth_cli, cli_option_dests=("tier", "adaptive")))

register(ExperimentSpec(
    name="comms-grid", runner=run_comms_grid,
    formatter=format_comms_grid,
    description="tier x impairment grid: success-vs-bytes Pareto",
    paper_artifact="extension", parallelizable=False))
