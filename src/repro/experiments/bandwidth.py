"""Bandwidth accounting (the paper's Sec. III motivation).

BB-Align ships one BV image plus a handful of boxes instead of the raw
point cloud; the paper argues this is "significantly lower" than raw
lidar.  This experiment measures three sizes per frame on the simulated
dataset:

* raw point cloud (what early fusion would transmit),
* the dense-estimate message (8 bits/pixel, the pipeline's accounting),
* the *actual wire bytes* of :class:`repro.comms.V2VMessage` (quantized
  + zero-RLE), which exploits BV sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comms.message import V2VMessage
from repro.core.bv_matching import BVMatcher
from repro.core.config import BBAlignConfig
from repro.core.pipeline import BBAlign
from repro.detection.simulated import SimulatedDetector
from repro.experiments.common import default_dataset, detect_for_pair
from repro.experiments.registry import ExperimentSpec, register

__all__ = ["BandwidthResult", "run_bandwidth", "format_bandwidth",
           "compute_bandwidth"]


@dataclass(frozen=True)
class BandwidthResult:
    """Per-frame message-size statistics (bytes).

    Attributes:
        raw_cloud_mean: mean raw-scan size (float32 xyz).
        dense_message_mean: mean dense 8-bit BV image + boxes estimate.
        encoded_message_mean: mean actual encoded wire size.
        reduction_factor_dense: raw / dense.
        reduction_factor_encoded: raw / encoded.
        num_pairs: frames measured.
    """

    raw_cloud_mean: float
    dense_message_mean: float
    encoded_message_mean: float
    reduction_factor_dense: float
    reduction_factor_encoded: float
    num_pairs: int


def compute_bandwidth(outcomes=None, *, num_pairs: int = 20,
                      seed: int = 2024) -> BandwidthResult:
    """Measure message sizes over the standard dataset.

    ``outcomes`` is accepted (and its length reused) for API symmetry
    with the other experiment modules, but sizes are measured directly
    from freshly generated frames so the encoded wire format is
    exercised.
    """
    if outcomes is not None:
        num_pairs = max(len(outcomes) // 4, 2)
    dataset = default_dataset(num_pairs, seed)
    matcher = BVMatcher(BBAlignConfig())
    detector = SimulatedDetector()

    raw, dense, encoded = [], [], []
    for record in dataset:
        pair = record.pair
        _, other_dets = detect_for_pair(pair, detector, seed, record.index)
        bv = matcher.make_bv_image(pair.other_cloud)
        boxes = [d.box.to_bev() for d in other_dets]
        raw.append(BBAlign.raw_cloud_bytes(pair.other_cloud))
        dense.append(bv.message_size_bytes() + 20 * len(boxes))
        encoded.append(V2VMessage(bv, boxes).size_bytes)

    raw_mean = float(np.mean(raw))
    dense_mean = float(np.mean(dense))
    encoded_mean = float(np.mean(encoded))
    return BandwidthResult(
        raw_cloud_mean=raw_mean,
        dense_message_mean=dense_mean,
        encoded_message_mean=encoded_mean,
        reduction_factor_dense=raw_mean / dense_mean,
        reduction_factor_encoded=raw_mean / encoded_mean,
        num_pairs=num_pairs,
    )


def run_bandwidth(num_pairs: int = 12, seed: int = 2024, *,
                  workers: int = 1) -> BandwidthResult:
    del workers  # size measurement is IO-free and fast; not sharded
    return compute_bandwidth(num_pairs=num_pairs, seed=seed)


def format_bandwidth(result: BandwidthResult) -> str:
    return "\n".join([
        f"Bandwidth (Sec. III) over {result.num_pairs} frames:",
        f"  raw point cloud (early fusion):        "
        f"{result.raw_cloud_mean / 1024:7.1f} KiB",
        f"  BV image + boxes, dense 8-bit:         "
        f"{result.dense_message_mean / 1024:7.1f} KiB  "
        f"({result.reduction_factor_dense:.1f}x smaller)",
        f"  BV image + boxes, encoded wire format: "
        f"{result.encoded_message_mean / 1024:7.1f} KiB  "
        f"({result.reduction_factor_encoded:.1f}x smaller)",
    ])


register(ExperimentSpec(
    name="bandwidth", runner=run_bandwidth, formatter=format_bandwidth,
    description="message size vs raw point cloud",
    paper_artifact="Sec. III", parallelizable=False))
