"""Shared experiment machinery: the per-pair pose-recovery sweep.

Most of the paper's figures are views over the same underlying sweep:
run BB-Align (and the VIPS baseline) on every dataset pair, record
errors, inlier counts and metadata, then bucket/summarize.  This module
runs that sweep once and hands the figure modules plain records.

The per-pair unit is :func:`evaluate_pair` — a pure function of
(record, configuration, seed) shared verbatim by the in-process serial
path and the :mod:`repro.runtime.engine` process pool, which is why a
``workers=4`` sweep returns outcomes identical to ``workers=1``.  All
randomness derives from SeedSequence-style spawn keys
``[seed, index, stream]``; base seeds never combine arithmetically with
indices, so adjacent seeds cannot alias onto each other's streams.
"""

from __future__ import annotations

import contextlib
import functools
import time
import warnings
from dataclasses import dataclass

import numpy as np

from repro.baselines.vips import VipsConfig, vips_graph_matching
from repro.core.config import BBAlignConfig
from repro.core.degradation import FailureReason
from repro.core.pipeline import BBAlign
from repro.detection.simulated import (
    COBEVT_PROFILE,
    Detection,
    DetectorProfile,
    SimulatedDetector,
)
from repro.metrics.pose_error import PoseErrors, pose_errors
from repro.obs.metrics import use_registry
from repro.obs.spans import span
from repro.runtime.cache import (
    FeatureCache,
    dataset_fingerprint,
    extraction_fingerprint,
    feature_key,
    get_default_cache,
)
from repro.runtime.timings import SweepTimings, active_timings, stage
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim
from repro.simulation.scenario import FramePair

__all__ = ["PairOutcome", "PairErrorOutcome", "run_pose_recovery_sweep",
           "default_dataset", "detect_for_pair", "evaluate_pair"]


@dataclass(frozen=True)
class PairOutcome:
    """Everything the figure modules need about one evaluated pair.

    Attributes:
        index: dataset index.
        distance: inter-vehicle distance (meters).
        num_common: commonly observed vehicles (ground-truth count).
        scenario_kind: world flavor string.
        success: BB-Align's success criterion verdict.
        errors: full-pipeline pose errors.
        stage1_errors: errors of the stage-1 estimate alone (the
            ablation / Fig. 11 view).
        inliers_bv / inliers_box: the two confidence counts.
        num_matches: stage-1 descriptor matches.
        num_matched_boxes: stage-2 overlapped box pairs.
        message_bytes: BB-Align transmission cost for this pair.
        raw_cloud_bytes: cost of shipping the raw other-car scan instead.
        vips_success: the graph-matching baseline found a pose.
        vips_errors: baseline errors (None when it failed).
        tx / ty / theta: the recovered planar pose itself (what the
            pose service ships back over the wire; the figure modules
            only consume the derived errors above).
        degradation: which fallback-ladder rung produced the pose
            (:class:`~repro.core.degradation.DegradationLevel` value).
        failure_reason: taxonomy tag when the success criterion was
            missed; ``None`` exactly when ``success`` is ``True``.
    """

    index: int
    distance: float
    num_common: int
    scenario_kind: str
    success: bool
    errors: PoseErrors
    stage1_errors: PoseErrors
    inliers_bv: int
    inliers_box: int
    num_matches: int
    num_matched_boxes: int
    message_bytes: int
    raw_cloud_bytes: int
    vips_success: bool
    vips_errors: PoseErrors | None
    tx: float = 0.0
    ty: float = 0.0
    theta: float = 0.0
    degradation: str = "full"
    failure_reason: str | None = None


@dataclass(frozen=True)
class PairErrorOutcome:
    """An error record for a pair whose evaluation itself crashed.

    The sweep never aborts on a single pathological pair: the exception
    is captured (in the pool worker or the serial loop) and the pair
    contributes this record instead of a :class:`PairOutcome`.  It
    mirrors the fields robustness analyses filter on (``index``,
    ``success``, ``failure_reason``) so mixed outcome lists stay easy to
    partition: ``[o for o in outcomes if isinstance(o, PairOutcome)]``.

    Attributes:
        index: dataset index of the failed pair.
        error_type: exception class name (e.g. ``"InjectedFault"``).
        message: stringified exception.
        failure_reason: taxonomy tag; always
            ``FailureReason.EVALUATION_ERROR`` for crashed evaluations.
        success: always ``False``.
    """

    index: int
    error_type: str
    message: str
    failure_reason: str = FailureReason.EVALUATION_ERROR.value
    success: bool = False

    @classmethod
    def from_exception(cls, index: int,
                       error: BaseException) -> "PairErrorOutcome":
        return cls(index=index, error_type=type(error).__name__,
                   message=str(error))


def default_dataset(num_pairs: int, seed: int = 2024) -> V2VDatasetSim:
    """The standard evaluation dataset used across figure modules."""
    return V2VDatasetSim(DatasetConfig(num_pairs=num_pairs, seed=seed))


def detect_for_pair(pair: FramePair, detector: SimulatedDetector,
                    seed: int, index: int = 0,
                    ) -> tuple[list[Detection], list[Detection]]:
    """Run the simulated detector on both vehicles of a pair.

    Detector draws use spawn keys ``[seed, index, stream]`` (stream 0 =
    ego, 1 = other).  The keys keep sweeps with adjacent base seeds
    statistically independent — the old ``seed + index`` folding made
    pair ``i`` of seed ``s`` reuse the stream of pair ``i - 1`` of seed
    ``s + 1``.
    """
    ego = detector.detect(pair.ego_visible,
                          np.random.default_rng([seed, index, 0]))
    other = detector.detect(pair.other_visible,
                            np.random.default_rng([seed, index, 1]))
    return ego, other


def _pair_priors(aligner: BBAlign, pair: FramePair):
    """Coarse (ego, other) translation priors for overlap-ROI culling.

    Only produced when culling is enabled.  The simulated sweeps use the
    pair's ground-truth translation as the stand-in for the coarse prior
    a deployment would get from GPS/tracking; it is a pure function of
    (dataset, index), which is what keeps ROI-cropped features valid
    under the (dataset, index, role, extraction-config) cache key.
    """
    if not aligner.config.roi.enabled:
        return (None, None)
    gt = pair.gt_relative  # SE2 other -> ego
    return (gt.translation, gt.inverse().translation)


def _features_for(aligner: BBAlign, cloud, role: str, index: int,
                  cache: FeatureCache | None, dataset_fp: tuple | None,
                  extraction_fp: tuple | None,
                  timings: SweepTimings | None, prior=None):
    """Stage-1 features for one scan, via the cache when identifiable."""
    key = None
    if (cache is not None and dataset_fp is not None
            and extraction_fp is not None):
        key = feature_key(dataset_fp, index, role, extraction_fp)
        features = cache.get(key)
        if features is not None:
            if timings is not None:
                timings.cache_hits += 1
            return features
        if timings is not None:
            timings.cache_misses += 1
    timer = None if timings is None else functools.partial(stage, timings)
    with stage(timings, "bv_extract"):
        features = aligner.extract_features(cloud, timer=timer, prior=prior)
    if key is not None:
        cache.put(key, features)
    return features


def _features_for_pair(aligner: BBAlign, pair: FramePair, index: int,
                       cache: FeatureCache | None, dataset_fp: tuple | None,
                       extraction_fp: tuple | None,
                       timings: SweepTimings | None):
    """Stage-1 features for both cars of a pair, batched when possible.

    Per-car cache accounting is unchanged from the single path: each
    role is looked up (and its hit or miss counted) exactly once.  When
    *both* cars miss, extraction runs as one batched bank pass
    (:meth:`BBAlign.extract_features_pair`) — bitwise-identical to two
    single extractions, so cache entries written by either path are
    interchangeable.  When exactly one car is cached, only the other is
    extracted (inline, not via :func:`_features_for`, which would
    repeat the lookup and double-count the miss).
    """
    priors = _pair_priors(aligner, pair)
    ego_key = other_key = None
    ego = other = None
    identifiable = (cache is not None and dataset_fp is not None
                    and extraction_fp is not None)
    if identifiable:
        ego_key = feature_key(dataset_fp, index, "ego", extraction_fp)
        other_key = feature_key(dataset_fp, index, "other", extraction_fp)
        ego = cache.get(ego_key)
        other = cache.get(other_key)
        if timings is not None:
            timings.cache_hits += int(ego is not None) \
                + int(other is not None)
            timings.cache_misses += int(ego is None) + int(other is None)
    timer = None if timings is None else functools.partial(stage, timings)
    if ego is None and other is None:
        with stage(timings, "bv_extract"):
            ego, other = aligner.extract_features_pair(
                pair.ego_cloud, pair.other_cloud, timer=timer, priors=priors)
        if identifiable:
            cache.put(ego_key, ego)
            cache.put(other_key, other)
        return ego, other
    if ego is None:
        with stage(timings, "bv_extract"):
            ego = aligner.extract_features(pair.ego_cloud, timer=timer,
                                           prior=priors[0])
        if identifiable:
            cache.put(ego_key, ego)
    if other is None:
        with stage(timings, "bv_extract"):
            other = aligner.extract_features(pair.other_cloud, timer=timer,
                                             prior=priors[1])
        if identifiable:
            cache.put(other_key, other)
    return ego, other


def evaluate_pair(record, aligner: BBAlign, detector: SimulatedDetector,
                  *,
                  seed: int = 7,
                  include_vips: bool = True,
                  vips_config: VipsConfig | None = None,
                  cache: FeatureCache | None = None,
                  dataset_fp: tuple | None = None,
                  extraction_fp: tuple | None = None,
                  timings: SweepTimings | None = None) -> PairOutcome:
    """Evaluate one dataset record into a :class:`PairOutcome`.

    Pure up to the supplied collaborators: given the same record,
    configuration and seed, the outcome is identical no matter which
    process (or worker) runs it.  This is the unit the parallel engine
    ships to pool workers and the serial sweep runs in-process.

    Args:
        record: a :class:`~repro.simulation.dataset.FrameRecord`.
        aligner / detector: constructed collaborators (reused across a
            sweep; both are stateless between calls).
        seed: sweep base seed; all randomness spawns from
            ``[seed, record.index, stream]``.
        include_vips / vips_config: also run the graph-matching baseline.
        cache: stage-1 feature cache; pass ``dataset_fp`` and
            ``extraction_fp`` (from :mod:`repro.runtime.cache`) to make
            features identifiable — without them extraction runs cold.
        timings: optional per-stage accumulator.
    """
    pair = record.pair
    with stage(timings, "detection"):
        ego_dets, other_dets = detect_for_pair(pair, detector, seed,
                                               record.index)
    ego_features, other_features = _features_for_pair(
        aligner, pair, record.index, cache, dataset_fp, extraction_fp,
        timings)
    timer = None if timings is None else functools.partial(stage, timings)
    result = aligner.recover(
        ego_features, other_features,
        [d.box for d in ego_dets], [d.box for d in other_dets],
        rng=np.random.default_rng([seed, record.index, 2]), timer=timer)

    gt = pair.gt_relative
    full_errors = pose_errors(result.transform, gt)
    stage1_errors = pose_errors(result.stage1.transform, gt)

    vips_success = False
    vips_err: PoseErrors | None = None
    if include_vips:
        with stage(timings, "baseline"):
            other_centers = np.array([[d.box.center_x, d.box.center_y]
                                      for d in other_dets]).reshape(-1, 2)
            ego_centers = np.array([[d.box.center_x, d.box.center_y]
                                    for d in ego_dets]).reshape(-1, 2)
            vips = vips_graph_matching(other_centers, ego_centers,
                                       vips_config)
            vips_success = vips.success
            if vips.success:
                vips_err = pose_errors(vips.transform, gt)

    return PairOutcome(
        index=record.index,
        distance=pair.distance,
        num_common=pair.num_common_vehicles,
        scenario_kind=str(pair.scenario_kind.value),
        success=result.success,
        errors=full_errors,
        stage1_errors=stage1_errors,
        inliers_bv=result.inliers_bv,
        inliers_box=result.inliers_box,
        num_matches=result.stage1.num_matches,
        num_matched_boxes=result.stage2.num_matched_boxes,
        message_bytes=result.message_bytes,
        raw_cloud_bytes=BBAlign.raw_cloud_bytes(pair.other_cloud),
        vips_success=vips_success,
        vips_errors=vips_err,
        tx=result.transform.tx,
        ty=result.transform.ty,
        theta=result.transform.theta,
        degradation=result.degradation.value,
        failure_reason=(result.failure_reason.value
                        if result.failure_reason is not None else None),
    )


def _resolve_cache(cache) -> FeatureCache | None:
    """Map the user-facing ``cache`` argument to a FeatureCache or None.

    ``None`` selects the process-default cache; ``False`` disables
    caching; a :class:`FeatureCache` instance is used as given.
    """
    if cache is None:
        return get_default_cache()
    if cache is False:
        return None
    return cache


def run_pose_recovery_sweep(
        dataset: V2VDatasetSim,
        config: BBAlignConfig | None = None,
        detector_profile: DetectorProfile = COBEVT_PROFILE,
        include_vips: bool = True,
        vips_config: VipsConfig | None = None,
        seed: int = 7,
        *,
        workers: int = 1,
        cache: FeatureCache | bool | None = None,
        timings: SweepTimings | None = None) -> list[PairOutcome]:
    """Evaluate BB-Align (and optionally VIPS) over a whole dataset.

    Args:
        dataset: the frame-pair dataset.
        config: BB-Align configuration (defaults).
        detector_profile: single-car detector model feeding stage 2 (and
            the VIPS object graphs).
        include_vips: also run the graph-matching baseline.
        vips_config: baseline parameters.
        seed: base randomness for detector draws and RANSAC.
        workers: processes to shard the sweep over; ``1`` (default) runs
            in-process, ``0``/``None`` selects the host CPU count.
            Results are identical for every worker count; the pool path
            falls back to serial execution when unavailable.
        cache: stage-1 feature cache — ``None`` for the process default,
            ``False`` to disable, or an explicit
            :class:`~repro.runtime.cache.FeatureCache`.  Parallel
            workers always use their own per-process default caches.
        timings: per-stage accumulator; defaults to the ambient
            collector installed by
            :func:`repro.runtime.timings.collect_timings` (if any).

    Returns:
        One :class:`PairOutcome` per dataset pair, in index order.  A
        pair whose evaluation raised contributes a
        :class:`PairErrorOutcome` instead — a sweep never aborts on a
        single pathological pair.
    """
    from repro.runtime.engine import (  # local: runtime imports us back
        PoolUnavailableError,
        resolve_workers,
        run_sweep_parallel,
    )
    if timings is None:
        timings = active_timings()
    n_workers = resolve_workers(workers)
    if n_workers > 1 and isinstance(dataset, V2VDatasetSim) \
            and len(dataset) > 1:
        try:
            return run_sweep_parallel(
                dataset.config, num_pairs=len(dataset), config=config,
                detector_profile=detector_profile,
                include_vips=include_vips, vips_config=vips_config,
                seed=seed, workers=n_workers, timings=timings)
        except PoolUnavailableError as error:
            warnings.warn(
                f"parallel sweep unavailable ({error}); "
                "falling back to in-process serial execution",
                RuntimeWarning, stacklevel=2)
    return _run_sweep_serial(dataset, config, detector_profile,
                             include_vips, vips_config, seed,
                             _resolve_cache(cache), timings)


_DONE = object()


def _run_sweep_serial(dataset, config, detector_profile, include_vips,
                      vips_config, seed, cache, timings,
                      ) -> list[PairOutcome | PairErrorOutcome]:
    """The in-process path: same per-pair unit, no pool.

    Mirrors the pool workers' per-pair error capture: a pair whose
    simulation or evaluation raises becomes a :class:`PairErrorOutcome`
    and the sweep continues.
    """
    start = time.perf_counter()
    aligner = BBAlign(config)
    detector = SimulatedDetector(detector_profile)
    ds_fp = ext_fp = None
    if cache is not None and isinstance(dataset, V2VDatasetSim):
        ds_fp = dataset_fingerprint(dataset.config)
        ext_fp = extraction_fingerprint(aligner.config)

    # The sweep's registry becomes the ambient instrument store for the
    # duration, so pipeline/degradation counters recorded deep inside
    # recover_from_features land next to the stage timings they explain
    # (pool workers get the same treatment from the engine's chunk-local
    # registry).
    registry_cm = (use_registry(timings.registry)
                   if timings is not None else contextlib.nullcontext())
    outcomes: list[PairOutcome | PairErrorOutcome] = []
    index = -1
    iterator = iter(dataset)
    with registry_cm, span("engine/sweep", mode="serial",
                           pairs=len(dataset)):
        while True:
            index += 1
            try:
                with stage(timings, "data_generation"):
                    record = next(iterator, _DONE)
                if record is _DONE:
                    break
                with span("engine/pair", index=index):
                    outcomes.append(evaluate_pair(
                        record, aligner, detector, seed=seed,
                        include_vips=include_vips, vips_config=vips_config,
                        cache=cache, dataset_fp=ds_fp, extraction_fp=ext_fp,
                        timings=timings))
            except Exception as error:
                outcomes.append(PairErrorOutcome.from_exception(index, error))
    if timings is not None:
        timings.pairs += len(outcomes)
        timings.wall_seconds += time.perf_counter() - start
    return outcomes
