"""Shared experiment machinery: the per-pair pose-recovery sweep.

Most of the paper's figures are views over the same underlying sweep:
run BB-Align (and the VIPS baseline) on every dataset pair, record
errors, inlier counts and metadata, then bucket/summarize.  This module
runs that sweep once and hands the figure modules plain records.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.vips import VipsConfig, vips_graph_matching
from repro.core.config import BBAlignConfig
from repro.core.pipeline import BBAlign
from repro.detection.simulated import (
    COBEVT_PROFILE,
    Detection,
    DetectorProfile,
    SimulatedDetector,
)
from repro.metrics.pose_error import PoseErrors, pose_errors
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim
from repro.simulation.scenario import FramePair

__all__ = ["PairOutcome", "run_pose_recovery_sweep", "default_dataset",
           "detect_for_pair"]


@dataclass(frozen=True)
class PairOutcome:
    """Everything the figure modules need about one evaluated pair.

    Attributes:
        index: dataset index.
        distance: inter-vehicle distance (meters).
        num_common: commonly observed vehicles (ground-truth count).
        scenario_kind: world flavor string.
        success: BB-Align's success criterion verdict.
        errors: full-pipeline pose errors.
        stage1_errors: errors of the stage-1 estimate alone (the
            ablation / Fig. 11 view).
        inliers_bv / inliers_box: the two confidence counts.
        num_matches: stage-1 descriptor matches.
        num_matched_boxes: stage-2 overlapped box pairs.
        message_bytes: BB-Align transmission cost for this pair.
        raw_cloud_bytes: cost of shipping the raw other-car scan instead.
        vips_success: the graph-matching baseline found a pose.
        vips_errors: baseline errors (None when it failed).
    """

    index: int
    distance: float
    num_common: int
    scenario_kind: str
    success: bool
    errors: PoseErrors
    stage1_errors: PoseErrors
    inliers_bv: int
    inliers_box: int
    num_matches: int
    num_matched_boxes: int
    message_bytes: int
    raw_cloud_bytes: int
    vips_success: bool
    vips_errors: PoseErrors | None


def default_dataset(num_pairs: int, seed: int = 2024) -> V2VDatasetSim:
    """The standard evaluation dataset used across figure modules."""
    return V2VDatasetSim(DatasetConfig(num_pairs=num_pairs, seed=seed))


def detect_for_pair(pair: FramePair, detector: SimulatedDetector,
                    seed: int) -> tuple[list[Detection], list[Detection]]:
    """Run the simulated detector on both vehicles of a pair."""
    ego = detector.detect(pair.ego_visible,
                          np.random.default_rng([seed, 0]))
    other = detector.detect(pair.other_visible,
                            np.random.default_rng([seed, 1]))
    return ego, other


def run_pose_recovery_sweep(
        dataset: V2VDatasetSim,
        config: BBAlignConfig | None = None,
        detector_profile: DetectorProfile = COBEVT_PROFILE,
        include_vips: bool = True,
        vips_config: VipsConfig | None = None,
        seed: int = 7) -> list[PairOutcome]:
    """Evaluate BB-Align (and optionally VIPS) over a whole dataset.

    Args:
        dataset: the frame-pair dataset.
        config: BB-Align configuration (defaults).
        detector_profile: single-car detector model feeding stage 2 (and
            the VIPS object graphs).
        include_vips: also run the graph-matching baseline.
        vips_config: baseline parameters.
        seed: base randomness for detector draws and RANSAC.

    Returns:
        One :class:`PairOutcome` per dataset pair.
    """
    aligner = BBAlign(config)
    detector = SimulatedDetector(detector_profile)
    outcomes: list[PairOutcome] = []

    for record in dataset:
        pair = record.pair
        ego_dets, other_dets = detect_for_pair(pair, detector,
                                               seed + record.index)
        result = aligner.recover(
            pair.ego_cloud, pair.other_cloud,
            [d.box for d in ego_dets], [d.box for d in other_dets],
            rng=np.random.default_rng([seed, record.index, 2]))

        gt = pair.gt_relative
        full_errors = pose_errors(result.transform, gt)
        stage1_errors = pose_errors(result.stage1.transform, gt)

        vips_success = False
        vips_err: PoseErrors | None = None
        if include_vips:
            other_centers = np.array([[d.box.center_x, d.box.center_y]
                                      for d in other_dets]).reshape(-1, 2)
            ego_centers = np.array([[d.box.center_x, d.box.center_y]
                                    for d in ego_dets]).reshape(-1, 2)
            vips = vips_graph_matching(other_centers, ego_centers,
                                       vips_config)
            vips_success = vips.success
            if vips.success:
                vips_err = pose_errors(vips.transform, gt)

        outcomes.append(PairOutcome(
            index=record.index,
            distance=pair.distance,
            num_common=pair.num_common_vehicles,
            scenario_kind=str(pair.scenario_kind.value),
            success=result.success,
            errors=full_errors,
            stage1_errors=stage1_errors,
            inliers_bv=result.inliers_bv,
            inliers_box=result.inliers_box,
            num_matches=result.stage1.num_matches,
            num_matched_boxes=result.stage2.num_matched_boxes,
            message_bytes=result.message_bytes,
            raw_cloud_bytes=BBAlign.raw_cloud_bytes(pair.other_cloud),
            vips_success=vips_success,
            vips_errors=vips_err,
        ))
    return outcomes
