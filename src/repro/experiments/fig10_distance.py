"""Fig. 10 — pose recovery accuracy vs inter-vehicle distance.

Paper result: within 70 m, ~80 % of *successful* recoveries have errors
under 1 m and 1 deg; beyond 70 m translation degrades while rotation
stays near 1 deg for ~70 % of cases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import PairOutcome, default_dataset, run_pose_recovery_sweep
from repro.experiments.registry import ExperimentSpec, register
from repro.metrics.aggregation import Cdf

__all__ = ["Fig10Result", "run_fig10", "format_fig10", "DISTANCE_EDGES"]

DISTANCE_EDGES: tuple[float, ...] = (0.0, 70.0, 100.0)


@dataclass(frozen=True)
class Fig10Result:
    """Per-distance-bin CDFs over successful recoveries."""

    translation: dict[str, Cdf]
    rotation: dict[str, Cdf]
    success_rate: dict[str, float]
    num_pairs: int


def compute_fig10(outcomes: list[PairOutcome],
                  edges=DISTANCE_EDGES) -> Fig10Result:
    translation: dict[str, Cdf] = {}
    rotation: dict[str, Cdf] = {}
    success_rate: dict[str, float] = {}
    for lo, hi in zip(edges[:-1], edges[1:]):
        label = f"[{lo:g},{hi:g}) m"
        members = [o for o in outcomes if lo <= o.distance < hi]
        successes = [o for o in members if o.success]
        translation[label] = Cdf.from_samples(
            [o.errors.translation for o in successes])
        rotation[label] = Cdf.from_samples(
            [o.errors.rotation_deg for o in successes])
        success_rate[label] = (len(successes) / len(members)
                               if members else float("nan"))
    return Fig10Result(translation, rotation, success_rate, len(outcomes))


def run_fig10(num_pairs: int = 60, seed: int = 2024, *,
              workers: int = 1) -> Fig10Result:
    dataset = default_dataset(num_pairs, seed)
    outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                       workers=workers)
    return compute_fig10(outcomes)


def format_fig10(result: Fig10Result) -> str:
    lines = [f"Fig. 10 — accuracy vs distance ({result.num_pairs} pairs; "
             "successful recoveries)"]
    for label in result.translation:
        t = result.translation[label]
        r = result.rotation[label]
        n = t.values.size
        lines.append(
            f"  {label:>12} (n={n:3d}, success rate "
            f"{result.success_rate[label] * 100:5.1f} %): "
            f"P(terr<1m)={t.fraction_below(1.0) * 100 if n else float('nan'):5.1f} %  "
            f"P(rerr<1deg)={r.fraction_below(1.0) * 100 if n else float('nan'):5.1f} %")
    lines.append("  (paper: ~80 % under 1 m and 1 deg within 70 m)")
    return "\n".join(lines)


register(ExperimentSpec(
    name="fig10", runner=run_fig10, formatter=format_fig10,
    description="accuracy vs distance", paper_artifact="Fig. 10"))
