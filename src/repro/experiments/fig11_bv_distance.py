"""Fig. 11 — accuracy of BV image matching *alone* vs distance.

Paper result: stage-1 accuracy decays with distance, and even at < 20 m
it does not beat the full two-stage pipeline's overall [0, 70) numbers —
the observation motivating the second stage.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import PairOutcome, default_dataset, run_pose_recovery_sweep
from repro.experiments.registry import ExperimentSpec, register
from repro.metrics.aggregation import Cdf

__all__ = ["Fig11Result", "run_fig11", "format_fig11", "FINE_DISTANCE_EDGES"]

FINE_DISTANCE_EDGES: tuple[float, ...] = (0.0, 20.0, 40.0, 60.0, 100.0)


@dataclass(frozen=True)
class Fig11Result:
    """Stage-1-only error CDFs per fine distance bin."""

    translation: dict[str, Cdf]
    rotation: dict[str, Cdf]
    num_pairs: int


def compute_fig11(outcomes: list[PairOutcome],
                  edges=FINE_DISTANCE_EDGES) -> Fig11Result:
    translation: dict[str, Cdf] = {}
    rotation: dict[str, Cdf] = {}
    # Stage-1-only view: condition on the stage-1 confidence criterion
    # alone (the ablation-mode success rule).
    attempts = [o for o in outcomes if o.inliers_bv > 12]
    for lo, hi in zip(edges[:-1], edges[1:]):
        label = f"[{lo:g},{hi:g}) m"
        members = [o for o in attempts if lo <= o.distance < hi]
        translation[label] = Cdf.from_samples(
            [o.stage1_errors.translation for o in members])
        rotation[label] = Cdf.from_samples(
            [o.stage1_errors.rotation_deg for o in members])
    return Fig11Result(translation, rotation, len(outcomes))


def run_fig11(num_pairs: int = 60, seed: int = 2024, *,
              workers: int = 1) -> Fig11Result:
    dataset = default_dataset(num_pairs, seed)
    outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                       workers=workers)
    return compute_fig11(outcomes)


def format_fig11(result: Fig11Result) -> str:
    lines = [f"Fig. 11 — BV image matching alone vs distance "
             f"({result.num_pairs} pairs)"]
    for label in result.translation:
        t = result.translation[label]
        r = result.rotation[label]
        n = t.values.size
        med = t.value_at(0.5) if n else float("nan")
        lines.append(
            f"  {label:>12} (n={n:3d}): median terr={med:5.2f} m  "
            f"P(terr<1m)={t.fraction_below(1.0) * 100 if n else float('nan'):5.1f} %  "
            f"P(rerr<1deg)={r.fraction_below(1.0) * 100 if n else float('nan'):5.1f} %")
    lines.append("  (paper: shorter distance = higher accuracy; even the "
                 "best bin does not beat the full pipeline)")
    return "\n".join(lines)


register(ExperimentSpec(
    name="fig11", runner=run_fig11, formatter=format_fig11,
    description="stage-1-only accuracy vs distance",
    paper_artifact="Fig. 11"))
