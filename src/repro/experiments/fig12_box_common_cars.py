"""Fig. 12 — box-alignment accuracy vs number of commonly observed cars.

Paper result: more common cars = more corner correspondences = better
accuracy; below 3 cars accuracy deteriorates but ~50 % of cases stay
under 1 m; with > 10 cars, > 90 % of cases are under 0.3 m and 0.8 deg.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import PairOutcome, default_dataset, run_pose_recovery_sweep
from repro.experiments.registry import ExperimentSpec, register
from repro.metrics.aggregation import Cdf

__all__ = ["Fig12Result", "run_fig12", "format_fig12"]

BUCKETS: tuple[tuple[int, int], ...] = ((0, 3), (3, 6), (6, 11), (11, 1000))


def _label(lo: int, hi: int) -> str:
    return f"{lo}-{hi - 1}" if hi < 1000 else f"{lo}+"


@dataclass(frozen=True)
class Fig12Result:
    """Full-pipeline error CDFs per common-car bucket (successes)."""

    translation: dict[str, Cdf]
    rotation: dict[str, Cdf]
    bucket_counts: dict[str, int]
    num_pairs: int


def compute_fig12(outcomes: list[PairOutcome]) -> Fig12Result:
    translation: dict[str, Cdf] = {}
    rotation: dict[str, Cdf] = {}
    counts: dict[str, int] = {}
    successes = [o for o in outcomes if o.success]
    for lo, hi in BUCKETS:
        label = _label(lo, hi)
        members = [o for o in successes if lo <= o.num_common < hi]
        counts[label] = len(members)
        translation[label] = Cdf.from_samples(
            [o.errors.translation for o in members])
        rotation[label] = Cdf.from_samples(
            [o.errors.rotation_deg for o in members])
    return Fig12Result(translation, rotation, counts, len(outcomes))


def run_fig12(num_pairs: int = 60, seed: int = 2024, *,
              workers: int = 1) -> Fig12Result:
    dataset = default_dataset(num_pairs, seed)
    outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                       workers=workers)
    return compute_fig12(outcomes)


def format_fig12(result: Fig12Result) -> str:
    lines = [f"Fig. 12 — box alignment accuracy vs common cars "
             f"({result.num_pairs} pairs)"]
    for label in result.translation:
        t = result.translation[label]
        r = result.rotation[label]
        n = result.bucket_counts[label]
        lines.append(
            f"  {label:>4} cars (n={n:3d}): "
            f"P(terr<1m)={t.fraction_below(1.0) * 100 if n else float('nan'):5.1f} %  "
            f"P(terr<0.3m)={t.fraction_below(0.3) * 100 if n else float('nan'):5.1f} %  "
            f"P(rerr<0.8deg)={r.fraction_below(0.8) * 100 if n else float('nan'):5.1f} %")
    lines.append("  (paper: accuracy rises with common cars; 10+ cars give "
                 ">90 % under 0.3 m / 0.8 deg)")
    return "\n".join(lines)


register(ExperimentSpec(
    name="fig12", runner=run_fig12, formatter=format_fig12,
    description="box-alignment accuracy vs common cars",
    paper_artifact="Fig. 12"))
