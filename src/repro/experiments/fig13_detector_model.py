"""Fig. 13 — impact of the object detection model on recovery accuracy.

Paper result: swapping coBEVT for F-Cooper as the stage-2 box source has
only a minor effect — BB-Align is largely detector-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.detection.simulated import COBEVT_PROFILE, FCOOPER_PROFILE
from repro.experiments.common import run_pose_recovery_sweep
from repro.experiments.registry import ExperimentSpec, register
from repro.metrics.aggregation import Cdf
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim

__all__ = ["Fig13Result", "run_fig13", "format_fig13"]


@dataclass(frozen=True)
class Fig13Result:
    """Error CDFs per detector profile (successful recoveries)."""

    translation: dict[str, Cdf]
    rotation: dict[str, Cdf]
    success_rate: dict[str, float]
    num_pairs: int


def run_fig13(num_pairs: int = 50, seed: int = 2024, *,
              workers: int = 1) -> Fig13Result:
    # Both detector profiles sweep the same pairs, so memoize the
    # simulated records (and let the feature cache reuse extraction).
    dataset = V2VDatasetSim(DatasetConfig(num_pairs=num_pairs, seed=seed),
                            memoize_records=num_pairs)
    translation: dict[str, Cdf] = {}
    rotation: dict[str, Cdf] = {}
    success_rate: dict[str, float] = {}
    for profile in (COBEVT_PROFILE, FCOOPER_PROFILE):
        outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                           detector_profile=profile,
                                           workers=workers)
        successes = [o for o in outcomes if o.success]
        translation[profile.name] = Cdf.from_samples(
            [o.errors.translation for o in successes])
        rotation[profile.name] = Cdf.from_samples(
            [o.errors.rotation_deg for o in successes])
        success_rate[profile.name] = (len(successes) / max(len(outcomes), 1))
    return Fig13Result(translation, rotation, success_rate, num_pairs)


def format_fig13(result: Fig13Result) -> str:
    lines = [f"Fig. 13 — detector-model impact ({result.num_pairs} pairs)"]
    for name in result.translation:
        t = result.translation[name]
        r = result.rotation[name]
        n = t.values.size
        lines.append(
            f"  {name:>9} (success {result.success_rate[name] * 100:5.1f} %, "
            f"n={n:3d}): P(terr<1m)="
            f"{t.fraction_below(1.0) * 100 if n else float('nan'):5.1f} %  "
            f"P(rerr<1deg)={r.fraction_below(1.0) * 100 if n else float('nan'):5.1f} %")
    lines.append("  (paper: model choice plays a minor role)")
    return "\n".join(lines)


register(ExperimentSpec(
    name="fig13", runner=run_fig13, formatter=format_fig13,
    description="detector-model impact", paper_artifact="Fig. 13"))
