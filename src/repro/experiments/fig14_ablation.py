"""Fig. 14 — ablation: accuracy with and without stage-2 box alignment.

Paper result: removing box alignment markedly increases translation
error (the component distorted by self-motion), while rotation is less
affected — box alignment predominantly corrects translation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import PairOutcome, default_dataset, run_pose_recovery_sweep
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.reporting import format_percentile_table
from repro.metrics.aggregation import percentile_summary

__all__ = ["Fig14Result", "run_fig14", "format_fig14"]


@dataclass(frozen=True)
class Fig14Result:
    """Percentile summaries for the full pipeline vs stage-1-only."""

    translation: dict[str, dict[int, float]]
    rotation: dict[str, dict[int, float]]
    num_pairs: int


def compute_fig14(outcomes: list[PairOutcome]) -> Fig14Result:
    # Same population for both arms (pairs where the full pipeline
    # succeeded), so the comparison isolates the stage-2 contribution.
    successes = [o for o in outcomes if o.success]
    translation = {
        "with box align": percentile_summary(
            [o.errors.translation for o in successes]),
        "w/o box align": percentile_summary(
            [o.stage1_errors.translation for o in successes]),
    }
    rotation = {
        "with box align": percentile_summary(
            [o.errors.rotation_deg for o in successes]),
        "w/o box align": percentile_summary(
            [o.stage1_errors.rotation_deg for o in successes]),
    }
    return Fig14Result(translation, rotation, len(outcomes))


def run_fig14(num_pairs: int = 60, seed: int = 2024, *,
              workers: int = 1) -> Fig14Result:
    dataset = default_dataset(num_pairs, seed)
    outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                       workers=workers)
    return compute_fig14(outcomes)


def format_fig14(result: Fig14Result) -> str:
    return "\n".join([
        f"Fig. 14 — ablation of the box-alignment stage "
        f"({result.num_pairs} pairs)",
        format_percentile_table(result.translation,
                                "  translation error (m):"),
        format_percentile_table(result.rotation, "  rotation error (deg):"),
        "  (paper: removing box alignment markedly increases translation "
        "error; rotation comparable)",
    ])


register(ExperimentSpec(
    name="fig14", runner=run_fig14, formatter=format_fig14,
    description="box-alignment ablation", paper_artifact="Fig. 14"))
