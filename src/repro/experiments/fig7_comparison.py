"""Fig. 7 — pose recovery accuracy: BB-Align vs graph matching (VIPS).

Paper result: BB-Align's translation-error CDF dominates VIPS's
(~60 % vs ~30 % of estimations under 1 m); rotation error is comparable.
Both methods are evaluated over every attempted pair (failures count as
not-under-threshold), matching the paper's presentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import PairOutcome, default_dataset, run_pose_recovery_sweep
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.reporting import format_cdf_series
from repro.metrics.aggregation import Cdf

__all__ = ["Fig7Result", "run_fig7", "format_fig7"]


@dataclass(frozen=True)
class Fig7Result:
    """CDFs of both methods (successful recoveries only, as plotted)."""

    bb_translation: Cdf
    bb_rotation: Cdf
    vips_translation: Cdf
    vips_rotation: Cdf
    bb_fraction_under_1m: float
    vips_fraction_under_1m: float
    num_pairs: int


def compute_fig7(outcomes: list[PairOutcome]) -> Fig7Result:
    """Aggregate a sweep into the Fig. 7 series."""
    bb_t = [o.errors.translation for o in outcomes if o.success]
    bb_r = [o.errors.rotation_deg for o in outcomes if o.success]
    vips_t = [o.vips_errors.translation for o in outcomes if o.vips_errors]
    vips_r = [o.vips_errors.rotation_deg for o in outcomes if o.vips_errors]
    n = max(len(outcomes), 1)
    return Fig7Result(
        bb_translation=Cdf.from_samples(bb_t),
        bb_rotation=Cdf.from_samples(bb_r),
        vips_translation=Cdf.from_samples(vips_t),
        vips_rotation=Cdf.from_samples(vips_r),
        bb_fraction_under_1m=float(np.sum(np.asarray(bb_t) < 1.0) / n),
        vips_fraction_under_1m=float(np.sum(np.asarray(vips_t) < 1.0) / n),
        num_pairs=len(outcomes),
    )


def run_fig7(num_pairs: int = 60, seed: int = 2024, *,
             workers: int = 1) -> Fig7Result:
    """Run the Fig. 7 experiment end to end."""
    dataset = default_dataset(num_pairs, seed)
    outcomes = run_pose_recovery_sweep(dataset, include_vips=True,
                                       workers=workers)
    return compute_fig7(outcomes)


def format_fig7(result: Fig7Result) -> str:
    """Paper-style summary text."""
    lines = [
        f"Fig. 7 — BB-Align vs VIPS over {result.num_pairs} pairs",
        f"  estimations with translation error < 1 m: "
        f"BB-Align {result.bb_fraction_under_1m * 100:.0f} %  vs  "
        f"VIPS {result.vips_fraction_under_1m * 100:.0f} %"
        "  (paper: ~60 % vs ~30 %)",
        format_cdf_series("  BB-Align translation CDF (m)",
                          result.bb_translation),
        format_cdf_series("  VIPS translation CDF (m)",
                          result.vips_translation),
        format_cdf_series("  BB-Align rotation CDF (deg)",
                          result.bb_rotation),
        format_cdf_series("  VIPS rotation CDF (deg)", result.vips_rotation),
    ]
    return "\n".join(lines)


register(ExperimentSpec(
    name="fig7", runner=run_fig7, formatter=format_fig7,
    description="BB-Align vs VIPS error CDFs", paper_artifact="Fig. 7"))
