"""Fig. 8 — translation error vs number of commonly observed cars.

Paper result: VIPS depends critically on dense traffic (errors explode
below ~3 common cars and shrink as traffic grows), while BB-Align stays
accurate across traffic densities and remains better overall.  Box plots
show the 10/25/50/75/90 percentiles per common-car bucket.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import PairOutcome, default_dataset, run_pose_recovery_sweep
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.reporting import format_percentile_table
from repro.metrics.aggregation import percentile_summary

__all__ = ["Fig8Result", "run_fig8", "format_fig8", "COMMON_CAR_BUCKETS"]

# Bucket edges over common-car counts; the last bucket is open-ended.
COMMON_CAR_BUCKETS: tuple[tuple[int, int], ...] = (
    (0, 2), (2, 4), (4, 7), (7, 100))


def _bucket_label(lo: int, hi: int) -> str:
    return f"{lo}-{hi - 1}" if hi < 100 else f"{lo}+"


@dataclass(frozen=True)
class Fig8Result:
    """Per-bucket translation-error percentiles for both methods."""

    bb_percentiles: dict[str, dict[int, float]]
    vips_percentiles: dict[str, dict[int, float]]
    bucket_counts: dict[str, int]
    num_pairs: int


def compute_fig8(outcomes: list[PairOutcome]) -> Fig8Result:
    bb: dict[str, dict[int, float]] = {}
    vips: dict[str, dict[int, float]] = {}
    counts: dict[str, int] = {}
    for lo, hi in COMMON_CAR_BUCKETS:
        label = _bucket_label(lo, hi)
        members = [o for o in outcomes if lo <= o.num_common < hi]
        counts[label] = len(members)
        bb[label] = percentile_summary(
            [o.errors.translation for o in members if o.success])
        vips[label] = percentile_summary(
            [o.vips_errors.translation for o in members if o.vips_errors])
    return Fig8Result(bb, vips, counts, len(outcomes))


def run_fig8(num_pairs: int = 60, seed: int = 2024, *,
             workers: int = 1) -> Fig8Result:
    dataset = default_dataset(num_pairs, seed)
    outcomes = run_pose_recovery_sweep(dataset, include_vips=True,
                                       workers=workers)
    return compute_fig8(outcomes)


def format_fig8(result: Fig8Result) -> str:
    lines = [
        f"Fig. 8 — translation error (m) vs commonly observed cars "
        f"({result.num_pairs} pairs; bucket sizes {result.bucket_counts})",
        format_percentile_table(result.bb_percentiles, "  BB-Align:"),
        format_percentile_table(result.vips_percentiles,
                                "  VIPS graph matching:"),
        "  (paper: VIPS collapses below ~3 common cars; BB-Align stays "
        "accurate)",
    ]
    return "\n".join(lines)


register(ExperimentSpec(
    name="fig8", runner=run_fig8, formatter=format_fig8,
    description="translation error vs common cars", paper_artifact="Fig. 8"))
