"""Fig. 9 — accuracy vs RANSAC inlier counts (the confidence signal).

Paper result: accuracy improves monotonically with both inlier counts;
above the high-confidence knee, > 90 % of cases are under 1 m / 1 deg.
This analysis is what the paper (and this reproduction, re-calibrated)
derives the success thresholds from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import PairOutcome, default_dataset, run_pose_recovery_sweep
from repro.experiments.registry import ExperimentSpec, register
from repro.metrics.aggregation import Cdf

__all__ = ["Fig9Result", "run_fig9", "format_fig9", "derive_success_thresholds",
           "BV_INLIER_BUCKETS", "BOX_INLIER_BUCKETS"]

BV_INLIER_BUCKETS: tuple[tuple[int, int], ...] = (
    (0, 13), (13, 25), (25, 50), (50, 10_000))
BOX_INLIER_BUCKETS: tuple[tuple[int, int], ...] = (
    (0, 7), (7, 12), (12, 20), (20, 10_000))


def _label(lo: int, hi: int) -> str:
    return f"[{lo},{hi})" if hi < 10_000 else f">={lo}"


@dataclass(frozen=True)
class Fig9Result:
    """Per-inlier-bucket error CDFs for both stages' counts."""

    by_bv_inliers: dict[str, tuple[Cdf, Cdf]]     # (translation, rotation)
    by_box_inliers: dict[str, tuple[Cdf, Cdf]]
    num_pairs: int


def compute_fig9(outcomes: list[PairOutcome]) -> Fig9Result:
    # Only stage-1-successful attempts carry meaningful counts.
    attempts = [o for o in outcomes if o.inliers_bv > 0]

    def bucketize(buckets, key):
        result = {}
        for lo, hi in buckets:
            members = [o for o in attempts if lo <= key(o) < hi]
            result[_label(lo, hi)] = (
                Cdf.from_samples([o.errors.translation for o in members]),
                Cdf.from_samples([o.errors.rotation_deg for o in members]),
            )
        return result

    return Fig9Result(
        by_bv_inliers=bucketize(BV_INLIER_BUCKETS, lambda o: o.inliers_bv),
        by_box_inliers=bucketize(BOX_INLIER_BUCKETS, lambda o: o.inliers_box),
        num_pairs=len(outcomes),
    )


def run_fig9(num_pairs: int = 60, seed: int = 2024, *,
             workers: int = 1) -> Fig9Result:
    dataset = default_dataset(num_pairs, seed)
    outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                       workers=workers)
    return compute_fig9(outcomes)


def format_fig9(result: Fig9Result) -> str:
    lines = [f"Fig. 9 — accuracy vs inlier counts ({result.num_pairs} pairs)"]
    for title, table in [("Inliers_bv buckets", result.by_bv_inliers),
                         ("Inliers_box buckets", result.by_box_inliers)]:
        lines.append(f"  {title}:")
        for label, (t_cdf, r_cdf) in table.items():
            n = t_cdf.values.size
            t1 = t_cdf.fraction_below(1.0) * 100 if n else float("nan")
            r1 = r_cdf.fraction_below(1.0) * 100 if n else float("nan")
            lines.append(f"    {label:>9} (n={n:3d}): "
                         f"P(terr<1m)={t1:5.1f} %  P(rerr<1deg)={r1:5.1f} %")
    lines.append("  (paper: both accuracies rise monotonically with inliers;"
                 " high-inlier buckets exceed 90 %)")
    return "\n".join(lines)


def derive_success_thresholds(outcomes: list[PairOutcome],
                              target_accuracy: float = 0.9,
                              error_limit: float = 1.0) -> tuple[int, int]:
    """Re-run the paper's empirical threshold derivation.

    The paper picks ``Inliers_bv > 25`` and ``Inliers_box > 6`` as the
    smallest thresholds for which the conditional accuracy (fraction of
    above-threshold cases under ``error_limit``) exceeds
    ``target_accuracy``.  Running the same rule on a simulated sweep is
    how this repository's defaults were calibrated.

    Returns:
        ``(min_inliers_bv, min_inliers_box)`` — strict lower bounds in the
        ``is_success`` sense.  Falls back to the maximum observed count
        when no threshold reaches the target.
    """
    if not (0 < target_accuracy <= 1):
        raise ValueError("target_accuracy must be in (0, 1]")
    attempts = [o for o in outcomes if o.inliers_bv > 0]

    def smallest_threshold(key) -> int:
        counts = sorted({key(o) for o in attempts})
        for threshold in counts:
            selected = [o for o in attempts if key(o) > threshold]
            if len(selected) < 3:
                break
            accuracy = np.mean([o.errors.translation < error_limit
                                for o in selected])
            if accuracy >= target_accuracy:
                return int(threshold)
        return int(counts[-1]) if counts else 0

    return (smallest_threshold(lambda o: o.inliers_bv),
            smallest_threshold(lambda o: o.inliers_box))


register(ExperimentSpec(
    name="fig9", runner=run_fig9, formatter=format_fig9,
    description="accuracy vs RANSAC inlier counts", paper_artifact="Fig. 9"))
