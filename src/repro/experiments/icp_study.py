"""ICP study — empirically backing the paper's related-work claims.

The paper dismisses raw 3-D registration for V2V on three grounds
(Sec. II): it needs similar sensor setups / a good initial pose, it
merges different-viewpoint observations point-to-point, and it requires
transmitting whole point clouds.  This experiment quantifies each on the
simulated dataset:

* **cold ICP** (identity init): convergence basin vs the true offset;
* **warm ICP** (seeded with BB-Align's stage-1): what ICP refinement
  buys *on top of* image matching, compared with the paper's stage-2
  box alignment at a fraction of the bandwidth;
* bandwidth: ICP's point-cloud transfer vs BB-Align's message.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.icp import icp_2d
from repro.core.pipeline import BBAlign
from repro.detection.simulated import SimulatedDetector
from repro.experiments.common import default_dataset, detect_for_pair
from repro.experiments.registry import ExperimentSpec, register
from repro.metrics.pose_error import pose_errors
from repro.pointcloud.ops import remove_ground

__all__ = ["IcpStudyResult", "run_icp_study", "format_icp_study"]


@dataclass(frozen=True)
class IcpStudyResult:
    """Aggregates over the sweep.

    Attributes:
        cold_icp_under_1m: cold-start ICP pairs under 1 m (fraction of
            all pairs).
        warm_icp_under_1m: stage-1-seeded ICP under 1 m.
        bb_align_under_1m: full BB-Align under 1 m.
        stage1_under_1m: stage 1 alone under 1 m.
        icp_bytes_mean: mean bytes ICP would transmit (raw cloud).
        bb_bytes_mean: mean BB-Align message bytes.
        num_pairs: pairs evaluated.
    """

    cold_icp_under_1m: float
    warm_icp_under_1m: float
    bb_align_under_1m: float
    stage1_under_1m: float
    icp_bytes_mean: float
    bb_bytes_mean: float
    num_pairs: int


def run_icp_study(num_pairs: int = 16, seed: int = 2024, *,
                  workers: int = 1) -> IcpStudyResult:
    del workers  # per-pair ICP loop runs in-process; not sharded
    dataset = default_dataset(num_pairs, seed)
    aligner = BBAlign()
    detector = SimulatedDetector()

    cold, warm, bb, stage1 = [], [], [], []
    icp_bytes, bb_bytes = [], []
    for record in dataset:
        pair = record.pair
        gt = pair.gt_relative
        ego_dets, other_dets = detect_for_pair(pair, detector, seed,
                                               record.index)
        recovery = aligner.recover(pair.ego_cloud, pair.other_cloud,
                                   [d.box for d in ego_dets],
                                   [d.box for d in other_dets],
                                   rng=np.random.default_rng(
                                       [seed, record.index]))
        bb.append(pose_errors(recovery.transform, gt).translation)
        stage1.append(pose_errors(recovery.stage1.transform,
                                  gt).translation)
        bb_bytes.append(recovery.message_bytes)
        icp_bytes.append(BBAlign.raw_cloud_bytes(pair.other_cloud))

        # ICP on above-ground points (standard practice).
        source = remove_ground(pair.other_cloud).xy
        target = remove_ground(pair.ego_cloud).xy
        rng = np.random.default_rng([seed, record.index, 1])
        cold_result = icp_2d(source, target, rng=rng)
        cold.append(pose_errors(cold_result.transform, gt).translation)
        warm_result = icp_2d(source, target,
                             initial=recovery.stage1.transform, rng=rng)
        warm.append(pose_errors(warm_result.transform, gt).translation)

    n = max(num_pairs, 1)
    return IcpStudyResult(
        cold_icp_under_1m=sum(e < 1.0 for e in cold) / n,
        warm_icp_under_1m=sum(e < 1.0 for e in warm) / n,
        bb_align_under_1m=sum(e < 1.0 for e in bb) / n,
        stage1_under_1m=sum(e < 1.0 for e in stage1) / n,
        icp_bytes_mean=float(np.mean(icp_bytes)),
        bb_bytes_mean=float(np.mean(bb_bytes)),
        num_pairs=num_pairs,
    )


def format_icp_study(result: IcpStudyResult) -> str:
    return "\n".join([
        f"ICP study (Sec. II claims) over {result.num_pairs} pairs — "
        "fraction under 1 m translation error:",
        f"  ICP, identity init (no prior pose): "
        f"{result.cold_icp_under_1m * 100:5.1f} %",
        f"  ICP seeded with BB-Align stage 1:   "
        f"{result.warm_icp_under_1m * 100:5.1f} %",
        f"  BB-Align stage 1 alone:             "
        f"{result.stage1_under_1m * 100:5.1f} %",
        f"  BB-Align full (stage 1 + 2):        "
        f"{result.bb_align_under_1m * 100:5.1f} %",
        f"  bandwidth: ICP needs the raw cloud "
        f"({result.icp_bytes_mean / 1024:.0f} KiB/frame) vs BB-Align's "
        f"{result.bb_bytes_mean / 1024:.0f} KiB/frame",
        "  (paper: raw registration is unusable without a prior pose and "
        "costs early-fusion bandwidth)",
    ])


register(ExperimentSpec(
    name="icp", runner=run_icp_study, formatter=format_icp_study,
    description="ICP comparison (Sec. II claims)",
    paper_artifact="Sec. II", parallelizable=False))
