"""Multi-vehicle study — what a pose graph buys over pairwise recovery.

Extension experiment over K-vehicle scenes:

* **coverage** — vehicles resolvable into the ego frame: direct pairwise
  recovery only, vs the synchronized pose graph (which relays through
  intermediates when a direct edge fails);
* **accuracy** — error of resolved poses;
* **cycle residuals** — the ground-truth-free consistency metric the
  graph makes available.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.multi import MultiVehicleAligner
from repro.detection.simulated import SimulatedDetector
from repro.experiments.registry import ExperimentSpec, register
from repro.simulation.multi import MultiScenarioConfig, make_multi_frame
from repro.simulation.scenario import ScenarioConfig

__all__ = ["MultiStudyResult", "run_multi_study", "format_multi_study"]


@dataclass(frozen=True)
class MultiStudyResult:
    """Aggregates over all scenes.

    Attributes:
        direct_coverage: non-ego vehicles whose *direct* ego edge met the
            success criterion, over all non-ego vehicles.
        graph_coverage: vehicles resolved by the synchronized graph.
        median_error: median translation error of resolved poses (m).
        median_cycle_translation: median 3-cycle loop translation (m).
        num_scenes / vehicles_per_scene: study size.
    """

    direct_coverage: float
    graph_coverage: float
    median_error: float
    median_cycle_translation: float
    num_scenes: int
    vehicles_per_scene: int


def run_multi_study(num_pairs: int = 4, seed: int = 2024,
                    num_vehicles: int = 3,
                    spacing: float = 28.0, *,
                    workers: int = 1) -> MultiStudyResult:
    """Run the study (``num_pairs`` = scene count, for CLI uniformity)."""
    del workers  # K-vehicle graph solve is per-scene; not sharded
    num_scenes = max(num_pairs, 1)
    aligner = MultiVehicleAligner()
    detector = SimulatedDetector()

    direct_hits = 0
    graph_hits = 0
    total_targets = 0
    errors: list[float] = []
    cycles: list[float] = []
    for s in range(num_scenes):
        frame = make_multi_frame(MultiScenarioConfig(
            scenario=ScenarioConfig(same_direction_prob=1.0),
            num_vehicles=num_vehicles, spacing=spacing), rng=[seed, s])
        boxes = [[d.box for d in detector.detect(
            visible, np.random.default_rng([seed, s, i]))]
            for i, visible in enumerate(frame.visible)]
        result = aligner.align(list(frame.clouds), boxes,
                               rng=np.random.default_rng([seed, s, 99]))

        for index in range(1, frame.num_vehicles):
            total_targets += 1
            direct = result.recoveries.get((0, index))
            if direct is not None and direct.success:
                direct_hits += 1
            pose = result.poses[index]
            if pose is not None:
                graph_hits += 1
                errors.append(pose.translation_distance(
                    frame.gt_relative(0, index)))
        cycles.extend(residual[0] for residual in result.cycle_residuals)

    return MultiStudyResult(
        direct_coverage=direct_hits / max(total_targets, 1),
        graph_coverage=graph_hits / max(total_targets, 1),
        median_error=(float(np.median(errors)) if errors
                      else float("nan")),
        median_cycle_translation=(float(np.median(cycles)) if cycles
                                  else float("nan")),
        num_scenes=num_scenes,
        vehicles_per_scene=num_vehicles,
    )


def format_multi_study(result: MultiStudyResult) -> str:
    return "\n".join([
        f"Multi-vehicle study (extension) — {result.num_scenes} scenes x "
        f"{result.vehicles_per_scene} vehicles:",
        f"  direct pairwise coverage: "
        f"{result.direct_coverage * 100:5.1f} % of non-ego vehicles",
        f"  pose-graph coverage:      "
        f"{result.graph_coverage * 100:5.1f} %  (relay through "
        "intermediates)",
        f"  median resolved-pose error: {result.median_error:.2f} m",
        f"  median 3-cycle loop error:  "
        f"{result.median_cycle_translation:.2f} m  (ground-truth-free "
        "consistency check)",
    ])


register(ExperimentSpec(
    name="multi", runner=run_multi_study, formatter=format_multi_study,
    description="multi-vehicle pose-graph alignment (extension)",
    paper_artifact="extension", parallelizable=False))
