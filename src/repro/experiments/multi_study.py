"""Multi-vehicle study — what a pose graph buys over pairwise recovery.

Extension experiments over K-vehicle scenes:

* ``multi`` — one fleet configuration: coverage of *direct* pairwise
  recovery (only the ego's own edges) vs the cycle-gated pose graph
  (which relays through intermediates and fuses redundant edges), plus
  accuracy of resolved poses and the ground-truth-free cycle-residual
  health metric.
* ``multi-grid`` — the same study swept over fleet size x world density
  x sensor degradation.  The headline fact the benchmark gate asserts:
  graph coverage is never below direct coverage, and is *strictly*
  greater for impaired fleets of 5+, where long ego edges fail but
  short relay edges survive.

Scenes are independent, so both runners shard whole scenes over the
fault-tolerant parallel engine (:func:`repro.runtime.engine.\
run_tasks_parallel`): a payload is just the scene's configuration, the
worker regenerates the frame deterministically, and a scene that fails
degrades to one error record instead of aborting the study.  Inside a
scene, each vehicle's stage-1 features are extracted once and shared by
all incident edges through the per-process feature cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.multi import MultiVehicleAligner
from repro.detection.simulated import SimulatedDetector
from repro.experiments.registry import ExperimentSpec, register
from repro.runtime.cache import get_default_cache
from repro.runtime.engine import TaskError, run_tasks_parallel
from repro.simulation.multi import MultiScenarioConfig, make_multi_frame
from repro.simulation.scenario import ScenarioConfig

__all__ = ["SceneOutcome", "MultiStudyResult", "run_multi_study",
           "format_multi_study", "MultiGridResult", "run_multi_grid",
           "format_multi_grid"]


@dataclass(frozen=True)
class _ScenePayload:
    """Everything a worker needs to regenerate and evaluate one scene."""

    seed: int
    scene: int
    num_vehicles: int
    spacing: float
    density: float
    degradation: int


@dataclass(frozen=True)
class SceneOutcome:
    """Per-scene tallies, summed by the parent into study aggregates.

    Attributes:
        targets: non-ego vehicles in the scene.
        direct_hits: targets whose *direct* ego edge was attempted and
            succeeded (the pairwise-only baseline).
        graph_hits: targets the fused pose graph resolved.
        errors: translation errors of graph-resolved poses (m).
        cycle_translations: pre-gating 3-cycle loop translations (m).
        num_candidate_pairs / num_edges / num_rejected: connectivity
            attempted, edges surviving the cycle gate, edges it threw
            out.
    """

    targets: int
    direct_hits: int
    graph_hits: int
    errors: tuple[float, ...]
    cycle_translations: tuple[float, ...]
    num_candidate_pairs: int
    num_edges: int
    num_rejected: int


# Worker-side collaborators, built once per process and reused across
# every scene the engine hands it (same idiom as the sweep engine's
# worker state).
_SCENE_STATE: tuple[MultiVehicleAligner, SimulatedDetector] | None = None


def _scene_state() -> tuple[MultiVehicleAligner, SimulatedDetector]:
    global _SCENE_STATE
    if _SCENE_STATE is None:
        _SCENE_STATE = (MultiVehicleAligner(), SimulatedDetector())
    return _SCENE_STATE


def _evaluate_scene(payload: _ScenePayload) -> SceneOutcome:
    """Generate one K-vehicle frame, align it, and tally coverage.

    Deterministic: the frame regenerates from ``[seed, scene]``, boxes
    from ``[seed, scene, vehicle]`` and alignment from ``[seed, scene,
    99]`` regardless of which process runs the payload — so parallel
    runs reproduce serial runs exactly.
    """
    aligner, detector = _scene_state()
    frame = make_multi_frame(MultiScenarioConfig(
        scenario=ScenarioConfig(same_direction_prob=1.0),
        num_vehicles=payload.num_vehicles, spacing=payload.spacing,
        density=payload.density, degradation=payload.degradation),
        rng=np.random.default_rng([payload.seed, payload.scene]))
    boxes = [[d.box for d in detector.detect(
        visible, np.random.default_rng([payload.seed, payload.scene, i]))]
        for i, visible in enumerate(frame.visible)]
    pairs = frame.candidate_pairs()
    scene_key = ("multi", payload.seed, payload.scene,
                 payload.num_vehicles, payload.spacing, payload.density,
                 payload.degradation)
    result = aligner.align(
        list(frame.clouds), boxes,
        rng=np.random.default_rng([payload.seed, payload.scene, 99]),
        pairs=pairs, cache=get_default_cache(), scene_key=scene_key)

    targets = direct_hits = graph_hits = 0
    errors: list[float] = []
    for index in range(1, frame.num_vehicles):
        targets += 1
        direct = result.recoveries.get((0, index))
        if direct is not None and direct.success:
            direct_hits += 1
        pose = result.poses[index]
        if pose is not None:
            graph_hits += 1
            errors.append(pose.translation_distance(
                frame.gt_relative(0, index)))
    return SceneOutcome(
        targets=targets, direct_hits=direct_hits, graph_hits=graph_hits,
        errors=tuple(errors),
        cycle_translations=tuple(residual[0] for residual
                                 in result.cycle_residuals),
        num_candidate_pairs=len(pairs), num_edges=len(result.edges),
        num_rejected=len(result.rejected_edges))


@dataclass(frozen=True)
class MultiStudyResult:
    """Aggregates over all scenes of one fleet configuration.

    Attributes:
        direct_coverage: non-ego vehicles whose *direct* ego edge
            succeeded, over all non-ego vehicles — what pairwise-only
            BB-Align delivers.
        graph_coverage: vehicles resolved by the fused pose graph.
        median_error: median translation error of resolved poses (m).
        median_cycle_translation: median 3-cycle loop translation (m).
        num_scenes / vehicles_per_scene: study size.
        density / degradation: the scene knobs this cell ran at.
        targets / direct_hits / graph_hits: the raw integer counts
            behind the coverage fractions (exact-gateable in benches).
        candidate_pairs / kept_edges / rejected_edges: totals across
            scenes — connectivity attempted, edges fused, edges the
            cycle gate threw out.
        scenes_with_cycles: scenes whose measured graph contained at
            least one 3-cycle (so loop closure was checkable).
        scene_errors: scenes that failed outright (engine
            :class:`~repro.runtime.engine.TaskError` records).
    """

    direct_coverage: float
    graph_coverage: float
    median_error: float
    median_cycle_translation: float
    num_scenes: int
    vehicles_per_scene: int
    density: float = 1.0
    degradation: int = 0
    targets: int = 0
    direct_hits: int = 0
    graph_hits: int = 0
    candidate_pairs: int = 0
    kept_edges: int = 0
    rejected_edges: int = 0
    scenes_with_cycles: int = 0
    scene_errors: int = 0


def _aggregate(outcomes: list, num_scenes: int, num_vehicles: int,
               density: float, degradation: int) -> MultiStudyResult:
    good = [o for o in outcomes if not isinstance(o, TaskError)]
    targets = sum(o.targets for o in good)
    direct_hits = sum(o.direct_hits for o in good)
    graph_hits = sum(o.graph_hits for o in good)
    errors = [e for o in good for e in o.errors]
    cycles = [c for o in good for c in o.cycle_translations]
    return MultiStudyResult(
        direct_coverage=direct_hits / max(targets, 1),
        graph_coverage=graph_hits / max(targets, 1),
        median_error=(float(np.median(errors)) if errors
                      else float("nan")),
        median_cycle_translation=(float(np.median(cycles)) if cycles
                                  else float("nan")),
        num_scenes=num_scenes,
        vehicles_per_scene=num_vehicles,
        density=density,
        degradation=degradation,
        targets=targets,
        direct_hits=direct_hits,
        graph_hits=graph_hits,
        candidate_pairs=sum(o.num_candidate_pairs for o in good),
        kept_edges=sum(o.num_edges for o in good),
        rejected_edges=sum(o.num_rejected for o in good),
        scenes_with_cycles=sum(1 for o in good if o.cycle_translations),
        scene_errors=len(outcomes) - len(good),
    )


def run_multi_study(num_pairs: int = 4, seed: int = 2024,
                    num_vehicles: int = 3,
                    spacing: float = 22.0, *,
                    density: float = 2.5, degradation: int = 0,
                    workers: int = 1) -> MultiStudyResult:
    """Run the study (``num_pairs`` = scene count, for CLI uniformity).

    Scenes shard over the parallel engine when ``workers > 1``; results
    are identical to a serial run.  The defaults (22 m spacing, 2.5x
    world density) put consecutive vehicles within reliable pairwise
    range while long ego edges still fail — the regime where the graph
    visibly out-covers direct recovery.
    """
    num_scenes = max(num_pairs, 1)
    payloads = [_ScenePayload(seed, s, num_vehicles, spacing, density,
                              degradation)
                for s in range(num_scenes)]
    outcomes = run_tasks_parallel(_evaluate_scene, payloads,
                                  workers=workers, seed=seed)
    return _aggregate(outcomes, num_scenes, num_vehicles, density,
                      degradation)


def format_multi_study(result: MultiStudyResult) -> str:
    lines = [
        f"Multi-vehicle study (extension) — {result.num_scenes} scenes x "
        f"{result.vehicles_per_scene} vehicles "
        f"(density x{result.density:g}, "
        f"degradation {result.degradation}):",
        f"  direct pairwise coverage: "
        f"{result.direct_coverage * 100:5.1f} % of non-ego vehicles",
        f"  pose-graph coverage:      "
        f"{result.graph_coverage * 100:5.1f} %  (relay through "
        "intermediates)",
        f"  median resolved-pose error: {result.median_error:.2f} m",
        f"  median 3-cycle loop error:  "
        f"{result.median_cycle_translation:.2f} m  (ground-truth-free "
        "consistency check)",
        f"  edges: {result.kept_edges} fused / "
        f"{result.rejected_edges} cycle-rejected / "
        f"{result.candidate_pairs} attempted",
    ]
    if result.scene_errors:
        lines.append(f"  scene errors: {result.scene_errors}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Fleet-scale grid: fleet size x density x degradation.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MultiGridResult:
    """One :class:`MultiStudyResult` per grid cell.

    Attributes:
        cells: per-cell aggregates; each carries its own
            ``vehicles_per_scene`` / ``density`` / ``degradation``.
        spacing: inter-vehicle spacing shared by every cell (m).
        scenes_per_cell: study size per cell.
    """

    cells: tuple[MultiStudyResult, ...]
    spacing: float
    scenes_per_cell: int


def run_multi_grid(num_pairs: int = 3, seed: int = 2024, *,
                   fleet_sizes: tuple[int, ...] = (3, 5),
                   densities: tuple[float, ...] = (1.0, 2.5),
                   degradations: tuple[int, ...] = (0, 1),
                   spacing: float = 22.0,
                   workers: int = 1) -> MultiGridResult:
    """Sweep the multi study over fleet size x density x degradation.

    ``num_pairs`` is the scene count *per cell*.  All cells' scenes go
    through the parallel engine as one flat task list, so workers stay
    busy across cell boundaries.
    """
    scenes = max(num_pairs, 1)
    cell_params = [(k, density, degradation)
                   for k in fleet_sizes
                   for density in densities
                   for degradation in degradations]
    payloads = [_ScenePayload(seed, s, k, spacing, density, degradation)
                for k, density, degradation in cell_params
                for s in range(scenes)]
    outcomes = run_tasks_parallel(_evaluate_scene, payloads,
                                  workers=workers, seed=seed)
    cells = []
    for index, (k, density, degradation) in enumerate(cell_params):
        chunk = outcomes[index * scenes:(index + 1) * scenes]
        cells.append(_aggregate(chunk, scenes, k, density, degradation))
    return MultiGridResult(cells=tuple(cells), spacing=spacing,
                           scenes_per_cell=scenes)


def format_multi_grid(result: MultiGridResult) -> str:
    lines = [
        f"Fleet-scale grid (extension) — {result.scenes_per_cell} "
        f"scenes/cell, spacing {result.spacing:g} m:",
        "  fleet  density  degr   direct   graph    gain  "
        "median err",
    ]
    for cell in result.cells:
        gain = cell.graph_coverage - cell.direct_coverage
        error = (f"{cell.median_error:7.2f} m"
                 if not np.isnan(cell.median_error) else "      — ")
        lines.append(
            f"  {cell.vehicles_per_scene:>5}  x{cell.density:<6g} "
            f"{cell.degradation:>4}  "
            f"{cell.direct_coverage * 100:6.1f} % "
            f"{cell.graph_coverage * 100:6.1f} % "
            f"{gain * 100:+6.1f} %  {error}")
    return "\n".join(lines)


def _multi_cli(parser) -> None:
    parser.add_argument("--vehicles", dest="num_vehicles", type=int,
                        default=None,
                        help="cooperating vehicles per scene "
                             "(default: 3)")
    parser.add_argument("--spacing", dest="spacing", type=float,
                        default=None,
                        help="inter-vehicle spacing in meters "
                             "(default: 22)")
    parser.add_argument("--density", dest="density", type=float,
                        default=None,
                        help="world object-density multiplier "
                             "(default: 2.5)")
    parser.add_argument("--degradation", dest="degradation", type=int,
                        default=None,
                        help="sensor impairment rung 0-2 (default: 0)")


register(ExperimentSpec(
    name="multi", runner=run_multi_study, formatter=format_multi_study,
    description="multi-vehicle pose-graph alignment (extension)",
    paper_artifact="extension", parallelizable=True,
    cli_options=_multi_cli,
    cli_option_dests=("num_vehicles", "spacing", "density",
                      "degradation")))

register(ExperimentSpec(
    name="multi-grid", runner=run_multi_grid,
    formatter=format_multi_grid,
    description="fleet size x density x degradation pose-graph grid",
    paper_artifact="extension", parallelizable=True))
