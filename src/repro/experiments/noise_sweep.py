"""Pose-noise severity sweep — the "any severity" claim, quantified.

Table I uses one noise setting (sigma = 2 m / 2 deg).  The paper's
broader claim is that BB-Align "can recover pose errors at any severity"
because it never consumes the corrupted pose.  This sweep varies the
noise from mild to total failure and measures cooperative-detection AP
with the corrupted pose vs with BB-Align's recovery: the corrupted curve
collapses with severity while the recovered curve is flat by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import BBAlign
from repro.detection.evaluation import evaluate_cooperative_detection
from repro.detection.fusion import LateFusionDetector
from repro.detection.simulated import SimulatedDetector
from repro.experiments.common import default_dataset, detect_for_pair
from repro.experiments.registry import ExperimentSpec, register
from repro.noise.pose_noise import PoseNoiseModel

__all__ = ["NoiseSweepResult", "run_noise_sweep", "format_noise_sweep"]

# (label, noise model) per severity step.
SEVERITIES: tuple[tuple[str, PoseNoiseModel], ...] = (
    ("none", PoseNoiseModel(0.0, 0.0)),
    ("0.5 m / 0.5 deg", PoseNoiseModel(0.5, 0.5)),
    ("2 m / 2 deg (Table I)", PoseNoiseModel(2.0, 2.0)),
    ("5 m / 10 deg", PoseNoiseModel(5.0, 10.0)),
    ("total failure", PoseNoiseModel(0.0, 0.0, failure_prob=1.0,
                                     failure_radius=60.0)),
)


@dataclass(frozen=True)
class NoiseSweepResult:
    """AP@0.5 per severity, corrupted vs recovered pose.

    Attributes:
        corrupted_ap / recovered_ap: ``{severity label: AP percent}``.
        recovery_success_rate: fraction of pairs where BB-Align's
            criterion held (recovery is computed once; it does not depend
            on the noise).
        num_pairs: frames evaluated.
    """

    corrupted_ap: dict[str, float]
    recovered_ap: dict[str, float]
    recovery_success_rate: float
    num_pairs: int


def run_noise_sweep(num_pairs: int = 12, seed: int = 2024,
                    max_pair_distance: float = 50.0, *,
                    workers: int = 1) -> NoiseSweepResult:
    del workers  # custom recovery + AP loop; not sharded
    dataset = default_dataset(num_pairs, seed)
    aligner = BBAlign()
    detector = SimulatedDetector()
    method = LateFusionDetector()

    pairs = []
    recovered_poses = []
    recoveries = 0
    for record in dataset:
        pair = record.pair
        if pair.distance > max_pair_distance:
            continue
        ego_dets, other_dets = detect_for_pair(pair, detector, seed,
                                               record.index)
        recovery = aligner.recover(
            pair.ego_cloud, pair.other_cloud,
            [d.box for d in ego_dets], [d.box for d in other_dets],
            rng=np.random.default_rng([seed, record.index]))
        pairs.append(pair)
        if recovery.success:
            recoveries += 1
            recovered_poses.append(recovery.transform)
        else:
            recovered_poses.append(None)

    corrupted_ap: dict[str, float] = {}
    recovered_ap: dict[str, float] = {}
    for severity, (label, model) in enumerate(SEVERITIES):
        # The severity *position* keys the noise stream — str hash() is
        # salted per process and would make results non-reproducible.
        noisy = [model.corrupt(p.gt_relative,
                               np.random.default_rng([seed, i, 100 + severity]))
                 for i, p in enumerate(pairs)]
        corrupted = evaluate_cooperative_detection(
            list(zip(pairs, noisy)), method, rng=seed)
        corrupted_ap[label] = corrupted.overall[0.5].ap_percent
        # A deployed system uses the recovery when available, else GPS.
        fused = [(p, rec if rec is not None else noise)
                 for p, rec, noise in zip(pairs, recovered_poses, noisy)]
        recovered = evaluate_cooperative_detection(fused, method, rng=seed)
        recovered_ap[label] = recovered.overall[0.5].ap_percent

    return NoiseSweepResult(
        corrupted_ap=corrupted_ap,
        recovered_ap=recovered_ap,
        recovery_success_rate=recoveries / max(len(pairs), 1),
        num_pairs=len(pairs),
    )


def format_noise_sweep(result: NoiseSweepResult) -> str:
    lines = [
        f"Pose-noise severity sweep (extension) over {result.num_pairs} "
        f"pairs, late fusion, AP@0.5 "
        f"(recovery success {result.recovery_success_rate * 100:.0f} %):",
        f"  {'severity':>22} | {'corrupted pose':>14} | "
        f"{'with recovery':>13}",
        "  " + "-" * 56,
    ]
    for label in result.corrupted_ap:
        lines.append(f"  {label:>22} | "
                     f"{result.corrupted_ap[label]:12.1f}   | "
                     f"{result.recovered_ap[label]:11.1f}")
    lines.append("  (the recovered column is flat: BB-Align never reads "
                 "the corrupted pose)")
    return "\n".join(lines)


register(ExperimentSpec(
    name="noise-sweep", runner=run_noise_sweep,
    formatter=format_noise_sweep,
    description="AP vs pose-noise severity (extension)",
    paper_artifact="extension", parallelizable=False))
