"""Declarative experiment registry.

Every paper figure/table and every extension study registers itself as
an :class:`ExperimentSpec` when its module is imported; the CLI, the
benchmarks and ``python -m repro`` resolve experiments exclusively
through this registry — no hand-maintained tuple tables, no
per-experiment imports at call sites.

Registering an experiment::

    from repro.experiments.registry import ExperimentSpec, register

    register(ExperimentSpec(
        name="fig7",
        runner=run_fig7,
        formatter=format_fig7,
        description="BB-Align vs VIPS error CDFs",
        paper_artifact="Fig. 7",
    ))

Runners follow the uniform calling convention
``run_*(num_pairs, seed, *, workers)``.  :meth:`ExperimentSpec.run`
shims legacy ``(num_pairs, seed)``-only runners (dropping ``workers``
with a :class:`DeprecationWarning`) so third-party experiments written
against the old convention keep working.
"""

from __future__ import annotations

import importlib
import inspect
import warnings
from dataclasses import dataclass
from typing import Any, Callable

__all__ = ["ExperimentSpec", "register", "get_spec", "get_experiment",
           "all_specs", "experiment_names"]

# Modules that register experiments on import, in the order the CLI
# lists (and `all` runs) them.  Adding an experiment = writing the
# module with its `register(...)` call and naming it here.
_EXPERIMENT_MODULES: tuple[str, ...] = (
    "repro.experiments.fig7_comparison",
    "repro.experiments.fig8_common_cars",
    "repro.experiments.fig9_inliers",
    "repro.experiments.success_rate",
    "repro.experiments.fig10_distance",
    "repro.experiments.fig11_bv_distance",
    "repro.experiments.fig12_box_common_cars",
    "repro.experiments.fig13_detector_model",
    "repro.experiments.table1_detection",
    "repro.experiments.fig14_ablation",
    "repro.experiments.bandwidth",
    "repro.experiments.ablations",
    "repro.experiments.icp_study",
    "repro.experiments.tracking_study",
    "repro.experiments.multi_study",
    "repro.simulation.statistics",
    "repro.experiments.submap_study",
    "repro.experiments.noise_sweep",
    "repro.experiments.robustness_sweep",
)


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, declaratively.

    Attributes:
        name: CLI subcommand / registry key (kebab-case).
        runner: ``run_*`` callable; the uniform convention is
            ``runner(num_pairs, seed, *, workers)`` returning a result
            dataclass.
        formatter: renders the runner's result into paper-style text.
        description: one-line help shown by ``python -m repro list``.
        paper_artifact: the paper figure/table this reproduces, or
            ``"extension"`` for studies beyond the paper.
        parallelizable: whether ``workers`` actually shards work (the
            sweep-backed experiments); purely informational — every
            runner accepts the keyword.
        cli_options: optional hook called with this experiment's CLI
            subparser to register experiment-specific flags (e.g.
            ``repro bandwidth --tier``).
        cli_option_dests: the argparse dests those flags bind; the CLI
            forwards each (when present and not ``None``) as an extra
            keyword to the runner.
    """

    name: str
    runner: Callable[..., Any]
    formatter: Callable[[Any], str]
    description: str
    paper_artifact: str = ""
    parallelizable: bool = True
    cli_options: Callable[[Any], None] | None = None
    cli_option_dests: tuple[str, ...] = ()

    def run(self, num_pairs: int, seed: int, *,
            workers: int = 1, **extra: Any) -> Any:
        """Invoke the runner under the uniform calling convention.

        ``extra`` carries experiment-specific keywords collected from
        ``cli_option_dests``.  Legacy runners without a ``workers``
        parameter are still called (minus ``workers``) with a
        deprecation warning — the shim for experiments written before
        the runtime engine existed.
        """
        if _accepts_workers(self.runner):
            return self.runner(num_pairs=num_pairs, seed=seed,
                               workers=workers, **extra)
        warnings.warn(
            f"experiment {self.name!r}: runner {self.runner.__name__} uses "
            "the legacy (num_pairs, seed) signature; add a keyword-only "
            "'workers' parameter to adopt the uniform convention",
            DeprecationWarning, stacklevel=2)
        return self.runner(num_pairs=num_pairs, seed=seed, **extra)

    def format(self, result: Any) -> str:
        return self.formatter(result)


def _accepts_workers(runner: Callable) -> bool:
    try:
        parameters = inspect.signature(runner).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    if "workers" in parameters:
        return True
    return any(p.kind is inspect.Parameter.VAR_KEYWORD
               for p in parameters.values())


_REGISTRY: dict[str, ExperimentSpec] = {}
_discovered = False


def register(spec: ExperimentSpec) -> ExperimentSpec:
    """Add a spec to the registry (idempotent per name+runner).

    Re-registering the same runner under the same name is a no-op (it
    happens on module re-import); registering a *different* runner under
    an existing name raises, catching copy-paste name collisions early.
    """
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing.runner is not spec.runner:
        raise ValueError(f"experiment name {spec.name!r} already "
                         f"registered by {existing.runner!r}")
    _REGISTRY[spec.name] = spec
    return spec


def _discover() -> None:
    """Import every experiment module once so each registers itself."""
    global _discovered
    if _discovered:
        return
    _discovered = True
    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)


def get_spec(name: str) -> ExperimentSpec:
    """Look up one experiment; raises KeyError with the known names."""
    _discover()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown experiment {name!r}; known: {known}") \
            from None


def get_experiment(name: str) -> ExperimentSpec:
    """Public alias of :func:`get_spec` — look up one experiment by name.

    External tooling kept reaching for ``get_experiment``; both names
    now resolve to the same lookup.
    """
    return get_spec(name)


def all_specs() -> tuple[ExperimentSpec, ...]:
    """Every registered spec, in registration (module) order."""
    _discover()
    return tuple(_REGISTRY.values())


def experiment_names() -> tuple[str, ...]:
    """Registered experiment names, in registration order."""
    return tuple(spec.name for spec in all_specs())
