"""Plain-text rendering of experiment results (paper-style tables/series)."""

from __future__ import annotations

import numpy as np

from repro.metrics.aggregation import Cdf

__all__ = ["format_cdf_series", "format_percentile_table", "format_table"]


def format_cdf_series(name: str, cdf: Cdf,
                      grid=(0.25, 0.5, 1.0, 2.0, 5.0)) -> str:
    """One CDF rendered as 'P(err <= x)' rows."""
    parts = [f"{name}:"]
    if cdf.values.size == 0:
        parts.append("  (no samples)")
        return "\n".join(parts)
    for threshold in grid:
        parts.append(f"  P(err <= {threshold:g}) = "
                     f"{cdf.fraction_below(threshold) * 100:5.1f} %")
    return "\n".join(parts)


def format_percentile_table(rows: dict[str, dict[int, float]],
                            title: str = "") -> str:
    """Rows of p10/p25/p50/p75/p90 percentiles."""
    lines = []
    if title:
        lines.append(title)
    header = f"{'group':>16} |" + "".join(f"  p{p:<4}" for p in (10, 25, 50, 75, 90))
    lines.append(header)
    lines.append("-" * len(header))
    for name, summary in rows.items():
        cells = "".join(
            f" {summary.get(p, float('nan')):6.2f}" for p in (10, 25, 50, 75, 90))
        lines.append(f"{name:>16} |{cells}")
    return "\n".join(lines)


def format_table(headers: list[str], rows: list[list],
                 title: str = "") -> str:
    """Generic fixed-width table."""
    widths = [max(len(str(h)), 6) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            text = f"{cell:.1f}" if isinstance(cell, float) else str(cell)
            widths[i] = max(widths[i], len(text))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        cells = []
        for cell, width in zip(row, widths):
            text = (f"{cell:.1f}" if isinstance(cell, float)
                    and not np.isnan(cell) else
                    ("--" if isinstance(cell, float) else str(cell)))
            cells.append(text.rjust(width))
        lines.append(" | ".join(cells))
    return "\n".join(lines)
