"""Channel-robustness sweep — pose recovery under a lossy V2V link.

The paper evaluates BB-Align on cleanly delivered messages.  A deployed
V2V link drops, truncates and corrupts frames; this extension study
pushes every pair's encoded :class:`~repro.comms.V2VMessage` through a
:class:`~repro.comms.LossyChannel` over a (drop rate x corruption rate)
grid and measures how the recovery degrades: success rate per cell,
error on the surviving recoveries, and which rung of the fallback
ladder (:class:`~repro.core.DegradationLevel`) absorbed each failure.

The zero-impairment cell is the control: the channel short-circuits to
an identical payload, so its numbers must equal a clean sweep's — any
difference would mean the robustness plumbing itself perturbs results.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.comms.channel import LossyChannel
from repro.comms.message import V2VMessage
from repro.core.pipeline import BBAlign
from repro.detection.simulated import SimulatedDetector
from repro.experiments.common import default_dataset, detect_for_pair
from repro.experiments.registry import ExperimentSpec, register
from repro.metrics.pose_error import pose_errors

__all__ = ["RobustnessCell", "RobustnessResult", "run_robustness_sweep",
           "format_robustness_sweep"]

# The grid: drop rate x per-byte corruption rate.  Corruption rates are
# per *byte*, so 1e-3 on a ~40 kB message flips ~40 bytes — enough that
# most frames fail their CRC and the decode rung of the ladder carries
# the cell.
DROP_RATES: tuple[float, ...] = (0.0, 0.1, 0.3)
CORRUPTION_RATES: tuple[float, ...] = (0.0, 1e-4, 1e-3)

# Spawn-key stream tags (see repro.experiments.common for the
# convention): 2 = recovery RANSAC, 7 = channel transmissions.
_RECOVERY_STREAM = 2
_CHANNEL_STREAM = 7


@dataclass(frozen=True)
class RobustnessCell:
    """Aggregates for one (drop rate, corruption rate) grid cell.

    Attributes:
        drop_rate / corruption_rate: the cell's channel setting.
        num_pairs: pairs evaluated.
        successes: recoveries meeting BB-Align's success criterion.
        dropped / undecodable: messages lost outright / delivered but
            failing decode (CRC, truncation, bad frame).
        temporal_fallbacks / identity_fallbacks: failures answered with
            the last good pose vs the flagged identity.
        mean_translation_error / mean_rotation_error_deg: means over the
            *successful* recoveries (NaN when none succeeded).
        failure_reasons: ``{FailureReason value: count}`` over failures.
    """

    drop_rate: float
    corruption_rate: float
    num_pairs: int
    successes: int
    dropped: int
    undecodable: int
    temporal_fallbacks: int
    identity_fallbacks: int
    mean_translation_error: float
    mean_rotation_error_deg: float
    failure_reasons: dict[str, int]

    @property
    def success_rate(self) -> float:
        return self.successes / max(self.num_pairs, 1)


@dataclass(frozen=True)
class RobustnessResult:
    """The full grid plus the sweep's provenance."""

    cells: tuple[RobustnessCell, ...]
    num_pairs: int
    seed: int

    def cell(self, drop_rate: float,
             corruption_rate: float) -> RobustnessCell:
        for cell in self.cells:
            if (cell.drop_rate == drop_rate
                    and cell.corruption_rate == corruption_rate):
                return cell
        raise KeyError(f"no cell ({drop_rate}, {corruption_rate})")


def run_robustness_sweep(num_pairs: int = 12, seed: int = 2024, *,
                         workers: int = 1,
                         drop_rates: tuple[float, ...] = DROP_RATES,
                         corruption_rates: tuple[float, ...]
                         = CORRUPTION_RATES) -> RobustnessResult:
    """Evaluate recovery success over the channel-impairment grid.

    Every pair's message is encoded once; each grid cell pushes it
    through its own :class:`LossyChannel` with a per-(cell, pair)
    spawn-key stream, then recovers via
    :meth:`~repro.core.BBAlign.recover` — the
    receiver-side entry point that never raises.  Each cell uses a
    fresh :class:`BBAlign` so the temporal last-good memory cannot leak
    between cells, and pairs run in index order so that memory means
    "the previous frame", as it would on a vehicle.
    """
    del workers  # sequential by design: temporal fallback is stateful
    dataset = default_dataset(num_pairs, seed)
    encoder = BBAlign()
    detector = SimulatedDetector()

    # Sender side, once per pair: detections, ego features, wire bytes.
    prepared = []
    for record in dataset:
        pair = record.pair
        ego_dets, other_dets = detect_for_pair(pair, detector, seed,
                                               record.index)
        ego_features = encoder.extract_features(pair.ego_cloud)
        other_features = encoder.extract_features(pair.other_cloud)
        payload = V2VMessage(
            other_features.bv_image,
            [d.box.to_bev() for d in other_dets]).to_bytes()
        prepared.append((record.index, pair, ego_features,
                         [d.box for d in ego_dets], payload))

    cells = []
    for cell_index, (drop, corruption) in enumerate(
            (d, c) for d in drop_rates for c in corruption_rates):
        channel = LossyChannel(drop_rate=drop, corruption_rate=corruption)
        aligner = BBAlign()  # fresh temporal memory per cell
        successes = dropped = undecodable = 0
        temporal = identity = 0
        translation_errors = []
        rotation_errors = []
        reasons: Counter[str] = Counter()
        for index, pair, ego_features, ego_boxes, payload in prepared:
            delivery = channel.transmit(
                payload,
                rng=np.random.default_rng(
                    [seed, cell_index, index, _CHANNEL_STREAM]))
            result = aligner.recover(
                ego_features, delivery.payload, ego_boxes,
                rng=np.random.default_rng(
                    [seed, index, _RECOVERY_STREAM]),
                stale=delivery.delay_frames > 0)
            if result.success:
                successes += 1
                errors = pose_errors(result.transform, pair.gt_relative)
                translation_errors.append(errors.translation)
                rotation_errors.append(errors.rotation_deg)
            else:
                reasons[str(result.failure_reason.value)] += 1
            dropped += delivery.dropped
            undecodable += (result.failure_reason is not None
                            and result.failure_reason.value
                            == "message-undecodable")
            temporal += result.degradation.value == "temporal"
            identity += result.degradation.value == "identity"
        cells.append(RobustnessCell(
            drop_rate=drop,
            corruption_rate=corruption,
            num_pairs=len(prepared),
            successes=successes,
            dropped=dropped,
            undecodable=undecodable,
            temporal_fallbacks=temporal,
            identity_fallbacks=identity,
            mean_translation_error=float(np.mean(translation_errors))
            if translation_errors else float("nan"),
            mean_rotation_error_deg=float(np.mean(rotation_errors))
            if rotation_errors else float("nan"),
            failure_reasons=dict(reasons),
        ))
    return RobustnessResult(cells=tuple(cells), num_pairs=len(prepared),
                            seed=seed)


def format_robustness_sweep(result: RobustnessResult) -> str:
    drops = sorted({c.drop_rate for c in result.cells})
    corruptions = sorted({c.corruption_rate for c in result.cells})
    corner = "drop \\ corr"
    lines = [
        f"Channel-robustness sweep (extension) over {result.num_pairs} "
        f"pairs (seed {result.seed}):",
        "  success rate (%) by drop rate (rows) x per-byte corruption "
        "rate (cols):",
        "  " + f"{corner:>12} | "
        + " | ".join(f"{c:>8.0e}" for c in corruptions),
        "  " + "-" * (15 + 11 * len(corruptions)),
    ]
    for drop in drops:
        row = [f"{result.cell(drop, c).success_rate * 100:8.0f}"
               for c in corruptions]
        lines.append("  " + f"{drop:>12.2f} | " + " | ".join(row))
    lines.append("  fallback usage (temporal/identity) and mean error on "
                 "successes:")
    for cell in result.cells:
        err = ("-" if np.isnan(cell.mean_translation_error)
               else f"{cell.mean_translation_error:.2f} m")
        reasons = ", ".join(f"{k}: {v}" for k, v in
                            sorted(cell.failure_reasons.items())) or "none"
        lines.append(
            f"    drop {cell.drop_rate:.2f} corr {cell.corruption_rate:.0e}"
            f": {cell.successes}/{cell.num_pairs} ok, "
            f"{cell.temporal_fallbacks} temporal / "
            f"{cell.identity_fallbacks} identity, err {err} "
            f"({reasons})")
    lines.append("  (the 0.00 / 0e+00 cell is the clean-channel control)")
    return "\n".join(lines)


register(ExperimentSpec(
    name="robustness", runner=run_robustness_sweep,
    formatter=format_robustness_sweep,
    description="recovery success under a lossy V2V channel (extension)",
    paper_artifact="extension", parallelizable=False))
