"""Submap study — accumulated scans vs single sweeps at long range.

The reproduction's known deviation (EXPERIMENTS.md) is that long-range
(55 m+) recovery fails more often than the paper's: a single sweep is
too sparse in the far overlap region.  BVMatch — the paper's matching
substrate — actually matches *submaps*.  This study measures what
3-sweep odometry-fused submaps buy BB-Align's stage 1 on hard, long-range
pairs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.bv_matching import BVMatcher
from repro.core.config import BBAlignConfig
from repro.experiments.registry import ExperimentSpec, register
from repro.geometry.se2 import SE2
from repro.metrics.pose_error import pose_errors
from repro.pointcloud.accumulate import accumulate_scans
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.sequence import DriveSequence, SequenceConfig

__all__ = ["SubmapStudyResult", "run_submap_study", "format_submap_study"]

_SWEEPS = 3


@dataclass(frozen=True)
class SubmapStudyResult:
    """Aggregates over all long-range scenes.

    Attributes:
        single_success / submap_success: stage-1 success-criterion rate.
        single_median_inliers / submap_median_inliers: Inliers_bv.
        single_under_1m / submap_under_1m: accurate recoveries over all
            scenes.
        num_scenes: scenes evaluated.
        distance_range: the (hard) inter-vehicle distances used.
    """

    single_success: float
    submap_success: float
    single_median_inliers: float
    submap_median_inliers: float
    single_under_1m: float
    submap_under_1m: float
    num_scenes: int
    distance_range: tuple[float, float]


def _noisy_step(step: SE2, rng: np.random.Generator) -> SE2:
    scale = 1.0 + rng.normal(0.0, 0.01)
    return SE2(step.theta + rng.normal(0.0, np.deg2rad(0.05)),
               step.tx * scale + rng.normal(0.0, 0.01),
               step.ty * scale + rng.normal(0.0, 0.01))


def run_submap_study(num_pairs: int = 6, seed: int = 2024,
                     distance_range: tuple[float, float] = (50.0, 65.0),
                     *, workers: int = 1) -> SubmapStudyResult:
    """Run the study (``num_pairs`` = scene count)."""
    del workers  # per-scene submap accumulation; not sharded
    num_scenes = max(num_pairs, 1)
    matcher = BVMatcher(BBAlignConfig())
    threshold = BBAlignConfig().success.min_inliers_bv

    single_inliers, submap_inliers = [], []
    single_hits = submap_hits = 0
    single_ok = submap_ok = 0
    for s in range(num_scenes):
        rng = np.random.default_rng([seed, s])
        distance = float(rng.uniform(*distance_range))
        sequence = DriveSequence(SequenceConfig(
            scenario=ScenarioConfig(distance=distance,
                                    same_direction_prob=1.0),
            num_frames=_SWEEPS, frame_dt=0.25), rng=rng)
        frames = list(sequence)
        current = frames[-1]

        # Odometry poses per sweep, from noisy GT deltas (each vehicle's
        # own dead reckoning).
        def odometry(poses_attr):
            chain = [SE2.identity()]
            for previous, frame in zip(frames[:-1], frames[1:]):
                step = _noisy_step(
                    getattr(previous, poses_attr).inverse()
                    @ getattr(frame, poses_attr), rng)
                chain.append(chain[-1] @ step)
            return chain

        ego_submap = accumulate_scans(
            [f.ego_cloud for f in frames], odometry("ego_pose"))
        other_submap = accumulate_scans(
            [f.other_cloud for f in frames], odometry("other_pose"))

        gt = current.gt_relative
        single = matcher.match_clouds(current.other_cloud,
                                      current.ego_cloud,
                                      rng=np.random.default_rng([seed, s, 1]))
        submap = matcher.match_clouds(other_submap, ego_submap,
                                      rng=np.random.default_rng([seed, s, 2]))

        single_inliers.append(single.inliers_bv)
        submap_inliers.append(submap.inliers_bv)
        single_hits += single.inliers_bv > threshold
        submap_hits += submap.inliers_bv > threshold
        if single.success:
            single_ok += pose_errors(single.transform, gt).translation < 1.0
        if submap.success:
            submap_ok += pose_errors(submap.transform, gt).translation < 1.0

    n = num_scenes
    return SubmapStudyResult(
        single_success=single_hits / n,
        submap_success=submap_hits / n,
        single_median_inliers=float(np.median(single_inliers)),
        submap_median_inliers=float(np.median(submap_inliers)),
        single_under_1m=single_ok / n,
        submap_under_1m=submap_ok / n,
        num_scenes=n,
        distance_range=distance_range,
    )


def format_submap_study(result: SubmapStudyResult) -> str:
    lo, hi = result.distance_range
    return "\n".join([
        f"Submap study (extension) — {result.num_scenes} long-range scenes "
        f"({lo:.0f}-{hi:.0f} m), {_SWEEPS}-sweep odometry-fused submaps:",
        f"  stage-1 success rate: single sweep "
        f"{result.single_success * 100:5.1f} %  ->  submap "
        f"{result.submap_success * 100:5.1f} %",
        f"  median Inliers_bv:    single {result.single_median_inliers:.0f}"
        f"  ->  submap {result.submap_median_inliers:.0f}",
        f"  recoveries under 1 m: single "
        f"{result.single_under_1m * 100:5.1f} %  ->  submap "
        f"{result.submap_under_1m * 100:5.1f} %",
        "  (BVMatch, the paper's matching substrate, matches submaps — "
        "density at range is what single sweeps lack)",
    ])


register(ExperimentSpec(
    name="submap", runner=run_submap_study, formatter=format_submap_study,
    description="submap accumulation at long range (extension)",
    paper_artifact="extension", parallelizable=False))
