"""Sec. V-A success-rate analysis.

Paper result: with the empirical thresholds, 80 % of the 6,145 evaluated
pairs recover successfully; failures concentrate where landmarks are
scarce (open areas).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import PairOutcome, default_dataset, run_pose_recovery_sweep
from repro.experiments.registry import ExperimentSpec, register

__all__ = ["SuccessRateResult", "run_success_rate", "format_success_rate"]


@dataclass(frozen=True)
class SuccessRateResult:
    """Overall and per-scenario success rates."""

    overall: float
    by_scenario: dict[str, float]
    scenario_counts: dict[str, int]
    num_pairs: int


def compute_success_rate(outcomes: list[PairOutcome]) -> SuccessRateResult:
    overall = (sum(o.success for o in outcomes) / len(outcomes)
               if outcomes else float("nan"))
    by_scenario: dict[str, float] = {}
    counts: dict[str, int] = {}
    for kind in sorted({o.scenario_kind for o in outcomes}):
        members = [o for o in outcomes if o.scenario_kind == kind]
        counts[kind] = len(members)
        by_scenario[kind] = sum(o.success for o in members) / len(members)
    return SuccessRateResult(overall, by_scenario, counts, len(outcomes))


def run_success_rate(num_pairs: int = 60, seed: int = 2024, *,
                     workers: int = 1) -> SuccessRateResult:
    dataset = default_dataset(num_pairs, seed)
    outcomes = run_pose_recovery_sweep(dataset, include_vips=False,
                                       workers=workers)
    return compute_success_rate(outcomes)


def format_success_rate(result: SuccessRateResult) -> str:
    lines = [
        f"Success rate (Sec. V-A) over {result.num_pairs} pairs: "
        f"{result.overall * 100:.1f} %  (paper: 80 %)",
    ]
    for kind, rate in result.by_scenario.items():
        lines.append(f"  {kind:>9} (n={result.scenario_counts[kind]:3d}): "
                     f"{rate * 100:5.1f} %")
    lines.append("  (paper: failures concentrate where landmarks are "
                 "scarce — open/highway scenes)")
    return "\n".join(lines)


register(ExperimentSpec(
    name="success-rate", runner=run_success_rate,
    formatter=format_success_rate,
    description="Sec. V-A success-rate analysis",
    paper_artifact="Sec. V-A"))
