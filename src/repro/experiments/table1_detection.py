"""Table I — cooperative detection AP under corrupted vs recovered pose.

Paper result: Gaussian pose noise (sigma_t = 2 m, sigma_theta = 2 deg)
cripples every fusion method (no method above AP 35/20 at IoU 0.5/0.7);
plugging in BB-Align's recovered pose roughly doubles AP at 0.5 with the
biggest gains at 0-30 m (all methods above 60 there).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import BBAlign
from repro.detection.evaluation import (
    DISTANCE_BINS,
    DetectionEvalResult,
    evaluate_cooperative_detection,
)
from repro.detection.fusion import (
    CoBEVTFusionDetector,
    EarlyFusionDetector,
    FCooperFusionDetector,
    LateFusionDetector,
)
from repro.detection.simulated import COBEVT_PROFILE, SimulatedDetector
from repro.experiments.common import default_dataset, detect_for_pair
from repro.experiments.registry import ExperimentSpec, register
from repro.experiments.reporting import format_table
from repro.geometry.se2 import SE2
from repro.noise.pose_noise import PoseNoiseModel

__all__ = ["Table1Result", "run_table1", "format_table1"]


@dataclass(frozen=True)
class Table1Result:
    """AP tables per (method, pose source).

    Attributes:
        results: ``{(method_name, pose_source): DetectionEvalResult}``
            with pose_source in {"noisy", "recovered"}.
        recovery_success_rate: fraction of pairs where BB-Align met its
            success criterion (failures fall back to the noisy pose, as a
            deployed system would).
        num_pairs: evaluated pair count.
    """

    results: dict[tuple[str, str], DetectionEvalResult]
    recovery_success_rate: float
    num_pairs: int


def run_table1(num_pairs: int = 40, seed: int = 2024,
               sigma_translation: float = 2.0,
               sigma_rotation_deg: float = 2.0,
               max_pair_distance: float = 60.0, *,
               workers: int = 1) -> Table1Result:
    """Run the Table I experiment.

    Args:
        num_pairs: dataset pairs to evaluate.
        seed: dataset seed.
        sigma_translation / sigma_rotation_deg: the paper's pose noise.
        max_pair_distance: skip pairs whose vehicles are farther apart
            (fusion adds nothing there and recovery rarely succeeds —
            the paper's detection evaluation is likewise dominated by
            close-range cooperation).
        workers: accepted for the uniform runner convention; this
            experiment's fusion loop runs in-process regardless.

    Returns:
        A :class:`Table1Result`.
    """
    del workers  # custom fusion loop; not sharded
    dataset = default_dataset(num_pairs, seed)
    noise = PoseNoiseModel(sigma_translation=sigma_translation,
                           sigma_rotation_deg=sigma_rotation_deg)
    aligner = BBAlign()
    detector = SimulatedDetector(COBEVT_PROFILE)

    pairs_noisy: list[tuple] = []
    pairs_recovered: list[tuple] = []
    recoveries = 0
    used = 0
    for record in dataset:
        pair = record.pair
        if pair.distance > max_pair_distance:
            continue
        used += 1
        noisy_pose = noise.corrupt(
            pair.gt_relative, np.random.default_rng([seed, record.index, 10]))
        ego_dets, other_dets = detect_for_pair(pair, detector, seed,
                                               record.index)
        recovery = aligner.recover(
            pair.ego_cloud, pair.other_cloud,
            [d.box for d in ego_dets], [d.box for d in other_dets],
            rng=np.random.default_rng([seed, record.index, 11]))
        if recovery.success:
            recovered_pose: SE2 = recovery.transform
            recoveries += 1
        else:
            recovered_pose = noisy_pose  # system falls back to GPS
        pairs_noisy.append((pair, noisy_pose))
        pairs_recovered.append((pair, recovered_pose))

    methods = [EarlyFusionDetector(), LateFusionDetector(),
               FCooperFusionDetector(), CoBEVTFusionDetector()]
    results: dict[tuple[str, str], DetectionEvalResult] = {}
    for method in methods:
        results[(method.name, "noisy")] = evaluate_cooperative_detection(
            pairs_noisy, method, rng=seed)
        results[(method.name, "recovered")] = evaluate_cooperative_detection(
            pairs_recovered, method, rng=seed)
    return Table1Result(results=results,
                        recovery_success_rate=recoveries / max(used, 1),
                        num_pairs=used)


def format_table1(result: Table1Result) -> str:
    """Render the paper's Table I layout (AP@0.5/0.7 per cell)."""
    headers = ["Method", "Pose", "Overall", "0-30m", "30-50m", "50-100m"]
    rows: list[list] = []
    for (name, source), eval_result in result.results.items():
        cells = [name, source]
        for column in [None, *DISTANCE_BINS]:
            if column is None:
                ap50 = eval_result.overall[0.5].ap_percent
                ap70 = eval_result.overall[0.7].ap_percent
            else:
                ap50 = eval_result.by_distance[column][0.5].ap_percent
                ap70 = eval_result.by_distance[column][0.7].ap_percent
            cells.append(f"{ap50:.1f}/{ap70:.1f}")
        rows.append(cells)
    return "\n".join([
        f"Table I — AP@IoU=0.5/0.7 over {result.num_pairs} pairs "
        f"(recovery success {result.recovery_success_rate * 100:.0f} %)",
        format_table(headers, rows),
        "  (paper: noise caps every method at 35/20; recovery roughly "
        "doubles AP@0.5, strongest at 0-30 m)",
    ])


register(ExperimentSpec(
    name="table1", runner=run_table1, formatter=format_table1,
    description="cooperative detection AP, noisy vs recovered pose",
    paper_artifact="Table I", parallelizable=False))
