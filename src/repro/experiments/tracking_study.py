"""Tracking study — per-frame recovery vs odometry-fused tracking.

Extension experiment: over drive sequences, compare raw per-frame
BB-Align output with :class:`repro.core.temporal.PoseTracker`, measuring

* coverage — fraction of frames with a usable estimate (< 1 m), where
  raw recovery only counts frames meeting the success criterion but the
  tracker can coast through gaps on odometry;
* accuracy on covered frames.

Odometry increments are taken from ground-truth pose deltas corrupted
with realistic noise (1 % scale error + jitter), modeling wheel/IMU
odometry over 0.1-0.3 s horizons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.pipeline import BBAlign
from repro.core.temporal import PoseTracker
from repro.detection.simulated import SimulatedDetector
from repro.experiments.registry import ExperimentSpec, register
from repro.geometry.se2 import SE2
from repro.simulation.scenario import ScenarioConfig
from repro.simulation.sequence import DriveSequence, SequenceConfig

__all__ = ["TrackingStudyResult", "run_tracking_study",
           "format_tracking_study"]


@dataclass(frozen=True)
class TrackingStudyResult:
    """Aggregates over all sequences.

    Attributes:
        raw_coverage: frames with successful recovery AND < 1 m error.
        tracked_coverage: frames where the (initialized) tracker is
            < 1 m from truth.
        raw_median_error: median error of successful recoveries.
        tracked_median_error: median error of initialized tracker frames.
        num_sequences / frames_per_sequence: study size.
    """

    raw_coverage: float
    tracked_coverage: float
    raw_median_error: float
    tracked_median_error: float
    num_sequences: int
    frames_per_sequence: int


def _noisy_step(step: SE2, rng: np.random.Generator) -> SE2:
    """Odometry-style corruption: 1 % scale + small additive jitter."""
    scale = 1.0 + rng.normal(0.0, 0.01)
    return SE2(step.theta + rng.normal(0.0, np.deg2rad(0.05)),
               step.tx * scale + rng.normal(0.0, 0.01),
               step.ty * scale + rng.normal(0.0, 0.01))


def run_tracking_study(num_pairs: int = 4, seed: int = 2024,
                       frames_per_sequence: int = 8, *,
                       workers: int = 1) -> TrackingStudyResult:
    """Run the study (``num_pairs`` doubles as the sequence count, for
    CLI signature uniformity)."""
    del workers  # sequential tracker state; not shardable
    num_sequences = max(num_pairs, 1)
    aligner = BBAlign()
    detector = SimulatedDetector()

    raw_errors: list[float] = []
    raw_usable = 0
    tracked_errors: list[float] = []
    tracked_usable = 0
    total_frames = 0

    for s in range(num_sequences):
        rng = np.random.default_rng([seed, s])
        sequence = DriveSequence(
            SequenceConfig(scenario=ScenarioConfig(
                distance=float(rng.uniform(15, 40)),
                same_direction_prob=1.0),
                num_frames=frames_per_sequence, frame_dt=0.2),
            rng=rng)
        tracker = PoseTracker()
        previous = None
        for t, frame in enumerate(sequence):
            total_frames += 1
            ego_dets = detector.detect(frame.ego_visible,
                                       np.random.default_rng([seed, s, t, 0]))
            other_dets = detector.detect(frame.other_visible,
                                         np.random.default_rng([seed, s, t, 1]))
            recovery = aligner.recover(
                frame.ego_cloud, frame.other_cloud,
                [d.box for d in ego_dets], [d.box for d in other_dets],
                rng=np.random.default_rng([seed, s, t, 2]))

            if previous is not None and tracker.initialized:
                ego_step = _noisy_step(
                    previous.ego_pose.inverse() @ frame.ego_pose, rng)
                other_step = _noisy_step(
                    previous.other_pose.inverse() @ frame.other_pose, rng)
                tracker.predict(ego_step, other_step)
            tracked = tracker.update(recovery)
            previous = frame

            truth = frame.gt_relative
            if recovery.success:
                error = recovery.transform.translation_distance(truth)
                raw_errors.append(error)
                raw_usable += error < 1.0
            if tracker.initialized:
                error = tracked.transform.translation_distance(truth)
                tracked_errors.append(error)
                tracked_usable += error < 1.0

    return TrackingStudyResult(
        raw_coverage=raw_usable / max(total_frames, 1),
        tracked_coverage=tracked_usable / max(total_frames, 1),
        raw_median_error=(float(np.median(raw_errors))
                          if raw_errors else float("nan")),
        tracked_median_error=(float(np.median(tracked_errors))
                              if tracked_errors else float("nan")),
        num_sequences=num_sequences,
        frames_per_sequence=frames_per_sequence,
    )


def format_tracking_study(result: TrackingStudyResult) -> str:
    return "\n".join([
        f"Tracking study (extension) — {result.num_sequences} sequences x "
        f"{result.frames_per_sequence} frames:",
        f"  per-frame recovery: coverage(<1m) = "
        f"{result.raw_coverage * 100:5.1f} %, median error "
        f"{result.raw_median_error:.2f} m",
        f"  odometry-fused tracker: coverage(<1m) = "
        f"{result.tracked_coverage * 100:5.1f} %, median error "
        f"{result.tracked_median_error:.2f} m",
        "  (the tracker coasts through failed recoveries on odometry, "
        "raising coverage)",
    ])


register(ExperimentSpec(
    name="tracking", runner=run_tracking_study,
    formatter=format_tracking_study,
    description="temporal tracking over drive sequences (extension)",
    paper_artifact="extension", parallelizable=False))
