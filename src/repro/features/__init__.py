"""Keypoint detection, description and matching on BV images.

Implements the remainder of the paper's Section IV-A: FAST keypoints on
the BV image, BVFT-style rotation-normalized descriptors computed from the
MIM, and nearest-neighbor descriptor matching.  A gradient-histogram
("SIFT-like") baseline is included to reproduce the paper's observation
that classic intensity features fail on sparse BV images.
"""

from repro.features.descriptors import (
    BvftConfig,
    BvftDescriptorExtractor,
    DescriptorSet,
)
from repro.features.fast import FastConfig, Keypoints, detect_fast
from repro.features.gradient_baseline import GradientDescriptorExtractor
from repro.features.harris import HarrisConfig, detect_harris
from repro.features.pc_keypoints import PcKeypointConfig, detect_pc_keypoints
from repro.features.matching import MatchResult, match_descriptors

__all__ = [
    "BvftConfig",
    "BvftDescriptorExtractor",
    "DescriptorSet",
    "FastConfig",
    "GradientDescriptorExtractor",
    "HarrisConfig",
    "Keypoints",
    "MatchResult",
    "PcKeypointConfig",
    "detect_fast",
    "detect_harris",
    "detect_pc_keypoints",
    "match_descriptors",
]
