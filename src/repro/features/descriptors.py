"""BVFT-style descriptors computed from the Maximum Index Map.

For each keypoint the paper (following BVMatch [27] / RIFT [25]):

1. takes a ``J x J`` patch of the MIM centered on the keypoint,
2. estimates the patch's *dominant orientation* from the amplitude-weighted
   histogram of MIM values and rotates the patch so the dominant
   orientation lands on a fixed reference (the ORB trick, giving rotation
   invariance),
3. splits the patch into ``l x l`` grid cells and builds one ``N_o``-bin
   orientation histogram per cell (Eq. in Sec. IV-A), yielding an
   ``l * l * N_o`` vector, which is L2-normalized.

Rotating an orientation *map* needs two coupled actions: resampling pixel
positions by the rotation, and shifting the orientation *values* by the
same angle (an orientation index is itself a direction).  MIM orientations
live on ``[0, pi)`` in steps of ``pi / N_o``, so rotation by a dominant-bin
angle is an exact circular shift of the value space.

The extractor is loop-free over keypoints: patches for a whole block of
keypoints are gathered with one fancy index, dominant-orientation voting
and the final ``l*l*N_o`` histograms are each a single offset-flattened
``np.bincount`` (each keypoint owns a disjoint bin range, so one call
accumulates every histogram at once, in the same per-bin order as the
per-keypoint loop — sums are bit-identical), and normalize/clip/drop run
vectorized over rows.  The pre-vectorization per-keypoint loop is kept as
:meth:`BvftDescriptorExtractor._reference_compute` for equivalence tests
and the stage-1 micro-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bev.mim import MIMResult
from repro.features.fast import Keypoints

__all__ = ["BvftConfig", "DescriptorSet", "BvftDescriptorExtractor"]

_INVALID = -1  # marker for out-of-image / zero-energy pixels in patches

# Keypoints are processed in blocks of this size: large enough to amortize
# the bincount calls, small enough that the (block, J, J) gather tensors
# (~1.2 MB at J=48) stay cache-resident — 64 measures ~2x faster than 512
# on both the 192- and 320-pixel configurations.
_KEYPOINT_BLOCK = 64


@dataclass(frozen=True)
class BvftConfig:
    """Descriptor hyperparameters (paper: J = 96, l = 6; the default
    J = 48 is the simulated-substrate calibration, see DESIGN.md).

    Attributes:
        patch_size: side length ``J`` of the square descriptor patch, in
            pixels.
        grid_size: ``l``; the patch is divided into ``l x l`` cells.
        rotation_invariant: when False, skips the dominant-orientation
            normalization (useful for ablations; the paper notes MIM alone
            is not rotation invariant).
        clip_value: SIFT-style histogram clipping fraction applied after
            the first normalization (0 disables).
        amplitude_weighting: weight histogram votes by Log-Gabor amplitude
            rather than counting pixels.
    """

    patch_size: int = 48
    grid_size: int = 6
    rotation_invariant: bool = True
    clip_value: float = 0.25
    amplitude_weighting: bool = True

    def __post_init__(self) -> None:
        if self.patch_size < 4:
            raise ValueError("patch_size must be >= 4")
        if self.grid_size < 1:
            raise ValueError("grid_size must be >= 1")
        if self.patch_size % self.grid_size != 0:
            raise ValueError("patch_size must be divisible by grid_size")
        if not (0 <= self.clip_value <= 1):
            raise ValueError("clip_value must be in [0, 1]")

    def descriptor_length(self, num_orientations: int) -> int:
        return self.grid_size * self.grid_size * num_orientations


@dataclass(frozen=True)
class DescriptorSet:
    """Descriptors for the keypoints that could be described.

    Attributes:
        descriptors: (M, D) float array, rows L2-normalized.
        keypoint_xy: (M, 2) pixel (col, row) positions, aligned with rows.
        keypoint_indices: (M,) indices into the original keypoint list.
        dominant_bins: (M,) dominant-orientation bin used for rotation
            normalization (0 when rotation invariance is off).
    """

    descriptors: np.ndarray
    keypoint_xy: np.ndarray
    keypoint_indices: np.ndarray
    dominant_bins: np.ndarray

    def __len__(self) -> int:
        return len(self.descriptors)

    @staticmethod
    def empty(dim: int) -> "DescriptorSet":
        return DescriptorSet(np.empty((0, dim)), np.empty((0, 2)),
                             np.empty(0, dtype=int), np.empty(0, dtype=int))


class BvftDescriptorExtractor:
    """Computes BVFT descriptors for FAST keypoints on a MIM.

    The rotation resampling grids are precomputed once per dominant bin
    (there are only ``N_o`` possible rotation angles), so per-block work
    is two fancy-indexing gathers and two bincounts.
    """

    def __init__(self, config: BvftConfig | None = None) -> None:
        self.config = config or BvftConfig()
        self._rotation_grids: dict[tuple[int, int], np.ndarray] = {}
        self._linear_grids: dict[tuple[int, int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _rotation_grid(self, num_orientations: int, bin_index: int,
                       patch: int) -> np.ndarray:
        """(2, J, J) integer source offsets implementing rotation by the
        bin's angle about the patch center (inverse mapping, nearest
        neighbor)."""
        key = (num_orientations, bin_index)
        grid = self._rotation_grids.get(key)
        if grid is not None:
            return grid
        angle = bin_index * np.pi / num_orientations
        half = (patch - 1) / 2.0
        out = np.arange(patch) - half
        oc, orr = np.meshgrid(out, out)  # output col/row offsets
        # Inverse map: source = R(+angle) @ output (rotating the patch
        # content by -angle aligns the dominant orientation to bin 0).
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        src_c = cos_a * oc - sin_a * orr
        src_r = sin_a * oc + cos_a * orr
        grid = np.stack([np.rint(src_r).astype(np.int64),
                         np.rint(src_c).astype(np.int64)])
        self._rotation_grids[key] = grid
        return grid

    def _linear_grid_stack(self, num_orientations: int, patch: int,
                           stride: int) -> np.ndarray:
        """(N_o, J, J) intp stack of *flattened* rotation grids for a
        padded image of row stride ``stride``: entry ``[b, i, j]`` is the
        linear offset ``row * stride + col`` of the source pixel, so one
        ``take`` plus a per-keypoint base offset gathers a whole block."""
        key = (num_orientations, patch, stride)
        stack = self._linear_grids.get(key)
        if stack is not None:
            return stack
        grids = [self._rotation_grid(num_orientations, b, patch)
                 for b in range(num_orientations)]
        # int32 offsets halve the index-tensor traffic; linear indices are
        # bounded by the padded image size, so this is safe below 2**31
        # pixels (a guard in compute() falls back to intp above that).
        stack = np.stack([g[0] * stride + g[1] for g in grids]).astype(np.int32)
        self._linear_grids[key] = stack
        return stack

    # ------------------------------------------------------------------
    def compute(self, mim_result: MIMResult,
                keypoints: Keypoints) -> DescriptorSet:
        """Describe every keypoint far enough from the border.

        Keypoints whose (rotated) patch would leave the image are padded
        with invalid pixels, which simply contribute no histogram votes;
        keypoints with an entirely invalid patch are dropped.
        """
        cfg = self.config
        n_orient = mim_result.num_orientations
        dim = cfg.descriptor_length(n_orient)
        if len(keypoints) == 0:
            return DescriptorSet.empty(dim)

        patch = cfg.patch_size
        # Pad by the patch diagonal so any rotation stays in bounds.
        pad = int(np.ceil(patch * np.sqrt(2) / 2)) + 2
        mim = np.pad(mim_result.mim, pad, mode="constant",
                     constant_values=_INVALID)
        valid = mim_result.valid_mask()
        # Descriptors follow the MIM amplitude precision: a float32 MIM
        # (stage1_precision="float32") yields float32 descriptors.
        out_dtype = (np.float32
                     if mim_result.max_amplitude.dtype == np.float32
                     else np.float64)
        if cfg.amplitude_weighting:
            weights_img = mim_result.max_amplitude * valid
        else:
            weights_img = valid.astype(out_dtype)
        weights = np.pad(weights_img, pad, mode="constant",
                         constant_values=0.0)

        grid_cells = cfg.grid_size
        cell = patch // grid_cells
        # Per-patch-pixel cell base bin (row-major over the l x l grid).
        out_idx = np.arange(patch) // cell
        cell_index = (out_idx[:, None] * grid_cells + out_idx[None, :])
        # Histogram bins fit comfortably in int32 (< block * dim); the
        # narrower dtype halves memory traffic on the (block, J, J)
        # arithmetic passes and matches the int32 MIM patch values, so no
        # pass upcasts to int64.
        cell_bins = (cell_index * n_orient).astype(np.int32)[None]

        # Flattened views + linear indices: one `take` per gather, and mim
        # and weights share each index tensor.  Invalid (padding) pixels
        # need no masking at all — their weight is exactly 0.0, so letting
        # them vote changes no histogram sum bit (x + 0.0 == x for the
        # non-negative partial sums here); `% n_orient` just keeps their
        # bins in range.
        stride = mim.shape[1]
        mim_flat = mim.ravel()
        weights_flat = weights.ravel()
        index_dtype = np.int32 if mim.size < 2 ** 31 else np.intp
        rows_all = np.rint(keypoints.xy[:, 1]).astype(index_dtype) + pad
        cols_all = np.rint(keypoints.xy[:, 0]).astype(index_dtype) + pad
        base_all = rows_all * index_dtype(stride) + cols_all
        lin_grids = self._linear_grid_stack(n_orient, patch, stride)
        if index_dtype is np.intp:  # pathological image sizes only
            lin_grids = lin_grids.astype(np.intp)

        n_kp = len(keypoints)
        block = min(n_kp, _KEYPOINT_BLOCK)
        offsets = np.arange(block, dtype=np.int32)[:, None, None]
        # Per-keypoint histogram base bins, hoisted out of the block loop
        # (integer division/modulo have no SIMD path, so every arithmetic
        # pass over the (block, J, J) tensors is precious).
        vote_base = offsets * n_orient
        hist_base = cell_bins + offsets * dim

        desc_blocks: list[np.ndarray] = []
        kept_blocks: list[np.ndarray] = []
        dom_blocks: list[np.ndarray] = []
        for start in range(0, n_kp, _KEYPOINT_BLOCK):
            stop = min(n_kp, start + _KEYPOINT_BLOCK)
            nb = stop - start
            base = base_all[start:stop, None, None]

            if cfg.rotation_invariant:
                # Dominant orientation from the *unrotated* patches.
                lin0 = lin_grids[0] + base
                vals0 = mim_flat.take(lin0)
                w0 = weights_flat.take(lin0)
                # Valid values already lie in [0, n_orient); maximum() only
                # lifts the weight-0 padding pixels out of bin -1.
                flat0 = np.maximum(vals0, 0) + vote_base[:nb]
                votes = np.bincount(flat0.ravel(), weights=w0.ravel(),
                                    minlength=nb * n_orient
                                    ).reshape(nb, n_orient)
                keep = votes.sum(axis=1) > 0
                dom = np.argmax(votes, axis=1)
            else:
                keep = np.ones(nb, dtype=bool)
                dom = np.zeros(nb, dtype=np.intp)

            # Rotated gather: each keypoint picks the grid of its bin.
            # Bin 0 is the identity rotation, so those rows reuse the
            # vote-stage gather already in hand (~20% of keypoints on
            # typical BV images) and only the rest re-gather.
            if cfg.rotation_invariant:
                nz = np.nonzero(dom)[0]
                vals, w = vals0, w0
                if nz.size:
                    lin_nz = lin_grids.take(dom[nz], axis=0) + base[nz]
                    vals[nz] = mim_flat.take(lin_nz)
                    w[nz] = weights_flat.take(lin_nz)
            else:
                lin = lin_grids.take(dom, axis=0) + base
                vals = mim_flat.take(lin)
                w = weights_flat.take(lin)
            # Rotating content by -angle shifts orientation values by -dom:
            # shifted = (vals - dom) % n_orient, computed branch-free —
            # y is in [-n_orient, n_orient), so folding adds n_orient
            # exactly when y < 0 (arithmetic shift gives the sign mask).
            y = vals - dom.astype(vals.dtype)[:, None, None]
            sign_shift = 8 * y.dtype.itemsize - 1
            y += np.right_shift(y, sign_shift) & y.dtype.type(n_orient)
            flat_bins = hist_base[:nb] + y
            # np.bincount always accumulates in float64; the cast is a
            # no-op on the float64 path (byte-identical) and lands the
            # float32 path on float32 rows before normalization.
            hist = np.bincount(flat_bins.ravel(), weights=w.ravel(),
                               minlength=nb * dim).reshape(nb, dim)
            hist = hist.astype(out_dtype, copy=False)

            norms = np.linalg.norm(hist, axis=1)
            keep &= norms > 0
            hist /= np.where(norms > 0, norms, 1.0)[:, None]
            if cfg.clip_value > 0:
                np.minimum(hist, cfg.clip_value, out=hist)
                norms = np.linalg.norm(hist, axis=1)
                keep &= norms > 0
                hist /= np.where(norms > 0, norms, 1.0)[:, None]

            desc_blocks.append(hist[keep])
            kept_blocks.append(np.arange(start, stop)[keep])
            dom_blocks.append(dom[keep])

        kept_idx = np.concatenate(kept_blocks)
        if kept_idx.size == 0:
            return DescriptorSet.empty(dim)
        return DescriptorSet(
            descriptors=np.concatenate(desc_blocks),
            keypoint_xy=np.asarray(keypoints.xy[kept_idx], dtype=float),
            keypoint_indices=kept_idx.astype(int),
            dominant_bins=np.concatenate(dom_blocks).astype(int),
        )

    # ------------------------------------------------------------------
    def flipped_set(self, descriptors: DescriptorSet,
                    image_size: int) -> DescriptorSet:
        """Descriptors of the 180-degree-rotated MIM, without recompute.

        A 180-degree rotation maps the patch around keypoint ``p`` onto
        the patch around ``(H - 1) - p`` with every sample offset
        negated.  The rotation-grid offset set is symmetric under
        negation, MIM values and amplitudes travel with their pixels
        (orientations are mod pi, so the values themselves are
        unchanged), and histogram votes are position-free within a cell —
        so the dominant orientation is preserved and grid cell
        ``(i, j)`` of the flipped patch receives exactly the votes cell
        ``(l-1-i, l-1-j)`` received in the original.  The flipped
        descriptor is therefore the original with its cell blocks
        reversed, and the keep/drop decisions are identical.

        Only valid when the keypoint coordinates are integral (true for
        FAST): rounding commutes with the mirror ``p -> (H-1) - p`` for
        integers, but not for exact .5 fractions.  Callers with subpixel
        detectors must recompute instead.
        """
        cells = self.config.grid_size ** 2
        d = descriptors.descriptors
        n_orient = d.shape[1] // cells
        flipped = np.ascontiguousarray(
            d.reshape(len(d), cells, n_orient)[:, ::-1, :]
        ).reshape(len(d), cells * n_orient)
        return DescriptorSet(
            descriptors=flipped,
            keypoint_xy=(image_size - 1) - descriptors.keypoint_xy,
            keypoint_indices=descriptors.keypoint_indices.copy(),
            dominant_bins=descriptors.dominant_bins.copy(),
        )

    # ------------------------------------------------------------------
    # Reference (pre-vectorization) implementation: the original
    # per-keypoint loop, kept verbatim for the equivalence tests and the
    # stage-1 micro-benchmark.
    # ------------------------------------------------------------------
    def _reference_compute(self, mim_result: MIMResult,
                           keypoints: Keypoints) -> DescriptorSet:
        cfg = self.config
        n_orient = mim_result.num_orientations
        dim = cfg.descriptor_length(n_orient)
        if len(keypoints) == 0:
            return DescriptorSet.empty(dim)

        patch = cfg.patch_size
        pad = int(np.ceil(patch * np.sqrt(2) / 2)) + 2
        mim = np.pad(mim_result.mim, pad, mode="constant",
                     constant_values=_INVALID)
        valid = mim_result.valid_mask()
        if cfg.amplitude_weighting:
            weights_img = mim_result.max_amplitude * valid
        else:
            weights_img = valid.astype(float)
        weights = np.pad(weights_img, pad, mode="constant",
                         constant_values=0.0)

        grid_cells = cfg.grid_size
        cell = patch // grid_cells
        out_idx = np.arange(patch) // cell
        cell_index = (out_idx[:, None] * grid_cells + out_idx[None, :])

        descriptors = []
        kept_xy = []
        kept_idx = []
        kept_bins = []
        rows_all = np.rint(keypoints.xy[:, 1]).astype(np.int64) + pad
        cols_all = np.rint(keypoints.xy[:, 0]).astype(np.int64) + pad
        identity_grid = self._rotation_grid(n_orient, 0, patch)

        for i in range(len(keypoints)):
            r0, c0 = rows_all[i], cols_all[i]
            if cfg.rotation_invariant:
                patch_vals = mim[identity_grid[0] + r0, identity_grid[1] + c0]
                patch_w = weights[identity_grid[0] + r0,
                                  identity_grid[1] + c0]
                votes = np.bincount(
                    patch_vals[patch_vals >= 0],
                    weights=patch_w[patch_vals >= 0],
                    minlength=n_orient)
                if votes.sum() <= 0:
                    continue
                dom = int(np.argmax(votes))
            else:
                dom = 0
            grid = self._rotation_grid(n_orient, dom, patch)
            vals = mim[grid[0] + r0, grid[1] + c0]
            w = weights[grid[0] + r0, grid[1] + c0]
            valid_mask = vals >= 0
            if not valid_mask.any():
                continue
            shifted = np.where(valid_mask, (vals - dom) % n_orient, 0)
            flat_bins = cell_index * n_orient + shifted
            hist = np.bincount(flat_bins[valid_mask],
                               weights=w[valid_mask],
                               minlength=dim).astype(float)
            norm = np.linalg.norm(hist)
            if norm <= 0:
                continue
            hist /= norm
            if cfg.clip_value > 0:
                np.minimum(hist, cfg.clip_value, out=hist)
                norm = np.linalg.norm(hist)
                if norm <= 0:
                    continue
                hist /= norm
            descriptors.append(hist)
            kept_xy.append(keypoints.xy[i])
            kept_idx.append(i)
            kept_bins.append(dom)

        if not descriptors:
            return DescriptorSet.empty(dim)
        return DescriptorSet(
            descriptors=np.asarray(descriptors),
            keypoint_xy=np.asarray(kept_xy, dtype=float),
            keypoint_indices=np.asarray(kept_idx, dtype=int),
            dominant_bins=np.asarray(kept_bins, dtype=int),
        )
