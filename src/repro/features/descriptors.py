"""BVFT-style descriptors computed from the Maximum Index Map.

For each keypoint the paper (following BVMatch [27] / RIFT [25]):

1. takes a ``J x J`` patch of the MIM centered on the keypoint,
2. estimates the patch's *dominant orientation* from the amplitude-weighted
   histogram of MIM values and rotates the patch so the dominant
   orientation lands on a fixed reference (the ORB trick, giving rotation
   invariance),
3. splits the patch into ``l x l`` grid cells and builds one ``N_o``-bin
   orientation histogram per cell (Eq. in Sec. IV-A), yielding an
   ``l * l * N_o`` vector, which is L2-normalized.

Rotating an orientation *map* needs two coupled actions: resampling pixel
positions by the rotation, and shifting the orientation *values* by the
same angle (an orientation index is itself a direction).  MIM orientations
live on ``[0, pi)`` in steps of ``pi / N_o``, so rotation by a dominant-bin
angle is an exact circular shift of the value space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bev.mim import MIMResult
from repro.features.fast import Keypoints

__all__ = ["BvftConfig", "DescriptorSet", "BvftDescriptorExtractor"]

_INVALID = -1  # marker for out-of-image / zero-energy pixels in patches


@dataclass(frozen=True)
class BvftConfig:
    """Descriptor hyperparameters (paper: J = 96, l = 6; the default
    J = 48 is the simulated-substrate calibration, see DESIGN.md).

    Attributes:
        patch_size: side length ``J`` of the square descriptor patch, in
            pixels.
        grid_size: ``l``; the patch is divided into ``l x l`` cells.
        rotation_invariant: when False, skips the dominant-orientation
            normalization (useful for ablations; the paper notes MIM alone
            is not rotation invariant).
        clip_value: SIFT-style histogram clipping fraction applied after
            the first normalization (0 disables).
        amplitude_weighting: weight histogram votes by Log-Gabor amplitude
            rather than counting pixels.
    """

    patch_size: int = 48
    grid_size: int = 6
    rotation_invariant: bool = True
    clip_value: float = 0.25
    amplitude_weighting: bool = True

    def __post_init__(self) -> None:
        if self.patch_size < 4:
            raise ValueError("patch_size must be >= 4")
        if self.grid_size < 1:
            raise ValueError("grid_size must be >= 1")
        if self.patch_size % self.grid_size != 0:
            raise ValueError("patch_size must be divisible by grid_size")
        if not (0 <= self.clip_value <= 1):
            raise ValueError("clip_value must be in [0, 1]")

    def descriptor_length(self, num_orientations: int) -> int:
        return self.grid_size * self.grid_size * num_orientations


@dataclass(frozen=True)
class DescriptorSet:
    """Descriptors for the keypoints that could be described.

    Attributes:
        descriptors: (M, D) float array, rows L2-normalized.
        keypoint_xy: (M, 2) pixel (col, row) positions, aligned with rows.
        keypoint_indices: (M,) indices into the original keypoint list.
        dominant_bins: (M,) dominant-orientation bin used for rotation
            normalization (0 when rotation invariance is off).
    """

    descriptors: np.ndarray
    keypoint_xy: np.ndarray
    keypoint_indices: np.ndarray
    dominant_bins: np.ndarray

    def __len__(self) -> int:
        return len(self.descriptors)

    @staticmethod
    def empty(dim: int) -> "DescriptorSet":
        return DescriptorSet(np.empty((0, dim)), np.empty((0, 2)),
                             np.empty(0, dtype=int), np.empty(0, dtype=int))


class BvftDescriptorExtractor:
    """Computes BVFT descriptors for FAST keypoints on a MIM.

    The rotation resampling grids are precomputed once per dominant bin
    (there are only ``N_o`` possible rotation angles), so per-keypoint work
    is two fancy-indexing gathers and one bincount.
    """

    def __init__(self, config: BvftConfig | None = None) -> None:
        self.config = config or BvftConfig()
        self._rotation_grids: dict[tuple[int, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def _rotation_grid(self, num_orientations: int, bin_index: int,
                       patch: int) -> np.ndarray:
        """(2, J, J) integer source offsets implementing rotation by the
        bin's angle about the patch center (inverse mapping, nearest
        neighbor)."""
        key = (num_orientations, bin_index)
        grid = self._rotation_grids.get(key)
        if grid is not None:
            return grid
        angle = bin_index * np.pi / num_orientations
        half = (patch - 1) / 2.0
        out = np.arange(patch) - half
        oc, orr = np.meshgrid(out, out)  # output col/row offsets
        # Inverse map: source = R(+angle) @ output (rotating the patch
        # content by -angle aligns the dominant orientation to bin 0).
        cos_a, sin_a = np.cos(angle), np.sin(angle)
        src_c = cos_a * oc - sin_a * orr
        src_r = sin_a * oc + cos_a * orr
        grid = np.stack([np.rint(src_r).astype(np.int64),
                         np.rint(src_c).astype(np.int64)])
        self._rotation_grids[key] = grid
        return grid

    # ------------------------------------------------------------------
    def compute(self, mim_result: MIMResult,
                keypoints: Keypoints) -> DescriptorSet:
        """Describe every keypoint far enough from the border.

        Keypoints whose (rotated) patch would leave the image are padded
        with invalid pixels, which simply contribute no histogram votes;
        keypoints with an entirely invalid patch are dropped.
        """
        cfg = self.config
        n_orient = mim_result.num_orientations
        dim = cfg.descriptor_length(n_orient)
        if len(keypoints) == 0:
            return DescriptorSet.empty(dim)

        patch = cfg.patch_size
        # Pad by the patch diagonal so any rotation stays in bounds.
        pad = int(np.ceil(patch * np.sqrt(2) / 2)) + 2
        mim = np.pad(mim_result.mim, pad, mode="constant",
                     constant_values=_INVALID)
        valid = mim_result.valid_mask()
        if cfg.amplitude_weighting:
            weights_img = mim_result.max_amplitude * valid
        else:
            weights_img = valid.astype(float)
        weights = np.pad(weights_img, pad, mode="constant", constant_values=0.0)

        grid_cells = cfg.grid_size
        cell = patch // grid_cells
        # Per-patch-pixel cell index (row-major over the l x l grid).
        out_idx = np.arange(patch) // cell
        cell_index = (out_idx[:, None] * grid_cells + out_idx[None, :])

        descriptors = []
        kept_xy = []
        kept_idx = []
        kept_bins = []
        rows_all = np.rint(keypoints.xy[:, 1]).astype(np.int64) + pad
        cols_all = np.rint(keypoints.xy[:, 0]).astype(np.int64) + pad
        identity_grid = self._rotation_grid(n_orient, 0, patch)

        for i in range(len(keypoints)):
            r0, c0 = rows_all[i], cols_all[i]
            if cfg.rotation_invariant:
                # Dominant orientation from the *unrotated* patch.
                patch_vals = mim[identity_grid[0] + r0, identity_grid[1] + c0]
                patch_w = weights[identity_grid[0] + r0, identity_grid[1] + c0]
                votes = np.bincount(
                    patch_vals[patch_vals >= 0],
                    weights=patch_w[patch_vals >= 0],
                    minlength=n_orient)
                if votes.sum() <= 0:
                    continue
                dom = int(np.argmax(votes))
            else:
                dom = 0
            grid = self._rotation_grid(n_orient, dom, patch)
            vals = mim[grid[0] + r0, grid[1] + c0]
            w = weights[grid[0] + r0, grid[1] + c0]
            valid_mask = vals >= 0
            if not valid_mask.any():
                continue
            # Rotating content by -angle shifts orientation values by -dom.
            shifted = np.where(valid_mask, (vals - dom) % n_orient, 0)
            flat_bins = cell_index * n_orient + shifted
            hist = np.bincount(flat_bins[valid_mask],
                               weights=w[valid_mask],
                               minlength=dim).astype(float)
            norm = np.linalg.norm(hist)
            if norm <= 0:
                continue
            hist /= norm
            if cfg.clip_value > 0:
                np.minimum(hist, cfg.clip_value, out=hist)
                norm = np.linalg.norm(hist)
                if norm <= 0:
                    continue
                hist /= norm
            descriptors.append(hist)
            kept_xy.append(keypoints.xy[i])
            kept_idx.append(i)
            kept_bins.append(dom)

        if not descriptors:
            return DescriptorSet.empty(dim)
        return DescriptorSet(
            descriptors=np.asarray(descriptors),
            keypoint_xy=np.asarray(kept_xy, dtype=float),
            keypoint_indices=np.asarray(kept_idx, dtype=int),
            dominant_bins=np.asarray(kept_bins, dtype=int),
        )
