"""FAST keypoint detection (Rosten & Drummond), NumPy-vectorized.

The paper detects keypoints on the BV height image with FAST [33].  A
pixel is a corner when ``arc_length`` contiguous pixels on the radius-3
Bresenham circle are all brighter than the center by more than
``threshold``, or all darker.  On sparse BV images, thin bright wall
traces trigger the *darker-arc* test along their entire length, which is
exactly the behaviour the paper relies on ("capture the thin lines as
keypoints").

The whole-image segment test packs the 16 brighter/darker circle flags of
every pixel into one ``uint16`` and resolves the contiguous-arc test with
a precomputed 65536-entry lookup table (one table per ``arc_length``,
built once per process).  FAST scores are then evaluated only at the
surviving corner pixels — with the same subtraction/threshold/summation
order as the dense reference, so scores and keypoint ordering stay
bit-identical.  The pre-rework dense implementation is preserved as
:func:`_reference_detect_fast` for the equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

__all__ = ["FastConfig", "Keypoints", "detect_fast", "CIRCLE_OFFSETS"]

# Radius-3 Bresenham circle, 16 pixels, in (d_row, d_col), clockwise from
# 12 o'clock (matching the original FAST ordering).
CIRCLE_OFFSETS: tuple[tuple[int, int], ...] = (
    (-3, 0), (-3, 1), (-2, 2), (-1, 3),
    (0, 3), (1, 3), (2, 2), (3, 1),
    (3, 0), (3, -1), (2, -2), (1, -3),
    (0, -3), (-1, -3), (-2, -2), (-3, -1),
)


@dataclass(frozen=True)
class FastConfig:
    """FAST detector parameters.

    Attributes:
        threshold: minimum absolute intensity difference between the center
            and a circle pixel to count it as brighter/darker.  BV height
            images are in meters, so the default 0.2 means "20 cm of
            height contrast".
        arc_length: required contiguous run on the 16-pixel circle
            (9 = FAST-9, the standard choice).
        nms_radius: half-width of the square non-max-suppression window.
        max_keypoints: keep at most this many keypoints, strongest first
            (0 = unlimited).
    """

    threshold: float = 0.2
    arc_length: int = 9
    nms_radius: int = 0
    max_keypoints: int = 1500

    def __post_init__(self) -> None:
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")
        if not (1 <= self.arc_length <= 16):
            raise ValueError("arc_length must be in [1, 16]")
        if self.nms_radius < 0:
            raise ValueError("nms_radius must be >= 0")
        if self.max_keypoints < 0:
            raise ValueError("max_keypoints must be >= 0")


@dataclass(frozen=True)
class Keypoints:
    """Detected keypoints.

    Attributes:
        xy: (N, 2) float array of (col, row) pixel coordinates.
        scores: (N,) FAST scores (sum of circle contrast beyond threshold).
    """

    xy: np.ndarray
    scores: np.ndarray

    def __len__(self) -> int:
        return len(self.xy)

    @staticmethod
    def empty() -> "Keypoints":
        return Keypoints(np.empty((0, 2)), np.empty(0))


def _circle_views(padded: np.ndarray, shape: tuple[int, int]) -> np.ndarray:
    """Stack of the 16 circle-shifted images, shape (16, H, W)."""
    h, w = shape
    views = np.empty((16, h, w), dtype=padded.dtype)
    for k, (dr, dc) in enumerate(CIRCLE_OFFSETS):
        views[k] = padded[3 + dr:3 + dr + h, 3 + dc:3 + dc + w]
    return views


def _has_contiguous_arc(flags: np.ndarray, arc_length: int) -> np.ndarray:
    """Whether each pixel has >= arc_length contiguous True circle flags.

    ``flags`` has shape (16, H, W); the circle is circular, so the stack is
    doubled before scanning runs.
    """
    doubled = np.concatenate([flags, flags[:arc_length - 1]], axis=0)
    result = np.zeros(flags.shape[1:], dtype=bool)
    # run[k] := all(doubled[k : k + arc_length]); computed incrementally.
    for start in range(16):
        window = doubled[start:start + arc_length]
        result |= np.logical_and.reduce(window, axis=0)
    return result


# Arc lookup tables keyed by arc_length: table[b] is True when the
# 16-bit circular flag pattern ``b`` contains >= arc_length contiguous
# set bits.  65536 bools per table, built once per process.
_ARC_LUTS: dict[int, np.ndarray] = {}


def _arc_lut(arc_length: int) -> np.ndarray:
    lut = _ARC_LUTS.get(arc_length)
    if lut is None:
        patterns = np.arange(65536, dtype=np.uint32)
        flags = ((patterns[:, None] >> np.arange(16)) & 1).astype(bool)
        doubled = np.concatenate([flags, flags[:, :arc_length - 1]], axis=1)
        lut = np.zeros(65536, dtype=bool)
        for start in range(16):
            lut |= doubled[:, start:start + arc_length].all(axis=1)
        _ARC_LUTS[arc_length] = lut
    return lut


def detect_fast(image: np.ndarray,
                config: FastConfig | None = None) -> Keypoints:
    """Run the FAST segment test over a whole image.

    Args:
        image: 2-D float array (any intensity scale; the threshold is in
            the same units).
        config: detector parameters.

    Returns:
        :class:`Keypoints` sorted by decreasing score.
    """
    config = config or FastConfig()
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    h, w = image.shape
    if min(h, w) < 8:
        return Keypoints.empty()

    padded = np.pad(image, 3, mode="constant", constant_values=0.0)
    # Pack the 16 brighter/darker flags per pixel into uint16 patterns.
    # Masked in-place bitwise ORs keep the loop allocation-free (no
    # per-offset bool->uint16 casts or shifted temporaries).
    packed_b = np.zeros((h, w), dtype=np.uint16)
    packed_d = np.zeros((h, w), dtype=np.uint16)
    diff = np.empty((h, w))
    mask = np.empty((h, w), dtype=bool)
    for k, (dr, dc) in enumerate(CIRCLE_OFFSETS):
        np.subtract(padded[3 + dr:3 + dr + h, 3 + dc:3 + dc + w], image,
                    out=diff)
        bit = np.uint16(1 << k)
        np.greater(diff, config.threshold, out=mask)
        np.bitwise_or(packed_b, bit, out=packed_b, where=mask)
        np.less(diff, -config.threshold, out=mask)
        np.bitwise_or(packed_d, bit, out=packed_d, where=mask)
    lut = _arc_lut(config.arc_length)
    corners = lut.take(packed_b) | lut.take(packed_d)
    # Pixels whose circle leaves the image were compared against zero
    # padding; suppress the 3-pixel border to avoid phantom corners.
    corners[:3, :] = corners[-3:, :] = False
    corners[:, :3] = corners[:, -3:] = False
    if not corners.any():
        return Keypoints.empty()

    # FAST score: total circle contrast beyond the threshold, evaluated
    # only at corner pixels (the dense reference zeroes non-corners, so
    # the sparse gather is equivalent; subtraction and axis-0 summation
    # order match the reference, keeping scores bit-identical).
    rows, cols = np.nonzero(corners)
    circle = np.empty((16, len(rows)))
    for k, (dr, dc) in enumerate(CIRCLE_OFFSETS):
        circle[k] = padded[rows + (3 + dr), cols + (3 + dc)]
    excess = np.abs(circle - image[rows, cols])
    excess -= config.threshold
    np.maximum(excess, 0.0, out=excess)
    scores = excess.sum(axis=0)

    if config.nms_radius > 0:
        score = np.zeros((h, w))
        score[rows, cols] = scores
        size = 2 * config.nms_radius + 1
        local_max = ndimage.maximum_filter(score, size=size, mode="constant")
        keep = (scores >= local_max[rows, cols]) & (scores > 0)
        rows, cols, scores = rows[keep], cols[keep], scores[keep]
        if not len(rows):
            return Keypoints.empty()

    order = np.argsort(-scores, kind="stable")
    if config.max_keypoints:
        order = order[:config.max_keypoints]
    xy = np.stack([cols[order], rows[order]], axis=1).astype(float)
    return Keypoints(xy=xy, scores=scores[order])


def _reference_detect_fast(image: np.ndarray,
                           config: FastConfig | None = None) -> Keypoints:
    """The pre-rework dense implementation (the behavioral spec).

    Evaluates the segment test with 16 shifted whole-image comparisons
    and dense score maps; kept for the equivalence tests and the stage-1
    benchmark.  :func:`detect_fast` must reproduce its keypoints and
    scores bit-for-bit.
    """
    config = config or FastConfig()
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    h, w = image.shape
    if min(h, w) < 8:
        return Keypoints.empty()

    padded = np.pad(image, 3, mode="constant", constant_values=0.0)
    circle = _circle_views(padded, (h, w))
    diff = circle - image[None]

    brighter = diff > config.threshold
    darker = diff < -config.threshold
    corners = (_has_contiguous_arc(brighter, config.arc_length)
               | _has_contiguous_arc(darker, config.arc_length))
    # Pixels whose circle leaves the image were compared against zero
    # padding; suppress the 3-pixel border to avoid phantom corners.
    corners[:3, :] = corners[-3:, :] = False
    corners[:, :3] = corners[:, -3:] = False
    if not corners.any():
        return Keypoints.empty()

    # FAST score: total circle contrast beyond the threshold.
    excess = np.abs(diff) - config.threshold
    np.maximum(excess, 0.0, out=excess)
    score = excess.sum(axis=0)
    score[~corners] = 0.0

    if config.nms_radius > 0:
        size = 2 * config.nms_radius + 1
        local_max = ndimage.maximum_filter(score, size=size, mode="constant")
        corners &= score >= local_max
        corners &= score > 0

    rows, cols = np.nonzero(corners)
    scores = score[rows, cols]
    order = np.argsort(-scores, kind="stable")
    if config.max_keypoints:
        order = order[:config.max_keypoints]
    xy = np.stack([cols[order], rows[order]], axis=1).astype(float)
    return Keypoints(xy=xy, scores=scores[order])
