"""A SIFT-like gradient-histogram descriptor baseline.

The paper reports that traditional intensity-gradient methods (SIFT, ORB)
"proved to be ineffective, failing to produce meaningful results" on
sparse BV images.  This extractor implements that baseline: classic
gradient-orientation histograms over the *raw BV height image* (instead
of the Log-Gabor MIM) with the same patch/grid layout as the BVFT
extractor, faithful to the classic recipe (Gaussian-smoothed gradients,
magnitude-weighted votes, dominant-orientation rotation normalization).

Reproduction note (see EXPERIMENTS.md): on the *simulated* substrate this
baseline does not fully collapse the way the paper observed on V2V4Real —
synthetic height maps have stable, smooth intensities, whereas real BV
images suffer the per-scan intensity instability that breaks gradient
descriptors.  The module is kept as the comparison point and the
substrate limitation is documented rather than engineered around.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.features.descriptors import BvftConfig, DescriptorSet
from repro.features.fast import Keypoints

__all__ = ["GradientDescriptorExtractor"]


class GradientDescriptorExtractor:
    """Gradient-orientation descriptors on the raw BV image."""

    def __init__(self, config: BvftConfig | None = None,
                 num_bins: int = 12, smoothing_sigma: float = 1.0) -> None:
        if num_bins < 2:
            raise ValueError("num_bins must be >= 2")
        if smoothing_sigma < 0:
            raise ValueError("smoothing_sigma must be >= 0")
        self.config = config or BvftConfig()
        self.num_bins = num_bins
        self.smoothing_sigma = smoothing_sigma

    def compute(self, image: np.ndarray,
                keypoints: Keypoints) -> DescriptorSet:
        """Describe keypoints with grid gradient histograms.

        Mirrors :meth:`BvftDescriptorExtractor.compute`'s contract: rows
        are L2-normalized, positions/indices align with kept keypoints.
        """
        cfg = self.config
        dim = cfg.grid_size * cfg.grid_size * self.num_bins
        if len(keypoints) == 0:
            return DescriptorSet.empty(dim)

        image = np.asarray(image, dtype=float)
        if self.smoothing_sigma > 0:
            image = ndimage.gaussian_filter(image, self.smoothing_sigma)
        gy, gx = np.gradient(image)
        magnitude = np.hypot(gx, gy)
        orientation = np.mod(np.arctan2(gy, gx), 2.0 * np.pi)

        patch = cfg.patch_size
        half = patch // 2
        pad = patch  # generous: covers rotated sampling
        magnitude = np.pad(magnitude, pad)
        orientation = np.pad(orientation, pad)

        grid_cells = cfg.grid_size
        cell = patch // grid_cells
        out_idx = np.arange(patch) // cell
        cell_index = out_idx[:, None] * grid_cells + out_idx[None, :]
        coords = np.arange(patch) - (patch - 1) / 2.0
        oc, orr = np.meshgrid(coords, coords)

        descriptors, kept_xy, kept_idx, kept_bins = [], [], [], []
        for i in range(len(keypoints)):
            c0 = int(round(keypoints.xy[i, 0])) + pad
            r0 = int(round(keypoints.xy[i, 1])) + pad
            mag = magnitude[r0 - half:r0 + half, c0 - half:c0 + half]
            ori = orientation[r0 - half:r0 + half, c0 - half:c0 + half]
            if mag.sum() <= 0:
                continue
            # Dominant orientation of the patch.
            bins_flat = (np.floor(ori / (2 * np.pi) * self.num_bins)
                         .astype(int).ravel() % self.num_bins)
            votes = np.bincount(bins_flat, weights=mag.ravel(),
                                minlength=self.num_bins)
            dom_bin = int(np.argmax(votes))
            dom_angle = (dom_bin + 0.5) * 2 * np.pi / self.num_bins

            # Rotate sampling grid by the dominant angle (inverse map).
            cos_a, sin_a = np.cos(dom_angle), np.sin(dom_angle)
            src_c = np.rint(cos_a * oc - sin_a * orr).astype(int) + c0
            src_r = np.rint(sin_a * oc + cos_a * orr).astype(int) + r0
            mag_rot = magnitude[src_r, src_c]
            ori_rot = np.mod(orientation[src_r, src_c] - dom_angle, 2 * np.pi)

            bins = np.floor(ori_rot / (2 * np.pi) * self.num_bins).astype(int)
            bins %= self.num_bins
            flat = cell_index * self.num_bins + bins
            hist = np.bincount(flat.ravel(), weights=mag_rot.ravel(),
                               minlength=dim).astype(float)
            norm = np.linalg.norm(hist)
            if norm <= 0:
                continue
            hist /= norm
            if cfg.clip_value > 0:
                np.minimum(hist, cfg.clip_value, out=hist)
                norm = np.linalg.norm(hist)
                if norm <= 0:
                    continue
                hist /= norm
            descriptors.append(hist)
            kept_xy.append(keypoints.xy[i])
            kept_idx.append(i)
            kept_bins.append(dom_bin)

        if not descriptors:
            return DescriptorSet.empty(dim)
        return DescriptorSet(np.asarray(descriptors),
                             np.asarray(kept_xy, dtype=float),
                             np.asarray(kept_idx, dtype=int),
                             np.asarray(kept_bins, dtype=int))
