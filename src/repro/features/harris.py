"""Harris corner detection (alternative keypoint detector).

A classical intensity-based corner detector included as a swap-in for
FAST (``BBAlignConfig.keypoint_detector = "harris"``) and for the
keypoint-detector ablation: the paper picked FAST; Harris is the obvious
alternative a practitioner would try.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.features.fast import Keypoints

__all__ = ["HarrisConfig", "detect_harris"]


@dataclass(frozen=True)
class HarrisConfig:
    """Harris detector parameters.

    Attributes:
        sigma: Gaussian integration scale for the structure tensor.
        k: Harris sensitivity constant (0.04-0.06 classically).
        relative_threshold: keep responses above this fraction of the
            image's peak response.
        nms_radius: non-max-suppression half-width.
        max_keypoints: strongest-first cap (0 = unlimited).
    """

    sigma: float = 1.5
    k: float = 0.05
    relative_threshold: float = 0.01
    nms_radius: int = 1
    max_keypoints: int = 1500

    def __post_init__(self) -> None:
        if self.sigma <= 0:
            raise ValueError("sigma must be positive")
        if not (0 < self.k < 0.25):
            raise ValueError("k must be in (0, 0.25)")
        if not (0 < self.relative_threshold < 1):
            raise ValueError("relative_threshold must be in (0, 1)")


def detect_harris(image: np.ndarray,
                  config: HarrisConfig | None = None) -> Keypoints:
    """Harris corners of a 2-D image, strongest first."""
    config = config or HarrisConfig()
    image = np.asarray(image, dtype=float)
    if image.ndim != 2:
        raise ValueError(f"expected a 2-D image, got shape {image.shape}")
    if min(image.shape) < 8:
        return Keypoints.empty()

    gy, gx = np.gradient(image)
    ixx = ndimage.gaussian_filter(gx * gx, config.sigma)
    ixy = ndimage.gaussian_filter(gx * gy, config.sigma)
    iyy = ndimage.gaussian_filter(gy * gy, config.sigma)
    det = ixx * iyy - ixy ** 2
    trace = ixx + iyy
    response = det - config.k * trace ** 2

    peak = float(response.max())
    if peak <= 0:
        return Keypoints.empty()
    corners = response >= config.relative_threshold * peak

    if config.nms_radius > 0:
        size = 2 * config.nms_radius + 1
        local_max = ndimage.maximum_filter(response, size=size,
                                           mode="constant")
        corners &= response >= local_max
    corners[:3, :] = corners[-3:, :] = False
    corners[:, :3] = corners[:, -3:] = False

    rows, cols = np.nonzero(corners)
    if len(rows) == 0:
        return Keypoints.empty()
    scores = response[rows, cols]
    order = np.argsort(-scores, kind="stable")
    if config.max_keypoints:
        order = order[:config.max_keypoints]
    xy = np.stack([cols[order], rows[order]], axis=1).astype(float)
    return Keypoints(xy=xy, scores=scores[order])
