"""Descriptor matching (paper: Euclidean nearest neighbor).

High-dimensional descriptors (432-D for the default BVFT configuration)
make KD-trees useless; a dense distance matrix via the
``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` expansion is both faster and
simpler at the few-hundred-keypoint scale of BV images.  Lowe's ratio test
and a mutual-consistency check prune ambiguous matches before RANSAC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.descriptors import DescriptorSet

__all__ = ["MatchResult", "match_descriptors"]


@dataclass(frozen=True)
class MatchResult:
    """Matched descriptor pairs.

    Attributes:
        src_indices: indices into the source :class:`DescriptorSet` rows.
        dst_indices: indices into the destination set rows.
        distances: Euclidean descriptor distances of the kept pairs.
        src_xy: (M, 2) source keypoint pixel coordinates.
        dst_xy: (M, 2) destination keypoint pixel coordinates.
    """

    src_indices: np.ndarray
    dst_indices: np.ndarray
    distances: np.ndarray
    src_xy: np.ndarray
    dst_xy: np.ndarray

    def __len__(self) -> int:
        return len(self.src_indices)

    @staticmethod
    def empty() -> "MatchResult":
        return MatchResult(np.empty(0, dtype=int), np.empty(0, dtype=int),
                           np.empty(0), np.empty((0, 2)), np.empty((0, 2)))


def _distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between row sets ``a`` and ``b``."""
    sq = (np.sum(a ** 2, axis=1)[:, None]
          + np.sum(b ** 2, axis=1)[None, :]
          - 2.0 * (a @ b.T))
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


def match_descriptors(src: DescriptorSet, dst: DescriptorSet,
                      ratio: float = 0.95,
                      mutual: bool = True,
                      max_distance: float | None = None) -> MatchResult:
    """Match two descriptor sets by Euclidean nearest neighbor.

    Args:
        src: descriptors of the *other* car's BV image.
        dst: descriptors of the ego car's BV image.
        ratio: Lowe's ratio-test threshold — keep a match only when the
            best distance is below ``ratio`` times the second best
            (1.0 disables the test).  BVFT histograms are less distinctive
            than SIFT, so the default is looser than SIFT's 0.7–0.8;
            RANSAC downstream tolerates the extra outliers.
        mutual: additionally require the match to be each side's nearest
            neighbor of the other (cross-check).
        max_distance: optional absolute distance cutoff.

    Returns:
        A :class:`MatchResult`; positions are pixel coordinates taken from
        the descriptor sets.
    """
    if not (0 < ratio <= 1.0):
        raise ValueError("ratio must be in (0, 1]")
    if len(src) == 0 or len(dst) == 0:
        return MatchResult.empty()

    dist = _distance_matrix(src.descriptors, dst.descriptors)
    nearest = np.argmin(dist, axis=1)
    best = dist[np.arange(len(src)), nearest]

    keep = np.ones(len(src), dtype=bool)
    if ratio < 1.0 and dist.shape[1] >= 2:
        partitioned = np.partition(dist, 1, axis=1)
        second = partitioned[:, 1]
        # Guard second == 0 (duplicate descriptors): keep only exact ties.
        with np.errstate(divide="ignore", invalid="ignore"):
            keep &= np.where(second > 0, best < ratio * second, best == 0)
    if mutual:
        reverse = np.argmin(dist, axis=0)
        keep &= reverse[nearest] == np.arange(len(src))
    if max_distance is not None:
        keep &= best <= max_distance

    src_idx = np.nonzero(keep)[0]
    dst_idx = nearest[keep]
    return MatchResult(
        src_indices=src_idx,
        dst_indices=dst_idx,
        distances=best[keep],
        src_xy=src.keypoint_xy[src_idx],
        dst_xy=dst.keypoint_xy[dst_idx],
    )
