"""Descriptor matching (paper: Euclidean nearest neighbor).

High-dimensional descriptors (432-D for the default BVFT configuration)
make KD-trees useless; a dense distance matrix via the
``||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b`` expansion is both faster and
simpler at the few-hundred-keypoint scale of BV images.  Lowe's ratio test
and a mutual-consistency check prune ambiguous matches before RANSAC.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.features.descriptors import DescriptorSet

__all__ = ["MatchResult", "match_descriptors"]


@dataclass(frozen=True)
class MatchResult:
    """Matched descriptor pairs.

    Attributes:
        src_indices: indices into the source :class:`DescriptorSet` rows.
        dst_indices: indices into the destination set rows.
        distances: Euclidean descriptor distances of the kept pairs.
        src_xy: (M, 2) source keypoint pixel coordinates.
        dst_xy: (M, 2) destination keypoint pixel coordinates.
    """

    src_indices: np.ndarray
    dst_indices: np.ndarray
    distances: np.ndarray
    src_xy: np.ndarray
    dst_xy: np.ndarray

    def __len__(self) -> int:
        return len(self.src_indices)

    @staticmethod
    def empty() -> "MatchResult":
        return MatchResult(np.empty(0, dtype=int), np.empty(0, dtype=int),
                           np.empty(0), np.empty((0, 2)), np.empty((0, 2)))


def _distance_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Pairwise Euclidean distances between row sets ``a`` and ``b``.

    Runs in the operands' dtype: callers pass float32 views for speed
    (sgemm is ~2x dgemm); distances are only *compared* — argmin, ratio
    test, mutual check — and descriptor margins sit far above
    single-precision rounding, so the kept match sets are unchanged
    (verified pairwise against the float64 path on the seeded dataset).
    """
    sq = (np.sum(a ** 2, axis=1)[:, None]
          + np.sum(b ** 2, axis=1)[None, :]
          - 2.0 * (a @ b.T))
    np.maximum(sq, 0.0, out=sq)
    return np.sqrt(sq)


# Source rows are processed in fixed blocks of this size, bounding peak
# memory at (block, M) floats instead of (N, M).  The granularity is
# *fixed* rather than derived from a memory budget: BLAS matrix products
# round differently for different operand shapes, so a data-dependent
# block size would make results depend on problem size.  With a fixed
# grid, any problem with N <= block runs as the single full-matrix
# product (bit-identical to the unblocked implementation), and larger
# problems are deterministic for their size.
_ROW_BLOCK = 1024


def _nn_statistics(a: np.ndarray, b: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Nearest-neighbor statistics of the ``a`` rows against the ``b`` rows.

    Returns ``(nearest, best, second, reverse)``: per-``a``-row index and
    distance of its nearest ``b`` row, the second-best distance (inf when
    ``len(b) < 2``), and per-``b``-row index of its nearest ``a`` row.
    Rows are processed in :data:`_ROW_BLOCK` blocks; per-row statistics
    see their full distance row either way, and the blockwise
    reverse-argmin update uses a strict ``<`` so first-occurrence
    tie-breaking matches ``np.argmin`` over the full matrix.
    """
    n, m = len(a), len(b)
    if a.dtype == np.float64:
        a = a.astype(np.float32)
    if b.dtype == np.float64:
        b = b.astype(np.float32)
    nearest = np.empty(n, dtype=np.intp)
    best = np.empty(n)
    second = np.full(n, np.inf)
    reverse = np.zeros(m, dtype=np.intp)
    reverse_best = np.full(m, np.inf)
    for start in range(0, n, _ROW_BLOCK):
        stop = min(n, start + _ROW_BLOCK)
        dist = _distance_matrix(a[start:stop], b)
        rows = np.arange(stop - start)
        nearest[start:stop] = np.argmin(dist, axis=1)
        best[start:stop] = dist[rows, nearest[start:stop]]
        if m >= 2:
            second[start:stop] = np.partition(dist, 1, axis=1)[:, 1]
        block_arg = np.argmin(dist, axis=0)
        block_min = dist[block_arg, np.arange(m)]
        better = block_min < reverse_best
        reverse[better] = block_arg[better] + start
        reverse_best[better] = block_min[better]
    return nearest, best, second, reverse


def match_descriptors(src: DescriptorSet, dst: DescriptorSet,
                      ratio: float = 0.95,
                      mutual: bool = True,
                      max_distance: float | None = None) -> MatchResult:
    """Match two descriptor sets by Euclidean nearest neighbor.

    Args:
        src: descriptors of the *other* car's BV image.
        dst: descriptors of the ego car's BV image.
        ratio: Lowe's ratio-test threshold — keep a match only when the
            best distance is below ``ratio`` times the second best
            (1.0 disables the test).  BVFT histograms are less distinctive
            than SIFT, so the default is looser than SIFT's 0.7–0.8;
            RANSAC downstream tolerates the extra outliers.
        mutual: additionally require the match to be each side's nearest
            neighbor of the other (cross-check).
        max_distance: optional absolute distance cutoff.

    Returns:
        A :class:`MatchResult`; positions are pixel coordinates taken from
        the descriptor sets.
    """
    if not (0 < ratio <= 1.0):
        raise ValueError("ratio must be in (0, 1]")
    if len(src) == 0 or len(dst) == 0:
        return MatchResult.empty()

    nearest, best, second, reverse = _nn_statistics(src.descriptors,
                                                    dst.descriptors)

    keep = np.ones(len(src), dtype=bool)
    if ratio < 1.0 and len(dst) >= 2:
        # Guard second == 0 (duplicate descriptors): keep only exact ties.
        with np.errstate(divide="ignore", invalid="ignore"):
            keep &= np.where(second > 0, best < ratio * second, best == 0)
    if mutual:
        keep &= reverse[nearest] == np.arange(len(src))
    if max_distance is not None:
        keep &= best <= max_distance

    src_idx = np.nonzero(keep)[0]
    dst_idx = nearest[keep]
    # The float32 block distances only drove *decisions*; report the kept
    # pairs' distances from the exact difference norm (few rows, and the
    # direct formula has none of the ||a||^2 - 2ab cancellation error).
    diff = src.descriptors[src_idx] - dst.descriptors[dst_idx]
    return MatchResult(
        src_indices=src_idx,
        dst_indices=dst_idx,
        distances=np.linalg.norm(diff, axis=1),
        src_xy=src.keypoint_xy[src_idx],
        dst_xy=dst.keypoint_xy[dst_idx],
    )
