"""Phase-congruency keypoints (the RIFT-style detector).

RIFT [25] — the origin of the paper's MIM descriptor — detects its
keypoints on the phase-congruency maps rather than raw intensities:
corners are local maxima of the *minimum moment* of orientation-wise
phase congruency.  Provided as a third detector option
(``BBAlignConfig.keypoint_detector = "phase_congruency"``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.bev.log_gabor import LogGaborConfig
from repro.bev.phase_congruency import compute_phase_congruency
from repro.features.fast import Keypoints

__all__ = ["PcKeypointConfig", "detect_pc_keypoints"]


@dataclass(frozen=True)
class PcKeypointConfig:
    """PC-corner detector parameters.

    Attributes:
        relative_threshold: keep minimum-moment responses above this
            fraction of the map's peak.
        nms_radius: non-max-suppression half-width.
        max_keypoints: strongest-first cap (0 = unlimited).
        log_gabor: bank configuration (defaults to the paper's).
    """

    relative_threshold: float = 0.2
    nms_radius: int = 1
    max_keypoints: int = 1500
    log_gabor: LogGaborConfig | None = None

    def __post_init__(self) -> None:
        if not (0 < self.relative_threshold < 1):
            raise ValueError("relative_threshold must be in (0, 1)")
        if self.nms_radius < 0:
            raise ValueError("nms_radius must be >= 0")


def detect_pc_keypoints(image: np.ndarray,
                        config: PcKeypointConfig | None = None) -> Keypoints:
    """Minimum-moment phase-congruency corners, strongest first."""
    config = config or PcKeypointConfig()
    image = np.asarray(image, dtype=float)
    if image.ndim != 2 or image.shape[0] != image.shape[1]:
        raise ValueError(f"expected a square 2-D image, got {image.shape}")
    if min(image.shape) < 8:
        return Keypoints.empty()

    result = compute_phase_congruency(image, config.log_gabor)
    response = result.min_moment
    peak = float(response.max())
    if peak <= 0:
        return Keypoints.empty()
    corners = response >= config.relative_threshold * peak
    if config.nms_radius > 0:
        size = 2 * config.nms_radius + 1
        local_max = ndimage.maximum_filter(response, size=size,
                                           mode="constant")
        corners &= response >= local_max
    corners[:3, :] = corners[-3:, :] = False
    corners[:, :3] = corners[:, -3:] = False

    rows, cols = np.nonzero(corners)
    if len(rows) == 0:
        return Keypoints.empty()
    scores = response[rows, cols]
    order = np.argsort(-scores, kind="stable")
    if config.max_keypoints:
        order = order[:config.max_keypoints]
    xy = np.stack([cols[order], rows[order]], axis=1).astype(float)
    return Keypoints(xy=xy, scores=scores[order])
