"""Geometric primitives shared by every other subsystem.

This package implements the math of the paper's Section III: planar rigid
transforms (the 3-DoF pose ``(alpha, t_x, t_y)``), their lift to 3-D
homogeneous transforms (Eq. 1-3), least-squares rigid estimation
(Kabsch/Umeyama), a generic 2-D rigid RANSAC, and convex-polygon utilities
used for rotated-box IoU.
"""

from repro.geometry.angles import (
    angle_difference,
    normalize_angle,
    wrap_to_pi,
)
from repro.geometry.polygon import (
    convex_hull,
    convex_polygon_area,
    convex_polygon_clip,
)
from repro.geometry.ransac import RansacResult, ransac_rigid_2d
from repro.geometry.rigid import kabsch_2d, kabsch_3d, umeyama_2d
from repro.geometry.se2 import SE2, rotation_matrix_2d
from repro.geometry.se3 import SE3, rotation_matrix_zyx

__all__ = [
    "SE2",
    "SE3",
    "RansacResult",
    "angle_difference",
    "convex_hull",
    "convex_polygon_area",
    "convex_polygon_clip",
    "kabsch_2d",
    "kabsch_3d",
    "normalize_angle",
    "ransac_rigid_2d",
    "rotation_matrix_2d",
    "rotation_matrix_zyx",
    "umeyama_2d",
    "wrap_to_pi",
]
