"""Angle arithmetic helpers.

All angles in this codebase are radians unless a name explicitly says
``deg``.  Rotation errors reported by the paper are absolute yaw
differences in degrees; :func:`angle_difference` is the canonical way to
compute them without wrap-around artifacts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["normalize_angle", "wrap_to_pi", "angle_difference", "deg2rad", "rad2deg"]


def wrap_to_pi(angle):
    """Wrap an angle (scalar or array) to the half-open interval [-pi, pi).

    >>> float(wrap_to_pi(np.pi))
    -3.141592653589793
    >>> float(wrap_to_pi(0.0))
    0.0
    """
    angle = np.asarray(angle, dtype=float)
    wrapped = np.mod(angle + np.pi, 2.0 * np.pi) - np.pi
    if wrapped.ndim == 0:
        return float(wrapped)
    return wrapped


def normalize_angle(angle):
    """Alias of :func:`wrap_to_pi`; kept for call-site readability."""
    return wrap_to_pi(angle)


def angle_difference(a, b):
    """Signed smallest difference ``a - b`` wrapped to [-pi, pi).

    Works on scalars and arrays.  ``abs(angle_difference(est, gt))`` is the
    rotation error used throughout the evaluation.
    """
    return wrap_to_pi(np.asarray(a, dtype=float) - np.asarray(b, dtype=float))


def deg2rad(deg):
    """Degrees to radians (thin wrapper, keeps intent explicit)."""
    return np.deg2rad(deg)


def rad2deg(rad):
    """Radians to degrees (thin wrapper, keeps intent explicit)."""
    return np.rad2deg(rad)
