"""Convex polygon utilities.

Rotated-rectangle IoU — needed both for stage-2 overlap matching and for
the AP evaluation of Table I — reduces to clipping one convex polygon
against another (Sutherland-Hodgman) and measuring areas (shoelace).
A monotone-chain convex hull supports the clustering detection head, which
fits oriented boxes around point clusters.
"""

from __future__ import annotations

import numpy as np

__all__ = ["convex_polygon_area", "convex_polygon_clip", "convex_hull",
           "is_counterclockwise", "ensure_counterclockwise",
           "minimum_area_rectangle"]


def convex_polygon_area(vertices: np.ndarray) -> float:
    """Unsigned area of a simple polygon given as (N, 2) vertices (shoelace)."""
    vertices = np.asarray(vertices, dtype=float)
    if len(vertices) < 3:
        return 0.0
    x, y = vertices[:, 0], vertices[:, 1]
    return float(abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))) / 2.0)


def is_counterclockwise(vertices: np.ndarray) -> bool:
    """True when the polygon winds counter-clockwise (positive signed area)."""
    vertices = np.asarray(vertices, dtype=float)
    x, y = vertices[:, 0], vertices[:, 1]
    signed = np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))
    return bool(signed > 0)


def ensure_counterclockwise(vertices: np.ndarray) -> np.ndarray:
    """Return the polygon with counter-clockwise winding."""
    vertices = np.asarray(vertices, dtype=float)
    if len(vertices) >= 3 and not is_counterclockwise(vertices):
        return vertices[::-1].copy()
    return vertices.copy()


def convex_polygon_clip(subject: np.ndarray, clip: np.ndarray) -> np.ndarray:
    """Clip convex polygon ``subject`` by convex polygon ``clip``.

    Sutherland-Hodgman.  Both polygons are (N, 2) vertex arrays; winding
    order is normalized internally.  Returns the intersection polygon as an
    (M, 2) array (possibly empty).
    """
    subject = ensure_counterclockwise(subject)
    clip = ensure_counterclockwise(clip)
    output = list(subject)
    for i in range(len(clip)):
        if not output:
            break
        edge_start = clip[i]
        edge_end = clip[(i + 1) % len(clip)]
        edge = edge_end - edge_start
        input_pts = output
        output = []

        def inside(p):
            # Left of (or on) the directed clip edge for CCW winding.
            return edge[0] * (p[1] - edge_start[1]) - edge[1] * (p[0] - edge_start[0]) >= -1e-12

        def intersect(p1, p2):
            d = p2 - p1
            denom = edge[0] * d[1] - edge[1] * d[0]
            if abs(denom) < 1e-15:
                return p2  # parallel: fall back to the endpoint
            t = (edge[0] * (p1[1] - edge_start[1])
                 - edge[1] * (p1[0] - edge_start[0])) / -denom
            return p1 + t * d

        for j in range(len(input_pts)):
            current = np.asarray(input_pts[j], dtype=float)
            previous = np.asarray(input_pts[j - 1], dtype=float)
            if inside(current):
                if not inside(previous):
                    output.append(intersect(previous, current))
                output.append(current)
            elif inside(previous):
                output.append(intersect(previous, current))
    if not output:
        return np.empty((0, 2))
    return np.asarray(output, dtype=float)


def convex_hull(points: np.ndarray) -> np.ndarray:
    """Convex hull via Andrew's monotone chain; returns CCW vertices.

    Collinear points on the hull boundary are dropped.  Degenerate inputs
    (fewer than 3 distinct points) return the distinct points themselves.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (N, 2) points, got {points.shape}")
    pts = np.unique(points, axis=0)
    if len(pts) <= 2:
        return pts
    # np.unique sorts lexicographically already (by x then y).

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    return np.asarray(hull, dtype=float)


def minimum_area_rectangle(points: np.ndarray) -> tuple[np.ndarray, float, float, float]:
    """Minimum-area oriented bounding rectangle (rotating calipers).

    The optimal rectangle has one side collinear with a convex-hull edge,
    so trying every hull edge direction is exact.

    Args:
        points: (N, 2) points, N >= 1.

    Returns:
        ``(center, length, width, angle)`` with ``length >= width`` and
        ``angle`` the direction of the length axis in radians.  Degenerate
        inputs (collinear / single point) return zero-extent rectangles.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2 or len(points) == 0:
        raise ValueError(f"expected non-empty (N, 2) points, got {points.shape}")
    hull = convex_hull(points)
    if len(hull) == 1:
        return hull[0].copy(), 0.0, 0.0, 0.0
    if len(hull) == 2:
        delta = hull[1] - hull[0]
        length = float(np.linalg.norm(delta))
        return (hull.mean(axis=0), length, 0.0,
                float(np.arctan2(delta[1], delta[0])))

    edges = np.diff(np.vstack([hull, hull[:1]]), axis=0)
    angles = np.unique(np.mod(np.arctan2(edges[:, 1], edges[:, 0]), np.pi))
    best = None
    for angle in angles:
        c, s = np.cos(angle), np.sin(angle)
        rot = np.array([[c, s], [-s, c]])  # rotate by -angle
        projected = hull @ rot.T
        mins = projected.min(axis=0)
        maxs = projected.max(axis=0)
        extents = maxs - mins
        area = float(extents[0] * extents[1])
        if best is None or area < best[0]:
            center_local = (mins + maxs) / 2.0
            center = rot.T @ center_local
            best = (area, center, float(extents[0]), float(extents[1]),
                    float(angle))
    _, center, ext_a, ext_b, angle = best
    if ext_a >= ext_b:
        return center, ext_a, ext_b, angle
    return center, ext_b, ext_a, float(np.mod(angle + np.pi / 2.0, np.pi))
