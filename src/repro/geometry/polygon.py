"""Convex polygon utilities.

Rotated-rectangle IoU — needed both for stage-2 overlap matching and for
the AP evaluation of Table I — reduces to clipping one convex polygon
against another (Sutherland-Hodgman) and measuring areas (shoelace).
A monotone-chain convex hull supports the clustering detection head, which
fits oriented boxes around point clusters.
"""

from __future__ import annotations

import numpy as np

__all__ = ["convex_polygon_area", "convex_polygon_clip",
           "convex_polygon_clip_batch", "convex_hull",
           "is_counterclockwise", "ensure_counterclockwise",
           "minimum_area_rectangle"]


def convex_polygon_area(vertices: np.ndarray) -> float:
    """Unsigned area of a simple polygon given as (N, 2) vertices (shoelace)."""
    vertices = np.asarray(vertices, dtype=float)
    if len(vertices) < 3:
        return 0.0
    x, y = vertices[:, 0], vertices[:, 1]
    return float(abs(np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))) / 2.0)


def is_counterclockwise(vertices: np.ndarray) -> bool:
    """True when the polygon winds counter-clockwise (positive signed area)."""
    vertices = np.asarray(vertices, dtype=float)
    x, y = vertices[:, 0], vertices[:, 1]
    signed = np.dot(x, np.roll(y, -1)) - np.dot(y, np.roll(x, -1))
    return bool(signed > 0)


def ensure_counterclockwise(vertices: np.ndarray) -> np.ndarray:
    """Return the polygon with counter-clockwise winding."""
    vertices = np.asarray(vertices, dtype=float)
    if len(vertices) >= 3 and not is_counterclockwise(vertices):
        return vertices[::-1].copy()
    return vertices.copy()


def convex_polygon_clip(subject: np.ndarray, clip: np.ndarray) -> np.ndarray:
    """Clip convex polygon ``subject`` by convex polygon ``clip``.

    Sutherland-Hodgman.  Both polygons are (N, 2) vertex arrays; winding
    order is normalized internally.  Returns the intersection polygon as an
    (M, 2) array (possibly empty).
    """
    subject = ensure_counterclockwise(subject)
    clip = ensure_counterclockwise(clip)
    output = list(subject)
    for i in range(len(clip)):
        if not output:
            break
        edge_start = clip[i]
        edge_end = clip[(i + 1) % len(clip)]
        edge = edge_end - edge_start
        input_pts = output
        output = []

        def inside(p):
            # Left of (or on) the directed clip edge for CCW winding.
            return edge[0] * (p[1] - edge_start[1]) - edge[1] * (p[0] - edge_start[0]) >= -1e-12

        def intersect(p1, p2):
            d = p2 - p1
            denom = edge[0] * d[1] - edge[1] * d[0]
            if abs(denom) < 1e-15:
                return p2  # parallel: fall back to the endpoint
            t = (edge[0] * (p1[1] - edge_start[1])
                 - edge[1] * (p1[0] - edge_start[0])) / -denom
            return p1 + t * d

        for j in range(len(input_pts)):
            current = np.asarray(input_pts[j], dtype=float)
            previous = np.asarray(input_pts[j - 1], dtype=float)
            if inside(current):
                if not inside(previous):
                    output.append(intersect(previous, current))
                output.append(current)
            elif inside(previous):
                output.append(intersect(previous, current))
    if not output:
        return np.empty((0, 2))
    return np.asarray(output, dtype=float)


def convex_polygon_clip_batch(subjects: np.ndarray,
                              clips: np.ndarray
                              ) -> tuple[np.ndarray, np.ndarray]:
    """Clip P convex subject polygons by P convex clip polygons at once.

    Vectorized Sutherland-Hodgman over the pair axis: the clip-edge loop
    stays a (short) Python loop, while every inside test, intersection
    and vertex emission runs across all pairs simultaneously.  The
    arithmetic is the same elementwise sequence as
    :func:`convex_polygon_clip`, so pair ``p``'s output vertices are
    bit-identical to ``convex_polygon_clip(subjects[p], clips[p])``.

    The only divergence from the scalar path is the winding-normalization
    *decision*: the batch signed area is an elementwise shoelace sum
    while the scalar uses ``np.dot``, whose bits can differ — the chosen
    orientation can only disagree for polygons whose signed area is
    within rounding of zero.

    Args:
        subjects: (P, m, 2) subject polygons, m >= 3, any winding.
        clips: (P, k, 2) convex clip polygons, k >= 3, any winding.

    Returns:
        ``(vertices, counts)``: a (P, m + k, 2) buffer and a (P,) count
        array; pair ``p``'s intersection polygon is
        ``vertices[p, :counts[p]]`` (entries past the count are zeros).
    """
    subjects = np.asarray(subjects, dtype=float)
    clips = np.asarray(clips, dtype=float)
    if subjects.ndim != 3 or clips.ndim != 3 or len(subjects) != len(clips):
        raise ValueError("expected matching (P, m, 2) and (P, k, 2) stacks, "
                         f"got {subjects.shape} and {clips.shape}")
    n_pairs, n_subj, _ = subjects.shape
    n_clip = clips.shape[1]
    vmax = n_subj + n_clip
    if n_pairs == 0:
        return np.zeros((0, vmax, 2)), np.zeros(0, dtype=np.int64)

    def _ccw(polys: np.ndarray) -> np.ndarray:
        if polys.shape[1] < 3:
            return polys
        x, y = polys[..., 0], polys[..., 1]
        signed = np.sum(x * np.roll(y, -1, axis=1)
                        - y * np.roll(x, -1, axis=1), axis=1)
        flip = signed <= 0.0
        out = polys.copy()
        out[flip] = polys[flip, ::-1]
        return out

    subj = _ccw(subjects)
    clp = _ccw(clips)

    verts = np.zeros((n_pairs, vmax, 2))
    verts[:, :n_subj] = subj
    counts = np.full(n_pairs, n_subj, dtype=np.int64)
    col = np.arange(vmax)

    for i in range(n_clip):
        edge_start = clp[:, i]
        edge = clp[:, (i + 1) % n_clip] - edge_start
        ex, ey = edge[:, 0:1], edge[:, 1:2]            # (P, 1)
        sx, sy = edge_start[:, 0:1], edge_start[:, 1:2]

        jmask = col[None, :] < counts[:, None]          # (P, V)
        cur_x, cur_y = verts[..., 0], verts[..., 1]
        ins = ex * (cur_y - sy) - ey * (cur_x - sx) >= -1e-12
        # Predecessor of vertex j (wrapping per-pair at its own count).
        prev_idx = np.broadcast_to(col - 1, (n_pairs, vmax)).copy()
        prev_idx[:, 0] = np.maximum(counts - 1, 0)
        prev_x = np.take_along_axis(cur_x, prev_idx, axis=1)
        prev_y = np.take_along_axis(cur_y, prev_idx, axis=1)
        ins_prev = np.take_along_axis(ins, prev_idx, axis=1)

        # Emission pattern per vertex: crossing edges emit the
        # intersection point, inside vertices then emit themselves.
        cross = ins != ins_prev
        emit_inter = cross & jmask
        emit_cur = ins & jmask
        cnt = emit_inter.astype(np.int64) + emit_cur
        pos = np.cumsum(cnt, axis=1) - cnt              # exclusive scan
        new_counts = pos[:, -1] + cnt[:, -1]

        dx, dy = cur_x - prev_x, cur_y - prev_y
        denom = ex * dy - ey * dx
        parallel = np.abs(denom) < 1e-15
        with np.errstate(divide="ignore", invalid="ignore"):
            t = (ex * (prev_y - sy) - ey * (prev_x - sx)) / -denom
            ix = np.where(parallel, cur_x, prev_x + t * dx)
            iy = np.where(parallel, cur_y, prev_y + t * dy)

        new_verts = np.zeros((n_pairs, vmax, 2))
        pp, jj = np.nonzero(emit_inter)
        new_verts[pp, pos[pp, jj], 0] = ix[pp, jj]
        new_verts[pp, pos[pp, jj], 1] = iy[pp, jj]
        pp, jj = np.nonzero(emit_cur)
        at = pos[pp, jj] + cross[pp, jj]
        new_verts[pp, at, 0] = cur_x[pp, jj]
        new_verts[pp, at, 1] = cur_y[pp, jj]
        verts, counts = new_verts, new_counts
    return verts, counts


def convex_hull(points: np.ndarray) -> np.ndarray:
    """Convex hull via Andrew's monotone chain; returns CCW vertices.

    Collinear points on the hull boundary are dropped.  Degenerate inputs
    (fewer than 3 distinct points) return the distinct points themselves.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"expected (N, 2) points, got {points.shape}")
    pts = np.unique(points, axis=0)
    if len(pts) <= 2:
        return pts
    # np.unique sorts lexicographically already (by x then y).

    def cross(o, a, b):
        return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])

    lower: list[np.ndarray] = []
    for p in pts:
        while len(lower) >= 2 and cross(lower[-2], lower[-1], p) <= 0:
            lower.pop()
        lower.append(p)
    upper: list[np.ndarray] = []
    for p in pts[::-1]:
        while len(upper) >= 2 and cross(upper[-2], upper[-1], p) <= 0:
            upper.pop()
        upper.append(p)
    hull = lower[:-1] + upper[:-1]
    return np.asarray(hull, dtype=float)


def minimum_area_rectangle(points: np.ndarray) -> tuple[np.ndarray, float, float, float]:
    """Minimum-area oriented bounding rectangle (rotating calipers).

    The optimal rectangle has one side collinear with a convex-hull edge,
    so trying every hull edge direction is exact.

    Args:
        points: (N, 2) points, N >= 1.

    Returns:
        ``(center, length, width, angle)`` with ``length >= width`` and
        ``angle`` the direction of the length axis in radians.  Degenerate
        inputs (collinear / single point) return zero-extent rectangles.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[1] != 2 or len(points) == 0:
        raise ValueError(f"expected non-empty (N, 2) points, got {points.shape}")
    hull = convex_hull(points)
    if len(hull) == 1:
        return hull[0].copy(), 0.0, 0.0, 0.0
    if len(hull) == 2:
        delta = hull[1] - hull[0]
        length = float(np.linalg.norm(delta))
        return (hull.mean(axis=0), length, 0.0,
                float(np.arctan2(delta[1], delta[0])))

    edges = np.diff(np.vstack([hull, hull[:1]]), axis=0)
    angles = np.unique(np.mod(np.arctan2(edges[:, 1], edges[:, 0]), np.pi))
    best = None
    for angle in angles:
        c, s = np.cos(angle), np.sin(angle)
        rot = np.array([[c, s], [-s, c]])  # rotate by -angle
        projected = hull @ rot.T
        mins = projected.min(axis=0)
        maxs = projected.max(axis=0)
        extents = maxs - mins
        area = float(extents[0] * extents[1])
        if best is None or area < best[0]:
            center_local = (mins + maxs) / 2.0
            center = rot.T @ center_local
            best = (area, center, float(extents[0]), float(extents[1]),
                    float(angle))
    _, center, ext_a, ext_b, angle = best
    if ext_a >= ext_b:
        return center, ext_a, ext_b, angle
    return center, ext_b, ext_a, float(np.mod(angle + np.pi / 2.0, np.pi))
