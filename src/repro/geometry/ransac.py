"""RANSAC estimation of a planar rigid transform from noisy correspondences.

Both matching stages of BB-Align end in the same operation: given matched
source/destination 2-D points (keypoint matches in stage 1, box-corner
pairs in stage 2), robustly estimate the rigid transform and report the
inlier count.  The paper uses the inlier count as the confidence signal
that drives the success criterion (``Inliers_bv > 25 and Inliers_box > 6``)
and the Fig. 9 analysis, so the result type carries full diagnostics.

Hypotheses are evaluated in chunks: minimal samples are still drawn one
``rng.choice`` call at a time (the call sequence *is* the determinism
contract — the same generator feeds stage 2 downstream, so consuming the
stream differently would change pipeline outputs), but the closed-form
2-point solve and the residual test run as ``(chunk, N)`` array ops over a
whole chunk at once.  The adaptive stopping rule is replayed sequentially
over the chunk's inlier counts; when it fires mid-chunk, the generator
state is rewound to the chunk start and exactly the consumed draws are
re-taken, so the stream position on exit matches the sequential loop
draw-for-draw.  The pre-vectorization loop is preserved as
:func:`_reference_ransac_rigid_2d` for the equivalence tests and the
stage-1 micro-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.angles import wrap_to_pi
from repro.geometry.rigid import kabsch_2d
from repro.geometry.se2 import SE2

__all__ = ["RansacResult", "ransac_rigid_2d"]

# Hypotheses solved/evaluated per batch.  The residual matrix is
# (chunk, N) floats — small enough to stay cache-friendly at the
# few-hundred-match scale of BV images, large enough to amortize the
# per-chunk fixed cost on long adaptive runs (128 measures fastest on
# the 320-pixel end-to-end path; 64 and 256 are both a few ms slower).
_HYPOTHESIS_CHUNK = 128


@dataclass(frozen=True)
class RansacResult:
    """Outcome of a RANSAC run.

    Attributes:
        transform: the refined rigid transform (identity when no model was
            found).
        inlier_mask: boolean array over the input correspondences.
        num_inliers: convenience count of ``inlier_mask``.
        iterations: number of hypothesis samples actually drawn.
        success: whether any model with >= ``min_samples`` inliers was found.
        rmse: root-mean-square residual of the inliers under ``transform``
            (NaN when unsuccessful).
    """

    transform: SE2
    inlier_mask: np.ndarray
    num_inliers: int
    iterations: int
    success: bool
    rmse: float


def _adaptive_trials(inlier_ratio: float, sample_size: int,
                     confidence: float, current_max: int) -> int:
    """Classic adaptive stopping rule: trials needed to hit an
    uncontaminated sample with the given confidence."""
    inlier_ratio = min(max(inlier_ratio, 1e-9), 1.0 - 1e-12)
    prob_good = inlier_ratio ** sample_size
    if prob_good <= 1e-12:
        return current_max
    trials = int(np.ceil(np.log(1.0 - confidence) / np.log(1.0 - prob_good)))
    return max(1, min(current_max, trials))


def _validate(src: np.ndarray, dst: np.ndarray, threshold: float,
              min_inliers: int) -> tuple[np.ndarray, np.ndarray]:
    src = np.asarray(src, dtype=float)
    dst = np.asarray(dst, dtype=float)
    if src.shape != dst.shape or src.ndim != 2 or src.shape[1] != 2:
        raise ValueError(
            f"expected matching (N, 2) arrays, got {src.shape} and {dst.shape}")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if min_inliers < 2:
        raise ValueError("min_inliers must be >= 2")
    return src, dst


def _refine(src: np.ndarray, dst: np.ndarray, threshold: float,
            best_mask: np.ndarray, best_count: int,
            iteration: int) -> RansacResult:
    """Shared tail: refit on the inlier set, then recompute the consensus
    once — a cheap local-optimization step that tightens the estimate."""
    refined = kabsch_2d(src[best_mask], dst[best_mask])
    residuals = np.linalg.norm(refined.apply(src) - dst, axis=1)
    final_mask = residuals <= threshold
    if int(final_mask.sum()) >= best_count:
        best_mask = final_mask
        refined = kabsch_2d(src[best_mask], dst[best_mask])
        residuals = np.linalg.norm(refined.apply(src) - dst, axis=1)

    inlier_res = residuals[best_mask]
    rmse = float(np.sqrt(np.mean(inlier_res ** 2))) if inlier_res.size else float("nan")
    return RansacResult(refined, best_mask, int(best_mask.sum()), iteration,
                        True, rmse)


def _solve_and_score(src: np.ndarray, dst: np.ndarray,
                     idx: np.ndarray, threshold: float
                     ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Closed-form 2-point rigid solve + residual test for a whole chunk.

    Replicates :func:`kabsch_2d` (uniform weights, 2 points) and
    ``SE2.apply`` arithmetic operation-for-operation so each trial's
    inlier mask matches the sequential per-trial path.

    Returns:
        ``(degenerate, masks, counts)`` — a (C,) bool array flagging
        coincident samples, the (C, N) inlier masks and their (C,) counts
        (both zeroed on degenerate rows, which the caller must skip).
    """
    a, b = src[idx[:, 0]], src[idx[:, 1]]
    diff = a - b
    # Degenerate sample: coincident points give no rotation constraint.
    degenerate = np.hypot(diff[:, 0], diff[:, 1]) < 1e-9

    da, db = dst[idx[:, 0]], dst[idx[:, 1]]
    # kabsch_2d with w = [0.5, 0.5]: means, centering, atan2 rotation.
    src_mean = 0.5 * a + 0.5 * b
    dst_mean = 0.5 * da + 0.5 * db
    sa, sb = a - src_mean, b - src_mean
    ta, tb = da - dst_mean, db - dst_mean
    cross = (0.5 * (sa[:, 0] * ta[:, 1] - sa[:, 1] * ta[:, 0])
             + 0.5 * (sb[:, 0] * tb[:, 1] - sb[:, 1] * tb[:, 0]))
    dot = (0.5 * (sa[:, 0] * ta[:, 0] + sa[:, 1] * ta[:, 1])
           + 0.5 * (sb[:, 0] * tb[:, 0] + sb[:, 1] * tb[:, 1]))
    with np.errstate(invalid="ignore"):
        theta = np.where((cross == 0.0) & (dot == 0.0), 0.0,
                         np.arctan2(cross, dot))
    # Translation uses the *unwrapped* angle (kabsch_2d builds the
    # rotation before SE2 wraps theta); the residual rotation uses the
    # wrapped angle (SE2.apply rebuilds it from the stored theta).
    c_r, s_r = np.cos(theta), np.sin(theta)
    tx = dst_mean[:, 0] - (c_r * src_mean[:, 0] + (-s_r) * src_mean[:, 1])
    ty = dst_mean[:, 1] - (s_r * src_mean[:, 0] + c_r * src_mean[:, 1])
    theta_w = wrap_to_pi(theta)
    cw, sw = np.cos(theta_w), np.sin(theta_w)

    # Residuals for every (trial, point) pair at once.
    x, y = src[:, 0], src[:, 1]
    rx = (cw[:, None] * x - sw[:, None] * y + tx[:, None]) - dst[:, 0]
    ry = (sw[:, None] * x + cw[:, None] * y + ty[:, None]) - dst[:, 1]
    masks = np.sqrt(rx * rx + ry * ry) <= threshold
    masks[degenerate] = False
    return degenerate, masks, masks.sum(axis=1)


def ransac_rigid_2d(src: np.ndarray, dst: np.ndarray,
                    threshold: float = 1.0,
                    max_iterations: int = 2000,
                    confidence: float = 0.999,
                    min_inliers: int = 2,
                    rng: np.random.Generator | int | None = None) -> RansacResult:
    """Estimate a rigid SE(2) transform from matched points with RANSAC.

    Args:
        src: (N, 2) source points.
        dst: (N, 2) destination points (``dst[i]`` matches ``src[i]``).
        threshold: inlier residual threshold in the destination frame
            (same unit as the points — meters for BEV coordinates, pixels
            for image coordinates).
        max_iterations: upper bound on hypothesis samples.
        confidence: adaptive-termination confidence.
        min_inliers: a model needs at least this many inliers to count as a
            success (>= 2; two points determine a rigid 2-D transform).
        rng: a :class:`numpy.random.Generator`, a seed, or None for a fresh
            default generator.

    Returns:
        A :class:`RansacResult`.  On failure the transform is identity, the
        mask all-false.
    """
    src, dst = _validate(src, dst, threshold, min_inliers)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    n = len(src)
    if n < 2:
        return RansacResult(SE2.identity(), np.zeros(n, dtype=bool), 0, 0,
                            False, float("nan"))

    sample_size = 2
    best_mask = None
    best_count = 0
    trials_needed = max_iterations
    iteration = 0
    while iteration < min(trials_needed, max_iterations):
        chunk = min(_HYPOTHESIS_CHUNK,
                    min(trials_needed, max_iterations) - iteration)
        # One choice() call per trial: the draw sequence is the contract.
        state = rng.bit_generator.state
        idx = np.empty((chunk, sample_size), dtype=np.intp)
        for t in range(chunk):
            idx[t] = rng.choice(n, size=sample_size, replace=False)

        degenerate, masks, counts = _solve_and_score(src, dst, idx, threshold)

        # Replay the sequential adaptive-stopping logic over the chunk.
        # Fast path: no trial beats the current best, so trials_needed is
        # unchanged and (the while-condition already capped the chunk at
        # the stopping bound) no mid-chunk stop can fire.
        if int(counts.max(initial=0)) <= best_count:
            iteration += chunk
            continue
        consumed = chunk
        for t in range(chunk):
            iteration += 1
            if not degenerate[t]:
                count = int(counts[t])
                if count > best_count:
                    best_count = count
                    best_mask = masks[t]
                    trials_needed = _adaptive_trials(
                        count / n, sample_size, confidence, max_iterations)
            if iteration >= min(trials_needed, max_iterations):
                consumed = t + 1
                break
        if consumed < chunk:
            # Stopping fired mid-chunk: rewind and re-take exactly the
            # draws the sequential loop would have consumed.
            rng.bit_generator.state = state
            for _ in range(consumed):
                rng.choice(n, size=sample_size, replace=False)
            break

    if best_mask is None or best_count < min_inliers:
        return RansacResult(SE2.identity(), np.zeros(n, dtype=bool), 0,
                            iteration, False, float("nan"))
    return _refine(src, dst, threshold, best_mask, best_count, iteration)


def _reference_ransac_rigid_2d(src: np.ndarray, dst: np.ndarray,
                               threshold: float = 1.0,
                               max_iterations: int = 2000,
                               confidence: float = 0.999,
                               min_inliers: int = 2,
                               rng: np.random.Generator | int | None = None
                               ) -> RansacResult:
    """Pre-vectorization sequential loop (equivalence/benchmark twin)."""
    src, dst = _validate(src, dst, threshold, min_inliers)
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    n = len(src)
    if n < 2:
        return RansacResult(SE2.identity(), np.zeros(n, dtype=bool), 0, 0,
                            False, float("nan"))

    sample_size = 2
    best_mask = None
    best_count = 0
    trials_needed = max_iterations
    iteration = 0
    while iteration < min(trials_needed, max_iterations):
        iteration += 1
        idx = rng.choice(n, size=sample_size, replace=False)
        a, b = src[idx]
        # Degenerate sample: coincident points give no rotation constraint.
        if np.hypot(*(a - b)) < 1e-9:
            continue
        model = kabsch_2d(src[idx], dst[idx])
        residuals = np.linalg.norm(model.apply(src) - dst, axis=1)
        mask = residuals <= threshold
        count = int(mask.sum())
        if count > best_count:
            best_count = count
            best_mask = mask
            trials_needed = _adaptive_trials(count / n, sample_size,
                                             confidence, max_iterations)

    if best_mask is None or best_count < min_inliers:
        return RansacResult(SE2.identity(), np.zeros(n, dtype=bool), 0,
                            iteration, False, float("nan"))
    return _refine(src, dst, threshold, best_mask, best_count, iteration)
