"""RANSAC estimation of a planar rigid transform from noisy correspondences.

Both matching stages of BB-Align end in the same operation: given matched
source/destination 2-D points (keypoint matches in stage 1, box-corner
pairs in stage 2), robustly estimate the rigid transform and report the
inlier count.  The paper uses the inlier count as the confidence signal
that drives the success criterion (``Inliers_bv > 25 and Inliers_box > 6``)
and the Fig. 9 analysis, so the result type carries full diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.rigid import kabsch_2d
from repro.geometry.se2 import SE2

__all__ = ["RansacResult", "ransac_rigid_2d"]


@dataclass(frozen=True)
class RansacResult:
    """Outcome of a RANSAC run.

    Attributes:
        transform: the refined rigid transform (identity when no model was
            found).
        inlier_mask: boolean array over the input correspondences.
        num_inliers: convenience count of ``inlier_mask``.
        iterations: number of hypothesis samples actually drawn.
        success: whether any model with >= ``min_samples`` inliers was found.
        rmse: root-mean-square residual of the inliers under ``transform``
            (NaN when unsuccessful).
    """

    transform: SE2
    inlier_mask: np.ndarray
    num_inliers: int
    iterations: int
    success: bool
    rmse: float


def _adaptive_trials(inlier_ratio: float, sample_size: int,
                     confidence: float, current_max: int) -> int:
    """Classic adaptive stopping rule: trials needed to hit an
    uncontaminated sample with the given confidence."""
    inlier_ratio = min(max(inlier_ratio, 1e-9), 1.0 - 1e-12)
    prob_good = inlier_ratio ** sample_size
    if prob_good <= 1e-12:
        return current_max
    trials = int(np.ceil(np.log(1.0 - confidence) / np.log(1.0 - prob_good)))
    return max(1, min(current_max, trials))


def ransac_rigid_2d(src: np.ndarray, dst: np.ndarray,
                    threshold: float = 1.0,
                    max_iterations: int = 2000,
                    confidence: float = 0.999,
                    min_inliers: int = 2,
                    rng: np.random.Generator | int | None = None) -> RansacResult:
    """Estimate a rigid SE(2) transform from matched points with RANSAC.

    Args:
        src: (N, 2) source points.
        dst: (N, 2) destination points (``dst[i]`` matches ``src[i]``).
        threshold: inlier residual threshold in the destination frame
            (same unit as the points — meters for BEV coordinates, pixels
            for image coordinates).
        max_iterations: upper bound on hypothesis samples.
        confidence: adaptive-termination confidence.
        min_inliers: a model needs at least this many inliers to count as a
            success (>= 2; two points determine a rigid 2-D transform).
        rng: a :class:`numpy.random.Generator`, a seed, or None for a fresh
            default generator.

    Returns:
        A :class:`RansacResult`.  On failure the transform is identity, the
        mask all-false.
    """
    src = np.asarray(src, dtype=float)
    dst = np.asarray(dst, dtype=float)
    if src.shape != dst.shape or src.ndim != 2 or src.shape[1] != 2:
        raise ValueError(
            f"expected matching (N, 2) arrays, got {src.shape} and {dst.shape}")
    if threshold <= 0:
        raise ValueError("threshold must be positive")
    if min_inliers < 2:
        raise ValueError("min_inliers must be >= 2")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)

    n = len(src)
    failure = RansacResult(SE2.identity(), np.zeros(n, dtype=bool), 0, 0,
                           False, float("nan"))
    if n < 2:
        return failure

    sample_size = 2
    best_mask = None
    best_count = 0
    trials_needed = max_iterations
    iteration = 0
    while iteration < min(trials_needed, max_iterations):
        iteration += 1
        idx = rng.choice(n, size=sample_size, replace=False)
        a, b = src[idx]
        # Degenerate sample: coincident points give no rotation constraint.
        if np.hypot(*(a - b)) < 1e-9:
            continue
        model = kabsch_2d(src[idx], dst[idx])
        residuals = np.linalg.norm(model.apply(src) - dst, axis=1)
        mask = residuals <= threshold
        count = int(mask.sum())
        if count > best_count:
            best_count = count
            best_mask = mask
            trials_needed = _adaptive_trials(count / n, sample_size,
                                             confidence, max_iterations)

    if best_mask is None or best_count < min_inliers:
        return RansacResult(SE2.identity(), np.zeros(n, dtype=bool), 0,
                            iteration, False, float("nan"))

    # Refine on the inlier set, then recompute the consensus once — a cheap
    # local-optimization step that tightens the final estimate.
    refined = kabsch_2d(src[best_mask], dst[best_mask])
    residuals = np.linalg.norm(refined.apply(src) - dst, axis=1)
    final_mask = residuals <= threshold
    if int(final_mask.sum()) >= best_count:
        best_mask = final_mask
        refined = kabsch_2d(src[best_mask], dst[best_mask])
        residuals = np.linalg.norm(refined.apply(src) - dst, axis=1)

    inlier_res = residuals[best_mask]
    rmse = float(np.sqrt(np.mean(inlier_res ** 2))) if inlier_res.size else float("nan")
    return RansacResult(refined, best_mask, int(best_mask.sum()), iteration,
                        True, rmse)
