"""Least-squares rigid transform estimation (Kabsch / Umeyama).

These are the "standard geometric operations" Algorithm 1 of the paper
delegates to a CV library: given matched source and destination point sets,
find the rigid transform minimizing the sum of squared residuals.  They are
used as the model estimator inside RANSAC (minimal 2-point samples) and as
the final refinement over all inliers.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3

__all__ = ["kabsch_2d", "kabsch_3d", "umeyama_2d"]


def _validate_pair(src: np.ndarray, dst: np.ndarray, dim: int,
                   min_points: int) -> tuple[np.ndarray, np.ndarray]:
    src = np.asarray(src, dtype=float)
    dst = np.asarray(dst, dtype=float)
    if src.shape != dst.shape:
        raise ValueError(
            f"source/destination shapes differ: {src.shape} vs {dst.shape}")
    if src.ndim != 2 or src.shape[1] != dim:
        raise ValueError(f"expected (N, {dim}) arrays, got {src.shape}")
    if src.shape[0] < min_points:
        raise ValueError(
            f"need at least {min_points} correspondences, got {src.shape[0]}")
    return src, dst


def kabsch_2d(src: np.ndarray, dst: np.ndarray,
              weights: np.ndarray | None = None) -> SE2:
    """Best rigid SE(2) transform mapping ``src`` onto ``dst``.

    Minimizes ``sum_i w_i * ||R @ src_i + t - dst_i||^2`` with ``det(R)=+1``
    (no reflection, no scale).

    Args:
        src: (N, 2) source points, N >= 2 (N >= 1 works for pure translation
            but rotation is then unconstrained and fixed to 0).
        dst: (N, 2) destination points.
        weights: optional non-negative per-correspondence weights.

    Returns:
        The estimated :class:`SE2`.
    """
    src, dst = _validate_pair(src, dst, dim=2, min_points=1)
    if weights is None:
        weights = np.ones(len(src))
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (len(src),):
            raise ValueError("weights must be one scalar per correspondence")
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    w = weights / total

    src_mean = w @ src
    dst_mean = w @ dst
    src_c = src - src_mean
    dst_c = dst - dst_mean

    # Closed-form 2-D rotation: theta = atan2(sum w (x×x'), sum w (x·x')).
    cross = float(np.sum(w * (src_c[:, 0] * dst_c[:, 1] - src_c[:, 1] * dst_c[:, 0])))
    dot = float(np.sum(w * (src_c[:, 0] * dst_c[:, 0] + src_c[:, 1] * dst_c[:, 1])))
    if cross == 0.0 and dot == 0.0:
        theta = 0.0  # degenerate (single point / coincident points)
    else:
        theta = float(np.arctan2(cross, dot))

    c, s = np.cos(theta), np.sin(theta)
    rot = np.array([[c, -s], [s, c]])
    t = dst_mean - rot @ src_mean
    return SE2(theta, float(t[0]), float(t[1]))


def umeyama_2d(src: np.ndarray, dst: np.ndarray,
               with_scale: bool = False) -> tuple[SE2, float]:
    """Umeyama alignment; optionally estimates a uniform scale.

    Returns:
        ``(transform, scale)`` where ``transform`` maps *scaled* source
        points onto destinations: ``dst ~= R @ (scale * src) + t``.
        With ``with_scale=False`` the scale is fixed at 1 and the result
        matches :func:`kabsch_2d`.
    """
    src, dst = _validate_pair(src, dst, dim=2, min_points=2)
    src_mean = src.mean(axis=0)
    dst_mean = dst.mean(axis=0)
    src_c = src - src_mean
    dst_c = dst - dst_mean

    cov = dst_c.T @ src_c / len(src)
    u, d, vt = np.linalg.svd(cov)
    sign = np.ones(2)
    if np.linalg.det(u) * np.linalg.det(vt) < 0:
        sign[-1] = -1.0
    rot = u @ np.diag(sign) @ vt

    if with_scale:
        var_src = float((src_c ** 2).sum() / len(src))
        if var_src <= 0:
            raise ValueError("degenerate source points: zero variance")
        scale = float((d * sign).sum() / var_src)
    else:
        scale = 1.0
    t = dst_mean - scale * rot @ src_mean
    return SE2.from_rotation_translation(rot, t), scale


def kabsch_3d(src: np.ndarray, dst: np.ndarray) -> SE3:
    """Best rigid SE(3) transform mapping ``src`` onto ``dst`` (SVD Kabsch)."""
    src, dst = _validate_pair(src, dst, dim=3, min_points=3)
    src_mean = src.mean(axis=0)
    dst_mean = dst.mean(axis=0)
    cov = (dst - dst_mean).T @ (src - src_mean)
    u, _, vt = np.linalg.svd(cov)
    sign = np.eye(3)
    if np.linalg.det(u @ vt) < 0:
        sign[2, 2] = -1.0
    rot = u @ sign @ vt
    t = dst_mean - rot @ src_mean
    return SE3.from_rotation_translation(rot, t)
