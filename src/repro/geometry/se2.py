"""Planar rigid transforms (SE(2)).

The output of BB-Align's two matching stages is a 3-degree-of-freedom
transform ``(alpha, t_x, t_y)`` — a rotation about the vertical axis plus a
translation on the ground plane.  :class:`SE2` is the canonical
representation used across the codebase; it converts to/from 3x3
homogeneous matrices, composes, inverts and applies to point arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.angles import wrap_to_pi

__all__ = ["SE2", "rotation_matrix_2d"]


def rotation_matrix_2d(theta: float) -> np.ndarray:
    """Return the 2x2 rotation matrix for angle ``theta`` (radians)."""
    c, s = np.cos(theta), np.sin(theta)
    return np.array([[c, -s], [s, c]])


@dataclass(frozen=True)
class SE2:
    """A planar rigid transform: rotate by ``theta`` then translate.

    Applying the transform maps a point ``p`` to ``R(theta) @ p + t``.

    Attributes:
        theta: rotation angle in radians, wrapped to [-pi, pi).
        tx: translation along x in meters.
        ty: translation along y in meters.
    """

    theta: float
    tx: float
    ty: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "theta", float(wrap_to_pi(self.theta)))
        object.__setattr__(self, "tx", float(self.tx))
        object.__setattr__(self, "ty", float(self.ty))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity() -> "SE2":
        """The identity transform."""
        return SE2(0.0, 0.0, 0.0)

    @staticmethod
    def from_matrix(matrix: np.ndarray) -> "SE2":
        """Build from a 3x3 homogeneous matrix (or the top 2x3 block).

        The rotation block must be orthonormal with determinant +1; a small
        amount of numerical drift is tolerated and re-orthogonalized via
        ``atan2``.
        """
        matrix = np.asarray(matrix, dtype=float)
        if matrix.shape not in {(3, 3), (2, 3)}:
            raise ValueError(f"expected 3x3 or 2x3 matrix, got {matrix.shape}")
        theta = float(np.arctan2(matrix[1, 0], matrix[0, 0]))
        return SE2(theta, float(matrix[0, 2]), float(matrix[1, 2]))

    @staticmethod
    def from_rotation_translation(rotation: np.ndarray, translation: np.ndarray) -> "SE2":
        """Build from a 2x2 rotation matrix and a length-2 translation."""
        rotation = np.asarray(rotation, dtype=float)
        translation = np.asarray(translation, dtype=float)
        theta = float(np.arctan2(rotation[1, 0], rotation[0, 0]))
        return SE2(theta, float(translation[0]), float(translation[1]))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def rotation(self) -> np.ndarray:
        """The 2x2 rotation block."""
        return rotation_matrix_2d(self.theta)

    @property
    def translation(self) -> np.ndarray:
        """The length-2 translation vector."""
        return np.array([self.tx, self.ty])

    @property
    def matrix(self) -> np.ndarray:
        """The 3x3 homogeneous matrix."""
        m = np.eye(3)
        m[:2, :2] = self.rotation
        m[0, 2] = self.tx
        m[1, 2] = self.ty
        return m

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def compose(self, other: "SE2") -> "SE2":
        """Return ``self @ other`` — first apply ``other``, then ``self``.

        Matches matrix composition: ``(a.compose(b)).apply(p) ==
        a.apply(b.apply(p))``.
        """
        rotation = self.rotation @ other.rotation
        translation = self.rotation @ other.translation + self.translation
        return SE2.from_rotation_translation(rotation, translation)

    def __matmul__(self, other: "SE2") -> "SE2":
        return self.compose(other)

    def inverse(self) -> "SE2":
        """Return the inverse transform."""
        inv_rot = self.rotation.T
        inv_t = -inv_rot @ self.translation
        return SE2.from_rotation_translation(inv_rot, inv_t)

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform points of shape (N, 2) (or a single (2,) point)."""
        points = np.asarray(points, dtype=float)
        single = points.ndim == 1
        pts = np.atleast_2d(points)
        if pts.shape[1] != 2:
            raise ValueError(f"expected (N, 2) points, got shape {points.shape}")
        out = pts @ self.rotation.T + self.translation
        return out[0] if single else out

    def apply_angle(self, angle):
        """Rotate a heading angle by this transform's rotation."""
        return wrap_to_pi(np.asarray(angle, dtype=float) + self.theta)

    # ------------------------------------------------------------------
    # Comparison helpers
    # ------------------------------------------------------------------
    def translation_distance(self, other: "SE2") -> float:
        """Euclidean distance between the two translations."""
        return float(np.hypot(self.tx - other.tx, self.ty - other.ty))

    def rotation_distance(self, other: "SE2") -> float:
        """Absolute angular difference in radians."""
        return float(abs(wrap_to_pi(self.theta - other.theta)))

    def is_close(self, other: "SE2", atol_translation: float = 1e-6,
                 atol_rotation: float = 1e-8) -> bool:
        """True when both transforms are numerically indistinguishable."""
        return (self.translation_distance(other) <= atol_translation
                and self.rotation_distance(other) <= atol_rotation)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"SE2(theta={np.degrees(self.theta):.3f}deg, "
                f"tx={self.tx:.3f}, ty={self.ty:.3f})")
