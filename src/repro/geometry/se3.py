"""3-D homogeneous transforms and the paper's SE(2) -> SE(3) lift.

Section III of the paper recovers the planar pose ``(alpha, t_x, t_y)`` and
then constructs the full 3-D transform ``T`` of Eq. (1) by combining the
estimated parameters with the (assumed constant) pitch, roll and z-shift.
:func:`rotation_matrix_zyx` is exactly the paper's Eq. (2) with
``alpha`` = yaw, ``beta`` = pitch, ``gamma`` = roll; :meth:`SE3.from_se2`
is Eq. (1); :meth:`SE3.apply` is Eq. (3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.se2 import SE2

__all__ = ["SE3", "rotation_matrix_zyx"]


def rotation_matrix_zyx(alpha: float, beta: float = 0.0, gamma: float = 0.0) -> np.ndarray:
    """Rotation matrix R(alpha, beta, gamma) of the paper's Eq. (2).

    Composed as ``Rz(yaw) @ Ry(pitch) @ Rx(roll)`` from the canonical axis
    rotations, which expands to exactly the matrix printed in Eq. (2).

    Args:
        alpha: yaw (rotation about z), radians.
        beta: pitch (rotation about y), radians.
        gamma: roll (rotation about x), radians.
    """
    ca, sa = np.cos(alpha), np.sin(alpha)
    cb, sb = np.cos(beta), np.sin(beta)
    cg, sg = np.cos(gamma), np.sin(gamma)
    rz = np.array([[ca, -sa, 0.0], [sa, ca, 0.0], [0.0, 0.0, 1.0]])
    ry = np.array([[cb, 0.0, sb], [0.0, 1.0, 0.0], [-sb, 0.0, cb]])
    rx = np.array([[1.0, 0.0, 0.0], [0.0, cg, -sg], [0.0, sg, cg]])
    return rz @ ry @ rx


@dataclass(frozen=True)
class SE3:
    """A 3-D rigid transform stored as a 4x4 homogeneous matrix."""

    matrix: np.ndarray = field(default_factory=lambda: np.eye(4))

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        if matrix.shape != (4, 4):
            raise ValueError(f"expected a 4x4 matrix, got {matrix.shape}")
        matrix = matrix.copy()
        matrix.setflags(write=False)
        object.__setattr__(self, "matrix", matrix)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def identity() -> "SE3":
        return SE3(np.eye(4))

    @staticmethod
    def from_rotation_translation(rotation: np.ndarray,
                                  translation: np.ndarray) -> "SE3":
        """Build from a 3x3 rotation matrix and a length-3 translation."""
        m = np.eye(4)
        m[:3, :3] = np.asarray(rotation, dtype=float)
        m[:3, 3] = np.asarray(translation, dtype=float)
        return SE3(m)

    @staticmethod
    def from_euler(alpha: float, beta: float = 0.0, gamma: float = 0.0,
                   translation=(0.0, 0.0, 0.0)) -> "SE3":
        """Build from yaw/pitch/roll (paper Eq. 2) and a translation."""
        return SE3.from_rotation_translation(
            rotation_matrix_zyx(alpha, beta, gamma), np.asarray(translation))

    @staticmethod
    def from_se2(planar: SE2, tz: float = 0.0, beta: float = 0.0,
                 gamma: float = 0.0) -> "SE3":
        """Lift a planar transform to 3-D — the paper's Eq. (1).

        ``alpha, t_x, t_y`` come from the estimated planar transform while
        pitch ``beta``, roll ``gamma`` and ``t_z`` are the pre-defined
        constants of the ground-vehicle assumption.
        """
        return SE3.from_euler(planar.theta, beta, gamma,
                              (planar.tx, planar.ty, tz))

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def rotation(self) -> np.ndarray:
        return self.matrix[:3, :3]

    @property
    def translation(self) -> np.ndarray:
        return self.matrix[:3, 3]

    @property
    def yaw(self) -> float:
        """Extract the yaw angle (alpha) from the rotation block."""
        return float(np.arctan2(self.matrix[1, 0], self.matrix[0, 0]))

    def to_se2(self) -> SE2:
        """Project onto the ground plane, discarding pitch/roll/z."""
        return SE2(self.yaw, float(self.matrix[0, 3]), float(self.matrix[1, 3]))

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def compose(self, other: "SE3") -> "SE3":
        """Return ``self @ other`` — apply ``other`` first, then ``self``."""
        return SE3(self.matrix @ other.matrix)

    def __matmul__(self, other: "SE3") -> "SE3":
        return self.compose(other)

    def inverse(self) -> "SE3":
        rot_t = self.rotation.T
        m = np.eye(4)
        m[:3, :3] = rot_t
        m[:3, 3] = -rot_t @ self.translation
        return SE3(m)

    def apply(self, points: np.ndarray) -> np.ndarray:
        """Transform points of shape (N, 3) — the paper's Eq. (3).

        Equivalent to appending a homogeneous 1, multiplying by ``T`` and
        keeping the first three components.
        """
        points = np.asarray(points, dtype=float)
        single = points.ndim == 1
        pts = np.atleast_2d(points)
        if pts.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got shape {points.shape}")
        out = pts @ self.rotation.T + self.translation
        return out[0] if single else out

    def is_close(self, other: "SE3", atol: float = 1e-8) -> bool:
        return bool(np.allclose(self.matrix, other.matrix, atol=atol))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        t = self.translation
        return (f"SE3(yaw={np.degrees(self.yaw):.3f}deg, "
                f"t=({t[0]:.3f}, {t[1]:.3f}, {t[2]:.3f}))")
