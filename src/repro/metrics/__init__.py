"""Evaluation metrics: pose errors, distribution summaries, AP."""

from repro.metrics.aggregation import (
    Cdf,
    bin_by,
    boxplot_stats,
    percentile_summary,
)
from repro.metrics.average_precision import (
    APResult,
    average_precision,
    match_detections,
)
from repro.metrics.pose_error import PoseErrors, pose_errors

__all__ = [
    "APResult",
    "Cdf",
    "PoseErrors",
    "average_precision",
    "bin_by",
    "boxplot_stats",
    "match_detections",
    "percentile_summary",
    "pose_errors",
]
