"""Distribution summaries used by every figure reproduction.

The paper reports CDFs (Figs. 7, 9, 10, 11, 13), box plots with
10/25/50/75/90 percentiles (Figs. 8, 12, 14), and distance-binned
breakdowns (Figs. 10-13, Table I).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Cdf", "percentile_summary", "boxplot_stats", "bin_by"]


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF.

    Attributes:
        values: sorted sample values.
        fractions: cumulative fractions in (0, 1], aligned with values.
    """

    values: np.ndarray
    fractions: np.ndarray

    @staticmethod
    def from_samples(samples) -> "Cdf":
        samples = np.sort(np.asarray(samples, dtype=float))
        if samples.size == 0:
            return Cdf(np.empty(0), np.empty(0))
        fractions = np.arange(1, len(samples) + 1) / len(samples)
        return Cdf(samples, fractions)

    def fraction_below(self, threshold: float) -> float:
        """P(X <= threshold) — e.g. "fraction of cases under 1 m"."""
        if self.values.size == 0:
            return float("nan")
        return float(np.searchsorted(self.values, threshold, side="right")
                     / len(self.values))

    def value_at(self, fraction: float) -> float:
        """Quantile: the smallest value with CDF >= fraction."""
        if self.values.size == 0:
            return float("nan")
        if not (0 < fraction <= 1):
            raise ValueError("fraction must be in (0, 1]")
        idx = int(np.searchsorted(self.fractions, fraction, side="left"))
        return float(self.values[min(idx, len(self.values) - 1)])

    def sample_at(self, grid) -> np.ndarray:
        """CDF evaluated on a grid of thresholds (for plotting/series)."""
        grid = np.asarray(grid, dtype=float)
        if self.values.size == 0:
            return np.full(grid.shape, np.nan)
        return np.searchsorted(self.values, grid,
                               side="right") / len(self.values)


def percentile_summary(samples, percentiles=(10, 25, 50, 75, 90)) -> dict[int, float]:
    """Named percentiles of a sample (NaN-filled when empty)."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0:
        return {int(p): float("nan") for p in percentiles}
    values = np.percentile(samples, percentiles)
    return {int(p): float(v) for p, v in zip(percentiles, values)}


def boxplot_stats(samples) -> dict[str, float]:
    """The paper's box-plot statistics (whiskers at p10/p90)."""
    summary = percentile_summary(samples)
    return {
        "whisker_low": summary[10],
        "q1": summary[25],
        "median": summary[50],
        "q3": summary[75],
        "whisker_high": summary[90],
        "count": float(np.asarray(samples).size),
    }


def bin_by(values, keys, edges) -> dict[tuple[float, float], np.ndarray]:
    """Partition ``values`` into bins of ``keys`` given bin ``edges``.

    Args:
        values: samples to group (any array-like; returned as arrays).
        keys: per-sample bin key (e.g. inter-vehicle distance).
        edges: monotonically increasing bin edges; bin i is
            ``[edges[i], edges[i+1])``.

    Returns:
        Mapping from (low, high) to the values whose key fell inside.
    """
    values = np.asarray(values)
    keys = np.asarray(keys, dtype=float)
    edges = np.asarray(edges, dtype=float)
    if values.shape[0] != keys.shape[0]:
        raise ValueError("values and keys must align")
    if len(edges) < 2 or np.any(np.diff(edges) <= 0):
        raise ValueError("edges must be increasing with >= 2 entries")
    out: dict[tuple[float, float], np.ndarray] = {}
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (keys >= lo) & (keys < hi)
        out[(float(lo), float(hi))] = values[mask]
    return out
