"""Average Precision at a BEV IoU threshold (Table I metric).

Standard single-class AP: detections across all frames are pooled, sorted
by confidence, greedily matched to ground truth (each GT box claims at
most one detection, highest-confidence first), and AP is the area under
the all-point-interpolated precision-recall curve.  Matching uses rotated
BEV IoU, the convention of the V2V4Real benchmark the paper evaluates on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.boxes.box import Box2D
from repro.boxes.iou import iou_matrix

__all__ = ["APResult", "match_detections", "average_precision"]


@dataclass(frozen=True)
class APResult:
    """AP plus the underlying PR curve.

    Attributes:
        ap: average precision in [0, 1] (NaN with zero ground truth).
        precision: precision at each detection rank.
        recall: recall at each detection rank.
        num_ground_truth: pooled GT count.
        num_detections: pooled detection count.
    """

    ap: float
    precision: np.ndarray
    recall: np.ndarray
    num_ground_truth: int
    num_detections: int

    @property
    def ap_percent(self) -> float:
        """AP scaled to the paper's 0-100 convention."""
        return self.ap * 100.0


def match_detections(detections: list[Box2D], scores,
                     ground_truth: list[Box2D],
                     iou_threshold: float) -> np.ndarray:
    """Greedy confidence-ordered matching for one frame.

    Returns:
        Boolean array over detections: True = true positive.
    """
    scores = np.asarray(scores, dtype=float)
    if len(detections) != len(scores):
        raise ValueError("detections and scores must align")
    tp = np.zeros(len(detections), dtype=bool)
    if not detections or not ground_truth:
        return tp
    ious = iou_matrix(detections, ground_truth)
    taken = np.zeros(len(ground_truth), dtype=bool)
    for det_idx in np.argsort(-scores, kind="stable"):
        best_gt = -1
        best_iou = iou_threshold
        for gt_idx in range(len(ground_truth)):
            if taken[gt_idx]:
                continue
            if ious[det_idx, gt_idx] >= best_iou:
                best_iou = ious[det_idx, gt_idx]
                best_gt = gt_idx
        if best_gt >= 0:
            taken[best_gt] = True
            tp[det_idx] = True
    return tp


def average_precision(frames: list[tuple[list[Box2D], np.ndarray, list[Box2D]]],
                      iou_threshold: float = 0.5) -> APResult:
    """Pool frames and compute AP.

    Args:
        frames: per-frame ``(detections, scores, ground_truth)`` triples;
            all boxes in a common evaluation frame.
        iou_threshold: BEV IoU for a detection to count as a true
            positive (paper: 0.5 and 0.7).

    Returns:
        An :class:`APResult`.
    """
    if not (0 < iou_threshold <= 1):
        raise ValueError("iou_threshold must be in (0, 1]")
    all_scores: list[float] = []
    all_tp: list[bool] = []
    total_gt = 0
    for detections, scores, ground_truth in frames:
        scores = np.asarray(scores, dtype=float)
        tp = match_detections(detections, scores, ground_truth,
                              iou_threshold)
        all_scores.extend(scores.tolist())
        all_tp.extend(tp.tolist())
        total_gt += len(ground_truth)

    n_det = len(all_scores)
    if total_gt == 0:
        return APResult(float("nan"), np.empty(0), np.empty(0), 0, n_det)
    if n_det == 0:
        return APResult(0.0, np.empty(0), np.empty(0), total_gt, 0)

    order = np.argsort(-np.asarray(all_scores), kind="stable")
    tp_sorted = np.asarray(all_tp)[order]
    cum_tp = np.cumsum(tp_sorted)
    ranks = np.arange(1, n_det + 1)
    precision = cum_tp / ranks
    recall = cum_tp / total_gt

    # All-point interpolation: precision envelope integrated over recall.
    envelope = np.maximum.accumulate(precision[::-1])[::-1]
    recall_padded = np.concatenate([[0.0], recall])
    ap = float(np.sum(np.diff(recall_padded) * envelope))
    return APResult(ap, precision, recall, total_gt, n_det)
