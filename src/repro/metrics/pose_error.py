"""Pose error metrics (paper Sec. V-A).

Translation error is the Euclidean distance between estimated and
ground-truth planar translations; rotation error is the absolute yaw
difference in degrees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.se2 import SE2

__all__ = ["PoseErrors", "pose_errors"]


@dataclass(frozen=True)
class PoseErrors:
    """Errors of one pose estimate against ground truth.

    Attributes:
        translation: Euclidean error on (t_x, t_y), meters.
        rotation_deg: absolute yaw error, degrees.
    """

    translation: float
    rotation_deg: float

    def within(self, max_translation: float = 1.0,
               max_rotation_deg: float = 1.0) -> bool:
        """The paper's headline accuracy test (< 1 m and < 1 degree)."""
        return (self.translation < max_translation
                and self.rotation_deg < max_rotation_deg)


def pose_errors(estimate: SE2, ground_truth: SE2) -> PoseErrors:
    """Compute :class:`PoseErrors` for a planar pose estimate."""
    return PoseErrors(
        translation=estimate.translation_distance(ground_truth),
        rotation_deg=float(np.degrees(
            estimate.rotation_distance(ground_truth))),
    )
