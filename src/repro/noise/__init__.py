"""Pose corruption models."""

from repro.noise.pose_noise import PoseNoiseModel, add_pose_noise

__all__ = ["PoseNoiseModel", "add_pose_noise"]
