"""Pose corruption models (paper Sec. V-C).

Table I corrupts the shared pose with zero-mean Gaussian noise
(``sigma_t = 2 m`` on each translation axis, ``sigma_theta = 2 deg`` on
yaw).  :class:`PoseNoiseModel` also provides the heavier corruption modes
the paper's motivation describes (sensor dropout producing arbitrarily
wrong poses) — BB-Align is pose-prior-free, so its recovery quality is
independent of the corruption severity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.se2 import SE2

__all__ = ["PoseNoiseModel", "add_pose_noise"]


@dataclass(frozen=True)
class PoseNoiseModel:
    """How the transmitted pose is corrupted.

    Attributes:
        sigma_translation: Gaussian sigma per translation axis (meters).
        sigma_rotation_deg: Gaussian sigma on yaw (degrees).
        failure_prob: probability the pose is replaced by a uniformly
            random one inside ``failure_radius`` (total GPS failure).
        failure_radius: radius of the failure-mode translation draw.
    """

    sigma_translation: float = 2.0
    sigma_rotation_deg: float = 2.0
    failure_prob: float = 0.0
    failure_radius: float = 50.0

    def __post_init__(self) -> None:
        if self.sigma_translation < 0 or self.sigma_rotation_deg < 0:
            raise ValueError("noise sigmas must be >= 0")
        if not (0 <= self.failure_prob <= 1):
            raise ValueError("failure_prob must be in [0, 1]")

    def corrupt(self, pose: SE2,
                rng: np.random.Generator | int | None = None) -> SE2:
        """Return a corrupted copy of ``pose``."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        if self.failure_prob > 0 and rng.random() < self.failure_prob:
            angle = rng.uniform(-np.pi, np.pi)
            radius = rng.uniform(0.0, self.failure_radius)
            return SE2(rng.uniform(-np.pi, np.pi),
                       pose.tx + radius * np.cos(angle),
                       pose.ty + radius * np.sin(angle))
        return SE2(pose.theta + np.deg2rad(
                       rng.normal(0.0, self.sigma_rotation_deg)),
                   pose.tx + rng.normal(0.0, self.sigma_translation),
                   pose.ty + rng.normal(0.0, self.sigma_translation))


def add_pose_noise(pose: SE2, sigma_translation: float = 2.0,
                   sigma_rotation_deg: float = 2.0,
                   rng: np.random.Generator | int | None = None) -> SE2:
    """One-shot Gaussian pose corruption (Table I's noise setting)."""
    model = PoseNoiseModel(sigma_translation=sigma_translation,
                           sigma_rotation_deg=sigma_rotation_deg)
    return model.corrupt(pose, rng)
