"""Lightweight, zero-dependency pipeline observability.

Three pieces, composable and individually optional:

* :mod:`repro.obs.spans` — hierarchical trace spans
  (``with span("stage1.mim"): ...``) recording wall/CPU time and parent
  linkage, including across the sweep engine's process boundary;
* :mod:`repro.obs.metrics` — typed counters and histograms in a
  process-local :class:`MetricsRegistry`; pool workers ship snapshots
  back through the engine's chunk protocol and the parent merges them
  (chunk-keyed, so a retried chunk never double-counts);
* :mod:`repro.obs.export` — a JSON-lines event exporter behind the
  CLI's ``--trace out.jsonl`` flag (event schema in ``docs/api.md``).

Everything is off by default and overhead-neutral when off: with no
collector or registry installed, an instrumented call site costs one
context-var read and allocates nothing, the sweep's RNG streams are
untouched either way, and a traced sweep returns byte-identical
outcomes to an untraced one.

:class:`repro.runtime.timings.SweepTimings` — the CLI's ``--timings``
report — is a thin view over a :class:`MetricsRegistry` rather than a
parallel bookkeeping system: ``stage()`` blocks observe histograms, the
report formats them.
"""

from repro.obs.export import EVENT_SCHEMA_VERSION, JsonlExporter, trace_session
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    active_registry,
    counter,
    gauge,
    histogram,
    use_registry,
)
from repro.obs.spans import (
    SpanHandle,
    TraceCollector,
    active_collector,
    collect_spans,
    span,
)

__all__ = [
    "Counter",
    "EVENT_SCHEMA_VERSION",
    "Gauge",
    "Histogram",
    "JsonlExporter",
    "MetricsRegistry",
    "SpanHandle",
    "TraceCollector",
    "active_collector",
    "active_registry",
    "collect_spans",
    "counter",
    "gauge",
    "histogram",
    "span",
    "trace_session",
    "use_registry",
]
