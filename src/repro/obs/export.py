"""JSON-lines export of trace spans and metric snapshots.

One event per line, schema documented in ``docs/api.md``.  Three event
types:

* ``meta`` — one header line per traced run: schema version, command,
  pid, start time.
* ``span`` — one finished span (see :mod:`repro.obs.spans`).
* ``metrics`` — a :meth:`~repro.obs.metrics.MetricsRegistry.snapshot`,
  written when the traced region closes.

The exporter is parent-process-only: pool workers buffer span events in
their chunk-local collector and ship them back inside the chunk result,
so no two processes ever write the same file.
"""

from __future__ import annotations

import contextlib
import json
import pathlib
import time
from typing import IO, Iterator, Mapping

from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.spans import TraceCollector, collect_spans

__all__ = ["EVENT_SCHEMA_VERSION", "JsonlExporter", "trace_session"]

EVENT_SCHEMA_VERSION = 1


class JsonlExporter:
    """Appends one JSON object per line to a trace file."""

    def __init__(self, path: str | pathlib.Path) -> None:
        self.path = pathlib.Path(path)
        self._stream: IO[str] | None = None

    def __enter__(self) -> "JsonlExporter":
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream = self.path.open("w", encoding="utf-8")
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    # ------------------------------------------------------------------
    def write(self, event: Mapping) -> None:
        if self._stream is None:
            raise RuntimeError("exporter is not open")
        json.dump(event, self._stream, sort_keys=True,
                  separators=(",", ":"), default=str)
        self._stream.write("\n")

    def write_meta(self, **fields: object) -> None:
        self.write({"type": "meta", "schema_version": EVENT_SCHEMA_VERSION,
                    "unix_time": round(time.time(), 3), **fields})

    def write_spans(self, collector: TraceCollector) -> None:
        for event in collector.events:
            self.write(event)

    def write_metrics(self, registry: MetricsRegistry,
                      **fields: object) -> None:
        self.write({"type": "metrics", **fields, **registry.snapshot()})


@contextlib.contextmanager
def trace_session(path: str | pathlib.Path,
                  **meta: object) -> Iterator[TraceCollector]:
    """Trace the enclosed block into a JSONL file.

    Installs a span collector *and* a metrics registry for the block,
    then writes the header, every span event, and the final merged
    metrics snapshot on exit — the implementation behind the CLI's
    ``--trace out.jsonl`` flag.
    """
    with JsonlExporter(path) as exporter:
        exporter.write_meta(**meta)
        registry = MetricsRegistry()
        started = time.perf_counter()
        try:
            with use_registry(registry), collect_spans() as collector:
                yield collector
        finally:
            exporter.write_spans(collector)
            exporter.write_metrics(
                registry, wall_s=round(time.perf_counter() - started, 6))
