"""Typed counters and histograms in a process-local registry.

The observability layer's numeric store.  A :class:`MetricsRegistry`
holds named :class:`Counter` and :class:`Histogram` instruments;
instrumented code asks the *active* registry for an instrument by name
and updates it.  When no registry is installed the shared no-op
instruments are returned, so a disabled pipeline pays one context-var
read per update and allocates nothing.

Registries are process-local by design: a pool worker records into a
chunk-local registry and ships a :meth:`MetricsRegistry.snapshot` (a
plain picklable dict) back to the parent inside the engine's existing
chunk-result protocol; the parent folds snapshots together with
:meth:`MetricsRegistry.merge_snapshot`.  Snapshots are also what the
JSON-lines exporter writes (see :mod:`repro.obs.export`).

Instrument names use ``/`` as the hierarchy separator
(``engine/chunk_retries``, ``stage/bv_extract/mim``) — the same
convention :class:`~repro.runtime.timings.SweepTimings` uses for its
detail stages.
"""

from __future__ import annotations

import contextlib
import contextvars
import math
from typing import Iterator, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "active_registry",
    "counter",
    "gauge",
    "histogram",
    "use_registry",
]


class Counter:
    """A monotonically adjustable integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: int = 0) -> None:
        self.name = name
        self.value = int(value)

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name!r}, {self.value})"


class Histogram:
    """A streaming summary of float observations (count/total/min/max).

    Deliberately bucket-free: the sweep's consumers need totals (stage
    seconds), rates (total/count) and extremes, and a fixed-bucket
    histogram would force a unit choice on every instrument.  ``total``
    and ``count`` merge and un-merge exactly, which is what the engine's
    chunk-deduplicated aggregation needs; ``min``/``max`` are lifetime
    extremes and survive a re-merge unadjusted (documented in
    ``docs/api.md``).
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Histogram({self.name!r}, count={self.count}, "
                f"total={self.total:.6f})")


class Gauge:
    """A point-in-time level with a high-water mark.

    Built for the service's queue-depth and in-flight instruments:
    ``value`` is the current level, ``high_water`` the largest level
    ever held.  Under :meth:`MetricsRegistry.merge_snapshot` the value
    *adds* (and subtracts under ``sign=-1``), matching the additive
    semantics of levels that are partitioned across contributors — two
    workers each holding 3 in-flight requests merge to 6 — and making
    merge/un-merge exact, which the chunk-keyed dedupe ladder requires.
    ``high_water`` only ever widens (like histogram extremes): a
    re-merge cannot shrink it, so it survives the subtract-then-re-add
    cycle unadjusted.
    """

    __slots__ = ("name", "value", "high_water")

    def __init__(self, name: str, value: float = 0.0) -> None:
        self.name = name
        self.value = float(value)
        self.high_water = float(value)

    def set(self, value: float) -> None:
        self.value = float(value)
        if self.value > self.high_water:
            self.high_water = self.value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Gauge({self.name!r}, {self.value}, "
                f"high_water={self.high_water})")


class _NoopCounter(Counter):
    """Shared sink for updates recorded while no registry is active."""

    __slots__ = ()

    def inc(self, amount: int = 1) -> None:  # noqa: ARG002
        return None


class _NoopHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: ARG002
        return None


class _NoopGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: ARG002
        return None


_NOOP_COUNTER = _NoopCounter("noop")
_NOOP_HISTOGRAM = _NoopHistogram("noop")
_NOOP_GAUGE = _NoopGauge("noop")


class MetricsRegistry:
    """A process-local collection of named instruments.

    Instruments are created on first use and live for the registry's
    lifetime.  The registry is not thread-safe by design — the sweep is
    process-parallel, and each worker records into its own chunk-local
    registry.
    """

    __slots__ = ("counters", "histograms", "gauges")

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}
        self.gauges: dict[str, Gauge] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A plain-dict copy of every instrument (picklable, JSON-safe).

        This is the unit that crosses the process boundary in the
        engine's chunk protocol and the payload of the exporter's
        ``metrics`` event.  Infinite min/max (an observation-free
        histogram) serialize as ``None``.
        """
        return {
            "counters": {name: c.value for name, c in self.counters.items()},
            "histograms": {
                name: {
                    "count": h.count,
                    "total": h.total,
                    "min": None if math.isinf(h.min) else h.min,
                    "max": None if math.isinf(h.max) else h.max,
                }
                for name, h in self.histograms.items()
            },
            "gauges": {
                name: {"value": g.value, "high_water": g.high_water}
                for name, g in self.gauges.items()
            },
        }

    def merge_snapshot(self, snapshot: Mapping, sign: int = 1) -> None:
        """Fold a :meth:`snapshot` into this registry.

        ``sign=-1`` subtracts a previously merged snapshot's counters
        and histogram count/total — the primitive behind chunk-keyed
        deduplication (:meth:`repro.runtime.timings.SweepTimings.merge_chunk`).
        Histogram min/max only ever widen; a subtraction leaves them be.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).value += sign * value
        for name, data in snapshot.get("histograms", {}).items():
            h = self.histogram(name)
            h.count += sign * data["count"]
            h.total += sign * data["total"]
            if sign > 0:
                if data["min"] is not None and data["min"] < h.min:
                    h.min = data["min"]
                if data["max"] is not None and data["max"] > h.max:
                    h.max = data["max"]
        for name, data in snapshot.get("gauges", {}).items():
            g = self.gauge(name)
            g.value += sign * data["value"]
            if sign > 0:
                if g.value > g.high_water:
                    g.high_water = g.value
                if data["high_water"] > g.high_water:
                    g.high_water = data["high_water"]

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_snapshot(other.snapshot())

    def counter_values(self, prefix: str = "") -> dict[str, int]:
        """Sorted ``{name: value}`` of counters under ``prefix``.

        The reporting primitive behind ``repro serve``'s drain line and
        the soak harness's supervision block — one place defines what
        "the service counters" means instead of three ad-hoc filters.
        """
        return {name: instrument.value
                for name, instrument in sorted(self.counters.items())
                if name.startswith(prefix)}


# ----------------------------------------------------------------------
# The active registry.  Instrumented code never holds a registry —
# it asks for the ambient one at update time, so the same call site
# records into a chunk-local registry inside a pool worker, into the
# sweep's registry in a serial run, and into nothing at all otherwise.
# ----------------------------------------------------------------------
_ACTIVE: contextvars.ContextVar[MetricsRegistry | None] = \
    contextvars.ContextVar("repro_obs_active_registry", default=None)


def active_registry() -> MetricsRegistry | None:
    """The installed registry, or ``None`` when metrics are disabled."""
    return _ACTIVE.get()


@contextlib.contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the ambient instrument store."""
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


def counter(name: str) -> Counter:
    """The active registry's counter ``name`` (no-op when disabled)."""
    registry = _ACTIVE.get()
    if registry is None:
        return _NOOP_COUNTER
    return registry.counter(name)


def histogram(name: str) -> Histogram:
    """The active registry's histogram ``name`` (no-op when disabled)."""
    registry = _ACTIVE.get()
    if registry is None:
        return _NOOP_HISTOGRAM
    return registry.histogram(name)


def gauge(name: str) -> Gauge:
    """The active registry's gauge ``name`` (no-op when disabled)."""
    registry = _ACTIVE.get()
    if registry is None:
        return _NOOP_GAUGE
    return registry.gauge(name)
