"""Hierarchical trace spans with wall/CPU time and parent linkage.

A span times one named region of the pipeline (``stage1.mim``, one
engine chunk, one pair evaluation).  Spans nest: the collector keeps a
context-local stack, so a span opened inside another records the outer
span's id as its parent, and a chunk shipped to a pool worker carries
the parent span id across the process boundary (the worker's root spans
link to the parent-side ``engine/chunk`` span).

Tracing is opt-in and read-only: spans consume *no* randomness and
mutate nothing the pipeline computes with, so a traced sweep is
byte-identical to an untraced one (enforced by
``tests/test_obs.py::test_traced_sweep_byte_identical``).  With no
collector installed, :func:`span` yields a shared inert context at the
cost of one context-var read — the overhead-neutral disabled mode the
benchmarks assert on.

Span ids are ``"<pid>:<sequence>"`` strings: unique across the worker
pool without any randomness, stable across reruns of a deterministic
sweep.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import time
from typing import Any, Iterator

from repro.obs.metrics import active_registry

__all__ = ["SpanHandle", "TraceCollector", "active_collector",
           "collect_spans", "span"]


class SpanHandle:
    """An open span: identity, clock marks and attributes."""

    __slots__ = ("name", "span_id", "parent_id", "attrs",
                 "_wall_start", "_cpu_start", "start_unix")

    def __init__(self, name: str, span_id: str, parent_id: str | None,
                 attrs: dict[str, Any]) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_unix = time.time()
        self._wall_start = time.perf_counter()
        self._cpu_start = time.process_time()

    def close_event(self) -> dict:
        """The exported trace event for this span (schema: docs/api.md)."""
        event = {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": os.getpid(),
            "start_unix": round(self.start_unix, 6),
            "wall_s": round(time.perf_counter() - self._wall_start, 9),
            "cpu_s": round(time.process_time() - self._cpu_start, 9),
        }
        if self.attrs:
            event["attrs"] = self.attrs
        return event


class TraceCollector:
    """Buffers finished-span events for one traced region.

    The parent process drains :attr:`events` into the JSONL exporter;
    pool workers return theirs inside the chunk result and the engine
    re-emits them (chunk-deduplicated) into the parent's collector.
    """

    __slots__ = ("events", "root_parent", "_sequence")

    def __init__(self, root_parent: str | None = None) -> None:
        self.events: list[dict] = []
        self.root_parent = root_parent
        self._sequence = 0

    def next_span_id(self) -> str:
        self._sequence += 1
        return f"{os.getpid()}:{self._sequence}"

    def emit(self, event: dict) -> None:
        """Append an already-finished event (engine chunk re-emission)."""
        self.events.append(event)


_COLLECTOR: contextvars.ContextVar[TraceCollector | None] = \
    contextvars.ContextVar("repro_obs_collector", default=None)
_PARENT: contextvars.ContextVar[str | None] = \
    contextvars.ContextVar("repro_obs_parent_span", default=None)


def active_collector() -> TraceCollector | None:
    """The installed collector, or ``None`` when tracing is disabled."""
    return _COLLECTOR.get()


@contextlib.contextmanager
def collect_spans(root_parent: str | None = None,
                  ) -> Iterator[TraceCollector]:
    """Install a fresh collector; spans in the block record into it.

    ``root_parent`` seeds the parent linkage: spans opened at the top
    level of the block report it as their parent.  The engine passes the
    parent-side chunk span id here so worker-side spans nest under it.
    """
    collector = TraceCollector(root_parent)
    token = _COLLECTOR.set(collector)
    parent_token = _PARENT.set(root_parent)
    try:
        yield collector
    finally:
        _PARENT.reset(parent_token)
        _COLLECTOR.reset(token)


@contextlib.contextmanager
def span(name: str, **attrs: Any) -> Iterator[SpanHandle | None]:
    """Time a named region into the active trace (no-op when disabled).

    Yields the open :class:`SpanHandle` (``None`` when tracing is off)
    so callers can read ``span_id`` for cross-process parent linkage or
    add attributes before the block closes.  The span's wall/CPU
    duration is also observed into the active metrics registry under
    ``span/<name>/seconds``.
    """
    collector = _COLLECTOR.get()
    if collector is None:
        yield None
        return
    handle = SpanHandle(name, collector.next_span_id(), _PARENT.get(),
                        dict(attrs))
    parent_token = _PARENT.set(handle.span_id)
    try:
        yield handle
    finally:
        _PARENT.reset(parent_token)
        event = handle.close_event()
        collector.events.append(event)
        registry = active_registry()
        if registry is not None:
            registry.histogram(f"span/{name}/seconds").observe(
                event["wall_s"])
