"""Point-cloud container and operations.

Wraps the raw ``(N, 3)`` float arrays produced by the lidar simulator with
the transformations the pipeline needs (viewpoint changes, range cropping,
ground removal, voxel downsampling) and the self-motion-distortion model
that motivates the paper's second alignment stage.
"""

from repro.pointcloud.accumulate import accumulate_scans
from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.distortion import (
    MotionState,
    apply_self_motion_distortion,
    compensate_self_motion_distortion,
)
from repro.pointcloud.ops import (
    crop_box,
    crop_range,
    merge_clouds,
    remove_ground,
    voxel_downsample,
)

__all__ = [
    "MotionState",
    "PointCloud",
    "accumulate_scans",
    "apply_self_motion_distortion",
    "compensate_self_motion_distortion",
    "crop_box",
    "crop_range",
    "merge_clouds",
    "remove_ground",
    "voxel_downsample",
]
