"""Scan accumulation into local submaps.

BVMatch [27] — the source of the paper's BV matching machinery — matches
*submaps* (several sweeps fused with odometry), not single scans; density
at range is what a single sweep lacks.  :func:`accumulate_scans` builds
such a submap from consecutive scans plus per-scan odometry poses, the
basis of the submap extension study
(:mod:`repro.experiments.submap_study`).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud
from repro.pointcloud.ops import merge_clouds, voxel_downsample

__all__ = ["accumulate_scans"]


def accumulate_scans(clouds: list[PointCloud], poses: list[SE2],
                     reference_index: int = -1,
                     voxel_size: float | None = 0.2) -> PointCloud:
    """Fuse consecutive scans into the reference scan's frame.

    Args:
        clouds: scans, each in its own sensor frame.
        poses: each scan's sensor pose in one common (odometry) frame —
            only *relative* poses matter, so dead-reckoned odometry
            works; absolute drift cancels.
        reference_index: which scan's frame the submap is expressed in
            (default: the latest).
        voxel_size: optional deduplication voxel (None disables).

    Returns:
        The accumulated submap as one :class:`PointCloud` (timestamps and
        labels survive when every input carries them).
    """
    if len(clouds) != len(poses):
        raise ValueError("need one pose per cloud")
    if not clouds:
        raise ValueError("need at least one cloud")
    reference = poses[reference_index]
    moved = []
    for cloud, pose in zip(clouds, poses):
        relative = reference.inverse() @ pose
        moved.append(cloud.transform(relative))
    submap = merge_clouds(*moved)
    if voxel_size is not None and len(submap):
        submap = voxel_downsample(submap, voxel_size)
    return submap
