"""The :class:`PointCloud` container.

A thin, immutable-by-convention wrapper around a ``(N, 3)`` coordinate
array plus two optional per-point channels used throughout the simulator
and pipeline:

* ``timestamps`` — capture time of each point as a fraction of the scan
  period ``[0, 1)``; drives the self-motion-distortion model.
* ``labels`` — integer semantic tag (see :class:`PointLabel`) used by the
  simulator for diagnostics and by tests to verify the BV projection keeps
  the right structure.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.geometry.se2 import SE2
from repro.geometry.se3 import SE3

__all__ = ["PointCloud", "PointLabel"]


class PointLabel(enum.IntEnum):
    """Semantic origin of a simulated lidar return."""

    UNKNOWN = 0
    GROUND = 1
    BUILDING = 2
    TREE = 3
    VEHICLE = 4
    POLE = 5


class PointCloud:
    """N lidar returns with optional timestamps and semantic labels.

    Attributes:
        points: (N, 3) float64 xyz coordinates in the sensor (or any
            caller-chosen) frame.
        timestamps: optional (N,) floats in [0, 1) — fraction of the scan
            sweep at which each point was captured.
        labels: optional (N,) int labels (:class:`PointLabel` values).
    """

    __slots__ = ("points", "timestamps", "labels")

    def __init__(self, points: np.ndarray,
                 timestamps: np.ndarray | None = None,
                 labels: np.ndarray | None = None) -> None:
        points = np.asarray(points, dtype=float)
        if points.size == 0:
            points = points.reshape(0, 3)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"expected (N, 3) points, got {points.shape}")
        n = len(points)
        if timestamps is not None:
            timestamps = np.asarray(timestamps, dtype=float)
            if timestamps.shape != (n,):
                raise ValueError("timestamps must be one scalar per point")
        if labels is not None:
            labels = np.asarray(labels, dtype=np.int32)
            if labels.shape != (n,):
                raise ValueError("labels must be one scalar per point")
        self.points = points
        self.timestamps = timestamps
        self.labels = labels

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.points)

    @property
    def xy(self) -> np.ndarray:
        """Ground-plane coordinates, shape (N, 2)."""
        return self.points[:, :2]

    @property
    def z(self) -> np.ndarray:
        """Heights, shape (N,)."""
        return self.points[:, 2]

    def select(self, mask_or_indices) -> "PointCloud":
        """Return a new cloud containing the selected points."""
        return PointCloud(
            self.points[mask_or_indices],
            None if self.timestamps is None else self.timestamps[mask_or_indices],
            None if self.labels is None else self.labels[mask_or_indices],
        )

    def transform(self, transform: SE3 | SE2) -> "PointCloud":
        """Return the cloud expressed in a new frame.

        Accepts either a full :class:`SE3` or a planar :class:`SE2` (which
        leaves z untouched), matching how the pipeline moves data between
        vehicle viewpoints.
        """
        if isinstance(transform, SE2):
            transform = SE3.from_se2(transform)
        new_points = transform.apply(self.points)
        return PointCloud(new_points, self.timestamps, self.labels)

    def with_labels(self, labels: np.ndarray) -> "PointCloud":
        """Return a copy carrying the given labels."""
        return PointCloud(self.points, self.timestamps, labels)

    @staticmethod
    def empty() -> "PointCloud":
        return PointCloud(np.empty((0, 3)))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extras = []
        if self.timestamps is not None:
            extras.append("timestamps")
        if self.labels is not None:
            extras.append("labels")
        suffix = f" +{'+'.join(extras)}" if extras else ""
        return f"PointCloud({len(self)} points{suffix})"
