"""Self-motion distortion model (paper Section IV-B).

A spinning lidar needs a full sweep period ``T`` to cover 360 degrees of
azimuth.  While it sweeps, the vehicle keeps moving, so returns captured at
different azimuths are measured from slightly different sensor poses — yet
the scan is stored as if every point were seen from one reference pose.
The resulting warp is the *self-motion distortion* that limits stage-1
accuracy and motivates BB-Align's stage-2 box alignment.

This module makes the effect explicit and reproducible:

* :func:`apply_self_motion_distortion` warps an ideal (instantaneous) scan
  the way a moving sensor would record it.
* :func:`compensate_self_motion_distortion` inverts the warp given the
  true motion — the classical odometry-based fix the paper describes as
  computationally expensive; we provide it as a reference/oracle.

Convention: the scan's reference pose is the sensor pose at sweep start
(``t = 0``); a point with timestamp ``t`` (fraction of the sweep in
``[0, 1)``) was actually measured from the pose the sensor reaches after
moving for ``t * T`` seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.se2 import SE2
from repro.pointcloud.cloud import PointCloud

__all__ = ["MotionState", "apply_self_motion_distortion",
           "compensate_self_motion_distortion"]


@dataclass(frozen=True)
class MotionState:
    """Planar motion of the sensor during a sweep, in the sensor frame.

    Attributes:
        velocity_x: forward velocity (m/s).
        velocity_y: lateral velocity (m/s).
        yaw_rate: rotation rate (rad/s), positive counter-clockwise.
    """

    velocity_x: float = 0.0
    velocity_y: float = 0.0
    yaw_rate: float = 0.0

    @property
    def speed(self) -> float:
        return float(np.hypot(self.velocity_x, self.velocity_y))

    def pose_at(self, elapsed_seconds: float) -> SE2:
        """Sensor pose after ``elapsed_seconds`` of constant-twist motion.

        Uses the exact constant-twist (unicycle) integral, falling back to
        the straight-line limit when the yaw rate is negligible.
        """
        t = float(elapsed_seconds)
        w = self.yaw_rate
        vx, vy = self.velocity_x, self.velocity_y
        if abs(w) < 1e-9:
            return SE2(w * t, vx * t, vy * t)
        theta = w * t
        sin_t, cos_t = np.sin(theta), np.cos(theta)
        # Integral of R(w s) @ [vx, vy] ds from 0 to t.
        tx = (vx * sin_t - vy * (1.0 - cos_t)) / w
        ty = (vx * (1.0 - cos_t) + vy * sin_t) / w
        return SE2(theta, tx, ty)


def _pose_batch(motion: MotionState, times: np.ndarray,
                scan_duration: float) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`MotionState.pose_at` over an array of timestamps.

    Returns ``(thetas, translations)`` with shapes (N,) and (N, 2).
    """
    t = np.asarray(times, dtype=float) * scan_duration
    w = motion.yaw_rate
    vx, vy = motion.velocity_x, motion.velocity_y
    theta = w * t
    if abs(w) < 1e-9:
        trans = np.stack([vx * t, vy * t], axis=1)
    else:
        sin_t, cos_t = np.sin(theta), np.cos(theta)
        tx = (vx * sin_t - vy * (1.0 - cos_t)) / w
        ty = (vx * (1.0 - cos_t) + vy * sin_t) / w
        trans = np.stack([tx, ty], axis=1)
    return theta, trans


def _timestamps_from_azimuth(points: np.ndarray) -> np.ndarray:
    """Derive sweep timestamps from point azimuths.

    The sweep starts at azimuth ``-pi`` (behind the vehicle) and rotates
    counter-clockwise, so ``t = (azimuth + pi) / (2 pi)``.
    """
    azimuth = np.arctan2(points[:, 1], points[:, 0])
    return (azimuth + np.pi) / (2.0 * np.pi)


def apply_self_motion_distortion(cloud: PointCloud, motion: MotionState,
                                 scan_duration: float = 0.1) -> PointCloud:
    """Warp an ideal scan into what a moving sensor would record.

    Args:
        cloud: ideal scan in the reference (sweep-start) sensor frame.  If
            ``cloud.timestamps`` is None, timestamps are derived from point
            azimuths (one full CCW sweep starting behind the vehicle).
        motion: the sensor's constant twist during the sweep.
        scan_duration: sweep period in seconds (0.1 s = 10 Hz lidar).

    Returns:
        The distorted cloud, carrying the per-point timestamps used.
    """
    if scan_duration < 0:
        raise ValueError("scan_duration must be non-negative")
    if len(cloud) == 0:
        return cloud
    timestamps = (cloud.timestamps if cloud.timestamps is not None
                  else _timestamps_from_azimuth(cloud.points))
    thetas, trans = _pose_batch(motion, timestamps, scan_duration)

    # The true point p (reference frame) is seen from pose X(t); the sensor
    # records X(t)^-1 p but stores it as if taken from the reference pose.
    cos_t, sin_t = np.cos(-thetas), np.sin(-thetas)
    shifted = cloud.points[:, :2] - trans
    distorted_xy = np.empty_like(shifted)
    distorted_xy[:, 0] = cos_t * shifted[:, 0] - sin_t * shifted[:, 1]
    distorted_xy[:, 1] = sin_t * shifted[:, 0] + cos_t * shifted[:, 1]
    new_points = cloud.points.copy()
    new_points[:, :2] = distorted_xy
    return PointCloud(new_points, timestamps, cloud.labels)


def compensate_self_motion_distortion(cloud: PointCloud, motion: MotionState,
                                      scan_duration: float = 0.1) -> PointCloud:
    """Invert :func:`apply_self_motion_distortion` given the true motion.

    Requires per-point timestamps (the distorted cloud carries them).
    """
    if len(cloud) == 0:
        return cloud
    if cloud.timestamps is None:
        raise ValueError(
            "compensation requires per-point timestamps; "
            "apply_self_motion_distortion records them")
    thetas, trans = _pose_batch(motion, cloud.timestamps, scan_duration)
    cos_t, sin_t = np.cos(thetas), np.sin(thetas)
    xy = cloud.points[:, :2]
    rotated = np.empty_like(xy)
    rotated[:, 0] = cos_t * xy[:, 0] - sin_t * xy[:, 1]
    rotated[:, 1] = sin_t * xy[:, 0] + cos_t * xy[:, 1]
    restored = rotated + trans
    new_points = cloud.points.copy()
    new_points[:, :2] = restored
    return PointCloud(new_points, cloud.timestamps, cloud.labels)
