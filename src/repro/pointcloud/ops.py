"""Stateless point-cloud operations."""

from __future__ import annotations

import numpy as np

from repro.pointcloud.cloud import PointCloud

__all__ = ["crop_range", "crop_box", "remove_ground", "voxel_downsample",
           "merge_clouds"]


def crop_range(cloud: PointCloud, max_range: float,
               use_xy_only: bool = True) -> PointCloud:
    """Keep points within ``max_range`` of the origin.

    ``use_xy_only`` measures range on the ground plane, matching the square
    BV-image region ``[-R, R]^2`` of the paper's Eq. (4) setup (the square
    crop itself happens at projection time; this is the circular sensor
    range limit).
    """
    if max_range <= 0:
        raise ValueError("max_range must be positive")
    coords = cloud.xy if use_xy_only else cloud.points
    dist = np.linalg.norm(coords, axis=1)
    return cloud.select(dist <= max_range)


def crop_box(cloud: PointCloud, x_limits: tuple[float, float],
             y_limits: tuple[float, float],
             z_limits: tuple[float, float] | None = None) -> PointCloud:
    """Keep points inside an axis-aligned box."""
    pts = cloud.points
    mask = ((pts[:, 0] >= x_limits[0]) & (pts[:, 0] <= x_limits[1])
            & (pts[:, 1] >= y_limits[0]) & (pts[:, 1] <= y_limits[1]))
    if z_limits is not None:
        mask &= (pts[:, 2] >= z_limits[0]) & (pts[:, 2] <= z_limits[1])
    return cloud.select(mask)


def remove_ground(cloud: PointCloud, ground_height: float = 0.3) -> PointCloud:
    """Drop points at or below ``ground_height`` above the ground plane.

    The height-map BV projection already suppresses ground returns (tall
    structure dominates each cell), but removing them first reduces work
    and mirrors the paper's observation that ground hits are detrimental
    to matching.
    """
    return cloud.select(cloud.z > ground_height)


def voxel_downsample(cloud: PointCloud, voxel_size: float) -> PointCloud:
    """Keep one representative point per occupied voxel.

    The kept point is the first (lowest index) point falling in each voxel,
    which preserves timestamps/labels without averaging artifacts.
    """
    if voxel_size <= 0:
        raise ValueError("voxel_size must be positive")
    if len(cloud) == 0:
        return cloud
    keys = np.floor(cloud.points / voxel_size).astype(np.int64)
    _, first_idx = np.unique(keys, axis=0, return_index=True)
    return cloud.select(np.sort(first_idx))


def merge_clouds(*clouds: PointCloud) -> PointCloud:
    """Concatenate clouds; optional channels survive only when present in all."""
    clouds = [c for c in clouds if len(c) > 0]
    if not clouds:
        return PointCloud.empty()
    points = np.vstack([c.points for c in clouds])
    if all(c.timestamps is not None for c in clouds):
        timestamps = np.concatenate([c.timestamps for c in clouds])
    else:
        timestamps = None
    if all(c.labels is not None for c in clouds):
        labels = np.concatenate([c.labels for c in clouds])
    else:
        labels = None
    return PointCloud(points, timestamps, labels)
