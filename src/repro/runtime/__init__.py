"""Parallel sweep engine, stage-1 feature cache and stage timings.

The experiment layer's per-pair sweep is the hot loop of the whole
reproduction; this package makes it a schedulable, measurable unit:

* :mod:`repro.runtime.engine` — shards a sweep over a process pool with
  chunked scheduling and deterministic result ordering; failed chunks
  are retried on a fresh pool, then run serially, and a pool that never
  starts falls back to in-process execution;
* :mod:`repro.runtime.pool` — :class:`WorkerPool`, the supervisable
  process pool underneath both the engine and the always-on service:
  lazy start, liveness probes, generation-guarded restart, worker-side
  signal hygiene (inherited wakeup fds and handlers are detached so a
  pool worker's death can never echo a signal back into the parent's
  event loop);
* :mod:`repro.runtime.retry` — :class:`RetryPolicy`, the seeded
  jittered-exponential-backoff schedule shared by the engine's chunk
  ladder and the service's batch ladder;
* :mod:`repro.runtime.faults` — deterministic, picklable fault
  injection (:class:`WorkerFault`) for exercising those retry ladders;
* :mod:`repro.runtime.cache` — keyed LRU cache for stage-1
  :class:`~repro.core.bv_matching.BVFeatures`, so sweeps revisiting the
  same frame pairs skip re-extraction;
* :mod:`repro.runtime.timings` — per-stage wall-time accounting
  (:class:`SweepTimings`) surfaced by the CLI's ``--timings`` flag.
"""

from repro.runtime.cache import (
    FeatureCache,
    dataset_fingerprint,
    extraction_fingerprint,
    feature_key,
    get_default_cache,
    set_default_cache,
)
from repro.runtime.engine import (
    PoolUnavailableError,
    chunk_indices,
    resolve_workers,
    run_sweep_parallel,
    shutdown_pool,
)
from repro.runtime.faults import InjectedFault, WorkerFault
from repro.runtime.pool import WorkerPool
from repro.runtime.retry import ENGINE_DEFAULT, SERVICE_DEFAULT, RetryPolicy
from repro.runtime.timings import (
    STAGES,
    SweepTimings,
    active_timings,
    collect_timings,
    stage,
)

__all__ = [
    "ENGINE_DEFAULT",
    "FeatureCache",
    "InjectedFault",
    "PoolUnavailableError",
    "RetryPolicy",
    "SERVICE_DEFAULT",
    "STAGES",
    "SweepTimings",
    "WorkerFault",
    "WorkerPool",
    "active_timings",
    "chunk_indices",
    "collect_timings",
    "dataset_fingerprint",
    "extraction_fingerprint",
    "feature_key",
    "get_default_cache",
    "resolve_workers",
    "run_sweep_parallel",
    "set_default_cache",
    "shutdown_pool",
    "stage",
]
