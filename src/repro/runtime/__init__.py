"""Parallel sweep engine, stage-1 feature cache and stage timings.

The experiment layer's per-pair sweep is the hot loop of the whole
reproduction; this package makes it a schedulable, measurable unit:

* :mod:`repro.runtime.engine` — shards a sweep over a process pool with
  chunked scheduling and deterministic result ordering; failed chunks
  are retried on a fresh pool, then run serially, and a pool that never
  starts falls back to in-process execution;
* :mod:`repro.runtime.faults` — deterministic, picklable fault
  injection (:class:`WorkerFault`) for exercising that retry ladder;
* :mod:`repro.runtime.cache` — keyed LRU cache for stage-1
  :class:`~repro.core.bv_matching.BVFeatures`, so sweeps revisiting the
  same frame pairs skip re-extraction;
* :mod:`repro.runtime.timings` — per-stage wall-time accounting
  (:class:`SweepTimings`) surfaced by the CLI's ``--timings`` flag.
"""

from repro.runtime.cache import (
    FeatureCache,
    dataset_fingerprint,
    extraction_fingerprint,
    feature_key,
    get_default_cache,
    set_default_cache,
)
from repro.runtime.engine import (
    PoolUnavailableError,
    chunk_indices,
    resolve_workers,
    run_sweep_parallel,
    shutdown_pool,
)
from repro.runtime.faults import InjectedFault, WorkerFault
from repro.runtime.timings import (
    STAGES,
    SweepTimings,
    active_timings,
    collect_timings,
    stage,
)

__all__ = [
    "FeatureCache",
    "InjectedFault",
    "PoolUnavailableError",
    "STAGES",
    "SweepTimings",
    "WorkerFault",
    "active_timings",
    "chunk_indices",
    "collect_timings",
    "dataset_fingerprint",
    "extraction_fingerprint",
    "feature_key",
    "get_default_cache",
    "resolve_workers",
    "run_sweep_parallel",
    "set_default_cache",
    "shutdown_pool",
    "stage",
]
