"""Keyed LRU cache for stage-1 BV features.

The dominant cost of every experiment sweep is stage-1 feature
extraction (Log-Gabor bank -> MIM -> FAST -> descriptors).  Extraction
is a pure function of (point cloud, extraction configuration), and the
dataset regenerates any pair deterministically from (dataset config,
index) — so a feature is fully identified by::

    (dataset fingerprint, pair index, role, extraction fingerprint)

where role distinguishes the ego from the other vehicle.  Sweeps that
revisit the same frame pairs under configurations sharing the extraction
parameters (the ablation variants that only change RANSAC or stage-2
settings, Fig. 13's detector-profile comparison, repeated CLI runs in
one process) skip re-extraction entirely.

Entries are a few megabytes each (three float images plus descriptors),
so the cache is bounded LRU; the default of 64 entries covers a
32-pair sweep's two roles with room to spare.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from repro.core.config import BBAlignConfig
from repro.simulation.dataset import DatasetConfig

__all__ = ["FeatureCache", "extraction_fingerprint", "dataset_fingerprint",
           "feature_key", "get_default_cache", "set_default_cache"]


class FeatureCache:
    """Bounded LRU mapping of feature keys to extracted features.

    ``max_entries=0`` disables storage (every ``get`` misses), which is
    how callers opt out of caching without branching on None.

    Bounds compose: eviction trims the least-recent entries until both
    ``max_entries`` and — when ``max_bytes > 0`` — the byte budget hold.
    Sizes are caller-reported via ``put(..., nbytes=...)`` (the cache
    cannot deep-size arbitrary feature objects); callers that never pass
    sizes get the historical entry-count-only behavior.
    """

    def __init__(self, max_entries: int = 64, *,
                 max_bytes: int = 0) -> None:
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._sizes: dict[Hashable, int] = {}
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable) -> Any | None:
        """Look up a key, refreshing its recency; None on miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, value: Any, *, nbytes: int = 0) -> None:
        """Insert (or refresh) a key, evicting least-recent entries
        until the entry-count and byte budgets both hold.

        ``nbytes`` is the caller's estimate of the entry's footprint;
        an oversized single entry still gets stored (evicting everything
        else) so a hot item larger than the budget degrades to
        cache-of-one rather than thrash.
        """
        if self.max_entries == 0:
            return
        if key in self._entries:
            self.total_bytes -= self._sizes.get(key, 0)
        self._entries[key] = value
        self._entries.move_to_end(key)
        self._sizes[key] = nbytes
        self.total_bytes += nbytes
        while (len(self._entries) > self.max_entries
               or (self.max_bytes and self.total_bytes > self.max_bytes
                   and len(self._entries) > 1)):
            evicted, _ = self._entries.popitem(last=False)
            self.total_bytes -= self._sizes.pop(evicted, 0)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss/eviction counters."""
        self._entries.clear()
        self._sizes.clear()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0


# ----------------------------------------------------------------------
# Key construction
# ----------------------------------------------------------------------
def extraction_fingerprint(config: BBAlignConfig) -> tuple:
    """Identity of everything that influences extracted BV features.

    Stage-1 extraction reads the projection, Log-Gabor, keypoint and
    descriptor settings, the numeric precision, and the ROI-culling
    parameters (the crop window itself derives from the pair's
    deterministic prior, so the configuration suffices); RANSAC, stage-2
    and success parameters do not affect the features, so configurations
    differing only there share a fingerprint (and hence cache entries).
    Frozen-dataclass ``repr`` is deterministic and covers every field.
    """
    return (repr(config.bv_image), repr(config.log_gabor),
            config.keypoint_detector, repr(config.fast),
            repr(config.descriptor), repr(config.roi),
            config.stage1_precision)


def dataset_fingerprint(config: DatasetConfig) -> tuple:
    """Identity of the per-index frame-pair generation.

    ``num_pairs`` is deliberately excluded: pairs generate independently
    per index, so datasets differing only in length share entries.
    """
    mix = tuple(sorted((kind.value, weight)
                       for kind, weight in config.scenario_mix.items()))
    return (config.seed, config.distance_range, mix,
            config.min_common_vehicles, config.max_attempts,
            repr(config.base_scenario))


def feature_key(dataset_fp: tuple, index: int, role: str,
                extraction_fp: tuple) -> tuple:
    """The full cache key for one vehicle's features of one pair."""
    return (dataset_fp, index, role, extraction_fp)


# ----------------------------------------------------------------------
# Process-default cache.  Parallel workers each hold their own default
# in their process; it persists across chunks (and across sweeps while
# the engine's pool is kept alive), which is what makes multi-variant
# studies skip re-extraction.
# ----------------------------------------------------------------------
_DEFAULT_CACHE = FeatureCache()


def get_default_cache() -> FeatureCache:
    """The process-wide default feature cache."""
    return _DEFAULT_CACHE


def set_default_cache(cache: FeatureCache) -> FeatureCache:
    """Replace the process-wide default (returns the previous one)."""
    global _DEFAULT_CACHE
    previous = _DEFAULT_CACHE
    _DEFAULT_CACHE = cache
    return previous
