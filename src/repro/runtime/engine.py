"""Process-pool execution of the pose-recovery sweep.

The sweep is embarrassingly parallel: every pair regenerates
deterministically from ``(dataset config, index)`` and evaluates
independently of every other pair.  The engine shards the index range
into contiguous chunks, runs them on a :class:`ProcessPoolExecutor`, and
reassembles results in index order — so a parallel sweep returns
*exactly* the outcomes a serial sweep returns, regardless of which
worker finished first.

Design notes:

* **Chunking** amortizes task overhead (a chunk re-uses the worker's
  dataset/aligner/detector state) while still giving the pool ~4 chunks
  per worker to balance uneven pair costs.
* **Worker state** is keyed by the task's configuration fingerprints and
  rebuilt only when it changes, so consecutive sweeps over the same
  dataset (multi-variant studies) pay construction once per process.
* **The pool is kept alive** between sweeps: worker processes retain
  their per-process :mod:`repro.runtime.cache` feature caches, which is
  what lets an ablation study's second variant skip BV re-extraction.
* **Fault tolerance** is layered by blast radius.  A pair whose
  evaluation *raises* becomes a ``PairErrorOutcome`` record inside the
  worker — one degraded data point, the chunk continues.  A chunk whose
  worker *dies* (``BrokenProcessPool``), *hangs* (``chunk_timeout``) or
  otherwise fails wholesale is resubmitted once to a freshly restarted
  pool — outstanding futures are cancelled and the broken pool is torn
  down without waiting first — and, if it fails again, runs serially
  in-process; a chunk that even the serial path cannot finish yields
  one error record per pair.  No single pathological pair, worker or
  chunk can take down a sweep.
* **Telemetry** rides the chunk protocol.  Each worker records stage
  seconds, pipeline counters and (when the parent traced the sweep)
  span events into a chunk-local registry and returns a picklable
  snapshot with the outcomes; the parent folds snapshots in *keyed by
  chunk* (:meth:`~repro.runtime.timings.SweepTimings.merge_chunk`), so
  the retry ladder can deliver a chunk's telemetry more than once
  without any stage being double-counted.  Retries, timeouts and serial
  fallbacks are themselves counted (``engine/*`` counters).
* **Fallback**: anything that prevents pool execution entirely (no
  process support, pool creation refused) still raises
  :class:`PoolUnavailableError`; ``run_pose_recovery_sweep`` catches it
  and falls back to in-process serial execution.
* **Shared mechanics**: pool lifecycle (lazy start, restart, idempotent
  shutdown) lives in :class:`repro.runtime.pool.WorkerPool` and retry
  *scheduling* in :class:`repro.runtime.retry.RetryPolicy` — both
  shared with the always-on :mod:`repro.service`.  The engine's default
  policy (:data:`repro.runtime.retry.ENGINE_DEFAULT`) reproduces the
  historical ladder exactly: one immediate retry, then serial.
"""

from __future__ import annotations

import atexit
import contextlib
import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from repro.baselines.vips import VipsConfig
from repro.core.config import BBAlignConfig
from repro.detection.simulated import COBEVT_PROFILE, DetectorProfile
from repro.obs.metrics import use_registry
from repro.obs.spans import active_collector, collect_spans, span
from repro.runtime.cache import (
    dataset_fingerprint,
    extraction_fingerprint,
    get_default_cache,
)
from repro.runtime.faults import WorkerFault
from repro.runtime.pool import (
    PoolUnavailableError,
    WorkerPool,
    resolve_workers,
)
from repro.runtime.retry import ENGINE_DEFAULT, RetryPolicy
from repro.runtime.timings import SweepTimings, stage
from repro.simulation.dataset import DatasetConfig, V2VDatasetSim

__all__ = ["PoolUnavailableError", "resolve_workers", "chunk_indices",
           "run_sweep_parallel", "run_tasks_parallel", "TaskError",
           "shutdown_pool"]


def chunk_indices(num_items: int, workers: int,
                  chunk_size: int | None = None) -> list[tuple[int, ...]]:
    """Split ``range(num_items)`` into contiguous scheduling chunks.

    The default size targets ~4 chunks per worker: large enough that
    per-task pool overhead is amortized, small enough that one slow
    chunk cannot serialize the tail of the sweep.
    """
    if num_items <= 0:
        return []
    if chunk_size is None:
        chunk_size = max(1, math.ceil(num_items / (max(workers, 1) * 4)))
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [tuple(range(start, min(start + chunk_size, num_items)))
            for start in range(0, num_items, chunk_size)]


@dataclass(frozen=True)
class _ChunkTask:
    """Everything a worker needs to evaluate one chunk of pair indices.

    Only configuration travels to the worker — frame pairs regenerate
    there from ``(dataset_config, index)``, so no point clouds cross the
    process boundary.  ``trace_parent`` carries the parent-side sweep
    span id so worker spans nest under it; ``attempt`` numbers the rung
    of the retry ladder delivering the chunk (0 = first pool attempt).
    """

    indices: tuple[int, ...]
    dataset_config: DatasetConfig
    config: BBAlignConfig | None
    detector_profile: DetectorProfile
    include_vips: bool
    vips_config: VipsConfig | None
    seed: int
    fault: WorkerFault | None = None
    trace_parent: str | None = None
    attempt: int = 0

    def state_key(self) -> tuple:
        return (dataset_fingerprint(self.dataset_config),
                repr(self.config), repr(self.detector_profile))


# ----------------------------------------------------------------------
# Worker side.  Module globals are per-process: each pool worker keeps
# its own constructed state and reuses it across the chunks (and sweeps)
# it is handed, rebuilding only when the configuration changes.
# ----------------------------------------------------------------------
_WORKER_STATE_KEY: tuple | None = None
_WORKER_STATE: tuple | None = None


def _worker_state(task: _ChunkTask) -> tuple:
    global _WORKER_STATE_KEY, _WORKER_STATE
    key = task.state_key()
    if _WORKER_STATE is None or key != _WORKER_STATE_KEY:
        from repro.core.pipeline import BBAlign
        from repro.detection.simulated import SimulatedDetector
        _WORKER_STATE = (V2VDatasetSim(task.dataset_config),
                         BBAlign(task.config),
                         SimulatedDetector(task.detector_profile))
        _WORKER_STATE_KEY = key
    return _WORKER_STATE


def _run_chunk(task: _ChunkTask) -> tuple[int, list, dict]:
    """Evaluate one chunk; returns (first index, outcomes, telemetry).

    A pair whose evaluation raises is captured as a
    :class:`~repro.experiments.common.PairErrorOutcome` — one degraded
    data point — and the chunk moves on.  Only process-level failures
    (worker death, hang) escape to the parent's chunk-retry ladder.

    ``telemetry`` is picklable: the chunk-local registry snapshot (stage
    seconds, pipeline counters, pair count) plus the chunk's span events
    when the parent traced the sweep.  Everything the chunk records goes
    through the chunk-local registry installed here, so a chunk is an
    atomic, dedupable telemetry unit.
    """
    # Imported here (not at module top) so the runtime package carries no
    # import-time dependency on the experiments package.
    from repro.experiments.common import PairErrorOutcome, evaluate_pair

    dataset, aligner, detector = _worker_state(task)
    cache = get_default_cache()
    ds_fp = dataset_fingerprint(task.dataset_config)
    ext_fp = extraction_fingerprint(aligner.config)
    timings = SweepTimings()
    outcomes = []
    # Span collection is paid only when the parent traced the sweep; the
    # chunk-local registry is installed either way so pipeline counters
    # always travel home with the chunk.
    spans_cm: contextlib.AbstractContextManager
    spans_cm = (collect_spans(task.trace_parent)
                if task.trace_parent is not None
                else contextlib.nullcontext(None))
    with use_registry(timings.registry), spans_cm as collector:
        with span("engine/chunk", first_index=task.indices[0],
                  pairs=len(task.indices), attempt=task.attempt):
            for index in task.indices:
                try:
                    if task.fault is not None:
                        task.fault.maybe_fire(index)
                    with span("engine/pair", index=index):
                        with stage(timings, "data_generation"):
                            record = dataset[index]
                        outcome = evaluate_pair(
                            record, aligner, detector, seed=task.seed,
                            include_vips=task.include_vips,
                            vips_config=task.vips_config,
                            cache=cache, dataset_fp=ds_fp,
                            extraction_fp=ext_fp, timings=timings)
                except Exception as error:
                    timings.registry.counter("engine/pair_errors").inc()
                    outcome = PairErrorOutcome.from_exception(index, error)
                outcomes.append(outcome)
    timings.pairs = len(outcomes)
    telemetry = {"snapshot": timings.to_snapshot(),
                 "spans": collector.events if collector is not None else []}
    return task.indices[0], outcomes, telemetry


# ----------------------------------------------------------------------
# Parent side.  The engine keeps one module-global WorkerPool so worker
# processes retain their per-process feature caches across sweeps; the
# lifecycle mechanics live in repro.runtime.pool, shared with the
# service.
# ----------------------------------------------------------------------
_POOL: WorkerPool | None = None


def _get_pool(workers: int) -> ProcessPoolExecutor:
    global _POOL
    if _POOL is None or _POOL.workers != workers:
        shutdown_pool()
        _POOL = WorkerPool(workers)
    return _POOL.executor()


def shutdown_pool(wait: bool = True, cancel_futures: bool = False) -> None:
    """Tear down the shared pool (tests; failure recovery; exit).

    Idempotent: a second invocation (or one with no pool running) is a
    no-op.

    Args:
        wait: block until workers exit.  The failure-recovery path and
            the interpreter-exit hook pass ``False`` so a dead or hung
            worker cannot wedge the caller.
        cancel_futures: cancel queued-but-unstarted chunks, so a serial
            fallback never races chunks still draining out of a
            half-broken pool.
    """
    global _POOL
    if _POOL is not None:
        _POOL.shutdown(wait=wait, cancel_futures=cancel_futures)
        _POOL = None


def _shutdown_pool_at_exit() -> None:
    # Non-blocking on purpose: a hung worker must not wedge interpreter
    # exit; orphaned processes drain on their own once the call queue
    # closes.
    shutdown_pool(wait=False, cancel_futures=True)


atexit.register(_shutdown_pool_at_exit)


def _collect_chunks(pool: ProcessPoolExecutor, tasks: list,
                    per_chunk: dict[int, tuple], merged: SweepTimings,
                    chunk_timeout: float | None,
                    worker=None) -> list[tuple]:
    """Submit ``tasks`` and gather results; returns the failed ones.

    Successful chunks land in ``per_chunk`` keyed by first pair index
    and their telemetry folds into ``merged`` (chunk-keyed, so a chunk
    retried by the caller's ladder replaces rather than adds).  Any
    per-chunk failure — worker death, timeout, serialization error, an
    exception escaping the worker — is captured with its task for the
    caller's retry ladder, never raised.  ``worker`` is the function the
    pool runs per chunk (default: the sweep's :func:`_run_chunk`); it
    must return ``(first_index, outcomes, telemetry)``.
    """
    if worker is None:
        worker = _run_chunk
    failed: list[tuple] = []
    futures: list[tuple] = []
    for task in tasks:
        try:
            futures.append((pool.submit(worker, task), task))
        except Exception as error:  # pool died between submits
            failed.append((task, error))
    for future, task in futures:
        try:
            first_index, outcomes, telemetry = future.result(
                timeout=chunk_timeout)
        except TimeoutError as error:
            merged.registry.counter("engine/chunk_timeouts").inc()
            failed.append((task, error))
        except Exception as error:
            merged.registry.counter("engine/chunk_failures").inc()
            failed.append((task, error))
        else:
            per_chunk[first_index] = (outcomes, telemetry)
            merged.merge_chunk(first_index, telemetry["snapshot"])
    return failed


def _run_chunk_serially(task: _ChunkTask) -> tuple[int, list, dict]:
    """Last rung: run a chunk in-process; even that failing yields
    one error record per pair instead of an exception."""
    try:
        return _run_chunk(task)
    except Exception as error:
        from repro.experiments.common import PairErrorOutcome
        outcomes = [PairErrorOutcome.from_exception(index, error)
                    for index in task.indices]
        return task.indices[0], outcomes, {"snapshot": {}, "spans": []}


def run_sweep_parallel(
        dataset_config: DatasetConfig,
        *,
        num_pairs: int,
        config: BBAlignConfig | None = None,
        detector_profile: DetectorProfile = COBEVT_PROFILE,
        include_vips: bool = True,
        vips_config: VipsConfig | None = None,
        seed: int = 7,
        workers: int | None = None,
        chunk_size: int | None = None,
        timings: SweepTimings | None = None,
        chunk_timeout: float | None = None,
        fault: WorkerFault | None = None,
        retry: RetryPolicy | None = None):
    """Run the pose-recovery sweep on a process pool.

    Returns the same outcome list (same ordering, same values) the
    serial sweep produces: one ``PairOutcome`` per pair — or a
    ``PairErrorOutcome`` for a pair whose evaluation failed even after
    the retry ladder.  Per-chunk stage timings are merged into
    ``timings`` when given — keyed by chunk, so a chunk that visits
    several rungs of the retry ladder contributes exactly once; merged
    stage seconds are CPU-seconds summed across workers, while
    ``wall_seconds`` reflects the pool's elapsed time as seen from the
    parent.  When a trace collector is active, worker span events are
    re-emitted into it (chunk-deduplicated, in chunk order) under a
    parent-side ``engine/sweep`` span.

    Chunk failures degrade, they don't abort: a failed chunk is
    resubmitted to a restarted pool (outstanding futures cancelled
    first) per ``retry`` — the default policy
    (:data:`~repro.runtime.retry.ENGINE_DEFAULT`) retries once with no
    backoff, reproducing the historical ladder — then run serially
    in-process.  Retry jitter draws from a generator seeded by
    ``[seed, 0x52]`` so backoff schedules are reproducible.
    ``chunk_timeout`` bounds each chunk's wall time on the pool;
    ``fault`` injects a :class:`~repro.runtime.faults.WorkerFault` for
    robustness testing.

    Raises:
        PoolUnavailableError: the pool could not start at all; the
            caller should fall back to serial execution.
    """
    workers = resolve_workers(workers)
    chunks = chunk_indices(num_pairs, workers, chunk_size)
    if not chunks:
        return []
    collector = active_collector()
    with span("engine/sweep", pairs=num_pairs, workers=workers,
              chunks=len(chunks)) as sweep_span:
        trace_parent = sweep_span.span_id if sweep_span is not None else None
        tasks = [_ChunkTask(indices, dataset_config, config,
                            detector_profile, include_vips, vips_config,
                            seed, fault, trace_parent)
                 for indices in chunks]
        start = time.perf_counter()
        pool = _get_pool(workers)
        per_chunk: dict[int, tuple] = {}
        merged = SweepTimings()
        merged.registry.counter("engine/chunks").inc(len(chunks))
        failed = _collect_chunks(pool, tasks, per_chunk, merged,
                                 chunk_timeout)
        policy = retry if retry is not None else ENGINE_DEFAULT
        retry_rng = np.random.default_rng([seed, 0x52])
        attempt = 0
        for delay in policy.delays(retry_rng):
            if not failed:
                break
            # Retry the failures on a fresh pool.  Cancel anything
            # still queued and tear the old pool down without waiting,
            # so the retry (and a possible serial fallback) never races
            # chunks still running in half-broken workers.
            attempt += 1
            shutdown_pool(wait=False, cancel_futures=True)
            merged.registry.counter("engine/chunk_retries").inc(len(failed))
            if delay > 0:
                time.sleep(delay)
            retry_tasks = [replace(task, attempt=attempt)
                           for task, _ in failed]
            try:
                pool = _get_pool(workers)
                failed = _collect_chunks(pool, retry_tasks, per_chunk,
                                         merged, chunk_timeout)
            except PoolUnavailableError:
                failed = [(replace(task, attempt=attempt), error)
                          for task, error in failed]
        if failed:
            shutdown_pool(wait=False, cancel_futures=True)
        for task, _error in failed:
            merged.registry.counter("engine/serial_fallbacks").inc()
            first_index, outcomes, telemetry = _run_chunk_serially(
                replace(task, attempt=attempt + 1))
            per_chunk[first_index] = (outcomes, telemetry)
            merged.merge_chunk(first_index, telemetry["snapshot"])

        ordered = []
        for first_index in sorted(per_chunk):
            outcomes, telemetry = per_chunk[first_index]
            ordered.extend(outcomes)
            if collector is not None:
                for event in telemetry["spans"]:
                    collector.emit(event)
    if timings is not None:
        merged.workers = workers
        merged.wall_seconds = time.perf_counter() - start
        timings.merge(merged)
    return ordered


# ----------------------------------------------------------------------
# Generic fault-tolerant map.  Same pool, same chunking, same retry
# ladder as the sweep — but over arbitrary picklable payloads, so other
# subsystems (the multi-vehicle study shards *scenes* this way) inherit
# the engine's fault tolerance without re-implementing it.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TaskError:
    """Sentinel result for an item whose evaluation failed.

    A generic-map item that raises — even after the chunk retry ladder —
    occupies its slot in the result list with one of these instead of
    aborting the map, mirroring the sweep's ``PairErrorOutcome``.
    """

    index: int
    error: str
    error_type: str

    @classmethod
    def from_exception(cls, index: int, error: Exception) -> TaskError:
        return cls(index=index, error=str(error),
                   error_type=type(error).__name__)


@dataclass(frozen=True)
class _MapChunkTask:
    """One chunk of a generic map: the callable plus its payload slice.

    ``fn`` must be a module-level function (picklable); each payload
    item crosses the process boundary, so callers keep payloads small
    (configuration, not data) and regenerate heavy state in ``fn``.
    """

    indices: tuple[int, ...]
    fn: object
    items: tuple
    attempt: int = 0


def _apply_map_item(fn, index: int, item):
    try:
        return fn(item)
    except Exception as error:
        return TaskError.from_exception(index, error)


def _run_map_chunk(task: _MapChunkTask) -> tuple[int, list, dict]:
    """Evaluate one generic chunk; returns (first index, results,
    telemetry).  Item-level exceptions become :class:`TaskError`
    records; only process-level failures escape to the retry ladder."""
    timings = SweepTimings()
    results = []
    with use_registry(timings.registry):
        for index, item in zip(task.indices, task.items):
            result = _apply_map_item(task.fn, index, item)
            if isinstance(result, TaskError):
                timings.registry.counter("engine/task_errors").inc()
            results.append(result)
    return task.indices[0], results, {"snapshot": timings.to_snapshot(),
                                      "spans": []}


def _run_map_chunk_serially(task: _MapChunkTask) -> tuple[int, list, dict]:
    try:
        return _run_map_chunk(task)
    except Exception as error:
        results = [TaskError.from_exception(index, error)
                   for index in task.indices]
        return task.indices[0], results, {"snapshot": {}, "spans": []}


def run_tasks_parallel(fn, items, *, workers: int | None = None,
                       chunk_size: int | None = None,
                       chunk_timeout: float | None = None,
                       retry: RetryPolicy | None = None,
                       seed: int = 7,
                       timings: SweepTimings | None = None) -> list:
    """Fault-tolerant parallel map of ``fn`` over ``items``.

    Returns one result per item, in item order, exactly as a serial
    ``[fn(item) for item in items]`` would — except an item whose
    evaluation raises yields a :class:`TaskError` in its slot rather
    than an exception.  Chunks ride the sweep's retry ladder (failed
    chunk → fresh pool → in-process serial), and unlike
    :func:`run_sweep_parallel` this never raises
    :class:`PoolUnavailableError`: if the pool cannot start at all the
    whole map degrades to in-process serial execution.  ``workers=1``
    short-circuits to serial without touching the pool.

    ``fn`` must be a module-level function and every item picklable.
    """
    items = list(items)
    if not items:
        return []
    workers = resolve_workers(workers)
    if workers <= 1:
        return [_apply_map_item(fn, index, item)
                for index, item in enumerate(items)]
    chunks = chunk_indices(len(items), workers, chunk_size)
    tasks = [_MapChunkTask(indices, fn,
                           tuple(items[i] for i in indices))
             for indices in chunks]
    start = time.perf_counter()
    per_chunk: dict[int, tuple] = {}
    merged = SweepTimings()
    merged.registry.counter("engine/chunks").inc(len(chunks))
    try:
        pool = _get_pool(workers)
        failed = _collect_chunks(pool, tasks, per_chunk, merged,
                                 chunk_timeout, worker=_run_map_chunk)
    except PoolUnavailableError:
        failed = [(task, PoolUnavailableError("pool unavailable"))
                  for task in tasks]
    policy = retry if retry is not None else ENGINE_DEFAULT
    retry_rng = np.random.default_rng([seed, 0x53])
    attempt = 0
    for delay in policy.delays(retry_rng):
        if not failed:
            break
        attempt += 1
        shutdown_pool(wait=False, cancel_futures=True)
        merged.registry.counter("engine/chunk_retries").inc(len(failed))
        if delay > 0:
            time.sleep(delay)
        retry_tasks = [replace(task, attempt=attempt)
                       for task, _ in failed]
        try:
            pool = _get_pool(workers)
            failed = _collect_chunks(pool, retry_tasks, per_chunk,
                                     merged, chunk_timeout,
                                     worker=_run_map_chunk)
        except PoolUnavailableError:
            failed = [(replace(task, attempt=attempt), error)
                      for task, error in failed]
    if failed:
        shutdown_pool(wait=False, cancel_futures=True)
    for task, _error in failed:
        merged.registry.counter("engine/serial_fallbacks").inc()
        first_index, results, telemetry = _run_map_chunk_serially(
            replace(task, attempt=attempt + 1))
        per_chunk[first_index] = (results, telemetry)
        merged.merge_chunk(first_index, telemetry["snapshot"])
    ordered: list = []
    for first_index in sorted(per_chunk):
        ordered.extend(per_chunk[first_index][0])
    if timings is not None:
        merged.workers = workers
        merged.wall_seconds = time.perf_counter() - start
        timings.merge(merged)
    return ordered
