"""Process-level fault injection for the sweep engine.

The engine's fault tolerance (per-pair error capture, per-chunk retry,
serial fallback) is only trustworthy if it can be *exercised*:
:class:`WorkerFault` is a picklable, deterministic fault that travels to
pool workers inside a chunk task and fires at configured pair indices.
Three kinds cover the engine's failure surface:

* ``"raise"`` — the pair evaluation throws (a pathological pair); caught
  by the engine's per-pair capture, degrading one data point.
* ``"kill"`` — the worker process dies with SIGKILL mid-chunk (an OOM
  kill, a segfault); surfaces as ``BrokenProcessPool`` and exercises the
  chunk retry / serial-fallback path.
* ``"hang"`` — the worker stalls (a deadlock, a runaway kernel);
  exercises the per-chunk timeout.

A fault with a ``once_dir`` fires **at most once per index across all
processes** (claimed atomically via ``open(..., "x")`` sentinel files in
that directory), so a retried chunk runs clean — which is exactly the
transient-fault scenario the retry ladder is built for.  ``kill`` and
``hang`` faults should always carry a ``once_dir``: a persistent kill
would also kill the in-process serial fallback.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

__all__ = ["InjectedFault", "WorkerFault"]

_KINDS = ("raise", "kill", "hang")


class InjectedFault(RuntimeError):
    """The exception a ``"raise"``-kind :class:`WorkerFault` throws."""


@dataclass(frozen=True)
class WorkerFault:
    """A deterministic fault fired at configured pair indices.

    Attributes:
        kind: ``"raise"``, ``"kill"`` or ``"hang"``.
        indices: pair indices at which the fault fires.
        once_dir: directory for fire-once sentinel files; ``None`` makes
            the fault fire on every evaluation of a listed index (only
            sensible for ``"raise"``).
        hang_seconds: stall duration for ``"hang"`` faults — keep it
            above the engine's chunk timeout but small enough that an
            orphaned worker drains quickly at interpreter exit.
    """

    kind: str
    indices: tuple[int, ...]
    once_dir: str | None = None
    hang_seconds: float = 6.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, "
                             f"got {self.kind!r}")
        if self.kind in ("kill", "hang") and self.once_dir is None:
            raise ValueError(
                f"a {self.kind!r} fault must carry once_dir: without a "
                "fire-once sentinel it would also take down the retry "
                "and the serial fallback")

    def _claim(self, index: int) -> bool:
        """Atomically claim the right to fire at ``index`` (cross-process)."""
        if self.once_dir is None:
            return True
        sentinel = os.path.join(self.once_dir,
                                f"fault-{self.kind}-{index}.fired")
        try:
            with open(sentinel, "x"):
                return True
        except FileExistsError:
            return False

    def maybe_fire(self, index: int) -> None:
        """Fire if ``index`` is targeted and not already claimed."""
        if index not in self.indices or not self._claim(index):
            return
        if self.kind == "raise":
            raise InjectedFault(f"injected fault at pair {index}")
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)
        time.sleep(self.hang_seconds)
