"""A restartable, supervisable process pool shared by engine and service.

Both the batch sweep engine and the always-on pose service run work on
a ``ProcessPoolExecutor`` whose workers keep warm per-process state
(Log-Gabor bank, world geometry, feature cache) and can die or hang at
any moment.  :class:`WorkerPool` owns the lifecycle half of that
problem so the two callers share one implementation:

* **lazy start** — the executor is created on first use; a refusal to
  start raises :class:`PoolUnavailableError` (callers fall back to
  serial execution or fail the request, their choice);
* **generation-guarded restart** — :meth:`restart` tears the pool down
  and bumps a generation counter.  Callers pass the generation their
  failed submission used; when several concurrent batches crash on the
  same broken pool, only the *first* restart happens and the rest see
  ``False`` — which is what makes the service's restart counter equal
  its injected-fault count instead of racing past it;
* **worker liveness** — :meth:`dead_workers` counts pool processes
  that exited without being asked to (the supervisor's heartbeat
  probe), and ``kill_workers=True`` on restart SIGKILLs survivors so a
  hung worker cannot outlive the pool that abandoned it;
* **idempotent shutdown** — :meth:`shutdown` is safe to call twice and
  from ``atexit``.

The sweep engine keeps its module-global pool (worker processes retain
feature caches across sweeps) but delegates the mechanics here; the
service owns one pool per instance.
"""

from __future__ import annotations

import os
import signal
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Any, Callable

__all__ = ["PoolUnavailableError", "WorkerPool", "resolve_workers"]


def _pool_worker_init(extra: Callable[..., None] | None,
                      *args: Any) -> None:
    """Detach inherited signal wiring, then run the caller's initializer.

    Fork-started workers inherit the parent's Python-level signal
    handlers *and* — when the parent runs an asyncio loop — the loop's
    ``signal.set_wakeup_fd`` pipe.  A worker that later receives
    SIGTERM (the executor's broken-pool teardown terminates surviving
    workers) would write the signal number into that **shared** pipe,
    and the parent's loop would run the parent's own SIGTERM handler: a
    phantom shutdown of a process nobody signalled.  Resetting both in
    the child confines signals to the process they were sent to.
    """
    try:
        signal.set_wakeup_fd(-1)
    except (ValueError, OSError):  # non-main thread / closed fd
        pass
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, signal.SIG_DFL)
        except (ValueError, OSError):
            pass
    if extra is not None:
        extra(*args)


class PoolUnavailableError(RuntimeError):
    """Raised when parallel execution cannot run; callers go serial."""


def resolve_workers(workers: int | None) -> int:
    """Map the user-facing worker count to an effective one.

    ``None`` or ``0`` (the CLI's ``--workers 0``) selects the host CPU
    count; anything else passes through.
    """
    if workers is None or workers <= 0:
        return os.cpu_count() or 1
    return int(workers)


class WorkerPool:
    """One restartable process pool with liveness accounting."""

    def __init__(self, workers: int | None = None, *,
                 initializer: Callable[..., None] | None = None,
                 initargs: tuple = ()) -> None:
        self.workers = resolve_workers(workers)
        self._initializer = initializer
        self._initargs = tuple(initargs)
        self._executor: ProcessPoolExecutor | None = None
        #: Bumped on every restart; submissions snapshot it so a failure
        #: can tell "my pool broke" from "someone already replaced it".
        self.generation = 0
        #: Total restarts over the pool's lifetime (supervision metric).
        self.restarts = 0

    # ------------------------------------------------------------------
    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use.

        Raises:
            PoolUnavailableError: the executor could not start.
        """
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_worker_init,
                    initargs=(self._initializer, *self._initargs))
            except (OSError, ValueError, NotImplementedError) as error:
                raise PoolUnavailableError(
                    f"cannot start process pool: {error}") from error
        return self._executor

    def submit(self, fn: Callable[..., Any], *args: Any) -> Future:
        """Submit ``fn(*args)``; starts the pool if needed."""
        return self.executor().submit(fn, *args)

    @property
    def started(self) -> bool:
        return self._executor is not None

    # ------------------------------------------------------------------
    def _processes(self) -> list:
        """The executor's worker processes (empty before first submit).

        ``ProcessPoolExecutor`` spawns workers lazily and exposes them
        via the semi-private ``_processes`` dict — stable across
        CPython 3.10–3.12 and guarded here so an implementation change
        degrades supervision to "no liveness probe", not a crash.
        """
        if self._executor is None:
            return []
        processes = getattr(self._executor, "_processes", None)
        return list(processes.values()) if processes else []

    def live_workers(self) -> int:
        """Spawned worker processes currently alive."""
        return sum(1 for p in self._processes() if p.is_alive())

    def dead_workers(self) -> int:
        """Spawned worker processes that have exited (crash or kill)."""
        return sum(1 for p in self._processes() if not p.is_alive())

    # ------------------------------------------------------------------
    def restart(self, generation: int | None = None, *,
                kill_workers: bool = False) -> bool:
        """Replace the executor; returns whether a restart happened.

        Args:
            generation: the generation the caller's failed submission
                ran against.  When it no longer matches (another path
                already restarted), nothing happens and ``False`` is
                returned — the caller just resubmits on the new pool.
            kill_workers: SIGKILL surviving worker processes after the
                non-blocking shutdown.  The service passes ``True`` so
                a *hung* worker dies with the pool that abandoned it;
                the engine keeps the historical drain-on-their-own
                behavior.
        """
        if generation is not None and generation != self.generation:
            return False
        self._teardown(wait=False, cancel_futures=True,
                       kill_workers=kill_workers)
        self.generation += 1
        self.restarts += 1
        return True

    def shutdown(self, wait: bool = True, cancel_futures: bool = False,
                 *, kill_workers: bool = False) -> None:
        """Tear down the executor.  Idempotent — safe to call twice."""
        self._teardown(wait=wait, cancel_futures=cancel_futures,
                       kill_workers=kill_workers)

    def _teardown(self, *, wait: bool, cancel_futures: bool,
                  kill_workers: bool) -> None:
        executor, self._executor = self._executor, None
        if executor is None:
            return
        processes = ([] if not kill_workers
                     else [p for p in
                           (getattr(executor, "_processes", None) or {}
                            ).values()])
        executor.shutdown(wait=wait, cancel_futures=cancel_futures)
        for process in processes:
            if process.is_alive():
                process.kill()
