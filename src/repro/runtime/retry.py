"""Configurable retry scheduling shared by the engine and the service.

The sweep engine's original fault ladder was hard-coded: one retry on a
fresh pool, then a serial fallback.  :class:`RetryPolicy` generalizes
the *scheduling* half of that ladder — how many attempts, how long to
wait between them, and when an approaching deadline makes another
attempt pointless — without touching the *mechanism* (pool restart,
serial fallback), which stays with the caller.

Backoff is jittered-exponential: retry ``i`` (0-based) waits
``min(max_delay, base_delay * multiplier**i)`` scaled by a uniform
jitter factor in ``[1 - jitter, 1 + jitter]``.  Jitter draws come from
a caller-supplied :class:`numpy.random.Generator`, so a seeded rng
makes the whole schedule deterministic — the property
``tests/test_runtime_retry.py`` pins down.  With no rng the midpoint
(no jitter) is used, which keeps the engine's default path
reproducible without threading randomness through it.

Deadline awareness is a *budget check*, not a timer: ``schedule``
stops yielding as soon as the next sleep would land past the deadline,
so a caller that still holds work when the schedule dries up knows the
remaining time belongs to its final fallback (the engine's serial
rung, the service's flagged-degraded response).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

__all__ = ["RetryPolicy", "ENGINE_DEFAULT", "SERVICE_DEFAULT"]


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to try, and how long to wait between tries.

    Attributes:
        attempts: total attempts including the first (``attempts=1``
            means "never retry"; the engine's historical behavior is
            ``attempts=2`` — one retry).
        base_delay: seconds before the first retry (0 retries
            immediately, the engine default).
        multiplier: exponential growth factor per retry.
        max_delay: ceiling on the un-jittered delay.
        jitter: fraction of the delay randomized symmetrically —
            ``0.5`` draws uniformly from ``[0.5 * d, 1.5 * d]``.
            Ignored (midpoint used) when no rng is supplied.
    """

    attempts: int = 2
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1:
            raise ValueError("multiplier must be >= 1")
        if not 0 <= self.jitter <= 1:
            raise ValueError("jitter must be in [0, 1]")

    # ------------------------------------------------------------------
    def delay(self, retry_index: int,
              rng: np.random.Generator | None = None) -> float:
        """The (jittered) sleep before 0-based retry ``retry_index``."""
        if retry_index < 0:
            raise ValueError("retry_index must be >= 0")
        base = min(self.max_delay,
                   self.base_delay * self.multiplier ** retry_index)
        if base <= 0:
            return 0.0
        if rng is None or self.jitter == 0:
            return base
        # Uniform in [1 - jitter, 1 + jitter]; one draw per retry, so a
        # seeded rng reproduces the whole schedule draw-for-draw.
        factor = 1.0 - self.jitter + 2.0 * self.jitter * rng.random()
        return base * factor

    def delays(self, rng: np.random.Generator | None = None,
               ) -> Iterator[float]:
        """The sleeps before each of the ``attempts - 1`` retries."""
        for index in range(self.attempts - 1):
            yield self.delay(index, rng)

    def schedule(self, rng: np.random.Generator | None = None, *,
                 deadline: float | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 ) -> Iterator[float]:
        """Deadline-aware retry delays.

        Yields the same delays as :meth:`delays` but stops early when
        ``clock() + delay`` would overrun ``deadline`` (a ``clock``
        timestamp) — a retry that cannot finish waiting inside the
        budget is never offered.  ``deadline=None`` never truncates.
        """
        for delay in self.delays(rng):
            if deadline is not None and clock() + delay > deadline:
                return
            yield delay


#: The engine's historical ladder: one immediate retry, then the
#: caller's serial fallback.
ENGINE_DEFAULT = RetryPolicy(attempts=2, base_delay=0.0)

#: The service's default: two retries with fast jittered backoff, so a
#: transient worker fault recovers inside a typical request deadline.
SERVICE_DEFAULT = RetryPolicy(attempts=3, base_delay=0.05,
                              multiplier=2.0, max_delay=1.0, jitter=0.5)
