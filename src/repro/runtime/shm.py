"""Zero-copy scan transport over POSIX shared memory.

The service's scan-pair requests carry the sensing itself — point
clouds, BV images, keypoint payloads — and the PR 8 data path pickled
all of it through the worker pool's call pipe on every request: two
copies (serialize + deserialize) of a ~1 MB payload per pose answer.
This module is the replacement data plane: the dispatcher *places* the
heavy arrays into a :mod:`multiprocessing.shared_memory` segment once
per micro-batch and hands workers a few-hundred-byte descriptor
(``name``, per-array offset/shape/dtype); the worker maps the segment
and reconstructs the messages as NumPy views — no serialization of
array payloads in either direction.

Ownership protocol (the crash-cleanup contract, see ``DESIGN.md``):

* **The parent owns every segment.**  Only :class:`ShmArena` (which
  lives in the dispatcher process) creates and unlinks segments.
  Workers attach and close; they never unlink.  A worker that is
  SIGKILLed mid-batch therefore cannot orphan a segment — its mapping
  dies with the process, and the parent unlinks the name when the
  batch's retry ladder resolves.
* **One placement per batch, released in ``finally``.**  The retry
  ladder re-submits the *same* descriptor to a restarted pool (the
  payload has not changed), so a retried batch pays zero re-placement
  cost; the segment is released exactly once, whatever the outcome
  (success, exhausted retry budget, cancellation).
* **Generation tags** stamp every descriptor with the arena's epoch.
  :meth:`ShmArena.release_all` bumps the epoch, so a descriptor that
  survives an arena teardown (a straggler batch) can be recognized and
  refused instead of attaching to a recycled name.
* **Backstops:** the arena registers a :mod:`weakref` finalizer (and
  the interpreter's ``atexit`` runs finalizers), so even an abandoned
  arena unlinks its live segments on interpreter exit; the service
  additionally calls :meth:`release_all` in its drain path.

Attachment bypasses ``multiprocessing``'s resource tracker: on
CPython < 3.13 every attach registers the name with the tracker, which
would later unlink (and warn about) a segment it does not own.  The
parent's create-side registration is kept — it is the last-resort
cleanup if the parent dies without running finalizers.

Everything here is transport-agnostic: :func:`share_messages` /
:func:`load_messages` know the tier message shapes, the rest is plain
"pack these arrays / map them back".  When shared memory is unavailable
(no ``/dev/shm``, sealed sandbox), :func:`shm_available` reports it and
callers fall back to the pickle path transparently.
"""

from __future__ import annotations

import os
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "ShmArena",
    "ShmBlockRef",
    "ShmSlice",
    "ShmUnavailableError",
    "SharedMessages",
    "attach_block",
    "load_messages",
    "read_segment",
    "share_messages",
    "shm_available",
    "write_segment",
]

#: Segment offsets are aligned so every array view starts on a cache
#: line; costs at most 63 bytes per array.
_ALIGN = 64


class ShmUnavailableError(RuntimeError):
    """Shared memory cannot be used here; callers fall back to pickle."""


@dataclass(frozen=True)
class ShmSlice:
    """One array's location inside a segment (picklable, tiny)."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


@dataclass(frozen=True)
class ShmBlockRef:
    """A picklable handle to one shared segment full of packed arrays.

    ``generation`` is the owning arena's epoch at placement time — a
    consumer can detect a descriptor that outlived its arena (see
    :meth:`ShmArena.owns`).
    """

    name: str
    size: int
    generation: int
    slices: tuple[ShmSlice, ...]

    @property
    def payload_bytes(self) -> int:
        """Bytes of array payload carried by the segment."""
        return sum(int(np.prod(s.shape, dtype=np.int64))
                   * np.dtype(s.dtype).itemsize for s in self.slices)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    CPython < 3.13 registers every ``SharedMemory(name=...)`` attach
    with the multiprocessing resource tracker, which then unlinks the
    name at process teardown — destroying a segment this process does
    not own and warning about a "leak" that is not one.  Unregistering
    *after* the attach is no fix: pool workers share the parent's
    tracker (its cache is a name *set*), so the attacher's unregister
    would silently delete the creator's entry and the eventual unlink
    would double-unregister.  Suppressing registration during the
    attach is balanced in both topologies (shared tracker and a
    separate per-process one).  Ownership stays explicit: the creating
    arena unlinks, and its create-side registration remains the
    last-resort cleanup if the owner dies without running finalizers.
    """
    from multiprocessing import resource_tracker
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None  # type: ignore[assignment]
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


_AVAILABLE: bool | None = None


def shm_available() -> bool:
    """Probe (once per process) whether shared memory works here."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            probe = shared_memory.SharedMemory(create=True, size=16)
        except Exception:
            _AVAILABLE = False
        else:
            probe.close()
            probe.unlink()
            _AVAILABLE = True
    return _AVAILABLE


class ShmArena:
    """Parent-side owner of shared-memory segments.

    Tracks every live segment by name so cleanup is exact: segments are
    unlinked in :meth:`release` (per batch), :meth:`release_all` (drain
    / shutdown), or — backstop — by a :mod:`weakref` finalizer when the
    arena is garbage-collected or the interpreter exits.

    Counters (``created`` / ``released`` / ``bytes_placed``) feed the
    service's metrics; ``active`` is the live-segment gauge and must be
    zero after a drained shutdown (the chaos soak asserts it).
    """

    def __init__(self, prefix: str = "repro-shm") -> None:
        if not shm_available():
            raise ShmUnavailableError("shared memory is not available")
        self.prefix = prefix
        self.generation = 0
        self.created = 0
        self.released = 0
        self.bytes_placed = 0
        self._sequence = 0
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._finalizer = weakref.finalize(
            self, ShmArena._unlink_all, self._segments)

    # ------------------------------------------------------------------
    @property
    def active(self) -> int:
        """Live (placed, not yet released) segments."""
        return len(self._segments)

    def owns(self, ref: ShmBlockRef) -> bool:
        """Whether ``ref`` names a live segment of this arena's epoch."""
        return ref.generation == self.generation and ref.name in self._segments

    # ------------------------------------------------------------------
    def place(self, arrays: Sequence[np.ndarray]) -> ShmBlockRef:
        """Copy ``arrays`` into one fresh segment; returns its handle.

        One copy total (write side); the consumer maps views.  Raises
        :class:`ShmUnavailableError` when the segment cannot be created
        (e.g. ``/dev/shm`` filled up mid-run) — callers fall back to
        pickling that batch.
        """
        slices: list[ShmSlice] = []
        offset = 0
        contiguous = [np.ascontiguousarray(a) for a in arrays]
        for array in contiguous:
            offset = _aligned(offset)
            slices.append(ShmSlice(offset, array.shape, array.dtype.str))
            offset += array.nbytes
        self._sequence += 1
        name = f"{self.prefix}-{os.getpid()}-{self._sequence}"
        try:
            segment = shared_memory.SharedMemory(
                name=name, create=True, size=max(offset, 1))
        except Exception as error:
            raise ShmUnavailableError(
                f"cannot create shared segment: {error}") from error
        for array, shm_slice in zip(contiguous, slices):
            if array.nbytes:
                view = np.ndarray(array.shape, dtype=array.dtype,
                                  buffer=segment.buf,
                                  offset=shm_slice.offset)
                view[...] = array
        self._segments[name] = segment
        self.created += 1
        self.bytes_placed += offset
        return ShmBlockRef(name=name, size=max(offset, 1),
                           generation=self.generation,
                           slices=tuple(slices))

    def release(self, ref: ShmBlockRef) -> None:
        """Unlink one segment.  Idempotent: releasing twice (or after
        :meth:`release_all`) is a no-op."""
        segment = self._segments.pop(ref.name, None)
        if segment is None:
            return
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - external unlink
            pass
        self.released += 1

    def release_all(self) -> None:
        """Unlink every live segment and bump the epoch."""
        for name in list(self._segments):
            self.release(ShmBlockRef(name=name, size=0,
                                     generation=self.generation, slices=()))
        self.generation += 1

    @staticmethod
    def _unlink_all(segments: dict[str, shared_memory.SharedMemory]) -> None:
        # weakref.finalize target: must not reference the arena itself.
        for segment in segments.values():
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:
                pass
        segments.clear()


def write_segment(payload: bytes) -> shared_memory.SharedMemory:
    """Create a fresh segment holding ``payload`` (caller owns it).

    The TCP client's side of the shm-pair transport: the returned
    segment's ``name`` travels in the request descriptor and the caller
    unlinks after the response arrives.  Raises
    :class:`ShmUnavailableError` when the segment cannot be created.
    """
    try:
        segment = shared_memory.SharedMemory(create=True,
                                             size=max(len(payload), 1))
    except Exception as error:
        raise ShmUnavailableError(
            f"cannot create shared segment: {error}") from error
    segment.buf[:len(payload)] = payload
    return segment


def read_segment(name: str, length: int) -> bytes:
    """Copy ``length`` bytes out of a foreign segment and detach.

    The server's side of the shm-pair transport: the segment belongs to
    the client, so this attaches untracked, copies, and closes — never
    unlinks.  Raises ``ValueError`` when the segment is shorter than
    promised, ``FileNotFoundError`` when the name does not resolve.
    """
    segment = _attach(name)
    try:
        if segment.size < length:
            raise ValueError(
                f"segment {name!r} holds {segment.size} bytes, "
                f"descriptor promises {length}")
        return bytes(segment.buf[:length])
    finally:
        segment.close()


def attach_block(ref: ShmBlockRef,
                 ) -> tuple[list[np.ndarray], Callable[[], None]]:
    """Map a placed block; returns its arrays (views) and a closer.

    The views alias the mapped segment: call the closer only after
    dropping every reference to them (a view kept alive past the close
    would raise ``BufferError``; the closer tolerates that and leaves
    the mapping to die with the process — the *name* is still the
    parent's to unlink, so nothing leaks either way).
    """
    segment = _attach(ref.name)
    arrays = [np.ndarray(s.shape, dtype=np.dtype(s.dtype),
                         buffer=segment.buf, offset=s.offset)
              for s in ref.slices]

    def close() -> None:
        try:
            segment.close()
        except BufferError:  # a view outlived the batch: leave the map
            pass

    return arrays, close


# ----------------------------------------------------------------------
# Tier-message packing.  A TieredMessage is a skeleton of scalars plus
# up to a handful of arrays; share_messages() strips the arrays into an
# arena block and load_messages() reassembles views on the worker side.
# The comms import is local: repro.runtime stays import-light and free
# of a package-level runtime <-> comms cycle.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _CloudSkeleton:
    points: int
    timestamps: int | None
    labels: int | None


@dataclass(frozen=True)
class _BvImageSkeleton:
    image: int
    cell_size: float
    lidar_range: float
    num_nonfinite: int


@dataclass(frozen=True)
class _KeypointSkeleton:
    xy: int
    scores: int
    descriptors: int
    image_size: int
    cell_size: float
    lidar_range: float
    grid_size: int
    num_orientations: int


@dataclass(frozen=True)
class _MessageSkeleton:
    """One tier message with its arrays replaced by slice indices."""

    tier: str
    boxes: tuple
    cloud: _CloudSkeleton | None = None
    bv_image: _BvImageSkeleton | None = None
    keypoints: _KeypointSkeleton | None = None


@dataclass(frozen=True)
class SharedMessages:
    """A batch of tier messages packed into one shared segment.

    Picklable and tiny (the block handle plus per-message skeletons);
    this is what crosses the pool's call pipe instead of the payloads.
    """

    block: ShmBlockRef
    skeletons: tuple[_MessageSkeleton, ...]

    @property
    def payload_bytes(self) -> int:
        return self.block.payload_bytes


def share_messages(arena: ShmArena, messages: Sequence) -> SharedMessages:
    """Strip a batch of :class:`~repro.comms.tiers.TieredMessage` into
    one arena segment plus skeletons.

    Raises :class:`ShmUnavailableError` when the segment cannot be
    created; the caller falls back to pickling the batch.
    """
    arrays: list[np.ndarray] = []

    def add(array: np.ndarray) -> int:
        arrays.append(array)
        return len(arrays) - 1

    skeletons: list[_MessageSkeleton] = []
    for message in messages:
        cloud = bv = kp = None
        if message.cloud is not None:
            c = message.cloud
            cloud = _CloudSkeleton(
                points=add(c.points),
                timestamps=(add(c.timestamps)
                            if c.timestamps is not None else None),
                labels=add(c.labels) if c.labels is not None else None)
        if message.bv_image is not None:
            b = message.bv_image
            bv = _BvImageSkeleton(image=add(b.image),
                                  cell_size=b.cell_size,
                                  lidar_range=b.lidar_range,
                                  num_nonfinite=b.num_nonfinite)
        if message.keypoints is not None:
            k = message.keypoints
            kp = _KeypointSkeleton(
                xy=add(k.xy), scores=add(k.scores),
                descriptors=add(k.descriptors), image_size=k.image_size,
                cell_size=k.cell_size, lidar_range=k.lidar_range,
                grid_size=k.grid_size,
                num_orientations=k.num_orientations)
        skeletons.append(_MessageSkeleton(
            tier=message.tier.value, boxes=tuple(message.boxes),
            cloud=cloud, bv_image=bv, keypoints=kp))
    block = arena.place(arrays)
    return SharedMessages(block=block, skeletons=tuple(skeletons))


def load_messages(shared: SharedMessages,
                  ) -> tuple[list, Callable[[], None]]:
    """Reassemble the batch's messages as views over the mapped block.

    Cloud points stay zero-copy views (the heavy payload, consumed
    within the batch); the small BV-image/keypoint arrays are *copied*
    out of the segment so anything downstream that retains them (the
    worker's warm feature cache) can outlive the mapping safely.

    Returns ``(messages, close)``; call ``close`` after the batch drops
    its message references.
    """
    from repro.bev.projection import BVImage
    from repro.comms.tiers import KeypointPayload, Tier, TieredMessage
    from repro.pointcloud.cloud import PointCloud

    arrays, close = attach_block(shared.block)
    messages = []
    for skel in shared.skeletons:
        cloud = bv = kp = None
        if skel.cloud is not None:
            cloud = PointCloud(
                arrays[skel.cloud.points],
                timestamps=(arrays[skel.cloud.timestamps]
                            if skel.cloud.timestamps is not None else None),
                labels=(arrays[skel.cloud.labels]
                        if skel.cloud.labels is not None else None))
        if skel.bv_image is not None:
            bv = BVImage(arrays[skel.bv_image.image].copy(),
                         cell_size=skel.bv_image.cell_size,
                         lidar_range=skel.bv_image.lidar_range,
                         num_nonfinite=skel.bv_image.num_nonfinite)
        if skel.keypoints is not None:
            k = skel.keypoints
            kp = KeypointPayload(
                xy=arrays[k.xy].copy(), scores=arrays[k.scores].copy(),
                descriptors=arrays[k.descriptors].copy(),
                image_size=k.image_size, cell_size=k.cell_size,
                lidar_range=k.lidar_range, grid_size=k.grid_size,
                num_orientations=k.num_orientations)
        messages.append(TieredMessage(tier=Tier(skel.tier),
                                      boxes=list(skel.boxes),
                                      cloud=cloud, bv_image=bv,
                                      keypoints=kp))
    return messages, close
