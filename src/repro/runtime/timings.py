"""Per-stage time accounting for experiment sweeps.

The pose-recovery sweep decomposes into six stages (data generation,
detection, BV extraction, stage-1 match, stage-2 align, baseline);
:class:`SweepTimings` accumulates seconds per stage so a run can report
where the time went.  Accumulators merge, which is how the parallel
engine folds per-worker measurements into one report — merged stage
seconds are therefore CPU-seconds, not wall-clock, whenever more than
one worker contributed (``wall_seconds`` keeps the elapsed view).

Since the observability layer landed, ``SweepTimings`` is a thin view
over a :class:`repro.obs.MetricsRegistry` rather than a parallel
bookkeeping system: every ``stage()`` block observes the registry
histogram ``stage/<name>`` (count + total seconds), the counters the
pipeline and engine record during the sweep travel in the same
registry, and the report formats the histogram totals.  The engine's
chunk protocol ships one registry snapshot per chunk; the parent folds
them in with :meth:`SweepTimings.merge_chunk`, which is *keyed by
chunk* — re-delivering a chunk's telemetry (a retried chunk, a serial
fallback after a pool failure) replaces the previous contribution
instead of adding to it, so no stage's seconds can be double-counted.

A sweep picks up the ambient accumulator installed by
:func:`collect_timings`, so callers several layers above the sweep (the
CLI's ``--timings`` flag) can collect without threading an object
through every ``run_*`` signature.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from typing import Iterator, Mapping

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import active_collector, span as obs_span

__all__ = ["STAGES", "SweepTimings", "stage", "collect_timings",
           "active_timings"]

# Canonical stage order, matching the sweep's per-pair flow.
STAGES: tuple[str, ...] = (
    "data_generation",  # dataset frame-pair generation (world + scans)
    "detection",        # simulated detector draws
    "bv_extract",       # BV image -> MIM -> keypoints -> descriptors
    "stage1_match",     # descriptor matching + RANSAC (T_bv)
    "stage2_align",     # box overlap matching + corner RANSAC (T_box)
    "baseline",         # VIPS graph matching
)

# Registry key prefix for stage-seconds histograms.
_STAGE_PREFIX = "stage/"
_PAIRS_KEY = "sweep/pairs"
_CACHE_HITS_KEY = "cache/hits"
_CACHE_MISSES_KEY = "cache/misses"


class _StageSecondsView(Mapping):
    """Live read-only mapping of stage name -> accumulated seconds.

    Backed by the registry's ``stage/*`` histograms; materialize with
    ``dict(timings.seconds)`` for a stable copy.
    """

    __slots__ = ("_registry",)

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    def _names(self) -> list[str]:
        prefix_len = len(_STAGE_PREFIX)
        return [name[prefix_len:] for name in self._registry.histograms
                if name.startswith(_STAGE_PREFIX)]

    def __getitem__(self, name: str) -> float:
        histograms = self._registry.histograms
        key = _STAGE_PREFIX + name
        if key not in histograms:
            raise KeyError(name)
        return histograms[key].total

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return repr(dict(self))


class SweepTimings:
    """Per-stage seconds plus sweep counters, viewed over a registry.

    Attributes:
        registry: the backing :class:`~repro.obs.MetricsRegistry`; stage
            seconds live in its ``stage/<name>`` histograms, pair and
            cache counts in its counters.  Engine/pipeline telemetry
            recorded during the sweep rides along in the same registry.
        seconds: live mapping of accumulated seconds per stage name
            (unknown stage names are accepted, so ad-hoc
            instrumentation merges cleanly).
        pairs: evaluated pair count.
        workers: largest worker count that contributed.
        wall_seconds: elapsed time of the sweep call(s).
        cache_hits / cache_misses: stage-1 feature-cache statistics.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        for name in STAGES:
            self.registry.histogram(_STAGE_PREFIX + name)
        self.workers = 1
        self.wall_seconds = 0.0
        # Chunk-keyed contributions already folded in; the dedupe ledger
        # behind merge_chunk.
        self._chunks: dict[object, dict] = {}

    # ------------------------------------------------------------------
    # Counter-backed attributes (kept as properties so existing call
    # sites — `timings.pairs += n`, `timings.cache_hits += 1` — read
    # and write the registry without knowing it exists).
    # ------------------------------------------------------------------
    @property
    def pairs(self) -> int:
        return self.registry.counter(_PAIRS_KEY).value

    @pairs.setter
    def pairs(self, value: int) -> None:
        self.registry.counter(_PAIRS_KEY).value = int(value)

    @property
    def cache_hits(self) -> int:
        return self.registry.counter(_CACHE_HITS_KEY).value

    @cache_hits.setter
    def cache_hits(self, value: int) -> None:
        self.registry.counter(_CACHE_HITS_KEY).value = int(value)

    @property
    def cache_misses(self) -> int:
        return self.registry.counter(_CACHE_MISSES_KEY).value

    @cache_misses.setter
    def cache_misses(self, value: int) -> None:
        self.registry.counter(_CACHE_MISSES_KEY).value = int(value)

    @property
    def seconds(self) -> _StageSecondsView:
        return _StageSecondsView(self.registry)

    # ------------------------------------------------------------------
    def add(self, stage_name: str, seconds: float,
            count: int = 1) -> None:
        """Accumulate ``seconds`` into one stage bucket."""
        histogram = self.registry.histogram(_STAGE_PREFIX + stage_name)
        histogram.count += count
        histogram.total += seconds
        if seconds < histogram.min:
            histogram.min = seconds
        if seconds > histogram.max:
            histogram.max = seconds

    def stage_count(self, stage_name: str) -> int:
        """How many timed entries a stage accumulated (dedupe-exact)."""
        return self.registry.histogram(_STAGE_PREFIX + stage_name).count

    def merge(self, other: "SweepTimings") -> None:
        """Fold another accumulator (e.g. one worker's) into this one.

        Stage seconds, pair counts and cache counters add; ``workers``
        takes the max; ``wall_seconds`` adds only when the other
        accumulator measured its own wall (serial sub-sweeps) — the
        parallel engine leaves worker ``wall_seconds`` at zero and times
        the pool from the parent instead.
        """
        self.registry.merge(other.registry)
        self.workers = max(self.workers, other.workers)
        self.wall_seconds += other.wall_seconds

    def merge_chunk(self, chunk_key: object, snapshot: Mapping) -> int:
        """Fold one chunk's registry snapshot in, exactly once per chunk.

        The parallel engine's retry ladder can produce more than one
        telemetry delivery for the same chunk (pool attempt, retried
        pool attempt, in-process serial fallback).  Merging is keyed by
        ``chunk_key``: a later delivery *replaces* the chunk's previous
        contribution — subtracting it before adding the new one — so
        stage seconds and pair counts are never double-counted no matter
        how many rungs of the ladder a chunk visited.

        Returns the number of deliveries this chunk has now made
        (1 for the common case; >1 means a dedupe actually happened,
        also counted in the ``timings/chunk_remerges`` counter).
        """
        previous = self._chunks.get(chunk_key)
        if previous is not None:
            self.registry.merge_snapshot(previous, sign=-1)
            self.registry.counter("timings/chunk_remerges").inc()
        stored: dict = {
            "counters": dict(snapshot.get("counters", {})),
            "histograms": {name: dict(data) for name, data in
                           snapshot.get("histograms", {}).items()},
            "gauges": {name: dict(data) for name, data in
                       snapshot.get("gauges", {}).items()},
            "deliveries": (previous["deliveries"] if previous else 0) + 1,
        }
        self._chunks[chunk_key] = stored
        self.registry.merge_snapshot(stored)
        return int(stored["deliveries"])

    def to_snapshot(self) -> dict:
        """Picklable form for the engine's chunk protocol."""
        return self.registry.snapshot()

    @classmethod
    def from_snapshot(cls, snapshot: Mapping) -> "SweepTimings":
        timings = cls()
        timings.registry.merge_snapshot(snapshot)
        return timings

    @property
    def stage_seconds_total(self) -> float:
        """Sum over all top-level stages (CPU-seconds under parallel
        execution).  Detail stages — names containing ``/``, such as
        ``bv_extract/mim`` — time slices *inside* a top-level stage and
        are excluded so their seconds are not double-counted.
        """
        return sum(seconds for name, seconds in self.seconds.items()
                   if "/" not in name)

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Render the report the CLI prints under ``--timings``."""
        seconds_by_stage = dict(self.seconds)
        total = self.stage_seconds_total
        lines = [
            f"Sweep timings — {self.pairs} pairs, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"wall {self.wall_seconds:.2f} s"
            + (f", stage total {total:.2f} s (CPU)"
               if self.workers > 1 else ""),
        ]
        known = [name for name in STAGES if name in seconds_by_stage]
        extra = [name for name in seconds_by_stage
                 if name not in STAGES and "/" not in name]
        orphans = [name for name in seconds_by_stage
                   if "/" in name
                   and name.split("/", 1)[0] not in seconds_by_stage]
        for name in known + extra + orphans:
            seconds = seconds_by_stage[name]
            share = seconds / total if total > 0 else 0.0
            bar = "#" * int(round(share * 30))
            lines.append(f"  {name:>12}  {seconds:8.2f} s  "
                         f"{share * 100:5.1f} %  {bar}")
            # Detail rows: per-kernel slices recorded as "<stage>/<part>".
            for detail in seconds_by_stage:
                if not detail.startswith(name + "/"):
                    continue
                part_seconds = seconds_by_stage[detail]
                part_share = part_seconds / seconds if seconds > 0 else 0.0
                lines.append(
                    f"    {'· ' + detail.split('/', 1)[1]:>12}  "
                    f"{part_seconds:8.2f} s  {part_share * 100:5.1f} % of "
                    f"{name}")
        attempts = self.cache_hits + self.cache_misses
        if attempts:
            lines.append(
                f"  feature cache: {self.cache_hits}/{attempts} hits "
                f"({self.cache_hits / attempts * 100:.0f} %)")
        comms = self._format_comms()
        if comms:
            lines.append(comms)
        return "\n".join(lines)

    def _format_comms(self) -> str | None:
        """One line of per-message byte accounting, when comms ran.

        Sent-side counters come from :func:`repro.comms.accounting.
        record_sent`; the received-size histogram from the pipeline's
        message path.  Absent both, the sweep had no comms traffic and
        the line is omitted.
        """
        counters = self.registry.counters
        sent = counters.get("comms/messages_sent")
        received = self.registry.histograms.get("comms/message_bytes")
        if (sent is None or sent.value == 0) \
                and (received is None or received.count == 0):
            return None
        parts = []
        if sent is not None and sent.value:
            encoded = counters["comms/bytes/encoded"].value
            payload = counters.get("comms/bytes/payload")
            ratio = (f", {payload.value / encoded:.1f}x vs dense"
                     if payload is not None and encoded else "")
            parts.append(f"sent {sent.value} msgs, "
                         f"{encoded / sent.value / 1024:.1f} KiB/msg"
                         f"{ratio}")
        if received is not None and received.count:
            parts.append(f"received {received.count} msgs, "
                         f"{received.total / received.count / 1024:.1f} "
                         f"KiB/msg")
        tiers = sorted(
            (name.split("/")[2], int(counters[name].value))
            for name in counters
            if name.startswith("comms/tier/")
            and name.endswith("/messages"))
        if tiers:
            parts.append("tiers " + " ".join(
                f"{tier}={count}" for tier, count in tiers))
        return "  comms: " + "; ".join(parts)


@contextlib.contextmanager
def stage(timings: SweepTimings | None, stage_name: str) -> Iterator[None]:
    """Time a block into ``timings`` (no-op when ``timings`` is None).

    When a trace collector is active (``--trace``), the block is also
    recorded as a span named after the stage — same clocks, one extra
    event; when neither a collector nor ``timings`` is present the body
    runs untimed, which is the overhead-neutral disabled mode.
    """
    if active_collector() is not None:
        with obs_span(stage_name):
            start = time.perf_counter()
            try:
                yield
            finally:
                if timings is not None:
                    timings.add(stage_name, time.perf_counter() - start)
        return
    if timings is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        timings.add(stage_name, time.perf_counter() - start)


# ----------------------------------------------------------------------
# Ambient collector: lets the CLI (or any caller) harvest timings from
# sweeps running arbitrarily deep in an experiment without every run_*
# function having to forward an accumulator.
# ----------------------------------------------------------------------
_ACTIVE: contextvars.ContextVar[SweepTimings | None] = contextvars.ContextVar(
    "repro_runtime_active_timings", default=None)


def active_timings() -> SweepTimings | None:
    """The ambient accumulator installed by :func:`collect_timings`."""
    return _ACTIVE.get()


@contextlib.contextmanager
def collect_timings() -> Iterator[SweepTimings]:
    """Install a fresh ambient accumulator for the enclosed block.

    Example:
        >>> from repro.runtime import collect_timings
        >>> with collect_timings() as timings:
        ...     pass  # run experiments; sweeps record into `timings`
        >>> timings.pairs
        0
    """
    timings = SweepTimings()
    token = _ACTIVE.set(timings)
    start = time.perf_counter()
    try:
        yield timings
    finally:
        _ACTIVE.reset(token)
        # Only adopt the elapsed view if no sweep recorded its own wall
        # (sweeps accumulate wall_seconds themselves; the context is a
        # superset and would double-count).
        if timings.wall_seconds == 0.0:
            timings.wall_seconds = time.perf_counter() - start
