"""Per-stage wall-time accounting for experiment sweeps.

The pose-recovery sweep decomposes into six stages (data generation,
detection, BV extraction, stage-1 match, stage-2 align, baseline);
:class:`SweepTimings` accumulates seconds per stage so a run can report
where the time went.  Accumulators merge, which is how the parallel
engine folds per-worker measurements into one report — merged stage
seconds are therefore CPU-seconds, not wall-clock, whenever more than
one worker contributed (``wall_seconds`` keeps the elapsed view).

A sweep picks up the ambient accumulator installed by
:func:`collect_timings`, so callers several layers above the sweep (the
CLI's ``--timings`` flag) can collect without threading an object
through every ``run_*`` signature.
"""

from __future__ import annotations

import contextlib
import contextvars
import time
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["STAGES", "SweepTimings", "stage", "collect_timings",
           "active_timings"]

# Canonical stage order, matching the sweep's per-pair flow.
STAGES: tuple[str, ...] = (
    "data_generation",  # dataset frame-pair generation (world + scans)
    "detection",        # simulated detector draws
    "bv_extract",       # BV image -> MIM -> keypoints -> descriptors
    "stage1_match",     # descriptor matching + RANSAC (T_bv)
    "stage2_align",     # box overlap matching + corner RANSAC (T_box)
    "baseline",         # VIPS graph matching
)


@dataclass
class SweepTimings:
    """Mutable accumulator of per-stage seconds plus sweep counters.

    Attributes:
        seconds: accumulated seconds per stage name (unknown stage names
            are accepted, so ad-hoc instrumentation merges cleanly).
        pairs: evaluated pair count.
        workers: largest worker count that contributed.
        wall_seconds: elapsed time of the sweep call(s).
        cache_hits / cache_misses: stage-1 feature-cache statistics.
    """

    seconds: dict[str, float] = field(
        default_factory=lambda: {name: 0.0 for name in STAGES})
    pairs: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0

    # ------------------------------------------------------------------
    def add(self, stage_name: str, seconds: float) -> None:
        """Accumulate ``seconds`` into one stage bucket."""
        self.seconds[stage_name] = self.seconds.get(stage_name, 0.0) + seconds

    def merge(self, other: "SweepTimings") -> None:
        """Fold another accumulator (e.g. one worker's) into this one.

        Stage seconds, pair counts and cache counters add; ``workers``
        takes the max; ``wall_seconds`` adds only when the other
        accumulator measured its own wall (serial sub-sweeps) — the
        parallel engine leaves worker ``wall_seconds`` at zero and times
        the pool from the parent instead.
        """
        for name, seconds in other.seconds.items():
            self.add(name, seconds)
        self.pairs += other.pairs
        self.workers = max(self.workers, other.workers)
        self.wall_seconds += other.wall_seconds
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses

    @property
    def stage_seconds_total(self) -> float:
        """Sum over all top-level stages (CPU-seconds under parallel
        execution).  Detail stages — names containing ``/``, such as
        ``bv_extract/mim`` — time slices *inside* a top-level stage and
        are excluded so their seconds are not double-counted.
        """
        return sum(seconds for name, seconds in self.seconds.items()
                   if "/" not in name)

    # ------------------------------------------------------------------
    def format(self) -> str:
        """Render the report the CLI prints under ``--timings``."""
        total = self.stage_seconds_total
        lines = [
            f"Sweep timings — {self.pairs} pairs, "
            f"{self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"wall {self.wall_seconds:.2f} s"
            + (f", stage total {total:.2f} s (CPU)"
               if self.workers > 1 else ""),
        ]
        known = [name for name in STAGES if name in self.seconds]
        extra = [name for name in self.seconds
                 if name not in STAGES and "/" not in name]
        orphans = [name for name in self.seconds
                   if "/" in name
                   and name.split("/", 1)[0] not in self.seconds]
        for name in known + extra + orphans:
            seconds = self.seconds[name]
            share = seconds / total if total > 0 else 0.0
            bar = "#" * int(round(share * 30))
            lines.append(f"  {name:>12}  {seconds:8.2f} s  "
                         f"{share * 100:5.1f} %  {bar}")
            # Detail rows: per-kernel slices recorded as "<stage>/<part>".
            for detail in self.seconds:
                if not detail.startswith(name + "/"):
                    continue
                part_seconds = self.seconds[detail]
                part_share = part_seconds / seconds if seconds > 0 else 0.0
                lines.append(
                    f"    {'· ' + detail.split('/', 1)[1]:>12}  "
                    f"{part_seconds:8.2f} s  {part_share * 100:5.1f} % of "
                    f"{name}")
        attempts = self.cache_hits + self.cache_misses
        if attempts:
            lines.append(
                f"  feature cache: {self.cache_hits}/{attempts} hits "
                f"({self.cache_hits / attempts * 100:.0f} %)")
        return "\n".join(lines)


@contextlib.contextmanager
def stage(timings: SweepTimings | None, stage_name: str) -> Iterator[None]:
    """Time a block into ``timings`` (no-op when ``timings`` is None)."""
    if timings is None:
        yield
        return
    start = time.perf_counter()
    try:
        yield
    finally:
        timings.add(stage_name, time.perf_counter() - start)


# ----------------------------------------------------------------------
# Ambient collector: lets the CLI (or any caller) harvest timings from
# sweeps running arbitrarily deep in an experiment without every run_*
# function having to forward an accumulator.
# ----------------------------------------------------------------------
_ACTIVE: contextvars.ContextVar[SweepTimings | None] = contextvars.ContextVar(
    "repro_runtime_active_timings", default=None)


def active_timings() -> SweepTimings | None:
    """The ambient accumulator installed by :func:`collect_timings`."""
    return _ACTIVE.get()


@contextlib.contextmanager
def collect_timings() -> Iterator[SweepTimings]:
    """Install a fresh ambient accumulator for the enclosed block.

    Example:
        >>> from repro.runtime import collect_timings
        >>> with collect_timings() as timings:
        ...     pass  # run experiments; sweeps record into `timings`
        >>> timings.pairs
        0
    """
    timings = SweepTimings()
    token = _ACTIVE.set(timings)
    start = time.perf_counter()
    try:
        yield timings
    finally:
        _ACTIVE.reset(token)
        # Only adopt the elapsed view if no sweep recorded its own wall
        # (sweeps accumulate wall_seconds themselves; the context is a
        # superset and would double-count).
        if timings.wall_seconds == 0.0:
            timings.wall_seconds = time.perf_counter() - start
