"""The always-on pose-recovery service.

BB-Align's deployment story is not a batch sweep — it is a vehicle (or
edge node) answering pose-recovery requests continuously, under load,
while workers crash and hang.  This package is that service:

* :mod:`repro.service.core` — :class:`PoseService`: bounded admission
  (typed :class:`ServiceOverloaded` rejection), micro-batching over the
  warm :class:`~repro.runtime.pool.WorkerPool`, per-request deadlines,
  jittered-backoff retry on worker faults, and a supervisor that
  heartbeats and restarts workers.  The robustness contract: an
  admitted request *always* gets a response.
* :mod:`repro.service.config` — :class:`ServiceConfig` and the typed
  error surface.
* :mod:`repro.service.worker` — worker-side batch units; indexed
  requests run the sweep engine's own chunk runner, so service answers
  are byte-identical to sweep outcomes.
* :mod:`repro.service.server` — the length-prefixed TCP transport
  (:class:`ServiceServer` / :class:`ServiceClient`) speaking
  :mod:`repro.comms.envelope` frames.
* :mod:`repro.service.load` — the closed-loop load generator behind
  ``repro service-load`` and the chaos-soak benchmark.
"""

from repro.service.config import (
    ServiceClosed,
    ServiceConfig,
    ServiceError,
    ServiceOverloaded,
    ServiceUnsupported,
)
from repro.service.core import PoseService
from repro.service.load import LoadSummary, run_load
from repro.service.server import ServiceClient, ServiceServer

__all__ = [
    "LoadSummary",
    "PoseService",
    "ServiceClient",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceServer",
    "ServiceUnsupported",
    "run_load",
]
