"""The always-on pose-recovery service.

BB-Align's deployment story is not a batch sweep — it is a vehicle (or
edge node) answering pose-recovery requests continuously, under load,
while workers crash and hang.  This package is that service:

* :mod:`repro.service.core` — :class:`PoseService`: bounded admission
  (typed :class:`ServiceOverloaded` rejection), micro-batching over the
  warm :class:`~repro.runtime.pool.WorkerPool`, per-request deadlines,
  jittered-backoff retry on worker faults, and a supervisor that
  heartbeats and restarts workers.  The robustness contract: an
  admitted request *always* gets a response.
* :mod:`repro.service.config` — :class:`ServiceConfig` and the typed
  error surface.
* :mod:`repro.service.worker` — worker-side batch units; indexed
  requests run the sweep engine's own chunk runner, so service answers
  are byte-identical to sweep outcomes.  Scan-pair workers keep a warm
  per-process feature cache (:func:`configure_worker`).
* :mod:`repro.service.batching` — :class:`AdaptiveBatchController`,
  the queue-depth-driven micro-batch shaper (opt-in via
  ``ServiceConfig.adaptive_batch``).
* :mod:`repro.service.server` — the length-prefixed TCP transport
  (:class:`ServiceServer` / :class:`ServiceClient`) speaking
  :mod:`repro.comms.envelope` frames, including the shared-memory
  scan-pair fast path (:meth:`ServiceClient.request_shm`).
* :mod:`repro.service.load` — the closed-loop load generator behind
  ``repro service-load`` and the chaos-soak benchmark.

The scan data plane itself (arena, descriptors, message packing) lives
in :mod:`repro.runtime.shm`.
"""

from repro.service.batching import (
    AdaptiveBatchController,
    BatchControllerConfig,
)
from repro.service.config import (
    ServiceClosed,
    ServiceConfig,
    ServiceError,
    ServiceOverloaded,
    ServiceUnsupported,
)
from repro.service.core import PoseService
from repro.service.load import LoadSummary, run_load
from repro.service.server import (
    ServiceClient,
    ServiceServer,
    resolve_shm_request,
)
from repro.service.worker import configure_worker

__all__ = [
    "AdaptiveBatchController",
    "BatchControllerConfig",
    "LoadSummary",
    "PoseService",
    "ServiceClient",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceServer",
    "ServiceUnsupported",
    "configure_worker",
    "resolve_shm_request",
    "run_load",
]
