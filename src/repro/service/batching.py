"""Queue-depth-driven micro-batch sizing for the pose service.

The dispatcher's fixed ``batch_size``/``batch_window`` is a single
operating point: small batches waste pool round-trips under load, large
windows add latency when the service is idle.
:class:`AdaptiveBatchController` walks a bounded ladder of batch sizes
(doubling from ``min_batch`` to ``max_batch``) driven by the
``service/queue_depth`` gauge the supervisor already maintains, with the
same consecutive-observation hysteresis discipline as
:class:`~repro.comms.policy.AdaptiveTierPolicy`: one deep queue sample
does not grow the batch, one idle sample does not shrink it.

Determinism: the controller consumes **no randomness** and reads time
only through the injected ``clock`` (tests pass a fake; production uses
``time.monotonic``), so a fixed sequence of ``observe`` calls under a
fixed clock always walks the same ladder.  It is opt-in
(``ServiceConfig.adaptive_batch``) precisely because the chaos-soak
contract counts batches against a *fixed* batch size.

Thresholds are relative to the current batch size: a queue deeper than
``high_factor x batch_size`` means the current batch cannot drain the
backlog in one dispatch (step up); a queue below
``low_factor x batch_size`` means batches are no longer filling (step
down, trading throughput back for latency).  The linger window scales
with the batch size — a bigger batch is worth waiting longer to fill.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.obs.metrics import counter

__all__ = ["AdaptiveBatchController", "BatchControllerConfig"]


@dataclass(frozen=True)
class BatchControllerConfig:
    """Hysteresis and bounds for :class:`AdaptiveBatchController`.

    Attributes:
        min_batch / max_batch: inclusive bounds of the doubling ladder
            (``max_batch`` is clamped onto the ladder's last rung).
        base_window: linger window (seconds) at ``min_batch``; the
            window scales linearly with the batch size.
        high_factor: queue depth at or above ``high_factor x batch``
            counts toward stepping up.
        low_factor: queue depth at or below ``low_factor x batch``
            counts toward stepping down.
        step_up_after / step_down_after: consecutive qualifying
            observations required before a step (stepping down is
            slower than stepping up, mirroring the tier policy: losing
            throughput under load hurts more than holding a large
            batch briefly too long).
        cooldown: minimum seconds between steps, measured on the
            injected clock.
    """

    min_batch: int = 1
    max_batch: int = 16
    base_window: float = 0.002
    high_factor: float = 2.0
    low_factor: float = 0.5
    step_up_after: int = 2
    step_down_after: int = 4
    cooldown: float = 0.05

    def __post_init__(self) -> None:
        if self.min_batch < 1:
            raise ValueError("min_batch must be >= 1")
        if self.max_batch < self.min_batch:
            raise ValueError("max_batch must be >= min_batch")
        if self.base_window < 0:
            raise ValueError("base_window must be >= 0")
        if not self.high_factor > self.low_factor >= 0:
            raise ValueError("need high_factor > low_factor >= 0")
        if self.step_up_after < 1 or self.step_down_after < 1:
            raise ValueError("step thresholds must be >= 1")
        if self.cooldown < 0:
            raise ValueError("cooldown must be >= 0")


class AdaptiveBatchController:
    """Bounded, hysteretic batch-size ladder over queue-depth samples."""

    def __init__(self, config: BatchControllerConfig | None = None, *,
                 initial: int | None = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config or BatchControllerConfig()
        ladder = [self.config.min_batch]
        while ladder[-1] * 2 <= self.config.max_batch:
            ladder.append(ladder[-1] * 2)
        self._ladder = tuple(ladder)
        self._clock = clock
        start = self.config.min_batch if initial is None else initial
        # The closest rung at or below the requested starting size.
        self._level = max(
            (i for i, size in enumerate(self._ladder) if size <= start),
            default=0)
        self._high_streak = 0
        self._low_streak = 0
        self._last_step = -float("inf")

    # ------------------------------------------------------------------
    @property
    def batch_size(self) -> int:
        return self._ladder[self._level]

    @property
    def batch_window(self) -> float:
        """Linger window for the current rung (scales with the batch)."""
        return self.config.base_window * (self.batch_size
                                          / self._ladder[0])

    # ------------------------------------------------------------------
    def observe(self, queue_depth: int) -> bool:
        """Feed one queue-depth sample; returns whether a step happened.

        Counters ``service/batch_controller/step_up`` / ``step_down``
        record into the ambient registry (no-op when none installed).
        """
        size = self.batch_size
        if queue_depth >= self.config.high_factor * size:
            self._high_streak += 1
            self._low_streak = 0
        elif queue_depth <= self.config.low_factor * size:
            self._low_streak += 1
            self._high_streak = 0
        else:
            self._high_streak = 0
            self._low_streak = 0
            return False
        now = self._clock()
        if now - self._last_step < self.config.cooldown:
            return False
        if (self._high_streak >= self.config.step_up_after
                and self._level + 1 < len(self._ladder)):
            self._level += 1
            counter("service/batch_controller/step_up").inc()
        elif (self._low_streak >= self.config.step_down_after
                and self._level > 0):
            self._level -= 1
            counter("service/batch_controller/step_down").inc()
        else:
            return False
        self._high_streak = 0
        self._low_streak = 0
        self._last_step = now
        return True
