"""Service configuration and its typed error surface.

The always-on pose service promises: *an admitted request always gets a
response*.  Everything that can prevent admission is therefore a typed
exception raised at the door — the caller knows synchronously whether
the request is in — and everything after admission resolves through the
request's future, never as an unhandled exception.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.vips import VipsConfig
from repro.core.config import BBAlignConfig
from repro.detection.simulated import COBEVT_PROFILE, DetectorProfile
from repro.runtime.faults import WorkerFault
from repro.runtime.retry import SERVICE_DEFAULT, RetryPolicy
from repro.service.batching import BatchControllerConfig
from repro.simulation.dataset import DatasetConfig

__all__ = [
    "ServiceClosed",
    "ServiceConfig",
    "ServiceError",
    "ServiceOverloaded",
    "ServiceUnsupported",
]


class ServiceError(RuntimeError):
    """Base class for the service's typed rejections."""


class ServiceOverloaded(ServiceError):
    """Admission refused: the bounded queue is full.

    The backpressure signal — callers shed load or back off; the
    service never buffers unboundedly.
    """


class ServiceClosed(ServiceError):
    """Admission refused: the service is stopping or stopped."""


class ServiceUnsupported(ServiceError):
    """Admission refused: the request shape cannot be executed
    (e.g. a scan-pair request whose ego message carries no raw scan)."""


@dataclass(frozen=True)
class ServiceConfig:
    """Everything a :class:`~repro.service.core.PoseService` needs.

    The pipeline half mirrors the sweep engine's knobs (so a service
    answer for dataset pair ``i`` is *byte-identical* to the sweep's
    outcome for pair ``i``); the robustness half sizes the admission
    queue, micro-batching, deadlines and the supervision loop.

    Attributes:
        dataset_config: the deterministic dataset indexed requests
            resolve against.
        config: BB-Align configuration (``None`` = defaults).
        detector_profile: simulated detector feeding stage 2.
        include_vips: also run the graph-matching baseline per pair
            (off by default — a service answers poses, not figures).
        vips_config: baseline parameters.
        seed: sweep base seed; requests for pair ``i`` draw the same
            spawned streams the sweep draws.
        workers: pool size (``None``/``0`` = host CPU count).
        queue_limit: bounded admission queue; the ``queue_limit + 1``-th
            waiting request is refused with :class:`ServiceOverloaded`.
        batch_size: max requests per worker dispatch (micro-batching
            amortizes the pool round-trip over warm worker state).
        batch_window: seconds the dispatcher lingers for a batch to
            fill once work is queued; 0 dispatches immediately.
        batch_timeout: per-attempt wall bound on one batch; exceeding
            it is treated as a hung worker (restart + retry).
        default_deadline: seconds granted to requests that declare no
            deadline of their own; ``None`` = no implicit deadline.
        heartbeat_interval: supervisor probe period (liveness check +
            gauge refresh).
        retry: backoff schedule for batches that crash or hang
            (:data:`~repro.runtime.retry.SERVICE_DEFAULT`: three
            attempts, jittered exponential backoff).
        fault: deterministic fault injection forwarded to workers on
            indexed requests (the chaos harness's lever; ``None`` in
            production).
        use_shm: place scan-pair payloads in shared-memory segments and
            hand workers descriptors instead of pickled arrays
            (:mod:`repro.runtime.shm`).  Falls back to the pickle path
            transparently when shared memory is unavailable; responses
            are byte-identical either way.
        worker_cache_mb: byte budget (MiB) of each worker's persistent
            content-keyed :class:`~repro.runtime.cache.FeatureCache`
            for scan-pair stage-1 features; ``0`` disables caching.
            Cache on/off is also response-byte-identical.
        adaptive_batch: drive ``batch_size``/``batch_window`` from the
            queue-depth gauge via
            :class:`~repro.service.batching.AdaptiveBatchController`
            instead of the fixed values (opt-in: the chaos-soak
            contract counts batches against a fixed size).
        batch_controller: bounds/hysteresis for the adaptive controller
            (``None`` = defaults derived from ``batch_size`` and
            ``batch_window``).
        account_payload_bytes: measure the serialized size of every
            dispatched batch task into ``service/task_bytes`` (costs an
            extra pickle per batch; the bench's bytes-per-request
            evidence, off in production).
    """

    dataset_config: DatasetConfig = field(
        default_factory=lambda: DatasetConfig(num_pairs=40, seed=2024))
    config: BBAlignConfig | None = None
    detector_profile: DetectorProfile = COBEVT_PROFILE
    include_vips: bool = False
    vips_config: VipsConfig | None = None
    seed: int = 7
    workers: int | None = 2
    queue_limit: int = 32
    batch_size: int = 4
    batch_window: float = 0.002
    batch_timeout: float = 30.0
    default_deadline: float | None = None
    heartbeat_interval: float = 0.25
    retry: RetryPolicy = SERVICE_DEFAULT
    fault: WorkerFault | None = None
    use_shm: bool = True
    worker_cache_mb: float = 64.0
    adaptive_batch: bool = False
    batch_controller: "BatchControllerConfig | None" = None
    account_payload_bytes: bool = False

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.batch_timeout <= 0:
            raise ValueError("batch_timeout must be > 0")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError("default_deadline must be > 0 when set")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be > 0")
        if self.worker_cache_mb < 0:
            raise ValueError("worker_cache_mb must be >= 0")
