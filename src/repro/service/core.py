"""The always-on pose service: admission, batching, supervision.

:class:`PoseService` is an asyncio front-end over the shared
:class:`~repro.runtime.pool.WorkerPool`.  Scan-pair requests flow
through four stages, each with an explicit failure story:

1. **Admission** (:meth:`PoseService.submit_nowait`) is synchronous and
   bounded: a full queue refuses with
   :class:`~repro.service.config.ServiceOverloaded`, a stopping service
   with :class:`~repro.service.config.ServiceClosed` — the only two
   ways a request can fail to get a future.  Submitting ``B`` requests
   against a queue of depth ``Q`` in one event-loop tick yields exactly
   ``B - Q`` typed rejections, deterministically.
2. **Batching**: the dispatcher drains the queue into micro-batches
   (``batch_size``, with a short ``batch_window`` linger) so one pool
   round-trip amortizes over warm worker state.
3. **Execution with retry**: a batch that crashes its worker or hangs
   past ``batch_timeout`` triggers a generation-guarded pool restart
   (hung workers are SIGKILLed) and a jittered-backoff retry per the
   service's :class:`~repro.runtime.retry.RetryPolicy`.  A batch that
   outlives its retry budget resolves every request with a flagged
   ``"exhausted"`` response — the service-level rung of the paper's
   degradation ladder: *a pose answer you cannot trust, flagged as
   such, instead of an exception*.
4. **Deadlines** are per-request timers, not batch properties: when a
   request's deadline passes — queued or in flight — it resolves
   immediately with a ``"deadline"`` response and its slot in any
   running batch is simply discarded on completion.

A supervisor task heartbeats the pool (dead-worker probe + gauge
refresh) so workers that die *between* batches are also restarted.
Restarts are generation-guarded in :class:`WorkerPool`: concurrent
failure paths (batch crash, batch hang, supervisor probe) collapse to
one restart per actual fault, which is what makes the chaos soak's
``restarts == injected faults`` check deterministic.

Everything observable records into the service's own
:class:`~repro.runtime.timings.SweepTimings` registry — gauges
(``service/queue_depth``, ``service/in_flight``), counters
(``service/admitted``, ``service/shed``, ``service/worker_restarts``,
...), latency histograms — and worker telemetry folds in batch-keyed,
so a retried batch never double-counts.
"""

from __future__ import annotations

import asyncio
import functools
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.comms.envelope import ServiceRequest, ServiceResponse
from repro.comms.tiers import Tier
from repro.obs.spans import SpanHandle, TraceCollector, active_collector
from repro.runtime.pool import PoolUnavailableError, WorkerPool
from repro.runtime.shm import (
    SharedMessages,
    ShmArena,
    ShmUnavailableError,
    share_messages,
    shm_available,
)
from repro.runtime.timings import SweepTimings
from repro.service import worker
from repro.service.batching import (
    AdaptiveBatchController,
    BatchControllerConfig,
)
from repro.service.config import (
    ServiceClosed,
    ServiceConfig,
    ServiceOverloaded,
    ServiceUnsupported,
)

__all__ = ["PoseService"]


@dataclass
class _Pending:
    """One admitted request awaiting its response."""

    request: ServiceRequest
    future: asyncio.Future
    enqueued: float
    deadline: float | None = None
    timer: asyncio.TimerHandle | None = None
    #: Trace identity (allocated at admission when tracing is on) and
    #: the wall-clock admission instant backing the synthetic
    #: ``service/request`` span emitted at resolution.
    span_id: str | None = None
    start_unix: float = 0.0


def _identity_response(request_id: int, status: str,
                       reason: str) -> ServiceResponse:
    """A non-``ok`` response: identity pose, flagged, typed."""
    return ServiceResponse(
        request_id=request_id, status=status, success=False,
        failure_reason=reason, degradation=None, inliers_bv=0,
        inliers_box=0, tx=0.0, ty=0.0, theta=0.0)


class PoseService:
    """Admission-controlled, supervised pose recovery over a warm pool.

    Lifecycle::

        service = PoseService(ServiceConfig(...))
        await service.start()
        response = await service.submit(ServiceRequest(request_id=1,
                                                       index=12))
        await service.stop()          # graceful drain; idempotent

    or ``async with PoseService(...) as service: ...``.
    """

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        # The initializer re-applies worker-side configuration (cache
        # byte budget) to every worker the pool ever starts — including
        # post-crash replacements, which would otherwise come up with
        # defaults.
        self.pool = WorkerPool(self.config.workers,
                               initializer=worker.configure_worker,
                               initargs=(self.config.worker_cache_mb,))
        #: Service telemetry; worker snapshots fold in batch-keyed.
        self.timings = SweepTimings()
        self.registry = self.timings.registry
        #: Parent-owned shared-memory arena for the zero-copy scan data
        #: plane; ``None`` until :meth:`start` (or when unavailable —
        #: the pickle path then carries scan batches transparently).
        self.arena: ShmArena | None = None
        self._controller: AdaptiveBatchController | None = None
        if self.config.adaptive_batch:
            controller_config = self.config.batch_controller
            if controller_config is None:
                controller_config = BatchControllerConfig(
                    min_batch=1,
                    max_batch=max(16, self.config.batch_size * 4),
                    base_window=max(self.config.batch_window, 0.0005))
            self._controller = AdaptiveBatchController(
                controller_config, initial=self.config.batch_size)
        self._collector: TraceCollector | None = None
        self._queue: deque[_Pending] = deque()
        self._batches: set[asyncio.Task] = set()
        self._dispatcher: asyncio.Task | None = None
        self._supervisor: asyncio.Task | None = None
        self._wake: asyncio.Event | None = None
        self._slots: asyncio.Semaphore | None = None
        self._stopped: asyncio.Event | None = None
        self._started = False
        self._closed = False
        self._stopping = False
        self._batch_seq = 0
        # Seeded like the engine's retry stream (different tag), so
        # backoff schedules are reproducible run to run.
        self._retry_rng = np.random.default_rng([self.config.seed, 0x5E])

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Warm the pool and start dispatcher + supervisor.

        Raises:
            PoolUnavailableError: the worker pool refused to start; the
                service cannot run without one.
        """
        if self._started:
            return
        self.pool.executor()  # fail fast, not on the first request
        if self.config.use_shm and self.arena is None:
            if shm_available():
                self.arena = ShmArena(prefix=f"repro-svc-{os.getpid()}")
            else:
                self.registry.counter("service/shm/unavailable").inc()
        # Tracing: requests admitted from here on stitch into whatever
        # trace session is active around the service's lifecycle.
        self._collector = active_collector()
        self._wake = asyncio.Event()
        self._stopped = asyncio.Event()
        self._slots = asyncio.Semaphore(self.pool.workers)
        self._dispatcher = asyncio.create_task(self._dispatch_loop(),
                                               name="pose-service-dispatch")
        self._supervisor = asyncio.create_task(self._supervise_loop(),
                                               name="pose-service-supervise")
        self._started = True

    async def stop(self, *, drain: bool = True) -> None:
        """Stop accepting work and wind down.  Idempotent.

        With ``drain=True`` (the default, and what SIGTERM triggers in
        ``repro serve``) queued and in-flight requests run to their
        real responses before the pool closes.  With ``drain=False``
        queued requests resolve immediately with typed ``"shed"``
        responses; in-flight batches still finish — an admitted request
        always gets a response either way.
        """
        if self._stopping or not self._started:
            self._closed = True
            if self._stopped is not None:
                await self._stopped.wait()
            return
        self._stopping = True
        self._closed = True
        if not drain:
            while self._queue:
                pending = self._queue.popleft()
                self.registry.counter("service/shed_on_shutdown").inc()
                self._resolve(pending, _identity_response(
                    pending.request.request_id, "shed",
                    "service-shutdown"))
            self._gauge_queue()
        while self._queue or self._batches:
            if self._wake is not None:
                self._wake.set()
            await asyncio.sleep(0.005)
        for task in (self._dispatcher, self._supervisor):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, functools.partial(
            self.pool.shutdown, wait=True, cancel_futures=True,
            kill_workers=True))
        if self.arena is not None:
            # Every batch released its segment in _execute's finally;
            # anything still live here is a leak — surface it (the
            # chaos soak asserts this gauge is zero), then unlink it.
            self.registry.gauge("service/shm/segments_leaked").set(
                self.arena.active)
            self.arena.release_all()
        self._stopped.set()

    async def __aenter__(self) -> "PoseService":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit_nowait(self, request: ServiceRequest) -> asyncio.Future:
        """Admit one request; returns the future of its response.

        Synchronous and allocation-bounded: the decision is made from
        queue depth alone, so a burst of ``B`` submissions in one tick
        against ``queue_limit - Q`` free slots is admitted/refused
        deterministically.

        Raises:
            ServiceClosed: the service is stopping or never started.
            ServiceOverloaded: the admission queue is full.
            ServiceUnsupported: the request shape cannot execute (an
                indexed request beyond the dataset, or a scan-pair
                request whose ego message carries no raw scan).
        """
        if self._closed or not self._started:
            self.registry.counter("service/rejected_closed").inc()
            raise ServiceClosed("service is not accepting requests")
        if len(self._queue) >= self.config.queue_limit:
            self.registry.counter("service/shed").inc()
            raise ServiceOverloaded(
                f"admission queue full ({self.config.queue_limit})")
        self._validate(request)
        loop = asyncio.get_running_loop()
        now = loop.time()
        deadline: float | None = None
        if request.deadline_ms > 0:
            deadline = now + request.deadline_ms / 1000.0
        elif self.config.default_deadline is not None:
            deadline = now + self.config.default_deadline
        pending = _Pending(request=request, future=loop.create_future(),
                           enqueued=now, deadline=deadline)
        if self._collector is not None:
            pending.span_id = self._collector.next_span_id()
            pending.start_unix = time.time()
        if deadline is not None:
            pending.timer = loop.call_at(deadline, self._on_deadline,
                                         pending)
        self._queue.append(pending)
        self.registry.counter("service/admitted").inc()
        self._gauge_queue()
        self._wake.set()
        return pending.future

    async def submit(self, request: ServiceRequest) -> ServiceResponse:
        """Admit and await one request (see :meth:`submit_nowait`)."""
        return await self.submit_nowait(request)

    def _validate(self, request: ServiceRequest) -> None:
        if request.shm is not None:
            # Shm descriptors are a *transport* form: the TCP server
            # resolves them into ordinary scan pairs before admission.
            # One reaching here means no transport resolved it, and the
            # service must not guess at a foreign segment's layout.
            self.registry.counter("service/rejected_unsupported").inc()
            raise ServiceUnsupported(
                "shared-memory request descriptors must be resolved by "
                "the transport before admission")
        if request.index is not None:
            if request.index >= self.config.dataset_config.num_pairs:
                self.registry.counter("service/rejected_unsupported").inc()
                raise ServiceUnsupported(
                    f"pair index {request.index} beyond the configured "
                    f"dataset ({self.config.dataset_config.num_pairs})")
            return
        if request.ego.tier is not Tier.FULL_SCAN:
            self.registry.counter("service/rejected_unsupported").inc()
            raise ServiceUnsupported(
                "scan-pair requests need the ego message at the "
                f"full-scan tier, got {request.ego.tier.value!r} "
                "(the other side may use any tier)")

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve(self, pending: _Pending,
                 response: ServiceResponse) -> None:
        if pending.future.done():
            return
        if pending.timer is not None:
            pending.timer.cancel()
        pending.future.set_result(response)
        loop = asyncio.get_running_loop()
        latency = loop.time() - pending.enqueued
        self.registry.counter("service/responses").inc()
        self.registry.counter(f"service/status/{response.status}").inc()
        self.registry.histogram("service/latency_s").observe(latency)
        if self._collector is not None and pending.span_id is not None:
            # The request span is synthesized at resolution (spans are
            # emitted on close): admission → response, parented on the
            # session root, with batch spans nesting underneath via the
            # span_id handed to _run_batch.
            self._collector.emit({
                "type": "span", "name": "service/request",
                "span_id": pending.span_id,
                "parent_id": self._collector.root_parent,
                "pid": os.getpid(),
                "start_unix": round(pending.start_unix, 6),
                "wall_s": round(latency, 9), "cpu_s": 0.0,
                "attrs": {"request_id": pending.request.request_id,
                          "kind": pending.request.kind,
                          "status": response.status},
            })

    def _on_deadline(self, pending: _Pending) -> None:
        if pending.future.done():
            return
        self.registry.counter("service/deadline_expired").inc()
        self._resolve(pending, _identity_response(
            pending.request.request_id, "deadline", "deadline-exceeded"))

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _gauge_queue(self) -> None:
        self.registry.gauge("service/queue_depth").set(len(self._queue))

    def _batch_limits(self) -> tuple[int, float]:
        """Effective (batch_size, batch_window): the adaptive
        controller's current rung when enabled, the fixed config
        otherwise."""
        if self._controller is not None:
            return (self._controller.batch_size,
                    self._controller.batch_window)
        return self.config.batch_size, self.config.batch_window

    def _next_batch(self, batch_size: int) -> list[_Pending]:
        """Pop the next micro-batch: up to ``batch_size`` requests of
        one kind (indexed batches ride the engine's chunk runner,
        scan-pair batches the message path — they don't mix)."""
        batch: list[_Pending] = []
        kind: str | None = None
        while self._queue and len(batch) < batch_size:
            pending = self._queue.popleft()
            if pending.future.done():  # deadline fired while queued
                continue
            if kind is None:
                kind = pending.request.kind
            elif pending.request.kind != kind:
                self._queue.appendleft(pending)
                break
            batch.append(pending)
        self._gauge_queue()
        return batch

    async def _dispatch_loop(self) -> None:
        while True:
            await self._wake.wait()
            self._wake.clear()
            if self._controller is not None:
                self._controller.observe(len(self._queue))
            batch_size, batch_window = self._batch_limits()
            if (self._queue and not self._closed
                    and len(self._queue) < batch_size
                    and batch_window > 0):
                await asyncio.sleep(batch_window)
                batch_size, _ = self._batch_limits()
            while self._queue:
                await self._slots.acquire()
                batch = self._next_batch(batch_size)
                if not batch:
                    self._slots.release()
                    continue
                seq = self._batch_seq
                self._batch_seq += 1
                task = asyncio.create_task(self._run_batch(seq, batch))
                self._batches.add(task)
                task.add_done_callback(self._batch_done)

    def _batch_done(self, task: asyncio.Task) -> None:
        self._batches.discard(task)
        self._slots.release()
        if not task.cancelled() and task.exception() is not None:
            # _run_batch resolves its requests in a finally; an escape
            # here is a bug, but it must not kill the dispatcher.
            self.registry.counter("service/internal_errors").inc()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    async def _run_batch(self, seq: int, batch: list[_Pending]) -> None:
        gauge = self.registry.gauge("service/in_flight")
        gauge.inc(len(batch))
        self.registry.counter("service/batches").inc()
        bspan: SpanHandle | None = None
        try:
            alive = [p for p in batch if not p.future.done()]
            if not alive:
                return
            if self._collector is not None:
                # Built by hand (not the ambient span() stack): batches
                # run as interleaved asyncio tasks, and the tree wanted
                # here — request → batch → worker stages — parents the
                # batch on its first request's span, not on whatever
                # span another task happens to have open.
                bspan = SpanHandle(
                    "service/batch", self._collector.next_span_id(),
                    alive[0].span_id,
                    {"seq": seq, "requests": len(alive),
                     "kind": alive[0].request.kind})
            result = await self._execute(
                seq, alive,
                trace_parent=bspan.span_id if bspan is not None else None)
            if result is None:
                for pending in alive:
                    self.registry.counter("service/exhausted").inc()
                    self._resolve(pending, _identity_response(
                        pending.request.request_id, "exhausted",
                        "retry-budget-exhausted"))
                return
            responses, telemetry = result
            self.timings.merge_chunk(("service-batch", seq),
                                     telemetry.get("snapshot", {}))
            if self._collector is not None:
                for event in telemetry.get("spans", []):
                    self._collector.emit(event)
            for pending, response in zip(alive, responses):
                self._resolve(pending, response)
        finally:
            if bspan is not None and self._collector is not None:
                self._collector.emit(bspan.close_event())
            gauge.dec(len(batch))
            for pending in batch:  # safety net: never leave one hanging
                if not pending.future.done():
                    self._resolve(pending, _identity_response(
                        pending.request.request_id, "exhausted",
                        "internal-error"))

    def _share_batch(self, alive: list[_Pending]) -> SharedMessages | None:
        """Place a scan batch's messages into one arena segment.

        ``None`` means the pickle path carries this batch: indexed
        batches (nothing heavy to share), no arena, or a placement
        failure (``/dev/shm`` exhausted mid-run) — the fallback is
        per-batch and transparent.
        """
        if self.arena is None or alive[0].request.index is not None:
            return None
        try:
            shared = share_messages(
                self.arena, [message for p in alive
                             for message in (p.request.ego,
                                             p.request.other)])
        except ShmUnavailableError:
            self.registry.counter("service/shm/fallbacks").inc()
            return None
        self.registry.counter("service/shm/segments").inc()
        self.registry.counter("service/shm/bytes_shared").inc(
            shared.block.size)
        return shared

    def _submit_batch(self, alive: list[_Pending], attempt: int,
                      shared: SharedMessages | None,
                      trace_parent: str | None):
        """Ship one attempt of a batch to the pool (kind-dispatched)."""
        if alive[0].request.index is not None:
            task = worker.build_chunk_task(
                tuple(p.request.index for p in alive), self.config,
                attempt=attempt, trace_parent=trace_parent)
            submit = functools.partial(self.pool.submit,
                                       worker.run_chunk, task)
        else:
            if shared is not None:
                task = worker.ScanPairTask(
                    requests=(), config=self.config.config,
                    seed=self.config.seed, attempt=attempt,
                    shared=shared,
                    request_ids=tuple(p.request.request_id
                                      for p in alive),
                    use_cache=self.config.worker_cache_mb > 0,
                    trace_parent=trace_parent)
            else:
                task = worker.ScanPairTask(
                    requests=tuple(p.request for p in alive),
                    config=self.config.config, seed=self.config.seed,
                    attempt=attempt,
                    use_cache=self.config.worker_cache_mb > 0,
                    trace_parent=trace_parent)
            submit = functools.partial(self.pool.submit,
                                       worker.run_scan_pairs, task)
        if self.config.account_payload_bytes and attempt == 0:
            # What actually crosses the pool's call pipe for this
            # batch: a few hundred descriptor bytes on the shm path, the
            # full pickled payloads otherwise.  First attempt only —
            # retries resubmit the same task and would skew the
            # per-request quotient the bench gates on.
            nbytes = len(pickle.dumps(task))
            self.registry.histogram("service/task_bytes").observe(
                float(nbytes))
            self.registry.counter("service/payload_requests").inc(
                len(alive))
        return submit()

    def _to_responses(self, alive: list[_Pending],
                      payload: list) -> list[ServiceResponse]:
        if alive[0].request.index is not None:
            return [worker.response_for(outcome, p.request.request_id)
                    for p, outcome in zip(alive, payload)]
        return list(payload)  # scan-pair workers build responses

    async def _execute(self, seq: int, alive: list[_Pending],
                       trace_parent: str | None = None):
        """Run one batch through the retry ladder.

        Returns ``(responses, telemetry)`` on success, ``None`` when
        the retry budget is spent — the caller flags every request.

        Shared-memory placement happens once, outside the ladder: the
        payload does not change across attempts, so a retry after a
        worker crash resubmits the *same* descriptor (the parent never
        unlinked it), and the ``finally`` releases the segment exactly
        once whatever the outcome — which is why a SIGKILLed worker
        cannot orphan a segment.
        """
        loop = asyncio.get_running_loop()
        delays = self.config.retry.delays(self._retry_rng)
        attempt = 0
        shared = self._share_batch(alive)
        try:
            while True:
                generation = self.pool.generation
                restart = False  # whether this attempt broke the pool
                pool_future = None
                try:
                    pool_future = self._submit_batch(alive, attempt,
                                                     shared, trace_parent)
                    _first, payload, telemetry = await asyncio.wait_for(
                        asyncio.wrap_future(pool_future),
                        timeout=self.config.batch_timeout)
                    return self._to_responses(alive, payload), telemetry
                except (asyncio.TimeoutError, TimeoutError):
                    # A hang: the worker holding the batch gets
                    # SIGKILLed with the pool it wedged.
                    self.registry.counter("service/hangs").inc()
                    restart = True
                except PoolUnavailableError:
                    self.registry.counter("service/pool_unavailable").inc()
                except asyncio.CancelledError:
                    # A concurrent restart cancelled our queued
                    # submission — retry on the new pool.  Anything
                    # else cancelled *us*; propagate.
                    if pool_future is None or not pool_future.cancelled():
                        raise
                    self.registry.counter("service/batch_failures").inc()
                except Exception:
                    # Worker death (BrokenProcessPool), lost futures
                    # from a concurrent restart, serialization
                    # failures: all retry.
                    self.registry.counter("service/batch_failures").inc()
                    restart = True
                if restart and await loop.run_in_executor(
                        None, functools.partial(self.pool.restart,
                                                generation,
                                                kill_workers=True)):
                    self.registry.counter("service/worker_restarts").inc()
                delay = next(delays, None)
                if delay is None:
                    return None
                self.registry.counter("service/batch_retries").inc()
                if delay > 0:
                    await asyncio.sleep(delay)
                attempt += 1
        finally:
            if shared is not None:
                self.arena.release(shared.block)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    async def _supervise_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(self.config.heartbeat_interval)
            self.registry.counter("service/heartbeats").inc()
            self._gauge_queue()
            if self._controller is not None:
                # Idle periods step the controller back down even when
                # no dispatch is happening to observe the queue.
                self._controller.observe(len(self._queue))
            if self.pool.started and self.pool.dead_workers():
                # A worker died between batches (or its batch has not
                # noticed yet).  Generation-guarded: if a batch failure
                # restarts first, this probe is a no-op.
                generation = self.pool.generation
                if await loop.run_in_executor(None, functools.partial(
                        self.pool.restart, generation,
                        kill_workers=True)):
                    self.registry.counter("service/worker_restarts").inc()
                    self.registry.counter(
                        "service/supervisor_restarts").inc()
