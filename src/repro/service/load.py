"""Closed-loop load generation and the soak summary statistics.

The harness behind ``repro service-load`` and the chaos-soak benchmark:
``run_load`` drives a submit function (in-process service or TCP
client, the caller chooses) with ``concurrency`` always-busy virtual
clients cycling through the dataset's pair indices, and folds every
response into a :class:`LoadSummary` — admitted/refused counts, status
breakdown, sustained RPS and latency percentiles.

Closed-loop on purpose: each virtual client waits for its response
before sending the next request, so offered load adapts to service
capacity instead of melting the admission queue — overload behavior is
exercised separately by burst submission (``tests/test_service.py``)
where the rejection count is exact.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.comms.envelope import ServiceRequest, ServiceResponse
from repro.service.config import ServiceError, ServiceOverloaded

__all__ = ["LoadSummary", "percentile", "run_load"]


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (0 for an empty sample)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1,
               max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[rank]


@dataclass
class LoadSummary:
    """What one load run observed, end to end.

    ``attempted = responded + rejected``: every request either resolved
    to a typed response (whatever its status) or was refused at
    admission with a typed error.  Anything else would be an unhandled
    error — counted in ``errors`` and required to be zero by the soak
    harness.
    """

    attempted: int = 0
    responded: int = 0
    rejected: int = 0          # typed admission rejections (overload...)
    errors: int = 0            # unhandled — the soak requires 0
    statuses: dict[str, int] = field(default_factory=dict)
    degradations: dict[str, int] = field(default_factory=dict)
    successes: int = 0
    wall_s: float = 0.0
    latencies_s: list[float] = field(default_factory=list)

    def record(self, response: ServiceResponse, latency_s: float) -> None:
        self.responded += 1
        self.latencies_s.append(latency_s)
        self.statuses[response.status] = \
            self.statuses.get(response.status, 0) + 1
        if response.degradation is not None:
            self.degradations[response.degradation] = \
                self.degradations.get(response.degradation, 0) + 1
        if response.success:
            self.successes += 1

    @property
    def sustained_rps(self) -> float:
        return self.responded / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_s, 0.50) * 1000.0

    @property
    def p95_ms(self) -> float:
        return percentile(self.latencies_s, 0.95) * 1000.0

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_s, 0.99) * 1000.0

    def to_dict(self) -> dict:
        """JSON form (the ``soak`` block of ``BENCH_service.json``)."""
        return {
            "attempted": self.attempted,
            "responded": self.responded,
            "rejected": self.rejected,
            "errors": self.errors,
            "successes": self.successes,
            "statuses": dict(sorted(self.statuses.items())),
            "degradations": dict(sorted(self.degradations.items())),
            "wall_s": round(self.wall_s, 3),
            "sustained_rps": round(self.sustained_rps, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }

    def format(self) -> str:
        statuses = " ".join(f"{status}={count}" for status, count
                            in sorted(self.statuses.items()))
        return (f"{self.responded}/{self.attempted} responded "
                f"({self.rejected} rejected, {self.errors} unhandled) "
                f"in {self.wall_s:.2f} s — {self.sustained_rps:.1f} rps, "
                f"p50 {self.p50_ms:.0f} ms, p95 {self.p95_ms:.0f} ms, "
                f"p99 {self.p99_ms:.0f} ms; {statuses}")


async def run_load(submit, *, requests: int, concurrency: int,
                   num_pairs: int = 0, deadline_ms: int = 0,
                   overload_backoff: float = 0.01, warmup: int = 0,
                   make_request=None) -> LoadSummary:
    """Drive ``submit`` with a closed-loop request stream.

    Args:
        submit: ``async (ServiceRequest) -> ServiceResponse``.  Typed
            :class:`ServiceError` rejections count as ``rejected``
            (with a short backoff after :class:`ServiceOverloaded`);
            any other exception counts as ``errors`` — the failure the
            soak harness exists to catch.
        requests: total requests to attempt.
        concurrency: simultaneous virtual clients.
        num_pairs: indexed requests cycle ``0..num_pairs-1`` (ignored
            when ``make_request`` is given).
        deadline_ms: per-request deadline to declare (0 = none).
        overload_backoff: seconds a client sleeps after an overload
            rejection before its next attempt.
        warmup: requests to run (serially, best-effort, uncounted)
            before the timed window opens — they absorb one-time costs
            (worker pipeline construction, cold caches) so the summary
            measures steady state.  Warmup ids live in a reserved high
            band (``0x7F000000 + n``) and never collide with the timed
            stream's.
        make_request: optional ``(n: int) -> ServiceRequest`` factory
            replacing the default indexed-request stream — how the
            bench drives scan-pair and shm forms through the same
            closed loop.  It must assign its own (stable) request ids;
            determinism of per-request RNG streams hangs off them.
    """
    summary = LoadSummary()
    counter = iter(range(requests))
    if make_request is None:
        if num_pairs < 1:
            raise ValueError("num_pairs must be >= 1 for indexed load")

        def make_request(n: int) -> ServiceRequest:
            return ServiceRequest(request_id=(n + 1) & 0xFFFFFFFF,
                                  index=n % num_pairs,
                                  deadline_ms=deadline_ms)

    for n in range(warmup):
        warm = make_request(n)
        kwargs = ({"index": warm.index} if warm.index is not None
                  else {"ego": warm.ego, "other": warm.other}
                  if warm.shm is None else {"shm": warm.shm})
        try:
            await submit(ServiceRequest(
                request_id=(0x7F000000 + n) & 0xFFFFFFFF, **kwargs))
        except Exception:
            pass  # warmup is best-effort; the timed loop counts errors

    async def client() -> None:
        for n in counter:
            request = make_request(n)
            summary.attempted += 1
            start = time.perf_counter()
            try:
                response = await submit(request)
            except ServiceOverloaded:
                summary.rejected += 1
                await asyncio.sleep(overload_backoff)
                continue
            except ServiceError:
                summary.rejected += 1
                continue
            except Exception:
                summary.errors += 1
                continue
            summary.record(response, time.perf_counter() - start)

    start = time.perf_counter()
    await asyncio.gather(*(client() for _ in range(concurrency)))
    summary.wall_s = time.perf_counter() - start
    return summary
